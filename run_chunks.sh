#!/bin/bash
# Sequential experiment chunks + final artifacts.
set -x
cd /root/repo
target/release/repro table4 fig5 --out results > repro_B.log 2>&1
target/release/repro fig6 ablation ps --out results > repro_C.log 2>&1
target/release/repro fig8 --out results > repro_D.log 2>&1
target/release/repro fig9 --nodes 2,8,16 --out results > repro_F.log 2>&1
echo ALL_CHUNKS_DONE
# Smoke-run the examples (release binaries already built? build to be safe).
cargo build --release --examples > examples_build.log 2>&1
for ex in quickstart link_prediction strategy_ablation ps_vs_allreduce distributed_speedup; do
  timeout 600 target/release/examples/$ex > example_$ex.log 2>&1
  echo "example $ex exit=$?"
done
echo EXAMPLES_DONE
cargo bench --workspace > bench_output.txt 2>&1
echo BENCH_DONE
cargo test --workspace > test_output.txt 2>&1
echo TESTS_DONE
echo PIPELINE_COMPLETE
