//! # kge — dynamic strategies for high-performance KGE training
//!
//! A from-scratch Rust reproduction of *"Dynamic Strategies for High
//! Performance Training of Knowledge Graph Embeddings"* (Panda &
//! Vadhiyar, ICPP '22): a synchronous data-parallel ComplEx trainer with
//! five composable communication/convergence strategies, running on a
//! simulated distributed-memory cluster so that cluster-scale behaviour
//! reproduces on a laptop.
//!
//! This crate re-exports the public API of the workspace:
//!
//! - [`sim`] (crate `simgrid`) — the cluster substrate: node threads,
//!   MPI-style collectives, α-β simulated timing.
//! - [`core`] (crate `kge-core`) — ComplEx/DistMult/TransE models,
//!   embedding tables, sparse gradients, Adam.
//! - [`data`] (crate `kge-data`) — triple stores, Freebase-shaped
//!   synthetic datasets, TSV io, batching.
//! - [`compress`] (crate `kge-compress`) — gradient row selection and
//!   1-/2-bit quantization with wire codecs and error feedback.
//! - [`partition`] (crate `kge-partition`) — relation partition and
//!   baselines.
//! - [`eval`] (crate `kge-eval`) — filtered MRR, Hits@k, triple
//!   classification accuracy.
//! - [`train`] (crate `kge-train`) — the paper's trainer with all five
//!   strategies.
//! - [`serve`] (crate `kge-serve`) — serve-while-training: immutable
//!   model snapshots published at epoch boundaries, batched top-k link
//!   prediction on the SIMD one-vs-all kernels, open-loop load
//!   generation with p50/p99 latency on the simulated clock.
//!
//! ## Quickstart
//!
//! ```
//! use kge::prelude::*;
//!
//! // A small Freebase-shaped dataset.
//! let dataset = kge::data::synth::generate(&SynthPreset::Fb15kLike.config(0.01, 42));
//!
//! // Four simulated Cray-class nodes.
//! let cluster = Cluster::new(4, ClusterSpec::cray_xc40());
//!
//! // The paper's full strategy stack: DRS + RS + 1-bit + RP + SS(1:5).
//! let mut config = TrainConfig::new(8, 64, StrategyConfig::combined(5));
//! config.max_epochs = 3; // doc-test sized
//! config.plateau_tolerance = 2;
//!
//! let outcome = kge::train::train(&dataset, &cluster, &config);
//! assert!(outcome.report.epochs > 0);
//! println!("simulated training time: {:.2} h", outcome.report.total_hours());
//! ```

pub use kge_compress as compress;
pub use kge_core as core;
pub use kge_data as data;
pub use kge_eval as eval;
pub use kge_partition as partition;
pub use kge_serve as serve;
pub use kge_train as train;
pub use simgrid as sim;

/// Everything needed for typical use, in one import.
pub mod prelude {
    pub use kge_compress::{QuantScheme, RowSelector, ScaleRule};
    pub use kge_core::{ComplEx, DistMult, EmbeddingTable, KgeModel, RotatE, SimplE, TransE};
    pub use kge_data::{Dataset, FilterIndex, GroupedFilter, SynthConfig, SynthPreset, Triple};
    pub use kge_eval::{
        evaluate_ranking, evaluate_ranking_distributed, evaluate_ranking_with,
        fast_valid_accuracy, triple_classification, RankingMetrics, RankingOptions,
        RankingWorkspace,
    };
    pub use kge_serve::{ModelSnapshot, Query, ServeEngine, SnapshotHub, TopHit};
    pub use kge_train::{
        train, train_ps, train_with_snapshots, CommMode, ModelKind, NegSampling, OptimizerKind,
        StrategyConfig, TrainConfig, TrainOutcome, UpdateStyle,
    };
    pub use simgrid::{Cluster, ClusterSpec};
}
