//! Cross-crate integration tests: end-to-end training on the simulated
//! cluster, evaluated with the full metric pipeline, exercising every
//! strategy of the paper through the public `kge` API.

use kge::compress::{QuantScheme, RowSelector};
use kge::prelude::*;

fn dataset(seed: u64) -> Dataset {
    kge::data::synth::generate(&SynthPreset::Fb15kLike.config(0.015, seed))
}

fn quick(strategy: StrategyConfig, seed: u64) -> TrainConfig {
    let mut c = TrainConfig::new(8, 128, strategy);
    c.plateau_tolerance = 4;
    c.max_lr_drops = 1;
    c.max_epochs = 25;
    c.valid_samples = 128;
    c.seed = seed;
    // Bench-scale datasets have few optimizer steps per epoch; a larger
    // base rate reaches the paper's operating point (see EXPERIMENTS.md).
    c.base_lr = 5e-3;
    c
}

fn mrr_of(outcome: &TrainOutcome, ds: &Dataset, rank: usize) -> f64 {
    let model = ComplEx::new(rank);
    let filter = FilterIndex::build(ds);
    evaluate_ranking(
        &model,
        &outcome.entities,
        &outcome.relations,
        &ds.test,
        &filter,
        &RankingOptions {
            max_queries: Some(150),
            ..Default::default()
        },
    )
    .mrr
}

#[test]
fn training_beats_random_embeddings_on_mrr() {
    let ds = dataset(1);
    let cluster = Cluster::new(2, ClusterSpec::cray_xc40());
    let mut config = quick(StrategyConfig::baseline_allreduce(4), 1);
    config.max_epochs = 70;
    config.plateau_tolerance = 70; // use the full budget
    let outcome = train(&ds, &cluster, &config);
    let trained = mrr_of(&outcome, &ds, 8);

    // Random baseline: untouched Xavier tables.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let random = TrainOutcome {
        report: outcome.report.clone(),
        entities: EmbeddingTable::xavier(ds.n_entities, 16, &mut rng),
        relations: EmbeddingTable::xavier(ds.n_relations, 16, &mut rng),
    };
    let untrained = mrr_of(&random, &ds, 8);
    assert!(
        trained > 2.0 * untrained,
        "trained MRR {trained} must beat random {untrained}"
    );
}

#[test]
fn all_five_strategies_compose_and_converge() {
    let ds = dataset(2);
    let cluster = Cluster::new(4, ClusterSpec::cray_xc40());
    let outcome = train(&ds, &cluster, &quick(StrategyConfig::combined(5), 2));
    assert!(outcome.report.epochs > 0);
    let last = outcome.report.trace.last().unwrap();
    assert!(last.train_loss.is_finite() && last.train_loss > 0.0);
    assert!(last.rs_sparsity > 0.0, "RS must drop rows");
    // Entities and relations must have moved from init.
    assert!(outcome.entities.sq_norm() > 0.0);
}

#[test]
fn combined_strategy_cuts_simulated_time_vs_baseline() {
    // The paper's headline: the combination beats the baseline TT at a
    // fixed node count. The dynamic selector's first all-gather probe is
    // at epoch 10 (paper k=10), so the run must be long enough for the
    // switch to pay off; compare per-epoch simulated cost and bytes
    // against all-reduce, the stronger baseline at 8 nodes.
    let ds = kge::data::synth::generate(&SynthPreset::Fb250kLike.config(0.005, 3));
    let cluster = Cluster::new(8, ClusterSpec::cray_xc40());
    let mut base_cfg = quick(StrategyConfig::baseline_allreduce(1), 12);
    base_cfg.max_epochs = 24;
    base_cfg.plateau_tolerance = 25; // force the full epoch budget
    let mut comb_cfg = quick(StrategyConfig::combined(5), 3);
    comb_cfg.max_epochs = 24;
    comb_cfg.plateau_tolerance = 25;

    let base = train(&ds, &cluster, &base_cfg);
    let comb = train(&ds, &cluster, &comb_cfg);
    assert_eq!(base.report.epochs, comb.report.epochs);
    assert!(
        comb.report.sim_total_seconds < base.report.sim_total_seconds,
        "combined {}s must undercut baseline {}s",
        comb.report.sim_total_seconds,
        base.report.sim_total_seconds
    );
    let comb_bytes: u64 = comb.report.trace.iter().map(|t| t.bytes_sent).sum();
    let base_bytes: u64 = base.report.trace.iter().map(|t| t.bytes_sent).sum();
    assert!(
        comb_bytes < base_bytes / 2,
        "combined bytes {comb_bytes} vs baseline {base_bytes}"
    );
}

#[test]
fn quantized_gather_beats_f32_gather_on_wire_bytes() {
    let ds = dataset(4);
    let cluster = Cluster::new(2, ClusterSpec::cray_xc40());
    let f32_cfg = quick(StrategyConfig::baseline_allgather(2), 4);
    let mut q_cfg = quick(StrategyConfig::baseline_allgather(2), 4);
    q_cfg.strategy.quant = QuantScheme::paper_one_bit();
    q_cfg.strategy.error_feedback = true;

    let f = train(&ds, &cluster, &f32_cfg);
    let q = train(&ds, &cluster, &q_cfg);
    let fb: u64 = f.report.trace.iter().map(|t| t.bytes_sent).sum::<u64>()
        / f.report.epochs.max(1) as u64;
    let qb: u64 = q.report.trace.iter().map(|t| t.bytes_sent).sum::<u64>()
        / q.report.epochs.max(1) as u64;
    assert!(qb * 3 < fb, "1-bit per-epoch bytes {qb} vs f32 {fb}");
}

#[test]
fn dynamic_selector_switches_to_gather_when_rows_sparsify() {
    // With quantization making the gather path cheap, the dynamic
    // selector should abandon all-reduce at one of its probes.
    let ds = dataset(5);
    let cluster = Cluster::new(4, ClusterSpec::cray_xc40());
    let mut cfg = quick(StrategyConfig::baseline_allreduce(2), 5);
    cfg.strategy.comm = CommMode::Dynamic { check_every: 3 };
    cfg.strategy.row_select = RowSelector::paper_rs();
    cfg.strategy.quant = QuantScheme::paper_one_bit();
    cfg.strategy.error_feedback = true;
    cfg.max_epochs = 15;
    cfg.plateau_tolerance = 15;
    let out = train(&ds, &cluster, &cfg);
    assert!(
        out.report.allgather_epochs > 0,
        "selector never probed/switched: {} AR vs {} AG epochs",
        out.report.allreduce_epochs,
        out.report.allgather_epochs
    );
}

#[test]
fn relation_partition_preserves_model_quality() {
    let ds = dataset(6);
    let cluster = Cluster::new(4, ClusterSpec::cray_xc40());
    let no_rp = train(&ds, &cluster, &quick(StrategyConfig::baseline_allgather(2), 6));
    let mut rp_cfg = quick(StrategyConfig::baseline_allgather(2), 6);
    rp_cfg.strategy.relation_partition = true;
    let rp = train(&ds, &cluster, &rp_cfg);
    let m_no = mrr_of(&no_rp, &ds, 8);
    let m_rp = mrr_of(&rp, &ds, 8);
    // RP changes data placement, not the objective: quality stays in the
    // same ballpark (allow generous slack — tiny dataset, few epochs).
    assert!(
        m_rp > 0.4 * m_no,
        "RP MRR {m_rp} collapsed vs non-RP {m_no}"
    );
}

#[test]
fn dataset_roundtrip_through_tsv_then_train() {
    let ds = dataset(7);
    let dir = std::env::temp_dir().join(format!("kge-int-io-{}", std::process::id()));
    kge::data::io::save_dir(&ds, &dir).unwrap();
    let (loaded, _, _) = kge::data::io::load_dir(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(loaded.train.len(), ds.train.len());
    let cluster = Cluster::new(2, ClusterSpec::cray_xc40());
    let mut cfg = quick(StrategyConfig::baseline_allreduce(1), 12);
    cfg.max_epochs = 3;
    let out = train(&loaded, &cluster, &cfg);
    assert_eq!(out.report.epochs, 3);
}

#[test]
fn simulated_time_grows_with_slower_network() {
    let ds = dataset(8);
    let mut cfg = quick(StrategyConfig::baseline_allreduce(1), 12);
    cfg.max_epochs = 4;
    cfg.plateau_tolerance = 10;
    let fast = train(&ds, &Cluster::new(4, ClusterSpec::cray_xc40()), &cfg);
    let slow = train(&ds, &Cluster::new(4, ClusterSpec::ethernet_10g()), &cfg);
    let ideal = train(&ds, &Cluster::new(4, ClusterSpec::ideal()), &cfg);
    // Numerics identical regardless of the network spec...
    assert_eq!(fast.entities.as_slice(), slow.entities.as_slice());
    assert_eq!(fast.entities.as_slice(), ideal.entities.as_slice());
    // ...but simulated comm time ranks ideal < cray (compute rates differ
    // between specs, so compare the comm component, which is spec-driven).
    assert!(ideal.report.breakdown.comm_s < 1e-12);
    assert!(fast.report.breakdown.comm_s > 0.0);
}

#[test]
fn sample_selection_improves_ranking_quality() {
    // 1-of-5 hardest-negative selection sharpens the ranking (Table 4's
    // MRR story). Hard negatives trade pairwise margin against random
    // corruptions for top-rank precision, so the right metric to compare
    // is MRR, and the dataset must be large enough that "hard" negatives
    // are not mostly unobserved-true pairs.
    let ds = kge::data::synth::generate(&SynthPreset::Fb15kLike.config(0.03, 12));
    let cluster = Cluster::new(2, ClusterSpec::cray_xc40());
    let mut uni = quick(StrategyConfig::baseline_allreduce(1), 12);
    uni.max_epochs = 30;
    uni.plateau_tolerance = 30;
    let mut sel = quick(StrategyConfig::baseline_allreduce(1), 12);
    sel.strategy.neg = NegSampling::select(1, 5);
    sel.max_epochs = 30;
    sel.plateau_tolerance = 30;
    let a = train(&ds, &cluster, &uni);
    let b = train(&ds, &cluster, &sel);
    let mrr_uni = mrr_of(&a, &ds, 8);
    let mrr_sel = mrr_of(&b, &ds, 8);
    assert!(
        mrr_sel >= mrr_uni * 0.9,
        "sample selection collapsed ranking quality: {mrr_sel} vs {mrr_uni}"
    );
}
