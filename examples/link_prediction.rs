//! Link prediction — the paper's motivating downstream task: train
//! embeddings, then answer "(head, relation, ?)" queries, reporting the
//! model's top candidates and the rank of the true answer.
//!
//! ```text
//! cargo run --release --example link_prediction
//! ```

use std::sync::Arc;

use kge::prelude::*;

fn main() {
    let dataset = kge::data::synth::generate(&SynthPreset::Fb15kLike.config(0.04, 11));
    let cluster = Cluster::new(2, ClusterSpec::cray_xc40());

    let mut config = TrainConfig::new(16, 512, StrategyConfig::combined(10));
    config.plateau_tolerance = 5;
    config.max_epochs = 60;
    config.seed = 11;
    // Publish an immutable serving snapshot at every epoch boundary; the
    // hub's latest generation is queried below without touching trainer
    // state.
    config.serve_snapshots = 1;
    let hub = SnapshotHub::new(Arc::from(config.model.build(config.rank)));
    println!("training ComplEx (rank 16) on {} ...", dataset.name);
    let outcome = train_with_snapshots(&dataset, &cluster, &config, Some(&hub));
    println!(
        "trained in {} epochs, simulated {:.2} h\n",
        outcome.report.epochs,
        outcome.report.total_hours()
    );

    let model = ComplEx::new(16);
    let filter = FilterIndex::build(&dataset);

    // Answer tail queries for a few test triples.
    for &t in dataset.test.iter().take(5) {
        let h = t.head as usize;
        let r = t.rel as usize;
        let mut scored: Vec<(f32, u32)> = (0..dataset.n_entities as u32)
            .filter(|&e| {
                // Filtered protocol: skip other known-true tails.
                e == t.tail || !filter.contains(t.with_tail(e))
            })
            .map(|e| {
                let s = model.score(
                    outcome.entities.row(h),
                    outcome.relations.row(r),
                    outcome.entities.row(e as usize),
                );
                (s, e)
            })
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let rank = scored.iter().position(|&(_, e)| e == t.tail).unwrap() + 1;
        let top: Vec<String> = scored
            .iter()
            .take(5)
            .map(|&(s, e)| {
                let marker = if e == t.tail { "*" } else { " " };
                format!("e{e}{marker}({s:.2})")
            })
            .collect();
        println!(
            "query (e{}, r{}, ?) → true tail e{} at rank {:>4}; top-5: {}",
            t.head,
            t.rel,
            t.tail,
            rank,
            top.join(" ")
        );
    }

    // The same queries through the serving layer: the hub's latest
    // published generation feeds a ServeEngine that batches queries and
    // answers top-k on the SIMD one-vs-all kernels. Filtered mode
    // excludes *all* known-true tails, so these are the model's best
    // previously-unseen link predictions.
    let grouped = Arc::new(GroupedFilter::from_index(&filter));
    let snap = hub.latest().expect("training published snapshots");
    println!(
        "\nserving from snapshot generation {} (published at epoch {}):",
        snap.generation(),
        snap.epochs_done()
    );
    let mut engine = ServeEngine::with_filter(snap, Some(Arc::clone(&grouped)));
    let queries: Vec<Query> = dataset
        .test
        .iter()
        .take(5)
        .map(|t| Query { head: t.head, rel: t.rel, k: 5, filtered: true })
        .collect();
    for &q in &queries {
        engine.submit(q);
    }
    engine.drain();
    for (i, q) in queries.iter().enumerate() {
        let hits: Vec<String> = engine
            .results()
            .get(i)
            .iter()
            .map(|h| format!("e{}({:.2})", h.entity, h.score))
            .collect();
        println!(
            "  (e{}, r{}, ?) top-{} new links: {}",
            q.head,
            q.rel,
            q.k,
            hits.join(" ")
        );
    }

    // Aggregate quality — the steady-state API: prebuilt GroupedFilter +
    // reusable workspace, so repeated evaluations (per-epoch use) run on
    // the blocked one-vs-all kernels without reallocating.
    let mut ws = RankingWorkspace::new();
    let ranking = evaluate_ranking_with(
        &mut ws,
        &model,
        &outcome.entities,
        &outcome.relations,
        &dataset.test,
        &grouped,
        &RankingOptions {
            max_queries: Some(300),
            ..Default::default()
        },
    );
    println!(
        "\nfiltered MRR {:.3} | Hits@1 {:.3} | Hits@3 {:.3} | Hits@10 {:.3} | mean rank {:.1}",
        ranking.mrr, ranking.hits1, ranking.hits3, ranking.hits10, ranking.mean_rank
    );

    // Where does the MRR come from? Bordes-style per-category breakdown.
    let categories = kge::data::classify_relations(&dataset);
    println!("\nper-relation-category breakdown (Bordes 1-1/1-N/N-1/N-N):");
    for (cat, m) in kge::eval::evaluate_ranking_by_category(
        &model,
        &outcome.entities,
        &outcome.relations,
        &dataset.test,
        &categories,
        &filter,
        &RankingOptions {
            max_queries: Some(150),
            ..Default::default()
        },
    ) {
        println!(
            "  {:<4} MRR {:.3}  Hits@10 {:.3}  ({} queries)",
            cat.label(),
            m.mrr,
            m.hits10,
            m.n_queries
        );
    }
}
