//! Quickstart: train ComplEx on a Freebase-shaped synthetic graph across
//! four simulated cluster nodes, with and without the paper's combined
//! strategy stack, and compare simulated training time and accuracy.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use kge::prelude::*;

fn main() {
    // 1. A small FB15K-shaped dataset (5% of the real size).
    let dataset = kge::data::synth::generate(&SynthPreset::Fb15kLike.config(0.05, 42));
    println!(
        "dataset: {} — {} entities, {} relations, {} train / {} valid / {} test triples",
        dataset.name,
        dataset.n_entities,
        dataset.n_relations,
        dataset.train.len(),
        dataset.valid.len(),
        dataset.test.len()
    );

    // 2. A simulated 4-node Cray-class cluster. Collectives move real
    //    bytes between the node threads; time is charged by an α-β model.
    let cluster = Cluster::new(4, ClusterSpec::cray_xc40());

    // 3. Train the paper's baseline and its full strategy combination.
    for (name, strategy) in [
        ("baseline (all-reduce)", StrategyConfig::baseline_allreduce(10)),
        ("combined (DRS+RS+1-bit+RP+SS)", StrategyConfig::combined(10)),
    ] {
        let mut config = TrainConfig::new(16, 512, strategy);
        config.plateau_tolerance = 5;
        config.max_epochs = 60;
        config.seed = 7;

        let outcome = train(&dataset, &cluster, &config);

        // 4. Evaluate filtered MRR and triple-classification accuracy.
        let model = ComplEx::new(16);
        let filter = FilterIndex::build(&dataset);
        let ranking = evaluate_ranking(
            &model,
            &outcome.entities,
            &outcome.relations,
            &dataset.test,
            &filter,
            &RankingOptions {
                max_queries: Some(300),
                ..Default::default()
            },
        );
        let tca = triple_classification(
            &model,
            &outcome.entities,
            &outcome.relations,
            &dataset.valid,
            &dataset.test,
            &filter,
            dataset.n_entities,
            dataset.n_relations,
            7,
        );

        println!(
            "\n{name}\n  simulated TT: {:.2} h over {} epochs ({:.1} s/epoch)\n  \
             filtered MRR: {:.3}   Hits@10: {:.3}   TCA: {:.1}%",
            outcome.report.total_hours(),
            outcome.report.epochs,
            outcome.report.mean_epoch_seconds(),
            ranking.mrr,
            ranking.hits10,
            tca.accuracy_pct,
        );
    }
}
