//! Scaling study: how simulated training time, epoch time and epochs-to-
//! convergence change with the node count — the paper's central trade-off
//! (epoch time shrinks with p, but effective batch size grows, so more
//! epochs are needed; Fig. 1).
//!
//! ```text
//! cargo run --release --example distributed_speedup
//! ```

use kge::prelude::*;

fn main() {
    let dataset = kge::data::synth::generate(&SynthPreset::Fb250kLike.config(0.01, 5));
    println!(
        "dataset: {} — {} entities, {} relations, {} train triples\n",
        dataset.name,
        dataset.n_entities,
        dataset.n_relations,
        dataset.train.len()
    );

    println!(
        "{:<28} {:>5} {:>9} {:>6} {:>12} {:>10}",
        "method", "nodes", "TT(h)", "N", "epoch(s)", "speedup"
    );
    for (name, strategy) in [
        ("baseline all-reduce", StrategyConfig::baseline_allreduce(1)),
        ("combined DRS+RS+1b+RP+SS", StrategyConfig::combined(5)),
    ] {
        let mut tt1 = None;
        for p in [1usize, 2, 4, 8, 16] {
            let mut config = TrainConfig::new(16, 256, strategy);
            config.plateau_tolerance = 4;
            config.max_epochs = 40;
            config.seed = 5;
            let cluster = Cluster::new(p, ClusterSpec::cray_xc40());
            let outcome = train(&dataset, &cluster, &config);
            let tt = outcome.report.total_hours();
            let base = *tt1.get_or_insert(tt);
            println!(
                "{:<28} {:>5} {:>9.3} {:>6} {:>12.2} {:>9.2}x",
                name,
                p,
                tt,
                outcome.report.epochs,
                outcome.report.mean_epoch_seconds(),
                base / tt
            );
        }
        println!();
    }
    println!(
        "note: times are simulated Cray-XC40 hours (α-β network model + \
         calibrated compute rate), not host wall time."
    );
}
