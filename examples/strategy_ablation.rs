//! Ablation: add the paper's five strategies one at a time on a fixed
//! cluster and watch simulated training time, epochs and MRR move —
//! the per-strategy story of §4.
//!
//! ```text
//! cargo run --release --example strategy_ablation
//! ```

use kge::compress::{QuantScheme, RowSelector};
use kge::prelude::*;

fn main() {
    let dataset = kge::data::synth::generate(&SynthPreset::Fb15kLike.config(0.05, 3));
    let cluster = Cluster::new(4, ClusterSpec::cray_xc40());
    let filter = FilterIndex::build(&dataset);
    let model = ComplEx::new(16);

    // Cumulative strategy ladder.
    let ag = StrategyConfig::baseline_allgather(10);
    let rs = StrategyConfig {
        row_select: RowSelector::paper_rs(),
        ..ag
    };
    let rs_1bit = StrategyConfig {
        quant: QuantScheme::paper_one_bit(),
        error_feedback: false,
        ..rs
    };
    let rs_1bit_rp = StrategyConfig {
        relation_partition: true,
        ..rs_1bit
    };
    let full = StrategyConfig {
        neg: NegSampling::select(1, 10),
        ..rs_1bit_rp
    };
    let ladder: Vec<(&str, StrategyConfig)> = vec![
        ("allreduce baseline", StrategyConfig::baseline_allreduce(10)),
        ("allgather baseline", ag),
        ("+ RS", rs),
        ("+ 1-bit quant", rs_1bit),
        ("+ relation partition", rs_1bit_rp),
        ("+ sample selection", full),
    ];

    println!(
        "{:<22} {:>9} {:>6} {:>8} {:>8} {:>10}",
        "configuration", "TT(h)", "N", "MRR", "TCA(%)", "MB sent"
    );
    for (name, strategy) in ladder {
        let mut config = TrainConfig::new(16, 512, strategy);
        config.plateau_tolerance = 5;
        config.max_epochs = 60;
        config.seed = 3;
        let outcome = train(&dataset, &cluster, &config);
        let ranking = evaluate_ranking(
            &model,
            &outcome.entities,
            &outcome.relations,
            &dataset.test,
            &filter,
            &RankingOptions {
                max_queries: Some(300),
                ..Default::default()
            },
        );
        let tca = triple_classification(
            &model,
            &outcome.entities,
            &outcome.relations,
            &dataset.valid,
            &dataset.test,
            &filter,
            dataset.n_entities,
            dataset.n_relations,
            3,
        );
        let mb_sent: f64 = outcome
            .report
            .trace
            .iter()
            .map(|t| t.bytes_sent as f64)
            .sum::<f64>()
            / 1e6;
        println!(
            "{:<22} {:>9.3} {:>6} {:>8.3} {:>8.1} {:>10.1}",
            name,
            outcome.report.total_hours(),
            outcome.report.epochs,
            ranking.mrr,
            tca.accuracy_pct,
            mb_sent
        );
    }
}
