//! Parameter server vs. all-reduce — the architectural choice the paper's
//! introduction motivates: the PS funnels every worker's pulls and pushes
//! through the server's link (a many-to-one ingress bottleneck), while
//! synchronous all-reduce spreads the same aggregation over a ring.
//!
//! ```text
//! cargo run --release --example ps_vs_allreduce
//! ```

use kge::prelude::*;

fn main() {
    let dataset = kge::data::synth::generate(&SynthPreset::Fb15kLike.config(0.04, 21));
    println!(
        "dataset: {} — {} entities, {} relations, {} train triples\n",
        dataset.name,
        dataset.n_entities,
        dataset.n_relations,
        dataset.train.len()
    );

    let mut config = TrainConfig::new(16, 256, StrategyConfig::baseline_allreduce(1));
    config.max_epochs = 10;
    config.plateau_tolerance = 10; // fixed epoch budget: compare time/epoch
    config.base_lr = 5e-3;
    config.seed = 21;

    println!(
        "{:<34} {:>8} {:>12} {:>10}",
        "architecture", "workers", "epoch(s)", "v-acc"
    );
    for workers in [2usize, 4, 8] {
        // All-reduce: `workers` peer nodes, no extra machines.
        let ar = train(
            &dataset,
            &Cluster::new(workers, ClusterSpec::cray_xc40()),
            &config,
        );
        // Parameter server: one server + the same number of workers.
        let ps = train_ps(
            &dataset,
            &Cluster::new(workers + 1, ClusterSpec::cray_xc40()),
            &config,
            1,
        );
        println!(
            "{:<34} {:>8} {:>12.3} {:>10.3}",
            "all-reduce (peers)",
            workers,
            ar.report.mean_epoch_seconds(),
            ar.report.trace.last().unwrap().valid_acc
        );
        println!(
            "{:<34} {:>8} {:>12.3} {:>10.3}",
            "parameter server (1 server)",
            workers,
            ps.report.mean_epoch_seconds(),
            ps.report.trace.last().unwrap().valid_acc
        );
    }
    println!(
        "\nThe PS epoch time grows with worker count (server ingress \
         serializes every worker's traffic); all-reduce stays flat-to-\
         falling — the reason the paper builds on collectives."
    );
}
