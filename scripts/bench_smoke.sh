#!/usr/bin/env bash
# Smoke benchmark for the chunked-parallel batch gradient hot path.
#
# Builds and runs the `bench_batch` binary, which times one-batch gradient
# computation (10 000 positives, dim 64, FB15K-like) under worker pools of
# 1 and 4 threads, checks the gradients are bit-identical across pool
# sizes, and writes triples/sec per pool to BENCH_batch.json. The JSON
# records `host_cores`; on a single-core host the 4-thread figure measures
# scheduling overhead, not parallel speedup.
#
# The binary also trains a quick-scale faulted vs fault-free pair on a
# 4-node simulated cluster (seeded straggler + mid-run rank crash) and
# records both simulated-time profiles, the recovery overhead, and a
# bit-reproducibility check under `fault_injection` in the same JSON.
#
# It then runs `bench_serve`, which A/Bs batched vs single-query top-k
# admission at dim 128 over a DRAM-resident entity table (asserting
# batched >= 3x and bit-identity to the scalar oracle), measures open-loop
# p50/p99 latency under power-law skew, and asserts cadence-1 snapshot
# publishing costs <= 5% simulated time — written to BENCH_serve.json.
#
# It also runs `bench_eval`, which times blocked vs scalar filtered
# ranking and writes BENCH_eval.json.
#
# After the three binaries finish, the script asserts every BENCH_*.json
# records `host_cores` and every field the in-run assert tier gates on —
# a regression guard against a bench silently dropping the evidence its
# acceptance criteria are judged by.
#
# Usage: scripts/bench_smoke.sh [output.json] [serve_output.json] [eval_output.json]
#        (defaults: BENCH_batch.json BENCH_serve.json BENCH_eval.json)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_batch.json}"
SERVE_OUT="${2:-BENCH_serve.json}"
EVAL_OUT="${3:-BENCH_eval.json}"
cargo build --release -p bench --bin bench_batch --bin bench_serve --bin bench_eval
./target/release/bench_batch "$OUT"
echo "bench_smoke: wrote $OUT"
./target/release/bench_serve "$SERVE_OUT"
echo "bench_smoke: wrote $SERVE_OUT"
./target/release/bench_eval "$EVAL_OUT"
echo "bench_smoke: wrote $EVAL_OUT"

python3 - "$OUT" "$SERVE_OUT" "$EVAL_OUT" <<'PY'
import json, sys

batch, serve, eval_ = sys.argv[1:4]

# Dotted paths the in-run assert tier gates on, per report. A missing
# path means a bench stopped recording evidence for a claim it asserts.
REQUIRED = {
    batch: [
        "host_cores",
        "gradients_bit_identical_across_pools",
        "kernel_simd.avx_vs_scalar_bit_identical",
        "fault_injection.faulted_run_bit_reproducible",
        "fault_injection.faulted.recoveries",
        "checkpointing.checkpoint_s_fraction",
        "pipelined_exchange.comm_bound.speedup_pipelined_over_sync",
        "pipelined_exchange.comm_bound.lower_bound_s",
        "pipelined_exchange.compute_bound.speedup_pipelined_over_sync",
        "sharded_memory.f32_cold.resident_fraction",
        "sharded_memory.f32_cold.hot_tier_hit_rate",
        "sharded_memory.int8_cold.resident_fraction",
        "sharded_prefetch.speedup_prefetch_over_sync",
        "sharded_prefetch.lower_bound_s",
        "sharded_prefetch.sync.pull_wire_bytes",
        "sharded_prefetch.sync.pull_lane_s",
        "sharded_prefetch.prefetch.hidden_pull_s",
        "sharded_prefetch.prefetch.hidden_push_s",
        "sharded_prefetch.prefetch.prefetch_epochs",
    ],
    serve: [
        "host_cores",
        "admission.batch_speedup",
        "admission.oracle_bit_identical",
        "publish.overhead_pct",
        "publish.model_unperturbed",
        "publish.snapshot_matches_checkpoint",
        "open_loop.p99_latency_ms",
    ],
    eval_: [
        "host_cores",
        "metrics_bit_identical",
        "speedup_dim128_single_thread",
    ],
}

failed = False
for path, fields in REQUIRED.items():
    with open(path) as f:
        doc = json.load(f)
    for dotted in fields:
        node = doc
        missing = False
        for part in dotted.split("."):
            if not isinstance(node, dict) or part not in node:
                missing = True
                break
            node = node[part]
        if missing:
            print(f"bench_smoke: {path} missing assert-tier field {dotted}", file=sys.stderr)
            failed = True
        elif node is None:
            print(f"bench_smoke: {path} assert-tier field {dotted} is null", file=sys.stderr)
            failed = True
if failed:
    sys.exit(1)
print("bench_smoke: host_cores + assert-tier fields present in all three reports")
PY
