#!/usr/bin/env bash
# Smoke benchmark for the chunked-parallel batch gradient hot path.
#
# Builds and runs the `bench_batch` binary, which times one-batch gradient
# computation (10 000 positives, dim 64, FB15K-like) under worker pools of
# 1 and 4 threads, checks the gradients are bit-identical across pool
# sizes, and writes triples/sec per pool to BENCH_batch.json. The JSON
# records `host_cores`; on a single-core host the 4-thread figure measures
# scheduling overhead, not parallel speedup.
#
# The binary also trains a quick-scale faulted vs fault-free pair on a
# 4-node simulated cluster (seeded straggler + mid-run rank crash) and
# records both simulated-time profiles, the recovery overhead, and a
# bit-reproducibility check under `fault_injection` in the same JSON.
#
# Usage: scripts/bench_smoke.sh [output.json]   (default: BENCH_batch.json)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_batch.json}"
cargo build --release -p bench --bin bench_batch
./target/release/bench_batch "$OUT"
echo "bench_smoke: wrote $OUT"
