#!/usr/bin/env bash
# Smoke benchmark for the chunked-parallel batch gradient hot path.
#
# Builds and runs the `bench_batch` binary, which times one-batch gradient
# computation (10 000 positives, dim 64, FB15K-like) under worker pools of
# 1 and 4 threads, checks the gradients are bit-identical across pool
# sizes, and writes triples/sec per pool to BENCH_batch.json. The JSON
# records `host_cores`; on a single-core host the 4-thread figure measures
# scheduling overhead, not parallel speedup.
#
# The binary also trains a quick-scale faulted vs fault-free pair on a
# 4-node simulated cluster (seeded straggler + mid-run rank crash) and
# records both simulated-time profiles, the recovery overhead, and a
# bit-reproducibility check under `fault_injection` in the same JSON.
#
# It then runs `bench_serve`, which A/Bs batched vs single-query top-k
# admission at dim 128 over a DRAM-resident entity table (asserting
# batched >= 3x and bit-identity to the scalar oracle), measures open-loop
# p50/p99 latency under power-law skew, and asserts cadence-1 snapshot
# publishing costs <= 5% simulated time — written to BENCH_serve.json.
#
# Usage: scripts/bench_smoke.sh [output.json] [serve_output.json]
#        (defaults: BENCH_batch.json BENCH_serve.json)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_batch.json}"
SERVE_OUT="${2:-BENCH_serve.json}"
cargo build --release -p bench --bin bench_batch --bin bench_serve
./target/release/bench_batch "$OUT"
echo "bench_smoke: wrote $OUT"
./target/release/bench_serve "$SERVE_OUT"
echo "bench_smoke: wrote $SERVE_OUT"
