#!/usr/bin/env python3
"""Render measured experiment tables into EXPERIMENTS.md.

Reads results/results.jsonl (written by `repro`) and replaces each
`<!-- ID -->` placeholder in EXPERIMENTS.md with a markdown table of the
latest rows recorded for that experiment id.
"""
import json
import re
import sys
from collections import OrderedDict
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results" / "results.jsonl"
DOC = ROOT / "EXPERIMENTS.md"

PLACEHOLDERS = {
    "TABLE1": ["table1"],
    "TABLE2": ["table2"],
    "TABLE4": ["table4"],
    "FIG2": ["fig2"],
    "FIG3": ["fig3"],
    "FIG4": ["fig4"],
    "FIG5": ["fig5"],
    "FIG6": ["fig6a", "fig6b"],
    "FIG8": ["fig8"],
    "FIG9": ["fig9"],
    "ABLATION": ["ablation"],
    "PS": ["ps"],
}


def load_rows():
    rows = OrderedDict()  # (exp, method, nodes) -> record, last wins
    if not RESULTS.exists():
        sys.exit(f"no results at {RESULTS}; run the repro binary first")
    with RESULTS.open() as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            r = json.loads(line)
            rows[(r["experiment"], r["method"], r["nodes"])] = r
    return rows


def table_for(rows, experiments):
    recs = [r for (exp, _, _), r in rows.items() if exp in experiments]
    if not recs:
        return "*(not yet measured — run `repro " + " ".join(experiments) + "`)*"
    out = [
        "| experiment | method | nodes | TT(sim s) | N | TCA(%) | MRR | epoch(sim s) | AR-frac |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for r in recs:
        out.append(
            "| {exp} | {m} | {p} | {tt:.2f} | {n} | {tca:.1f} | {mrr:.4f} | {es:.3f} | {arf:.2f} |".format(
                exp=r["experiment"],
                m=r["method"],
                p=r["nodes"],
                tt=r["tt_hours"] * 3600.0,
                n=r["epochs"],
                tca=r["tca"],
                mrr=r["mrr"],
                es=r["epoch_seconds"],
                arf=r["allreduce_fraction"],
            )
        )
    return "\n".join(out)


def main():
    rows = load_rows()
    doc = DOC.read_text()
    for tag, exps in PLACEHOLDERS.items():
        pattern = re.compile(
            r"<!-- " + tag + r" -->.*?(?=\n## |\Z)", re.S
        )
        replacement = "<!-- " + tag + " -->\n" + table_for(rows, exps) + "\n\n"
        if f"<!-- {tag} -->" in doc:
            doc = pattern.sub(lambda _: replacement, doc, count=1)
    DOC.write_text(doc)
    print("EXPERIMENTS.md updated from", RESULTS)


if __name__ == "__main__":
    main()
