#!/usr/bin/env bash
# Lint gate: clippy with warnings denied over every first-party crate.
#
# The shim-* crates are offline stand-ins for external dependencies
# (rand, rayon, serde, ...) and intentionally mirror foreign APIs —
# idiom lints there are noise, so they are excluded. Everything else
# (library code, tests, benches, binaries) must be clippy-clean.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

CRATES=(
  simgrid
  kge-core
  kge-data
  kge-compress
  kge-partition
  kge-eval
  kge-train
  kge-serve
  bench
)

ARGS=()
for c in "${CRATES[@]}"; do
  ARGS+=(-p "$c")
done

cargo clippy "${ARGS[@]}" --all-targets -- -D warnings
cargo clippy "${ARGS[@]}" --all-targets --features bench/count-allocs -- -D warnings
echo "check: clippy clean (warnings denied) for: ${CRATES[*]}"

# Criterion benches must at least compile (they are not run in CI).
cargo bench -p bench --no-run
echo "check: benches compile"

# The evaluation bit-identity property tests: blocked one-vs-all ranking
# must reproduce the scalar oracle's ranks exactly, and steady-state
# evaluation must not allocate.
cargo test -p kge-eval --release --test prop_eval --test zero_alloc_eval
echo "check: eval property + zero-alloc tests pass"

# Training-kernel and codec bit-identity property tests, run under both
# dispatch arms: the default (AVX where the host supports it) and with
# KGE_FORCE_SCALAR=1 pinning every kernel to the scalar fallback. Both
# arms must produce identical bits, so both must pass identically.
cargo test -p kge-core --release --test prop_train_kernels
cargo test -p kge-compress --release --test prop_roundtrip
KGE_FORCE_SCALAR=1 cargo test -p kge-core --release --test prop_train_kernels
KGE_FORCE_SCALAR=1 cargo test -p kge-compress --release --test prop_roundtrip
echo "check: kernel + codec bit-identity property tests pass (both dispatch arms)"

# Pipelined-exchange determinism: staleness 0 must reproduce the
# synchronous collectives bit-exactly and staleness >= 1 must be
# thread-count independent — under both dispatch arms — and the
# pipelined steady state must stay allocation-free.
cargo test -p kge-train --release --test pipeline_determinism --test zero_alloc_pipeline
KGE_FORCE_SCALAR=1 cargo test -p kge-train --release --test pipeline_determinism
echo "check: pipelined exchange determinism + zero-alloc tests pass (both dispatch arms)"

# Checkpoint/restore: the codec roundtrip + corruption property tests,
# the committed golden fixture, the pooled-buffer zero-alloc guard, and
# the resume-equivalence matrix (checkpoint-at-k + resume must be
# bit-identical to the uninterrupted run) — the matrix under both
# dispatch arms, since a resumed run must replay the *same* arm's bits.
cargo test -p kge-train --release \
  --test prop_checkpoint_roundtrip \
  --test golden_checkpoint \
  --test zero_alloc_checkpoint \
  --test resume_determinism
KGE_FORCE_SCALAR=1 cargo test -p kge-train --release --test resume_determinism
echo "check: checkpoint codec + resume equivalence pass (both dispatch arms)"

# Sharded storage: f32 sharded runs (with and without the hot cache,
# synchronous and prefetch-pipelined, fixed and DRS-selected arm) must be
# bit-identical to the full-replica trainer across world sizes and thread
# counts, int8-at-rest must be deterministic (prefetch on or off), crash
# recovery — including a crash mid-prefetch-ring — must shrink and stay
# reproducible — under both dispatch arms — and the sharded pull/push
# steady state (both lanes, ring included) must stay allocation-free.
cargo test -p kge-train --release --test sharded_determinism --test zero_alloc_sharded
KGE_FORCE_SCALAR=1 cargo test -p kge-train --release --test sharded_determinism
echo "check: sharded storage determinism + zero-alloc tests pass (both dispatch arms)"

# Serving: top-k must be bit-identical to the scalar full-sort oracle
# (across models, dims, k, filtered/unfiltered — both dispatch arms),
# steady-state batch admission must not allocate, and snapshots published
# mid-training must equal the checkpoint model bytes. The latency
# benchmark must at least build (scripts/bench_smoke.sh runs it).
cargo test -p kge-serve --release --test prop_topk --test zero_alloc_serve --test serve_train
KGE_FORCE_SCALAR=1 cargo test -p kge-serve --release --test prop_topk
cargo build --release -p bench --bin bench_serve
echo "check: serve top-k bit-identity + zero-alloc + snapshot tests pass (both dispatch arms)"
