//! Property tests for evaluation: metric bounds, filtering monotonicity,
//! and threshold-fit optimality.

use kge_core::{ComplEx, DistMult, EmbeddingTable, KgeModel, TransE};
use kge_data::{FilterIndex, GroupedFilter, Triple};
use kge_eval::{
    evaluate_ranking, evaluate_ranking_with, rank_of_scalar, triple_classification,
    RankingMetrics, RankingOptions, RankingWorkspace,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn world(seed: u64, n_ent: usize, n_rel: usize) -> (DistMult, EmbeddingTable, EmbeddingTable) {
    let mut rng = StdRng::seed_from_u64(seed);
    (
        DistMult::new(4),
        EmbeddingTable::xavier(n_ent, 4, &mut rng),
        EmbeddingTable::xavier(n_rel, 4, &mut rng),
    )
}

fn triples_strategy(n_ent: u32, n_rel: u32) -> impl Strategy<Value = Vec<Triple>> {
    proptest::collection::vec(
        (0..n_ent, 0..n_rel, 0..n_ent).prop_map(Triple::from),
        1..30,
    )
}

/// Embeddings drawn from a coarse lattice ({-1, -0.5, 0, 0.5, 1}) so score
/// ties are common and the `ties/2` midpoint correction gets exercised.
fn quantized_table(rows: usize, dim: usize, seed: u64) -> EmbeddingTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = EmbeddingTable::zeros(rows, dim);
    for i in 0..rows {
        for v in t.row_mut(i) {
            *v = rng.gen_range(-2i32..=2) as f32 * 0.5;
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ranking_metrics_are_bounded_and_ordered(
        triples in triples_strategy(40, 3),
        seed in any::<u64>(),
    ) {
        let (model, ent, rel) = world(seed, 40, 3);
        let filter = FilterIndex::from_triples(triples.iter().copied());
        let m = evaluate_ranking(&model, &ent, &rel, &triples, &filter, &RankingOptions::default());
        prop_assert!(m.mrr > 0.0 && m.mrr <= 1.0);
        prop_assert!(m.mean_rank >= 1.0 && m.mean_rank <= 40.0);
        prop_assert!(m.hits1 <= m.hits3 + 1e-12);
        prop_assert!(m.hits3 <= m.hits10 + 1e-12);
        prop_assert!(m.hits10 <= 1.0);
        prop_assert_eq!(m.n_queries, triples.len() * 2);
        // MRR is at least 1/mean_rank-ish lower bound sanity: reciprocal
        // mean ≥ 1/max rank.
        prop_assert!(m.mrr >= 1.0 / 40.0 - 1e-12);
    }

    #[test]
    fn filtered_mrr_never_below_raw(
        triples in triples_strategy(30, 2),
        seed in any::<u64>(),
    ) {
        let (model, ent, rel) = world(seed, 30, 2);
        let filter = FilterIndex::from_triples(triples.iter().copied());
        let raw = evaluate_ranking(
            &model, &ent, &rel, &triples, &filter,
            &RankingOptions { filtered: false, ..Default::default() },
        );
        let filt = evaluate_ranking(
            &model, &ent, &rel, &triples, &filter,
            &RankingOptions::default(),
        );
        // Filtering only removes competitors, so ranks can only improve.
        prop_assert!(filt.mrr >= raw.mrr - 1e-9, "filt {} < raw {}", filt.mrr, raw.mrr);
        prop_assert!(filt.mean_rank <= raw.mean_rank + 1e-9);
    }

    #[test]
    fn tca_bounded_and_deterministic(
        triples in triples_strategy(30, 2),
        seed in any::<u64>(),
    ) {
        prop_assume!(triples.len() >= 4);
        let (model, ent, rel) = world(seed, 30, 2);
        let filter = FilterIndex::from_triples(triples.iter().copied());
        let half = triples.len() / 2;
        let a = triple_classification(
            &model, &ent, &rel, &triples[..half], &triples[half..], &filter, 30, 2, seed,
        );
        let b = triple_classification(
            &model, &ent, &rel, &triples[..half], &triples[half..], &filter, 30, 2, seed,
        );
        prop_assert!((0.0..=100.0).contains(&a.accuracy_pct));
        prop_assert_eq!(a.accuracy_pct, b.accuracy_pct);
        prop_assert_eq!(a.n_test, (triples.len() - half) * 2);
    }

    /// The blocked one-vs-all pipeline (fused kernels, tiling, grouped
    /// filter inversion, unit scheduling) must reproduce the scalar
    /// oracle's ranks *bit-identically* — per query and direction, under
    /// both raw and filtered protocols, through subsampling, and on
    /// tie-heavy quantized tables where midpoint tie handling matters.
    #[test]
    fn blocked_ranks_match_scalar_oracle(
        model_id in 0usize..3,
        rank in 2usize..5,
        triples in triples_strategy(25, 3),
        seed in any::<u64>(),
        filtered in any::<bool>(),
        subsample in any::<bool>(),
    ) {
        let model: Box<dyn KgeModel> = match model_id {
            0 => Box::new(ComplEx::new(rank)),
            1 => Box::new(DistMult::new(rank)),
            _ => Box::new(TransE::new(rank)),
        };
        let dim = model.storage_dim();
        let ent = quantized_table(25, dim, seed);
        let rel = quantized_table(3, dim, seed ^ 0x9E37_79B9);
        let filter = FilterIndex::from_triples(triples.iter().copied());
        let grouped = GroupedFilter::from_triples(triples.iter().copied());
        let opts = RankingOptions {
            filtered,
            max_queries: subsample.then(|| triples.len().div_ceil(2)),
            seed,
        };

        let mut ws = RankingWorkspace::new();
        let blocked =
            evaluate_ranking_with(&mut ws, model.as_ref(), &ent, &rel, &triples, &grouped, &opts);

        let f = filtered.then_some(&filter);
        let mut scalar_ranks = Vec::with_capacity(ws.queries().len() * 2);
        for (i, t) in ws.queries().iter().enumerate() {
            let head = rank_of_scalar(model.as_ref(), &ent, &rel, *t, true, f);
            let tail = rank_of_scalar(model.as_ref(), &ent, &rel, *t, false, f);
            prop_assert_eq!(ws.head_ranks()[i], head, "head rank diverges at query {}", i);
            prop_assert_eq!(ws.tail_ranks()[i], tail, "tail rank diverges at query {}", i);
            scalar_ranks.push(head);
            scalar_ranks.push(tail);
        }
        // Same ranks in the same interleaved order ⇒ the f64 metric sums
        // must match bit-for-bit too.
        prop_assert_eq!(blocked, RankingMetrics::from_ranks(&scalar_ranks));
    }

    #[test]
    fn perfectly_separable_scores_classify_perfectly(
        margin in 0.5f32..5.0,
        n in 2usize..10,
    ) {
        // Positives score +margin; every *legal* corruption must involve
        // one of the two all-zero spare entities (all other combinations
        // are registered as known-true), so corruptions score 0.
        let model = DistMult::new(4);
        let mut ent = EmbeddingTable::zeros(2 * n + 2, 4);
        for i in 0..n {
            ent.row_mut(i)[0] = margin; // heads
            ent.row_mut(n + i)[0] = 1.0; // tails
        }
        let mut rel = EmbeddingTable::zeros(1, 4);
        rel.row_mut(0)[0] = 1.0;
        let triples: Vec<Triple> = (0..n as u32)
            .map(|i| Triple::new(i, 0, n as u32 + i))
            .collect();
        let mut known = Vec::new();
        for a in 0..(2 * n) as u32 {
            for b in 0..(2 * n) as u32 {
                known.push(Triple::new(a, 0, b));
            }
        }
        let filter = FilterIndex::from_triples(known.iter().copied());
        let res = triple_classification(
            &model, &ent, &rel, &triples, &triples, &filter, 2 * n + 2, 1, 5,
        );
        prop_assert!(
            res.accuracy_pct >= 95.0,
            "separable world must classify near-perfectly: {}",
            res.accuracy_pct
        );
    }
}
