//! Zero-allocation regression test for the steady-state evaluation path
//! (ISSUE: one-vs-all blocked evaluation kernels).
//!
//! Installs the counting global allocator from `kge-core` and drives
//! [`evaluate_ranking_with`] against a reused [`RankingWorkspace`] on a
//! single-thread worker pool. After one warm-up evaluation per protocol
//! variant (raw, filtered, and filtered-with-subsampling), repeating the
//! same evaluations must perform **zero** heap allocations: the tile
//! score buffers, counter arrays, subsample index buffers, and pooled
//! per-unit scratch are all checked out of the workspace and reused.
//!
//! Scope: the guarantee is single-thread, matching the trainer's
//! zero-alloc test — multi-thread pools spawn scoped workers and collect
//! per-unit scratch boxes, which allocate by construction (see DESIGN.md).

#[global_allocator]
static ALLOC: kge_core::alloc_count::CountingAlloc = kge_core::alloc_count::CountingAlloc;

use kge_core::{alloc_count, ComplEx, EmbeddingTable};
use kge_data::{GroupedFilter, Triple};
use kge_eval::{evaluate_ranking_with, RankingOptions, RankingWorkspace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn steady_state_ranking_eval_allocates_nothing() {
    let n_entities = 200usize;
    let n_relations = 8usize;
    let model = ComplEx::new(16);
    let dim = kge_core::KgeModel::storage_dim(&model);

    let mut rng = StdRng::seed_from_u64(41);
    let ent = EmbeddingTable::xavier(n_entities, dim, &mut rng);
    let rel = EmbeddingTable::xavier(n_relations, dim, &mut rng);
    let queries: Vec<Triple> = (0..150)
        .map(|_| {
            Triple::new(
                rng.gen_range(0..n_entities as u32),
                rng.gen_range(0..n_relations as u32),
                rng.gen_range(0..n_entities as u32),
            )
        })
        .collect();
    let grouped = GroupedFilter::from_triples(queries.iter().copied());

    let variants = [
        RankingOptions { filtered: false, max_queries: None, seed: 7 },
        RankingOptions { filtered: true, max_queries: None, seed: 7 },
        RankingOptions { filtered: true, max_queries: Some(60), seed: 7 },
    ];

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("single-thread pool");
    let delta = pool.install(|| {
        let mut ws = RankingWorkspace::new();
        // Warm-up: sizes every buffer for the largest shapes each variant
        // touches; allowed (and expected) to allocate.
        let warm: Vec<_> = variants
            .iter()
            .map(|o| evaluate_ranking_with(&mut ws, &model, &ent, &rel, &queries, &grouped, o))
            .collect();

        // Steady state: no collects, no Vec growth — metrics are Copy.
        let start = alloc_count::snapshot();
        let a = evaluate_ranking_with(&mut ws, &model, &ent, &rel, &queries, &grouped, &variants[0]);
        let b = evaluate_ranking_with(&mut ws, &model, &ent, &rel, &queries, &grouped, &variants[1]);
        let c = evaluate_ranking_with(&mut ws, &model, &ent, &rel, &queries, &grouped, &variants[2]);
        let delta = alloc_count::since(start);

        // The reused workspace must not perturb results either.
        assert_eq!(warm, [a, b, c], "workspace reuse changed the metrics");
        delta
    });

    assert_eq!(
        delta.allocs, 0,
        "steady-state ranking eval allocated {} times ({} bytes)",
        delta.allocs, delta.bytes
    );
}
