//! Triple classification accuracy (TCA) with per-relation thresholds.
//!
//! OpenKE protocol: for every positive validation/test triple, sample one
//! corrupted negative that is not a known true triple. Fit, per relation,
//! the score threshold that best separates validation positives from
//! negatives (falling back to a global threshold for relations without
//! validation data), then report accuracy on the test positives+negatives.

use kge_core::{EmbeddingTable, KgeModel};
use kge_data::{FilterIndex, Triple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Outcome of a triple-classification evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TcaResult {
    /// Test accuracy in percent (the paper reports e.g. 90.7).
    pub accuracy_pct: f64,
    /// Fitted per-relation thresholds (`None` → global threshold used).
    pub thresholds: Vec<Option<f32>>,
    /// Fallback threshold fitted on all validation scores.
    pub global_threshold: f32,
    pub n_test: usize,
}

/// Corrupt `t` into a negative not present in `filter`. Alternates between
/// head and tail corruption; gives up after a bounded number of rejection
/// draws (returning the last candidate) so adversarial inputs can't loop
/// forever.
pub fn corrupt(t: Triple, n_entities: usize, filter: &FilterIndex, rng: &mut StdRng) -> Triple {
    debug_assert!(n_entities >= 2);
    let mut cand = t;
    for attempt in 0..64 {
        let e = rng.gen_range(0..n_entities) as u32;
        cand = if (attempt + rng.gen_range(0..2)) % 2 == 0 {
            t.with_tail(e)
        } else {
            t.with_head(e)
        };
        if cand != t && !filter.contains(cand) {
            return cand;
        }
    }
    cand
}

fn score_of(model: &dyn KgeModel, ent: &EmbeddingTable, rel: &EmbeddingTable, t: Triple) -> f32 {
    model.score(
        ent.row(t.head as usize),
        rel.row(t.rel as usize),
        ent.row(t.tail as usize),
    )
}

/// Best-accuracy threshold for `(score, is_positive)` pairs: classify
/// `score >= threshold` as positive. Returns `(threshold, accuracy)`.
fn fit_threshold(mut pairs: Vec<(f32, bool)>) -> (f32, f64) {
    if pairs.is_empty() {
        return (0.0, 0.0);
    }
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite scores"));
    let n = pairs.len();
    let total_pos = pairs.iter().filter(|&&(_, p)| p).count();
    // Sweep candidate thresholds between consecutive scores. Threshold
    // below everything classifies all as positive.
    let mut best_correct = total_pos;
    let mut best_thr = pairs[0].0 - 1.0;
    let mut negatives_below = 0usize;
    let mut positives_below = 0usize;
    for i in 0..n {
        if pairs[i].1 {
            positives_below += 1;
        } else {
            negatives_below += 1;
        }
        // Threshold just above pairs[i].0.
        let correct = negatives_below + (total_pos - positives_below);
        if correct > best_correct {
            best_correct = correct;
            best_thr = if i + 1 < n {
                (pairs[i].0 + pairs[i + 1].0) / 2.0
            } else {
                pairs[i].0 + 1.0
            };
        }
    }
    (best_thr, best_correct as f64 / n as f64)
}

/// Run the full TCA protocol.
#[allow(clippy::too_many_arguments)]
pub fn triple_classification(
    model: &dyn KgeModel,
    ent: &EmbeddingTable,
    rel: &EmbeddingTable,
    valid: &[Triple],
    test: &[Triple],
    filter: &FilterIndex,
    n_entities: usize,
    n_relations: usize,
    seed: u64,
) -> TcaResult {
    let mut rng = StdRng::seed_from_u64(seed);

    // Labeled validation scores grouped per relation.
    let mut per_rel: Vec<Vec<(f32, bool)>> = vec![Vec::new(); n_relations];
    let mut all: Vec<(f32, bool)> = Vec::with_capacity(valid.len() * 2);
    for &t in valid {
        let neg = corrupt(t, n_entities, filter, &mut rng);
        let sp = score_of(model, ent, rel, t);
        let sn = score_of(model, ent, rel, neg);
        per_rel[t.rel as usize].push((sp, true));
        per_rel[t.rel as usize].push((sn, false));
        all.push((sp, true));
        all.push((sn, false));
    }
    let (global_threshold, _) = fit_threshold(all);
    let thresholds: Vec<Option<f32>> = per_rel
        .into_iter()
        .map(|pairs| {
            if pairs.len() >= 4 {
                Some(fit_threshold(pairs).0)
            } else {
                None
            }
        })
        .collect();

    // Classify test positives + sampled negatives.
    let mut correct = 0usize;
    let mut n_test = 0usize;
    for &t in test {
        let neg = corrupt(t, n_entities, filter, &mut rng);
        let thr = thresholds[t.rel as usize].unwrap_or(global_threshold);
        if score_of(model, ent, rel, t) >= thr {
            correct += 1;
        }
        if score_of(model, ent, rel, neg) < thr {
            correct += 1;
        }
        n_test += 2;
    }
    TcaResult {
        accuracy_pct: if n_test == 0 {
            0.0
        } else {
            100.0 * correct as f64 / n_test as f64
        },
        thresholds,
        global_threshold,
        n_test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kge_core::DistMult;

    #[test]
    fn fit_threshold_separable() {
        let pairs = vec![(0.1f32, false), (0.2, false), (0.8, true), (0.9, true)];
        let (thr, acc) = fit_threshold(pairs);
        assert!(thr > 0.2 && thr < 0.8);
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn fit_threshold_all_positive() {
        let (thr, acc) = fit_threshold(vec![(0.5, true), (0.7, true)]);
        assert!(thr < 0.5);
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn fit_threshold_empty() {
        assert_eq!(fit_threshold(vec![]), (0.0, 0.0));
    }

    #[test]
    fn fit_threshold_overlapping_distributions() {
        // pos: 0.4, 0.6; neg: 0.5 → best accuracy 2/3 achievable several
        // ways; must be ≥ majority-class rate.
        let (_, acc) = fit_threshold(vec![(0.4, true), (0.6, true), (0.5, false)]);
        assert!(acc >= 2.0 / 3.0 - 1e-9);
    }

    #[test]
    fn corrupt_avoids_known_triples_and_self() {
        let known: Vec<Triple> = (0..10).map(|i| Triple::new(i, 0, (i + 1) % 10)).collect();
        let filter = FilterIndex::from_triples(known.iter().copied());
        let mut rng = StdRng::seed_from_u64(1);
        for &t in &known {
            for _ in 0..20 {
                let neg = corrupt(t, 10, &filter, &mut rng);
                assert_ne!(neg, t);
                assert!(!filter.contains(neg));
            }
        }
    }

    /// A model that separates well should get high TCA; a zeroed model
    /// should hover near chance.
    #[test]
    fn tca_tracks_model_quality() {
        let model = DistMult::new(4);
        // Structured embeddings: positives = (i, 0, i) diagonal pattern.
        let mut ent = EmbeddingTable::zeros(20, 4);
        for i in 0..20 {
            ent.row_mut(i)[i % 4] = 1.0;
        }
        let mut rel = EmbeddingTable::zeros(1, 4);
        rel.row_mut(0).copy_from_slice(&[1.0; 4]);
        // Positives pair entities with the same one-hot index → score 1;
        // most random corruptions score 0.
        let triples: Vec<Triple> = (0..16).map(|i| Triple::new(i, 0, i + 4)).collect();
        let filter = FilterIndex::from_triples(triples.iter().copied());
        let valid = &triples[..8];
        let test = &triples[8..];
        let good = triple_classification(&model, &ent, &rel, valid, test, &filter, 20, 1, 7);
        let zeroed = EmbeddingTable::zeros(20, 4);
        let bad = triple_classification(&model, &zeroed, &rel, valid, test, &filter, 20, 1, 7);
        assert!(
            good.accuracy_pct > 80.0,
            "separable case: {}",
            good.accuracy_pct
        );
        assert!(
            bad.accuracy_pct <= good.accuracy_pct,
            "zero model {} vs good {}",
            bad.accuracy_pct,
            good.accuracy_pct
        );
    }

    #[test]
    fn tca_deterministic_per_seed() {
        let model = DistMult::new(2);
        let mut rng = StdRng::seed_from_u64(3);
        let ent = EmbeddingTable::xavier(30, 2, &mut rng);
        let rel = EmbeddingTable::xavier(2, 2, &mut rng);
        let triples: Vec<Triple> = (0..20).map(|i| Triple::new(i, i % 2, (i + 7) % 30)).collect();
        let filter = FilterIndex::from_triples(triples.iter().copied());
        let a = triple_classification(&model, &ent, &rel, &triples[..10], &triples[10..], &filter, 30, 2, 9);
        let b = triple_classification(&model, &ent, &rel, &triples[..10], &triples[10..], &filter, 30, 2, 9);
        assert_eq!(a.accuracy_pct, b.accuracy_pct);
        assert_eq!(a.n_test, 20);
    }
}
