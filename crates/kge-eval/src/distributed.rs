//! Distributed ranking evaluation over a simgrid communicator.
//!
//! Full-dataset filtered MRR is O(|queries| × |E|) model evaluations — the
//! one remaining phase that ran outside the cluster timing model. Here the
//! (deterministically subsampled) query list is sharded across ranks in
//! round-robin order, each rank runs the blocked local pipeline
//! ([`crate::evaluate_ranking_with`]) on its shard, and the f64 metric
//! *sums* are combined with `allreduce_sum_f64`, so every rank returns the
//! same [`RankingMetrics`] and the evaluation's compute and collective
//! time are charged to the simulated clock like a training epoch's.
//!
//! Determinism: the shard assignment, the per-shard rank computation, and
//! the fixed-rank-order reduction are all deterministic, so results are
//! bit-reproducible across runs and thread counts. They are *not* claimed
//! bit-identical to a single-node [`crate::evaluate_ranking`] over the
//! same queries — the f64 sums associate per shard first (same values to
//! within reduction reordering, typically ~1e-15 relative).

use crate::ranking::{subsample_into, RankingMetrics, RankingOptions, RankingWorkspace};
use kge_core::{EmbeddingTable, KgeModel};
use kge_data::{GroupedFilter, Triple};
use simgrid::Communicator;

/// Evaluate ranking metrics with queries sharded across the communicator.
///
/// Collective: every rank of `comm` must call this with identical
/// `queries`, `grouped`, and `opts` (model replicas are identical by
/// construction in data-parallel training). The simulated clock is charged
/// the *shared* per-rank share `ceil(n/size)` of the sweep flops on every
/// rank, so replica clocks stay aligned through the reduction.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_ranking_distributed(
    comm: &mut Communicator,
    ws: &mut RankingWorkspace,
    model: &dyn KgeModel,
    ent: &EmbeddingTable,
    rel: &EmbeddingTable,
    queries: &[Triple],
    grouped: &GroupedFilter,
    opts: &RankingOptions,
) -> RankingMetrics {
    let rank = comm.rank();
    let size = comm.size().max(1);

    // Subsample identically on every rank, then take a round-robin shard.
    let mut idx = Vec::new();
    let mut full = Vec::new();
    subsample_into(queries, opts, &mut idx, &mut full);
    let n_sub = full.len();
    let mine: Vec<Triple> = full
        .iter()
        .copied()
        .skip(rank)
        .step_by(size)
        .collect();

    let local_opts = RankingOptions {
        max_queries: None, // already subsampled above
        ..opts.clone()
    };
    evaluate_ranking_with(comm, ws, model, ent, rel, &mine, grouped, &local_opts, n_sub)
}

#[allow(clippy::too_many_arguments)]
fn evaluate_ranking_with(
    comm: &mut Communicator,
    ws: &mut RankingWorkspace,
    model: &dyn KgeModel,
    ent: &EmbeddingTable,
    rel: &EmbeddingTable,
    mine: &[Triple],
    grouped: &GroupedFilter,
    local_opts: &RankingOptions,
    n_sub: usize,
) -> RankingMetrics {
    crate::evaluate_ranking_with(ws, model, ent, rel, mine, grouped, local_opts);

    // Charge the sweep cost: 2 directions × |E| candidates per query, at
    // the per-rank ceiling share so every replica's clock moves equally
    // (the filter post-pass is negligible next to the sweep).
    let size = comm.size().max(1);
    let per_rank = n_sub.div_ceil(size);
    comm.clock_mut()
        .charge_flops((per_rank * 2 * ent.rows()) as f64 * model.score_flops());

    // Local f64 sums in shard order, then fixed-rank-order reductions.
    let mut sum_inv = 0.0f64;
    let mut sum_rank = 0.0f64;
    let (mut h1, mut h3, mut h10) = (0.0f64, 0.0f64, 0.0f64);
    for &r in ws.ranks() {
        sum_inv += 1.0 / r as f64;
        sum_rank += r as f64;
        h1 += f64::from(u8::from(r <= 1));
        h3 += f64::from(u8::from(r <= 3));
        h10 += f64::from(u8::from(r <= 10));
    }
    let n_local = ws.ranks().len() as f64;

    let n = comm.allreduce_sum_f64(n_local);
    let sum_inv = comm.allreduce_sum_f64(sum_inv);
    let sum_rank = comm.allreduce_sum_f64(sum_rank);
    let h1 = comm.allreduce_sum_f64(h1);
    let h3 = comm.allreduce_sum_f64(h3);
    let h10 = comm.allreduce_sum_f64(h10);

    let d = n.max(1.0);
    RankingMetrics {
        mrr: sum_inv / d,
        mean_rank: sum_rank / d,
        hits1: h1 / d,
        hits3: h3 / d,
        hits10: h10 / d,
        n_queries: n as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate_ranking, RankingOptions};
    use kge_core::ComplEx;
    use kge_data::FilterIndex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use simgrid::{Cluster, ClusterSpec};

    fn fixture() -> (ComplEx, EmbeddingTable, EmbeddingTable, Vec<Triple>, FilterIndex) {
        let model = ComplEx::new(4);
        let mut rng = StdRng::seed_from_u64(17);
        let ent = EmbeddingTable::xavier(40, 8, &mut rng);
        let rel = EmbeddingTable::xavier(3, 8, &mut rng);
        let queries: Vec<Triple> = (0..30)
            .map(|i| Triple::new(i % 40, i % 3, (i * 11 + 5) % 40))
            .collect();
        let filter = FilterIndex::from_triples(queries.iter().copied());
        (model, ent, rel, queries, filter)
    }

    #[test]
    fn sharded_eval_matches_local_metrics() {
        let (model, ent, rel, queries, filter) = fixture();
        let opts = RankingOptions::default();
        let local = evaluate_ranking(&model, &ent, &rel, &queries, &filter, &opts);

        for nodes in [1usize, 3, 4] {
            let grouped = GroupedFilter::from_index(&filter);
            let results = Cluster::new(nodes, ClusterSpec::ideal()).run(|ctx| {
                let mut ws = RankingWorkspace::new();
                evaluate_ranking_distributed(
                    ctx.comm_mut(),
                    &mut ws,
                    &model,
                    &ent,
                    &rel,
                    &queries,
                    &grouped,
                    &RankingOptions::default(),
                )
            });
            for m in &results {
                assert_eq!(m.n_queries, local.n_queries, "{nodes} nodes");
                assert!(
                    (m.mrr - local.mrr).abs() < 1e-12,
                    "{nodes} nodes: {} vs {}",
                    m.mrr,
                    local.mrr
                );
                assert!((m.mean_rank - local.mean_rank).abs() < 1e-9);
                assert_eq!(m.hits1, local.hits1); // counts are exact sums
                assert_eq!(m.hits3, local.hits3);
                assert_eq!(m.hits10, local.hits10);
            }
            // Every rank returns the identical reduced metrics.
            for m in &results[1..] {
                assert_eq!(*m, results[0]);
            }
        }
    }

    #[test]
    fn sharded_eval_respects_subsampling_and_charges_time() {
        let (model, ent, rel, queries, filter) = fixture();
        let grouped = GroupedFilter::from_index(&filter);
        let opts = RankingOptions {
            max_queries: Some(10),
            seed: 7,
            ..Default::default()
        };
        let local = evaluate_ranking(&model, &ent, &rel, &queries, &filter, &opts);
        let results = Cluster::new(2, ClusterSpec::ideal()).run(|ctx| {
            let mut ws = RankingWorkspace::new();
            let m = evaluate_ranking_distributed(
                ctx.comm_mut(),
                &mut ws,
                &model,
                &ent,
                &rel,
                &queries,
                &grouped,
                &opts,
            );
            (m, ctx.comm().clock().now_s())
        });
        for (m, elapsed) in &results {
            assert_eq!(m.n_queries, local.n_queries); // same subsample size
            assert!((m.mrr - local.mrr).abs() < 1e-12);
            assert!(*elapsed > 0.0, "eval must charge simulated time");
        }
        // Clock alignment: uniform charging keeps replica clocks equal.
        assert_eq!(results[0].1, results[1].1);
    }
}
