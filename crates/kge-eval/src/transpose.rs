//! Tile-blocked column-major copy of an entity table — the layout the
//! transposed one-vs-all kernels ([`KgeModel::score_one_vs_all_transposed`])
//! consume.
//!
//! Both ranking evaluation and online serving sweep the whole entity table
//! per query group; the transposed copy is what lets the AVX kernels read
//! 16 candidates per lane-group with unit stride. The copy depends only on
//! the entity table — not on the queries — so it is built **once** per
//! evaluation (or once per published serving snapshot) and shared
//! read-only by every worker.
//!
//! [`KgeModel::score_one_vs_all_transposed`]: kge_core::KgeModel::score_one_vs_all_transposed

use kge_core::EmbeddingTable;

/// Candidate-tile size target: one tile of entity rows plus its
/// column-major copy (models with a transposed kernel keep both live)
/// should sit in L1 alongside the query rows, so the tile is reused
/// across every query of a unit or admitted batch without thrashing.
pub const TILE_BYTES: usize = 8 * 1024;

/// Entity rows per tile for a given storage dimension, rounded up to a
/// whole number of transposed-kernel lane groups so the remainder
/// (scalar, strided) path only ever sees the final tile.
pub fn tile_rows_for(dim: usize) -> usize {
    let rows = (TILE_BYTES / (dim * 4)).max(1);
    rows.div_ceil(kge_core::OVA_T_LANES) * kge_core::OVA_T_LANES
}

/// Entity table re-laid-out tile-by-tile in column-major order: the block
/// for the tile starting at entity `e0` lives at `e0·dim` and stores
/// `block[k·rows + j] = ent[(e0+j)·dim + k]` (`rows` = entities in the
/// tile). Buffers are reused across rebuilds — steady-state rebuilds on a
/// same-shape table allocate nothing.
#[derive(Default)]
pub struct TransposedTable {
    data: Vec<f32>,
    dim: usize,
    rows: usize,
    tile: usize,
}

impl TransposedTable {
    /// Empty table (no storage until the first [`build_into`]).
    ///
    /// [`build_into`]: TransposedTable::build_into
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a transposed copy of `ent` (convenience for one-shot callers;
    /// reuse via [`build_into`] on hot paths).
    ///
    /// [`build_into`]: TransposedTable::build_into
    pub fn build(ent: &EmbeddingTable) -> Self {
        let mut t = Self::default();
        t.build_into(ent);
        t
    }

    /// (Re)build the transposed copy of `ent` in place, reusing the
    /// existing buffer when the shape allows.
    pub fn build_into(&mut self, ent: &EmbeddingTable) {
        let dim = ent.dim();
        let n_ent = ent.rows();
        let tile = tile_rows_for(dim);
        self.dim = dim;
        self.rows = n_ent;
        self.tile = tile;
        self.data.clear();
        self.data.resize(n_ent * dim, 0.0);
        let src = ent.as_slice();
        let mut e0 = 0usize;
        while e0 < n_ent {
            let e1 = (e0 + tile).min(n_ent);
            let rows = e1 - e0;
            let cand = &src[e0 * dim..e1 * dim];
            for (k, col) in self.data[e0 * dim..e1 * dim]
                .chunks_exact_mut(rows)
                .enumerate()
            {
                for (j, v) in col.iter_mut().enumerate() {
                    *v = cand[j * dim + k];
                }
            }
            e0 = e1;
        }
    }

    /// Drop the contents (used when the model has no transposed kernel);
    /// capacity is kept for reuse.
    pub fn clear(&mut self) {
        self.data.clear();
        self.rows = 0;
    }

    /// The full tile-blocked column-major buffer (`rows·dim` long; the
    /// block for the tile at entity `e0` starts at `e0·dim`).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Entity rows per tile (fixed per storage dimension).
    pub fn tile_rows(&self) -> usize {
        self.tile
    }

    /// Number of entity rows covered.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Storage dimension of the source table.
    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The column-major block for the tile starting at entity `e0`
    /// (`e0` must be a multiple of [`tile_rows`]), together with the
    /// number of entity rows it covers.
    ///
    /// [`tile_rows`]: TransposedTable::tile_rows
    pub fn tile(&self, e0: usize) -> (&[f32], usize) {
        debug_assert!(e0 < self.rows && e0.is_multiple_of(self.tile));
        let e1 = (e0 + self.tile).min(self.rows);
        (&self.data[e0 * self.dim..e1 * self.dim], e1 - e0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_rows_are_lane_aligned() {
        for dim in [2, 15, 64, 128, 400] {
            let t = tile_rows_for(dim);
            assert!(t >= 1);
            assert_eq!(t % kge_core::OVA_T_LANES, 0, "dim {dim}");
        }
    }

    #[test]
    fn layout_matches_definition() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let dim = 6;
        let mut rng = StdRng::seed_from_u64(7);
        // More rows than one tile so the tile loop takes several laps and
        // the final tile is a remainder.
        let n = tile_rows_for(dim) * 2 + 3;
        let ent = EmbeddingTable::xavier(n, dim, &mut rng);
        let t = TransposedTable::build(&ent);
        assert_eq!(t.rows(), n);
        assert_eq!(t.dim(), dim);
        let tile = t.tile_rows();
        let mut e0 = 0usize;
        while e0 < n {
            let (block, rows) = t.tile(e0);
            for k in 0..dim {
                for j in 0..rows {
                    assert_eq!(block[k * rows + j], ent.row(e0 + j)[k]);
                }
            }
            e0 += tile;
        }
    }

    #[test]
    fn rebuild_reuses_buffer_and_tracks_shape() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(9);
        let a = EmbeddingTable::xavier(40, 4, &mut rng);
        let b = EmbeddingTable::xavier(40, 4, &mut rng);
        let mut t = TransposedTable::new();
        t.build_into(&a);
        let expect_b = TransposedTable::build(&b);
        t.build_into(&b);
        assert_eq!(t.as_slice(), expect_b.as_slice());
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.rows(), 0);
    }
}
