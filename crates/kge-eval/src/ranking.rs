//! Link-prediction ranking metrics (raw & filtered MRR, Hits@k, mean rank).
//!
//! The filtered protocol scores every query against *all* entities —
//! O(|queries| × |E|) model evaluations, which dwarfs a training epoch on
//! Freebase-shaped data. This module therefore runs evaluation the same
//! way the trainer runs its hot path:
//!
//! - queries are grouped by relation and swept against the entity table in
//!   cache-sized tiles through [`KgeModel::score_one_vs_all`], whose
//!   per-candidate reduction order is bit-identical to `score` — so every
//!   rank (including tie counts) matches the scalar reference path
//!   [`rank_of_scalar`] exactly;
//! - the per-candidate `FilterIndex::contains` hash probe is gone: the
//!   blocked sweep counts *all* candidates, then a post-pass walks the
//!   short [`GroupedFilter`] list for the query and subtracts the known
//!   true competitors (their recomputed scores are bit-identical, so the
//!   correction is exact);
//! - all state lives in a reusable [`RankingWorkspace`] (ScratchPool
//!   check-in/check-out, same discipline as the training batch loop) —
//!   steady-state evaluation allocates nothing on the single-thread path
//!   and runs units in parallel under rayon otherwise, with bit-identical
//!   results at any thread count.

use crate::transpose::{tile_rows_for, TransposedTable};
use kge_core::{EmbeddingTable, KgeModel, ReplaceDir, ScratchPool};
use kge_data::{FilterIndex, GroupedFilter, RelationCategory, Triple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Options for a ranking evaluation.
#[derive(Debug, Clone)]
pub struct RankingOptions {
    /// Skip candidate entities that form known true triples (the paper's
    /// filtered-MRR, its headline accuracy metric).
    pub filtered: bool,
    /// Evaluate at most this many queries, deterministically subsampled —
    /// keeps large-dataset evaluations tractable. `None` = all.
    pub max_queries: Option<usize>,
    /// Subsample seed.
    pub seed: u64,
}

impl Default for RankingOptions {
    fn default() -> Self {
        RankingOptions {
            filtered: true,
            max_queries: None,
            seed: 0,
        }
    }
}

/// Aggregated ranking metrics over both head- and tail-replacement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankingMetrics {
    pub mrr: f64,
    pub mean_rank: f64,
    pub hits1: f64,
    pub hits3: f64,
    pub hits10: f64,
    /// Number of (triple, direction) queries evaluated.
    pub n_queries: usize,
}

impl RankingMetrics {
    /// Aggregate a rank list (ordered; the f64 sums are taken in list
    /// order, so callers that need bit-identical metrics must present
    /// ranks in the same order).
    pub fn from_ranks(ranks: &[usize]) -> Self {
        let n = ranks.len().max(1);
        let mrr = ranks.iter().map(|&r| 1.0 / r as f64).sum::<f64>() / n as f64;
        let mean_rank = ranks.iter().map(|&r| r as f64).sum::<f64>() / n as f64;
        let hits = |k: usize| ranks.iter().filter(|&&r| r <= k).count() as f64 / n as f64;
        RankingMetrics {
            mrr,
            mean_rank,
            hits1: hits(1),
            hits3: hits(3),
            hits10: hits(10),
            n_queries: ranks.len(),
        }
    }
}

/// Rank of the true entity among all candidates for one query — the
/// scalar reference path (one `score` call and one filter hash probe per
/// candidate).
///
/// Rank = 1 + number of candidates scoring strictly higher, plus half of
/// the ties (the unbiased tie treatment; with continuous scores ties are
/// rare and this matches the strict definition).
///
/// Kept public as the oracle the blocked pipeline is property-tested and
/// benchmarked against; use [`evaluate_ranking`] for real evaluations.
pub fn rank_of_scalar(
    model: &dyn KgeModel,
    ent: &EmbeddingTable,
    rel: &EmbeddingTable,
    triple: Triple,
    replace_head: bool,
    filter: Option<&FilterIndex>,
) -> usize {
    let r = rel.row(triple.rel as usize);
    let true_score = model.score(
        ent.row(triple.head as usize),
        r,
        ent.row(triple.tail as usize),
    );
    let mut better = 0usize;
    let mut ties = 0usize;
    let n_entities = ent.rows();
    for e in 0..n_entities {
        let e32 = e as u32;
        if replace_head {
            if e32 == triple.head {
                continue;
            }
            if let Some(f) = filter {
                if f.contains(triple.with_head(e32)) {
                    continue;
                }
            }
        } else {
            if e32 == triple.tail {
                continue;
            }
            if let Some(f) = filter {
                if f.contains(triple.with_tail(e32)) {
                    continue;
                }
            }
        }
        let s = if replace_head {
            model.score(ent.row(e), r, ent.row(triple.tail as usize))
        } else {
            model.score(ent.row(triple.head as usize), r, ent.row(e))
        };
        if s > true_score {
            better += 1;
        } else if s == true_score {
            ties += 1;
        }
    }
    1 + better + ties / 2
}

/// Queries per work unit. Each query is O(|E| · dim) work, so even one
/// query is a chunky parallel task; small units load-balance across the
/// pool while amortizing the candidate tile over a few queries.
const UNIT_QUERIES: usize = 8;

/// Per-worker scratch for one unit of queries (pooled; all buffers grow to
/// a high-water mark during warm-up and are reused verbatim afterwards).
#[derive(Default)]
struct EvalScratch {
    /// Score of the unmodified test triple, per query of the unit.
    true_scores: Vec<f32>,
    /// Candidates scoring strictly above `true_scores[q]`, over the full
    /// entity sweep. Signed: the filter post-pass subtracts.
    better: Vec<i64>,
    /// Candidates scoring exactly `true_scores[q]` (incl. the true entity
    /// itself, removed by the post-pass).
    ties: Vec<i64>,
    /// One candidate tile's scores.
    tile_scores: Vec<f32>,
    /// Head-direction ranks of the unit, per query.
    unit_head_ranks: Vec<usize>,
    /// Output: `(subsample slot, head rank, tail rank)` per query.
    ranks: Vec<(u32, usize, usize)>,
}

/// Reusable state for [`evaluate_ranking_with`]: the query subsample,
/// relation-grouped evaluation order, pooled per-worker scratches, and the
/// per-query rank buffers. Steady-state reuse allocates nothing on the
/// single-thread path.
#[derive(Default)]
pub struct RankingWorkspace {
    pool: ScratchPool<EvalScratch>,
    idx: Vec<usize>,
    subsample: Vec<Triple>,
    /// Subsample slots sorted by `(rel, slot)` — groups queries that share
    /// a relation row so a unit hoists it once.
    order: Vec<u32>,
    /// Work units: `[lo, hi)` ranges of `order`, never crossing a relation
    /// boundary, at most [`UNIT_QUERIES`] long.
    units: Vec<(u32, u32)>,
    /// Tile-blocked column-major copy of the entity table (models with a
    /// transposed kernel; empty otherwise). Built **once per evaluation**
    /// and shared read-only by every unit — the transpose depends only on
    /// the entity table, not on the queries. The same builder feeds the
    /// serving layer's published snapshots (`kge-serve`).
    ent_t: TransposedTable,
    head_ranks: Vec<usize>,
    tail_ranks: Vec<usize>,
    ranks: Vec<usize>,
}

impl RankingWorkspace {
    pub fn new() -> Self {
        Self::default()
    }

    /// The subsampled queries of the last evaluation, in subsample order.
    pub fn queries(&self) -> &[Triple] {
        &self.subsample
    }

    /// Head-replacement ranks of the last evaluation, per subsampled query.
    pub fn head_ranks(&self) -> &[usize] {
        &self.head_ranks
    }

    /// Tail-replacement ranks of the last evaluation, per subsampled query.
    pub fn tail_ranks(&self) -> &[usize] {
        &self.tail_ranks
    }

    /// Interleaved `[head, tail]` ranks in subsample order — the exact
    /// order [`RankingMetrics::from_ranks`] sums over.
    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }
}

/// Deterministic subsample (shuffled index prefix), reusing buffers. The
/// RNG consumption is identical to the original scalar implementation, so
/// the selected queries — and therefore the metrics — are unchanged.
pub(crate) fn subsample_into(
    queries: &[Triple],
    opts: &RankingOptions,
    idx: &mut Vec<usize>,
    out: &mut Vec<Triple>,
) {
    out.clear();
    match opts.max_queries {
        Some(k) if k < queries.len() => {
            idx.clear();
            idx.extend(0..queries.len());
            let mut rng = StdRng::seed_from_u64(opts.seed);
            for i in (1..idx.len()).rev() {
                let j = rng.gen_range(0..=i);
                idx.swap(i, j);
            }
            out.extend(idx[..k].iter().map(|&i| queries[i]));
        }
        _ => out.extend_from_slice(queries),
    }
}

/// Evaluate one unit (queries `order[lo..hi]`, all sharing a relation):
/// blocked sweep over every entity tile, then the filter post-pass.
/// `ent_t` is the shared per-tile column-major copy of the entity table
/// (see [`RankingWorkspace::ent_t`]); empty when the model has no
/// transposed kernel.
#[allow(clippy::too_many_arguments)]
fn process_unit(
    model: &dyn KgeModel,
    ent: &EmbeddingTable,
    ent_t: &[f32],
    rel: &EmbeddingTable,
    sub: &[Triple],
    order: &[u32],
    lo: usize,
    hi: usize,
    grouped: Option<&GroupedFilter>,
    s: &mut EvalScratch,
) {
    let dim = ent.dim();
    let n_ent = ent.rows();
    let tile = tile_rows_for(dim);
    let q = hi - lo;
    let slots = &order[lo..hi];
    let r_row = rel.row(sub[slots[0] as usize].rel as usize);

    s.ranks.clear();
    s.true_scores.resize(q, 0.0);
    s.better.resize(2 * q, 0);
    s.ties.resize(2 * q, 0);
    s.tile_scores.resize(tile, 0.0);
    s.unit_head_ranks.resize(q, 0);

    for (qi, &slot) in slots.iter().enumerate() {
        let t = sub[slot as usize];
        s.true_scores[qi] = model.score(ent.row(t.head as usize), r_row, ent.row(t.tail as usize));
    }
    s.better[..2 * q].fill(0);
    s.ties[..2 * q].fill(0);

    // Blocked sweep: count better/ties over ALL candidates, tile-major so
    // each candidate tile (in its shared column-major copy, for models
    // with a transposed kernel) stays hot across the unit's queries in
    // both directions. Per-query counts are integer sums, so accumulating
    // them tile-by-tile is order-independent and the final ranks stay
    // bit-identical to the scalar path.
    let transposed = model.has_transposed_kernel();
    let mut e0 = 0usize;
    while e0 < n_ent {
        let e1 = (e0 + tile).min(n_ent);
        let rows = e1 - e0;
        let cand = &ent.as_slice()[e0 * dim..e1 * dim];
        for (di, dir) in [ReplaceDir::Head, ReplaceDir::Tail].into_iter().enumerate() {
            for (qi, &slot) in slots.iter().enumerate() {
                let t = sub[slot as usize];
                let query_row = match dir {
                    ReplaceDir::Head => ent.row(t.tail as usize),
                    ReplaceDir::Tail => ent.row(t.head as usize),
                };
                if transposed {
                    model.score_one_vs_all_transposed(
                        query_row,
                        r_row,
                        &ent_t[e0 * dim..e1 * dim],
                        rows,
                        dir,
                        &mut s.tile_scores[..rows],
                    );
                } else {
                    model.score_one_vs_all(
                        query_row,
                        r_row,
                        cand,
                        dir,
                        &mut s.tile_scores[..rows],
                    );
                }
                // Branchless: score-vs-true comparisons are effectively
                // random, so a branchy count would mispredict per
                // candidate and dominate the fused kernel's cost.
                let ts = s.true_scores[qi];
                let mut better = 0i64;
                let mut ties = 0i64;
                for &sc in &s.tile_scores[..rows] {
                    better += i64::from(sc > ts);
                    ties += i64::from(sc == ts);
                }
                s.better[di * q + qi] += better;
                s.ties[di * q + qi] += ties;
            }
        }
        e0 = e1;
    }

    for (di, dir) in [ReplaceDir::Head, ReplaceDir::Tail].into_iter().enumerate() {
        // Post-pass correction: the sweep counted every entity, including
        // the true one and (in filtered mode) known true competitors. Their
        // recomputed scores are bit-identical to the sweep's (the
        // score_one_vs_all contract), so subtracting them from the matching
        // bucket reproduces the scalar skip-before-score counts exactly.
        for (qi, &slot) in slots.iter().enumerate() {
            let t = sub[slot as usize];
            let ts = s.true_scores[qi];
            let mut better = s.better[di * q + qi];
            let mut ties = s.ties[di * q + qi];
            // The true entity tied with itself — unless the true score is
            // NaN, in which case the sweep counted it nowhere.
            if !ts.is_nan() {
                ties -= 1;
            }
            if let Some(g) = grouped {
                let (true_e, known) = match dir {
                    ReplaceDir::Head => (t.head, g.known_heads(t.tail, t.rel)),
                    ReplaceDir::Tail => (t.tail, g.known_tails(t.head, t.rel)),
                };
                for &e in known {
                    if e == true_e {
                        continue; // already removed above
                    }
                    let sc = match dir {
                        ReplaceDir::Head => {
                            model.score(ent.row(e as usize), r_row, ent.row(t.tail as usize))
                        }
                        ReplaceDir::Tail => {
                            model.score(ent.row(t.head as usize), r_row, ent.row(e as usize))
                        }
                    };
                    if sc > ts {
                        better -= 1;
                    } else if sc == ts {
                        ties -= 1;
                    }
                }
            }
            debug_assert!(better >= 0 && ties >= 0, "over-corrected rank counts");
            let rank = (1 + better + ties / 2) as usize;
            match dir {
                ReplaceDir::Head => s.unit_head_ranks[qi] = rank,
                ReplaceDir::Tail => s.ranks.push((slot, s.unit_head_ranks[qi], rank)),
            }
        }
    }
}

/// Fill `ws.head_ranks` / `ws.tail_ranks` for the current `ws.subsample`.
fn evaluate_ranks_into(
    ws: &mut RankingWorkspace,
    model: &dyn KgeModel,
    ent: &EmbeddingTable,
    rel: &EmbeddingTable,
    grouped: Option<&GroupedFilter>,
) {
    let RankingWorkspace {
        pool,
        subsample,
        order,
        units,
        head_ranks,
        tail_ranks,
        ent_t,
        ..
    } = ws;
    let n = subsample.len();

    // Transpose the entity table tile-by-tile once per evaluation; every
    // unit then sweeps the same read-only copy. (Done per unit, the
    // transpose would repeat per unit × per tile and rival the kernel
    // cost for units with few queries.)
    if model.has_transposed_kernel() {
        ent_t.build_into(ent);
    } else {
        ent_t.clear();
    }

    order.clear();
    order.extend(0..n as u32);
    // Unstable sort with the slot as tiebreak: deterministic, in-place,
    // allocation-free.
    order.sort_unstable_by_key(|&s| (subsample[s as usize].rel, s));

    units.clear();
    let mut start = 0usize;
    while start < n {
        let r = subsample[order[start] as usize].rel;
        let mut end = start + 1;
        while end < n && subsample[order[end] as usize].rel == r {
            end += 1;
        }
        let mut lo = start;
        while lo < end {
            let hi = (lo + UNIT_QUERIES).min(end);
            units.push((lo as u32, hi as u32));
            lo = hi;
        }
        start = end;
    }

    head_ranks.clear();
    head_ranks.resize(n, 0);
    tail_ranks.clear();
    tail_ranks.resize(n, 0);

    // Shared-borrow the transposed table so the closure is `Sync` for the
    // parallel branch.
    let ent_t: &[f32] = ent_t.as_slice();
    let run_unit = |u: usize, s: &mut EvalScratch| {
        let (lo, hi) = units[u];
        process_unit(
            model, ent, ent_t, rel, subsample, order, lo as usize, hi as usize, grouped, s,
        );
    };

    // Units write disjoint slots, so the merge order is immaterial for the
    // result — ranks are bit-identical at any thread count. The
    // single-thread branch reuses one pooled scratch with no collection
    // (the zero-steady-state-allocation path).
    if rayon::current_num_threads() <= 1 || units.len() <= 1 {
        let mut s = pool.acquire_with(EvalScratch::default);
        for u in 0..units.len() {
            run_unit(u, &mut s);
            for &(slot, hr, tr) in &s.ranks {
                head_ranks[slot as usize] = hr;
                tail_ranks[slot as usize] = tr;
            }
        }
        pool.release(s);
    } else {
        let done: Vec<Box<EvalScratch>> = rayon::par_map_index(units.len(), |u| {
            let mut s = pool.acquire_with(EvalScratch::default);
            run_unit(u, &mut s);
            s
        });
        for s in done {
            for &(slot, hr, tr) in &s.ranks {
                head_ranks[slot as usize] = hr;
                tail_ranks[slot as usize] = tr;
            }
            pool.release(s);
        }
    }
}

/// Blocked ranking evaluation against a reusable workspace and a
/// prebuilt [`GroupedFilter`] — the steady-state entry point (per-epoch
/// eval, benchmarks). Allocation-free after warm-up on the single-thread
/// path; metrics are bit-identical to the scalar reference at any thread
/// count.
pub fn evaluate_ranking_with(
    ws: &mut RankingWorkspace,
    model: &dyn KgeModel,
    ent: &EmbeddingTable,
    rel: &EmbeddingTable,
    queries: &[Triple],
    grouped: &GroupedFilter,
    opts: &RankingOptions,
) -> RankingMetrics {
    subsample_into(queries, opts, &mut ws.idx, &mut ws.subsample);
    let g = opts.filtered.then_some(grouped);
    evaluate_ranks_into(ws, model, ent, rel, g);
    // Interleave [head, tail] per query in subsample order — the exact
    // rank order the scalar implementation summed in.
    ws.ranks.clear();
    for i in 0..ws.subsample.len() {
        ws.ranks.push(ws.head_ranks[i]);
        ws.ranks.push(ws.tail_ranks[i]);
    }
    RankingMetrics::from_ranks(&ws.ranks)
}

/// Evaluate ranking metrics on `queries` (both directions per triple).
///
/// Convenience wrapper that builds the workspace and grouped filter per
/// call; long-running callers should hold a [`RankingWorkspace`] and a
/// [`GroupedFilter`] and use [`evaluate_ranking_with`].
pub fn evaluate_ranking(
    model: &dyn KgeModel,
    ent: &EmbeddingTable,
    rel: &EmbeddingTable,
    queries: &[Triple],
    filter: &FilterIndex,
    opts: &RankingOptions,
) -> RankingMetrics {
    let grouped = if opts.filtered {
        GroupedFilter::from_index(filter)
    } else {
        GroupedFilter::default()
    };
    let mut ws = RankingWorkspace::new();
    evaluate_ranking_with(&mut ws, model, ent, rel, queries, &grouped, opts)
}

/// Ranking metrics broken down by Bordes relation category (1-1 / 1-N /
/// N-1 / N-N) — the standard analysis for where a KGE model's MRR comes
/// from. `categories[r]` classifies relation id `r` (see
/// [`kge_data::classify_relations`]).
///
/// Single-pass: the query set is subsampled **once** (same draw as
/// [`evaluate_ranking`]) and every query is ranked once; the per-category
/// metrics then partition those ranks by the query relation's category.
/// (Previously each category re-scanned and re-subsampled `queries`
/// independently, so the union of the four subsamples was inconsistent
/// with the full evaluation's subsample.)
pub fn evaluate_ranking_by_category(
    model: &dyn KgeModel,
    ent: &EmbeddingTable,
    rel: &EmbeddingTable,
    queries: &[Triple],
    categories: &[RelationCategory],
    filter: &FilterIndex,
    opts: &RankingOptions,
) -> Vec<(RelationCategory, RankingMetrics)> {
    let grouped = if opts.filtered {
        GroupedFilter::from_index(filter)
    } else {
        GroupedFilter::default()
    };
    let mut ws = RankingWorkspace::new();
    evaluate_ranking_by_category_with(
        &mut ws, model, ent, rel, queries, categories, &grouped, opts,
    )
}

/// Workspace-reusing variant of [`evaluate_ranking_by_category`].
#[allow(clippy::too_many_arguments)]
pub fn evaluate_ranking_by_category_with(
    ws: &mut RankingWorkspace,
    model: &dyn KgeModel,
    ent: &EmbeddingTable,
    rel: &EmbeddingTable,
    queries: &[Triple],
    categories: &[RelationCategory],
    grouped: &GroupedFilter,
    opts: &RankingOptions,
) -> Vec<(RelationCategory, RankingMetrics)> {
    use RelationCategory::*;
    subsample_into(queries, opts, &mut ws.idx, &mut ws.subsample);
    let g = opts.filtered.then_some(grouped);
    evaluate_ranks_into(ws, model, ent, rel, g);
    [OneToOne, OneToMany, ManyToOne, ManyToMany]
        .into_iter()
        .map(|cat| {
            let ranks: Vec<usize> = ws
                .subsample
                .iter()
                .enumerate()
                .filter(|(_, t)| categories[t.rel as usize] == cat)
                .flat_map(|(i, _)| [ws.head_ranks[i], ws.tail_ranks[i]])
                .collect();
            (cat, RankingMetrics::from_ranks(&ranks))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kge_core::DistMult;

    /// Build tables where entity i has a one-hot-ish embedding, so scores
    /// are fully controlled.
    fn setup() -> (DistMult, EmbeddingTable, EmbeddingTable) {
        let model = DistMult::new(4);
        let mut ent = EmbeddingTable::zeros(4, 4);
        for i in 0..4 {
            ent.row_mut(i)[i] = 1.0;
        }
        let mut rel = EmbeddingTable::zeros(1, 4);
        rel.row_mut(0).copy_from_slice(&[1.0, 1.0, 1.0, 1.0]);
        (model, ent, rel)
    }

    #[test]
    fn perfect_model_has_rank_one() {
        // Make entity 3's embedding align with entity 0 under relation 0 so
        // the true tail scores highest.
        let (model, mut ent, rel) = setup();
        ent.row_mut(3).copy_from_slice(&[2.0, 0.0, 0.0, 0.0]); // matches head 0
        let t = Triple::new(0, 0, 3);
        // (3,0,3) also scores high; it is a known true triple, so the
        // filtered ranking skips it as a head candidate.
        let filter = FilterIndex::from_triples([t, Triple::new(3, 0, 3)].into_iter());
        let m = evaluate_ranking(
            &model,
            &ent,
            &rel,
            &[t],
            &filter,
            &RankingOptions::default(),
        );
        // Tail query: candidates 1, 2 score 0 < 2 → rank 1. Head query:
        // true head 0 scores 2; other heads score 0 → rank 1.
        assert_eq!(m.mrr, 1.0);
        assert_eq!(m.hits1, 1.0);
        assert_eq!(m.n_queries, 2);
    }

    #[test]
    fn filtering_removes_known_true_competitors() {
        let (model, mut ent, rel) = setup();
        // Entity 2 outscores the true tail 3 for head 0, but (0,0,2) is a
        // known true triple, so filtering removes it as a competitor.
        ent.row_mut(2).copy_from_slice(&[3.0, 0.0, 0.0, 0.0]);
        ent.row_mut(3).copy_from_slice(&[2.0, 0.0, 0.0, 0.0]);
        let test = Triple::new(0, 0, 3);
        let known = Triple::new(0, 0, 2);
        let filter = FilterIndex::from_triples([test, known].into_iter());

        let raw = evaluate_ranking(
            &model,
            &ent,
            &rel,
            &[test],
            &filter,
            &RankingOptions {
                filtered: false,
                ..Default::default()
            },
        );
        let filt = evaluate_ranking(
            &model,
            &ent,
            &rel,
            &[test],
            &filter,
            &RankingOptions::default(),
        );
        assert!(
            filt.mrr > raw.mrr,
            "filtered {} must beat raw {}",
            filt.mrr,
            raw.mrr
        );
        // The tail query is rank 1 after filtering (the head query still
        // has legitimate higher-scoring competitors).
        assert!(filt.hits1 >= 0.5);
    }

    #[test]
    fn random_model_has_low_mrr() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let model = DistMult::new(8);
        let mut rng = StdRng::seed_from_u64(5);
        let ent = EmbeddingTable::xavier(200, 8, &mut rng);
        let rel = EmbeddingTable::xavier(4, 8, &mut rng);
        let queries: Vec<Triple> = (0..50)
            .map(|i| Triple::new(i as u32, (i % 4) as u32, (i as u32 + 50) % 200))
            .collect();
        let filter = FilterIndex::from_triples(queries.iter().copied());
        let m = evaluate_ranking(&model, &ent, &rel, &queries, &filter, &RankingOptions::default());
        // Random ranks over 200 entities: MRR far below a trained model.
        assert!(m.mrr < 0.2, "random model MRR {}", m.mrr);
        assert!(m.mean_rank > 20.0);
    }

    #[test]
    fn max_queries_subsamples_deterministically() {
        let (model, ent, rel) = setup();
        let queries: Vec<Triple> = (0..4).map(|i| Triple::new(i, 0, (i + 1) % 4)).collect();
        let filter = FilterIndex::from_triples(queries.iter().copied());
        let opts = RankingOptions {
            max_queries: Some(2),
            ..Default::default()
        };
        let a = evaluate_ranking(&model, &ent, &rel, &queries, &filter, &opts);
        let b = evaluate_ranking(&model, &ent, &rel, &queries, &filter, &opts);
        assert_eq!(a.n_queries, 4); // 2 triples × 2 directions
        assert_eq!(a, b);
    }

    #[test]
    fn metrics_bounds() {
        let (model, ent, rel) = setup();
        let queries: Vec<Triple> = (0..4).map(|i| Triple::new(i, 0, (i + 2) % 4)).collect();
        let filter = FilterIndex::from_triples(queries.iter().copied());
        let m = evaluate_ranking(&model, &ent, &rel, &queries, &filter, &RankingOptions::default());
        assert!(m.mrr > 0.0 && m.mrr <= 1.0);
        assert!(m.hits1 <= m.hits3 && m.hits3 <= m.hits10);
        assert!(m.hits10 <= 1.0);
        assert!(m.mean_rank >= 1.0);
    }

    #[test]
    fn category_breakdown_partitions_queries() {
        let (model, ent, rel2) = setup();
        let mut rel = EmbeddingTable::zeros(2, 4);
        rel.row_mut(0).copy_from_slice(rel2.row(0));
        rel.row_mut(1).copy_from_slice(rel2.row(0));
        let queries = vec![
            Triple::new(0, 0, 1),
            Triple::new(1, 0, 2),
            Triple::new(2, 1, 3),
        ];
        let filter = FilterIndex::from_triples(queries.iter().copied());
        let categories = vec![
            kge_data::RelationCategory::OneToOne,
            kge_data::RelationCategory::ManyToMany,
        ];
        let by_cat = evaluate_ranking_by_category(
            &model, &ent, &rel, &queries, &categories, &filter,
            &RankingOptions::default(),
        );
        let total: usize = by_cat.iter().map(|(_, m)| m.n_queries).sum();
        assert_eq!(total, queries.len() * 2);
        let one_one = by_cat
            .iter()
            .find(|(c, _)| *c == kge_data::RelationCategory::OneToOne)
            .unwrap();
        assert_eq!(one_one.1.n_queries, 4); // two rel-0 triples × 2 dirs
    }

    #[test]
    fn blocked_matches_scalar_on_mixed_relations() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let model = DistMult::new(6);
        let mut rng = StdRng::seed_from_u64(11);
        let ent = EmbeddingTable::xavier(60, 6, &mut rng);
        let rel = EmbeddingTable::xavier(5, 6, &mut rng);
        let queries: Vec<Triple> = (0..40)
            .map(|i| Triple::new(i % 60, i % 5, (i * 7 + 3) % 60))
            .collect();
        let filter = FilterIndex::from_triples(queries.iter().copied());
        for filtered in [false, true] {
            let opts = RankingOptions {
                filtered,
                ..Default::default()
            };
            let blocked = evaluate_ranking(&model, &ent, &rel, &queries, &filter, &opts);
            let f = filtered.then_some(&filter);
            let scalar_ranks: Vec<usize> = queries
                .iter()
                .flat_map(|&t| {
                    [
                        rank_of_scalar(&model, &ent, &rel, t, true, f),
                        rank_of_scalar(&model, &ent, &rel, t, false, f),
                    ]
                })
                .collect();
            let scalar = RankingMetrics::from_ranks(&scalar_ranks);
            assert_eq!(blocked, scalar, "filtered={filtered}");
        }
    }

    #[test]
    fn workspace_reuse_is_stable_across_query_sets() {
        let (model, ent, rel) = setup();
        let queries: Vec<Triple> = (0..4).map(|i| Triple::new(i, 0, (i + 1) % 4)).collect();
        let filter = FilterIndex::from_triples(queries.iter().copied());
        let grouped = GroupedFilter::from_index(&filter);
        let mut ws = RankingWorkspace::new();
        let opts = RankingOptions::default();
        let a = evaluate_ranking_with(&mut ws, &model, &ent, &rel, &queries, &grouped, &opts);
        // Smaller query set on the same workspace: stale state must not leak.
        let b = evaluate_ranking_with(&mut ws, &model, &ent, &rel, &queries[..1], &grouped, &opts);
        assert_eq!(b.n_queries, 2);
        // And back to the full set reproduces the first result exactly.
        let c = evaluate_ranking_with(&mut ws, &model, &ent, &rel, &queries, &grouped, &opts);
        assert_eq!(a, c);
        assert_eq!(ws.ranks().len(), 8);
        assert_eq!(ws.queries().len(), 4);
    }

    #[test]
    fn nan_scores_do_not_underflow_rank_counts() {
        // A NaN true score compares false against everything: the sweep
        // counts no better/ties, the correction must not subtract below
        // zero, and the rank comes out 1 — same as the scalar path.
        let (model, mut ent, rel) = setup();
        ent.row_mut(0)[0] = f32::NAN;
        let t = Triple::new(0, 0, 1);
        let filter = FilterIndex::from_triples([t, Triple::new(0, 0, 2)].into_iter());
        let blocked = evaluate_ranking(&model, &ent, &rel, &[t], &filter, &RankingOptions::default());
        let scalar_ranks = [
            rank_of_scalar(&model, &ent, &rel, t, true, Some(&filter)),
            rank_of_scalar(&model, &ent, &rel, t, false, Some(&filter)),
        ];
        assert_eq!(blocked, RankingMetrics::from_ranks(&scalar_ranks));
    }
}
