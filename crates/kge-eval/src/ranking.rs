//! Link-prediction ranking metrics (raw & filtered MRR, Hits@k, mean rank).

use kge_core::{EmbeddingTable, KgeModel};
use kge_data::{FilterIndex, RelationCategory, Triple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Options for a ranking evaluation.
#[derive(Debug, Clone)]
pub struct RankingOptions {
    /// Skip candidate entities that form known true triples (the paper's
    /// filtered-MRR, its headline accuracy metric).
    pub filtered: bool,
    /// Evaluate at most this many queries, deterministically subsampled —
    /// keeps large-dataset evaluations tractable. `None` = all.
    pub max_queries: Option<usize>,
    /// Subsample seed.
    pub seed: u64,
}

impl Default for RankingOptions {
    fn default() -> Self {
        RankingOptions {
            filtered: true,
            max_queries: None,
            seed: 0,
        }
    }
}

/// Aggregated ranking metrics over both head- and tail-replacement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankingMetrics {
    pub mrr: f64,
    pub mean_rank: f64,
    pub hits1: f64,
    pub hits3: f64,
    pub hits10: f64,
    /// Number of (triple, direction) queries evaluated.
    pub n_queries: usize,
}

impl RankingMetrics {
    fn from_ranks(ranks: &[usize]) -> Self {
        let n = ranks.len().max(1);
        let mrr = ranks.iter().map(|&r| 1.0 / r as f64).sum::<f64>() / n as f64;
        let mean_rank = ranks.iter().map(|&r| r as f64).sum::<f64>() / n as f64;
        let hits = |k: usize| ranks.iter().filter(|&&r| r <= k).count() as f64 / n as f64;
        RankingMetrics {
            mrr,
            mean_rank,
            hits1: hits(1),
            hits3: hits(3),
            hits10: hits(10),
            n_queries: ranks.len(),
        }
    }
}

/// Rank of the true entity among all candidates for one query.
///
/// Rank = 1 + number of candidates scoring strictly higher, plus half of
/// the ties (the unbiased tie treatment; with continuous scores ties are
/// rare and this matches the strict definition).
fn rank_of(
    model: &dyn KgeModel,
    ent: &EmbeddingTable,
    rel: &EmbeddingTable,
    triple: Triple,
    replace_head: bool,
    filter: Option<&FilterIndex>,
) -> usize {
    let r = rel.row(triple.rel as usize);
    let true_score = model.score(
        ent.row(triple.head as usize),
        r,
        ent.row(triple.tail as usize),
    );
    let mut better = 0usize;
    let mut ties = 0usize;
    let n_entities = ent.rows();
    for e in 0..n_entities {
        let e32 = e as u32;
        if replace_head {
            if e32 == triple.head {
                continue;
            }
            if let Some(f) = filter {
                if f.contains(triple.with_head(e32)) {
                    continue;
                }
            }
        } else {
            if e32 == triple.tail {
                continue;
            }
            if let Some(f) = filter {
                if f.contains(triple.with_tail(e32)) {
                    continue;
                }
            }
        }
        let s = if replace_head {
            model.score(ent.row(e), r, ent.row(triple.tail as usize))
        } else {
            model.score(ent.row(triple.head as usize), r, ent.row(e))
        };
        if s > true_score {
            better += 1;
        } else if s == true_score {
            ties += 1;
        }
    }
    1 + better + ties / 2
}

/// Evaluate ranking metrics on `queries` (both directions per triple).
pub fn evaluate_ranking(
    model: &dyn KgeModel,
    ent: &EmbeddingTable,
    rel: &EmbeddingTable,
    queries: &[Triple],
    filter: &FilterIndex,
    opts: &RankingOptions,
) -> RankingMetrics {
    let subsampled: Vec<Triple> = match opts.max_queries {
        Some(k) if k < queries.len() => {
            // Deterministic reservoir-free subsample: shuffle indices.
            let mut idx: Vec<usize> = (0..queries.len()).collect();
            let mut rng = StdRng::seed_from_u64(opts.seed);
            for i in (1..idx.len()).rev() {
                let j = rng.gen_range(0..=i);
                idx.swap(i, j);
            }
            idx[..k].iter().map(|&i| queries[i]).collect()
        }
        _ => queries.to_vec(),
    };
    let f = if opts.filtered { Some(filter) } else { None };
    let ranks: Vec<usize> = subsampled
        .par_iter()
        .flat_map_iter(|&t| {
            let head_rank = rank_of(model, ent, rel, t, true, f);
            let tail_rank = rank_of(model, ent, rel, t, false, f);
            [head_rank, tail_rank]
        })
        .collect();
    RankingMetrics::from_ranks(&ranks)
}


/// Ranking metrics broken down by Bordes relation category (1-1 / 1-N /
/// N-1 / N-N) — the standard analysis for where a KGE model's MRR comes
/// from. `categories[r]` classifies relation id `r` (see
/// [`kge_data::classify_relations`]).
pub fn evaluate_ranking_by_category(
    model: &dyn KgeModel,
    ent: &EmbeddingTable,
    rel: &EmbeddingTable,
    queries: &[Triple],
    categories: &[RelationCategory],
    filter: &FilterIndex,
    opts: &RankingOptions,
) -> Vec<(RelationCategory, RankingMetrics)> {
    use RelationCategory::*;
    [OneToOne, OneToMany, ManyToOne, ManyToMany]
        .into_iter()
        .map(|cat| {
            let subset: Vec<Triple> = queries
                .iter()
                .filter(|t| categories[t.rel as usize] == cat)
                .copied()
                .collect();
            (cat, evaluate_ranking(model, ent, rel, &subset, filter, opts))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kge_core::DistMult;

    /// Build tables where entity i has a one-hot-ish embedding, so scores
    /// are fully controlled.
    fn setup() -> (DistMult, EmbeddingTable, EmbeddingTable) {
        let model = DistMult::new(4);
        let mut ent = EmbeddingTable::zeros(4, 4);
        for i in 0..4 {
            ent.row_mut(i)[i] = 1.0;
        }
        let mut rel = EmbeddingTable::zeros(1, 4);
        rel.row_mut(0).copy_from_slice(&[1.0, 1.0, 1.0, 1.0]);
        (model, ent, rel)
    }

    #[test]
    fn perfect_model_has_rank_one() {
        // Make entity 3's embedding align with entity 0 under relation 0 so
        // the true tail scores highest.
        let (model, mut ent, rel) = setup();
        ent.row_mut(3).copy_from_slice(&[2.0, 0.0, 0.0, 0.0]); // matches head 0
        let t = Triple::new(0, 0, 3);
        // (3,0,3) also scores high; it is a known true triple, so the
        // filtered ranking skips it as a head candidate.
        let filter = FilterIndex::from_triples([t, Triple::new(3, 0, 3)].into_iter());
        let m = evaluate_ranking(
            &model,
            &ent,
            &rel,
            &[t],
            &filter,
            &RankingOptions::default(),
        );
        // Tail query: candidates 1, 2 score 0 < 2 → rank 1. Head query:
        // true head 0 scores 2; other heads score 0 → rank 1.
        assert_eq!(m.mrr, 1.0);
        assert_eq!(m.hits1, 1.0);
        assert_eq!(m.n_queries, 2);
    }

    #[test]
    fn filtering_removes_known_true_competitors() {
        let (model, mut ent, rel) = setup();
        // Entity 2 outscores the true tail 3 for head 0, but (0,0,2) is a
        // known true triple, so filtering removes it as a competitor.
        ent.row_mut(2).copy_from_slice(&[3.0, 0.0, 0.0, 0.0]);
        ent.row_mut(3).copy_from_slice(&[2.0, 0.0, 0.0, 0.0]);
        let test = Triple::new(0, 0, 3);
        let known = Triple::new(0, 0, 2);
        let filter = FilterIndex::from_triples([test, known].into_iter());

        let raw = evaluate_ranking(
            &model,
            &ent,
            &rel,
            &[test],
            &filter,
            &RankingOptions {
                filtered: false,
                ..Default::default()
            },
        );
        let filt = evaluate_ranking(
            &model,
            &ent,
            &rel,
            &[test],
            &filter,
            &RankingOptions::default(),
        );
        assert!(
            filt.mrr > raw.mrr,
            "filtered {} must beat raw {}",
            filt.mrr,
            raw.mrr
        );
        // The tail query is rank 1 after filtering (the head query still
        // has legitimate higher-scoring competitors).
        assert!(filt.hits1 >= 0.5);
    }

    #[test]
    fn random_model_has_low_mrr() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let model = DistMult::new(8);
        let mut rng = StdRng::seed_from_u64(5);
        let ent = EmbeddingTable::xavier(200, 8, &mut rng);
        let rel = EmbeddingTable::xavier(4, 8, &mut rng);
        let queries: Vec<Triple> = (0..50)
            .map(|i| Triple::new(i as u32, (i % 4) as u32, (i as u32 + 50) % 200))
            .collect();
        let filter = FilterIndex::from_triples(queries.iter().copied());
        let m = evaluate_ranking(&model, &ent, &rel, &queries, &filter, &RankingOptions::default());
        // Random ranks over 200 entities: MRR far below a trained model.
        assert!(m.mrr < 0.2, "random model MRR {}", m.mrr);
        assert!(m.mean_rank > 20.0);
    }

    #[test]
    fn max_queries_subsamples_deterministically() {
        let (model, ent, rel) = setup();
        let queries: Vec<Triple> = (0..4).map(|i| Triple::new(i, 0, (i + 1) % 4)).collect();
        let filter = FilterIndex::from_triples(queries.iter().copied());
        let opts = RankingOptions {
            max_queries: Some(2),
            ..Default::default()
        };
        let a = evaluate_ranking(&model, &ent, &rel, &queries, &filter, &opts);
        let b = evaluate_ranking(&model, &ent, &rel, &queries, &filter, &opts);
        assert_eq!(a.n_queries, 4); // 2 triples × 2 directions
        assert_eq!(a, b);
    }

    #[test]
    fn metrics_bounds() {
        let (model, ent, rel) = setup();
        let queries: Vec<Triple> = (0..4).map(|i| Triple::new(i, 0, (i + 2) % 4)).collect();
        let filter = FilterIndex::from_triples(queries.iter().copied());
        let m = evaluate_ranking(&model, &ent, &rel, &queries, &filter, &RankingOptions::default());
        assert!(m.mrr > 0.0 && m.mrr <= 1.0);
        assert!(m.hits1 <= m.hits3 && m.hits3 <= m.hits10);
        assert!(m.hits10 <= 1.0);
        assert!(m.mean_rank >= 1.0);
    }

    #[test]
    fn category_breakdown_partitions_queries() {
        let (model, ent, rel2) = setup();
        let mut rel = EmbeddingTable::zeros(2, 4);
        rel.row_mut(0).copy_from_slice(rel2.row(0));
        rel.row_mut(1).copy_from_slice(rel2.row(0));
        let queries = vec![
            Triple::new(0, 0, 1),
            Triple::new(1, 0, 2),
            Triple::new(2, 1, 3),
        ];
        let filter = FilterIndex::from_triples(queries.iter().copied());
        let categories = vec![
            kge_data::RelationCategory::OneToOne,
            kge_data::RelationCategory::ManyToMany,
        ];
        let by_cat = evaluate_ranking_by_category(
            &model, &ent, &rel, &queries, &categories, &filter,
            &RankingOptions::default(),
        );
        let total: usize = by_cat.iter().map(|(_, m)| m.n_queries).sum();
        assert_eq!(total, queries.len() * 2);
        let one_one = by_cat
            .iter()
            .find(|(c, _)| *c == kge_data::RelationCategory::OneToOne)
            .unwrap();
        assert_eq!(one_one.1.n_queries, 4); // two rel-0 triples × 2 dirs
    }
}
