//! Cheap per-epoch validation signal for the plateau LR schedule.
//!
//! Running full MRR or TCA every epoch would dominate training time. The
//! trainer instead watches pairwise validation accuracy: for each sampled
//! validation triple, draw one corrupted negative and check that the
//! positive outscores it. This is monotone in model quality, costs two
//! forward passes per sample, and is deterministic per `(seed, epoch)`.

use crate::tca::corrupt;
use kge_core::{EmbeddingTable, KgeModel};
use kge_data::{FilterIndex, Triple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fraction (0..=1) of validation samples where the positive triple
/// outscores a fresh corrupted negative. `max_samples` bounds the cost;
/// samples are drawn deterministically from `seed`.
#[allow(clippy::too_many_arguments)]
pub fn fast_valid_accuracy(
    model: &dyn KgeModel,
    ent: &EmbeddingTable,
    rel: &EmbeddingTable,
    valid: &[Triple],
    filter: &FilterIndex,
    n_entities: usize,
    max_samples: usize,
    seed: u64,
) -> f64 {
    if valid.is_empty() || max_samples == 0 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let n = valid.len().min(max_samples);
    let mut correct = 0usize;
    // Partial Fisher–Yates: draw `n` distinct validation triples without
    // replacement, deterministically from `seed`. (The former
    // stride-plus-random-offset formula could evaluate one triple several
    // times while never touching another, biasing the plateau signal.)
    let mut idx: Vec<u32> = (0..valid.len() as u32).collect();
    for i in 0..n {
        let j = rng.gen_range(i..valid.len());
        idx.swap(i, j);
        let t = valid[idx[i] as usize];
        let neg = corrupt(t, n_entities, filter, &mut rng);
        let sp = model.score(
            ent.row(t.head as usize),
            rel.row(t.rel as usize),
            ent.row(t.tail as usize),
        );
        let sn = model.score(
            ent.row(neg.head as usize),
            rel.row(neg.rel as usize),
            ent.row(neg.tail as usize),
        );
        if sp > sn {
            correct += 1;
        }
    }
    correct as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use kge_core::DistMult;

    #[test]
    fn perfect_separation_scores_one() {
        let model = DistMult::new(2);
        let mut ent = EmbeddingTable::zeros(10, 2);
        // Entities 0..5 = [1,0]; 5..10 = [0,1]; positives connect same-class.
        for i in 0..10 {
            ent.row_mut(i)[usize::from(i >= 5)] = 1.0;
        }
        let mut rel = EmbeddingTable::zeros(1, 2);
        rel.row_mut(0).copy_from_slice(&[1.0, 1.0]);
        let valid: Vec<Triple> = (0..4).map(|i| Triple::new(i, 0, i + 1)).collect();
        // Register the full bipartite block so corruptions land cross-class.
        let mut known = valid.clone();
        for h in 0..5u32 {
            for t in 0..5u32 {
                known.push(Triple::new(h, 0, t));
            }
        }
        let filter = FilterIndex::from_triples(known.into_iter());
        let acc = fast_valid_accuracy(&model, &ent, &rel, &valid, &filter, 10, 100, 3);
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn zero_model_scores_zero_wins() {
        // All scores identical → positive never strictly outscores.
        let model = DistMult::new(2);
        let ent = EmbeddingTable::zeros(10, 2);
        let rel = EmbeddingTable::zeros(1, 2);
        let valid: Vec<Triple> = (0..4).map(|i| Triple::new(i, 0, i + 1)).collect();
        let filter = FilterIndex::from_triples(valid.iter().copied());
        let acc = fast_valid_accuracy(&model, &ent, &rel, &valid, &filter, 10, 50, 3);
        assert_eq!(acc, 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        use rand::SeedableRng;
        let model = DistMult::new(4);
        let mut rng = StdRng::seed_from_u64(8);
        let ent = EmbeddingTable::xavier(50, 4, &mut rng);
        let rel = EmbeddingTable::xavier(3, 4, &mut rng);
        let valid: Vec<Triple> = (0..30).map(|i| Triple::new(i, i % 3, (i + 9) % 50)).collect();
        let filter = FilterIndex::from_triples(valid.iter().copied());
        let a = fast_valid_accuracy(&model, &ent, &rel, &valid, &filter, 50, 20, 5);
        let b = fast_valid_accuracy(&model, &ent, &rel, &valid, &filter, 50, 20, 5);
        let c = fast_valid_accuracy(&model, &ent, &rel, &valid, &filter, 50, 20, 6);
        assert_eq!(a, b);
        // Different seed may differ (not asserted unequal — could collide).
        let _ = c;
    }

    #[test]
    fn full_sample_covers_every_triple_exactly_once() {
        // Entity 0 is the only non-zero embedding; valid[0] = (0,0,0) is
        // the only triple whose positive strictly outscores any corrupted
        // negative (corruptions replace its head or tail with a zero
        // entity, and (0,0,0) itself is filtered). All other triples score
        // 0 vs 0 and never win. A without-replacement draw over the whole
        // set therefore yields exactly 1/n for every seed; the old biased
        // stride could count the winner zero or multiple times.
        let model = DistMult::new(2);
        let mut ent = EmbeddingTable::zeros(6, 2);
        ent.row_mut(0).copy_from_slice(&[1.0, 1.0]);
        let mut rel = EmbeddingTable::zeros(1, 2);
        rel.row_mut(0).copy_from_slice(&[1.0, 1.0]);
        let mut valid = vec![Triple::new(0, 0, 0)];
        for i in 1..5u32 {
            valid.push(Triple::new(i, 0, i));
        }
        let filter = FilterIndex::from_triples(valid.iter().copied());
        let n = valid.len();
        for seed in 0..20u64 {
            let acc = fast_valid_accuracy(&model, &ent, &rel, &valid, &filter, 6, n, seed);
            assert_eq!(acc, 1.0 / n as f64, "seed {seed}");
        }
    }

    #[test]
    fn empty_inputs_are_zero() {
        let model = DistMult::new(2);
        let ent = EmbeddingTable::zeros(2, 2);
        let rel = EmbeddingTable::zeros(1, 2);
        let filter = FilterIndex::default();
        assert_eq!(
            fast_valid_accuracy(&model, &ent, &rel, &[], &filter, 2, 10, 0),
            0.0
        );
    }
}
