//! # kge-eval — evaluation of knowledge-graph embeddings
//!
//! Plays the role OpenKE's evaluation protocol plays in the paper (§3.2):
//!
//! - [`ranking`]: link-prediction ranking — **raw and filtered MRR**,
//!   Hits@{1,3,10} and mean rank, replacing heads and tails against every
//!   entity, with the filtered variant skipping candidates that are known
//!   true triples. Built on the blocked one-vs-all kernel
//!   ([`kge_core::KgeModel::score_one_vs_all`]) with a reusable
//!   [`RankingWorkspace`]; bit-identical to the scalar reference
//!   [`ranking::rank_of_scalar`].
//! - [`distributed`]: the same metrics with queries sharded across simgrid
//!   ranks and the metric sums allreduced — full-dataset eval inside the
//!   cluster timing model.
//! - [`tca`]: **triple classification accuracy** — per-relation score
//!   thresholds fitted on validation (positives + sampled negatives),
//!   applied to test.
//! - [`quick`]: the cheap per-epoch validation signal the trainer's
//!   learning-rate plateau schedule watches (the paper reduces the LR when
//!   "validation accuracy" stalls for 15 epochs).
//! - [`transpose`]: the tile-blocked column-major entity-table copy the
//!   transposed one-vs-all kernels consume — shared by ranking evaluation
//!   and the `kge-serve` snapshot builder.

pub mod distributed;
pub mod quick;
pub mod ranking;
pub mod tca;
pub mod transpose;

pub use distributed::evaluate_ranking_distributed;
pub use quick::fast_valid_accuracy;
pub use ranking::{
    evaluate_ranking, evaluate_ranking_by_category, evaluate_ranking_by_category_with,
    evaluate_ranking_with, rank_of_scalar, RankingMetrics, RankingOptions, RankingWorkspace,
};
pub use tca::{triple_classification, TcaResult};
pub use transpose::{tile_rows_for, TransposedTable};
