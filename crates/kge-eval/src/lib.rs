//! # kge-eval — evaluation of knowledge-graph embeddings
//!
//! Plays the role OpenKE's evaluation protocol plays in the paper (§3.2):
//!
//! - [`ranking`]: link-prediction ranking — **raw and filtered MRR**,
//!   Hits@{1,3,10} and mean rank, replacing heads and tails against every
//!   entity, with the filtered variant skipping candidates that are known
//!   true triples.
//! - [`tca`]: **triple classification accuracy** — per-relation score
//!   thresholds fitted on validation (positives + sampled negatives),
//!   applied to test.
//! - [`quick`]: the cheap per-epoch validation signal the trainer's
//!   learning-rate plateau schedule watches (the paper reduces the LR when
//!   "validation accuracy" stalls for 15 epochs).

pub mod quick;
pub mod ranking;
pub mod tca;

pub use quick::fast_valid_accuracy;
pub use ranking::{evaluate_ranking, evaluate_ranking_by_category, RankingMetrics, RankingOptions};
pub use tca::{triple_classification, TcaResult};
