//! The triple type.

use serde::{Deserialize, Serialize};

/// A knowledge-graph fact `(head, relation, tail)`, stored as dense ids.
///
/// 32-bit ids keep a triple at 12 bytes — FB250K-scale datasets (16 M
/// facts) fit comfortably in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Triple {
    pub head: u32,
    pub rel: u32,
    pub tail: u32,
}

impl Triple {
    pub fn new(head: u32, rel: u32, tail: u32) -> Self {
        Triple { head, rel, tail }
    }

    /// The triple with its head replaced (negative sampling).
    #[inline]
    pub fn with_head(self, head: u32) -> Self {
        Triple { head, ..self }
    }

    /// The triple with its tail replaced (negative sampling).
    #[inline]
    pub fn with_tail(self, tail: u32) -> Self {
        Triple { tail, ..self }
    }
}

impl From<(u32, u32, u32)> for Triple {
    fn from((head, rel, tail): (u32, u32, u32)) -> Self {
        Triple { head, rel, tail }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_replacement() {
        let t = Triple::new(1, 2, 3);
        assert_eq!(t.with_head(9), Triple::new(9, 2, 3));
        assert_eq!(t.with_tail(9), Triple::new(1, 2, 9));
        assert_eq!(Triple::from((4, 5, 6)), Triple::new(4, 5, 6));
    }

    #[test]
    fn triple_is_12_bytes() {
        assert_eq!(std::mem::size_of::<Triple>(), 12);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = [Triple::new(1, 2, 3), Triple::new(0, 9, 9), Triple::new(1, 1, 9)];
        v.sort();
        assert_eq!(v[0], Triple::new(0, 9, 9));
        assert_eq!(v[1], Triple::new(1, 1, 9));
    }
}
