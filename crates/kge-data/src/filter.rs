//! The all-known-triples index for filtered evaluation and true-negative
//! sampling.

use crate::dataset::Dataset;
use crate::triple::Triple;
use std::collections::{HashMap, HashSet};

/// Index over every triple of a dataset (train + valid + test).
///
/// Supports the two queries KGE evaluation needs:
/// - membership (`contains`), for filtered ranking and for rejecting
///   corrupted triples that are accidentally true;
/// - the known heads/tails of a `(rel, entity)` pair, for filtered-rank
///   computation without scanning.
#[derive(Debug, Clone, Default)]
pub struct FilterIndex {
    all: HashSet<Triple>,
    /// (rel, head) -> tails
    tails: HashMap<(u32, u32), Vec<u32>>,
    /// (rel, tail) -> heads
    heads: HashMap<(u32, u32), Vec<u32>>,
}

impl FilterIndex {
    /// Build from every split of `ds`.
    pub fn build(ds: &Dataset) -> Self {
        Self::from_triples(ds.all_triples())
    }

    /// Build from an explicit triple stream.
    pub fn from_triples(triples: impl Iterator<Item = Triple>) -> Self {
        let mut idx = FilterIndex::default();
        for t in triples {
            if idx.all.insert(t) {
                idx.tails.entry((t.rel, t.head)).or_default().push(t.tail);
                idx.heads.entry((t.rel, t.tail)).or_default().push(t.head);
            }
        }
        idx
    }

    /// Is `(h, r, t)` a known true triple?
    #[inline]
    pub fn contains(&self, t: Triple) -> bool {
        self.all.contains(&t)
    }

    /// All known tails for `(rel, head)`.
    pub fn known_tails(&self, rel: u32, head: u32) -> &[u32] {
        self.tails.get(&(rel, head)).map_or(&[], Vec::as_slice)
    }

    /// All known heads for `(rel, tail)`.
    pub fn known_heads(&self, rel: u32, tail: u32) -> &[u32] {
        self.heads.get(&(rel, tail)).map_or(&[], Vec::as_slice)
    }

    /// Number of indexed triples.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }
}

/// The filter inverted for blocked evaluation: for every `(entity, rel)`
/// query side, the **sorted, deduplicated** list of known completions.
///
/// `evaluate_ranking`'s scalar path probed `FilterIndex::contains` once per
/// candidate — a hash lookup inside the O(|queries| × |E|) inner loop. The
/// blocked path instead sweeps *all* candidates branch-free and then walks
/// these (short) lists once per query as a post-pass rank correction: one
/// hash lookup per query instead of one per candidate.
#[derive(Debug, Clone, Default)]
pub struct GroupedFilter {
    /// (head, rel) → sorted known tails.
    tails: HashMap<(u32, u32), Vec<u32>>,
    /// (tail, rel) → sorted known heads.
    heads: HashMap<(u32, u32), Vec<u32>>,
}

impl GroupedFilter {
    /// Invert an existing [`FilterIndex`].
    pub fn from_index(idx: &FilterIndex) -> Self {
        Self::from_triples(idx.all.iter().copied())
    }

    /// Build directly from a triple stream.
    pub fn from_triples(triples: impl Iterator<Item = Triple>) -> Self {
        let mut g = GroupedFilter::default();
        for t in triples {
            g.tails.entry((t.head, t.rel)).or_default().push(t.tail);
            g.heads.entry((t.tail, t.rel)).or_default().push(t.head);
        }
        for list in g.tails.values_mut().chain(g.heads.values_mut()) {
            list.sort_unstable();
            list.dedup();
        }
        g
    }

    /// Known true tails of `(head, rel, ?)`, ascending.
    #[inline]
    pub fn known_tails(&self, head: u32, rel: u32) -> &[u32] {
        self.tails.get(&(head, rel)).map_or(&[], Vec::as_slice)
    }

    /// Known true heads of `(?, rel, tail)`, ascending.
    #[inline]
    pub fn known_heads(&self, tail: u32, rel: u32) -> &[u32] {
        self.heads.get(&(tail, rel)).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct `(head, rel)` groups (tail-side).
    pub fn n_tail_groups(&self) -> usize {
        self.tails.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> FilterIndex {
        FilterIndex::from_triples(
            [
                Triple::new(0, 0, 1),
                Triple::new(0, 0, 2),
                Triple::new(3, 0, 1),
                Triple::new(0, 1, 1),
            ]
            .into_iter(),
        )
    }

    #[test]
    fn membership() {
        let idx = index();
        assert!(idx.contains(Triple::new(0, 0, 1)));
        assert!(!idx.contains(Triple::new(1, 0, 0)));
        assert_eq!(idx.len(), 4);
    }

    #[test]
    fn known_tails_and_heads() {
        let idx = index();
        assert_eq!(idx.known_tails(0, 0), &[1, 2]);
        assert_eq!(idx.known_heads(0, 1), &[0, 3]);
        assert_eq!(idx.known_tails(9, 9), &[] as &[u32]);
    }

    #[test]
    fn duplicates_are_ignored() {
        let idx = FilterIndex::from_triples(
            [Triple::new(0, 0, 1), Triple::new(0, 0, 1)].into_iter(),
        );
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.known_tails(0, 0), &[1]);
    }

    #[test]
    fn grouped_filter_lists_are_sorted_and_deduped() {
        let g = GroupedFilter::from_triples(
            [
                Triple::new(0, 0, 2),
                Triple::new(0, 0, 1),
                Triple::new(0, 0, 2), // duplicate
                Triple::new(3, 0, 1),
                Triple::new(0, 1, 1),
            ]
            .into_iter(),
        );
        assert_eq!(g.known_tails(0, 0), &[1, 2]);
        assert_eq!(g.known_heads(1, 0), &[0, 3]);
        assert_eq!(g.known_tails(0, 1), &[1]);
        assert_eq!(g.known_tails(9, 9), &[] as &[u32]);
        assert_eq!(g.n_tail_groups(), 3);
    }

    #[test]
    fn grouped_filter_agrees_with_index_membership() {
        let idx = index();
        let g = GroupedFilter::from_index(&idx);
        // Every candidate the scalar path would skip via `contains` appears
        // in the grouped list, and vice versa.
        for rel in 0..2u32 {
            for a in 0..4u32 {
                for b in 0..4u32 {
                    let t = Triple::new(a, rel, b);
                    assert_eq!(
                        idx.contains(t),
                        g.known_tails(a, rel).contains(&b),
                        "tail side {t:?}"
                    );
                    assert_eq!(
                        idx.contains(t),
                        g.known_heads(b, rel).contains(&a),
                        "head side {t:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn build_from_dataset_spans_splits() {
        let ds = Dataset {
            name: "t".into(),
            n_entities: 4,
            n_relations: 1,
            train: vec![Triple::new(0, 0, 1)],
            valid: vec![Triple::new(1, 0, 2)],
            test: vec![Triple::new(2, 0, 3)],
        };
        let idx = FilterIndex::build(&ds);
        assert_eq!(idx.len(), 3);
        assert!(idx.contains(Triple::new(2, 0, 3)));
    }
}
