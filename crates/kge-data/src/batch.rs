//! Epoch shuffling, batching, and sharding across nodes.

use crate::triple::Triple;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Split `triples` into `p` contiguous shards of near-equal size
/// (difference ≤ 1), the baseline uniform distribution of the paper.
pub fn uniform_shards(triples: &[Triple], p: usize) -> Vec<Vec<Triple>> {
    assert!(p >= 1);
    let n = triples.len();
    let base = n / p;
    let extra = n % p;
    let mut out = Vec::with_capacity(p);
    let mut start = 0usize;
    for r in 0..p {
        let len = base + usize::from(r < extra);
        out.push(triples[start..start + len].to_vec());
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Deterministic per-epoch shuffler: same `(seed, epoch)` ⇒ same order.
#[derive(Debug, Clone)]
pub struct EpochShuffler {
    seed: u64,
}

impl EpochShuffler {
    pub fn new(seed: u64) -> Self {
        EpochShuffler { seed }
    }

    /// Shuffle `data` in place for the given epoch.
    pub fn shuffle(&self, data: &mut [Triple], epoch: u64) {
        let mut rng = StdRng::seed_from_u64(self.seed ^ epoch.wrapping_mul(0x9E3779B97F4A7C15));
        for i in (1..data.len()).rev() {
            let j = rng.gen_range(0..=i);
            data.swap(i, j);
        }
    }
}

/// Iterate `data` in batches of `batch_size` (last batch may be short).
pub fn batches(data: &[Triple], batch_size: usize) -> impl Iterator<Item = &[Triple]> {
    assert!(batch_size >= 1);
    data.chunks(batch_size)
}

/// Number of batches every node runs per epoch when each node holds
/// `shard_len` triples: the paper trains "equal number of batches per
/// worker", so all nodes use the max shard's batch count (short nodes
/// simply run their last batch smaller or resample — we use the count of
/// the *largest* shard for the synchronous schedule).
pub fn batches_per_epoch(shard_len: usize, batch_size: usize) -> usize {
    shard_len.div_ceil(batch_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triples(n: usize) -> Vec<Triple> {
        (0..n as u32).map(|i| Triple::new(i, 0, i)).collect()
    }

    #[test]
    fn shards_cover_and_balance() {
        let data = triples(10);
        let shards = uniform_shards(&data, 3);
        assert_eq!(shards.len(), 3);
        let sizes: Vec<usize> = shards.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        // Union reproduces the input set.
        let mut all: Vec<Triple> = shards.concat();
        all.sort();
        assert_eq!(all, data);
    }

    #[test]
    fn single_shard_is_whole_input() {
        let data = triples(5);
        let shards = uniform_shards(&data, 1);
        assert_eq!(shards[0], data);
    }

    #[test]
    fn more_shards_than_triples_leaves_empties() {
        let data = triples(2);
        let shards = uniform_shards(&data, 4);
        assert_eq!(shards.iter().filter(|s| s.is_empty()).count(), 2);
    }

    #[test]
    fn shuffler_is_deterministic_and_epoch_dependent() {
        let sh = EpochShuffler::new(99);
        let mut a = triples(50);
        let mut b = triples(50);
        sh.shuffle(&mut a, 3);
        sh.shuffle(&mut b, 3);
        assert_eq!(a, b);
        let mut c = triples(50);
        sh.shuffle(&mut c, 4);
        assert_ne!(a, c);
        // Still a permutation.
        let mut sorted = c.clone();
        sorted.sort();
        assert_eq!(sorted, triples(50));
    }

    #[test]
    fn batch_iteration() {
        let data = triples(7);
        let got: Vec<usize> = batches(&data, 3).map(|b| b.len()).collect();
        assert_eq!(got, vec![3, 3, 1]);
        assert_eq!(batches_per_epoch(7, 3), 3);
        assert_eq!(batches_per_epoch(6, 3), 2);
        assert_eq!(batches_per_epoch(0, 3), 0);
    }
}
