//! # kge-data — knowledge-graph datasets
//!
//! Substrate crate providing everything the paper's experiments need on the
//! data side:
//!
//! - [`Triple`] / [`Dataset`]: compact triple stores with train/valid/test
//!   splits and structural statistics.
//! - [`synth`]: a **Freebase-shaped synthetic generator**. The paper
//!   evaluates on FB15K and FB250K, which are skims of the (discontinued)
//!   Freebase dump; at full scale they are not redistributable inside this
//!   offline environment, so the generator produces graphs with the same
//!   structural statistics that the paper's strategies are sensitive to:
//!   power-law entity degrees, Zipf-distributed relation frequencies, a
//!   1-1 / 1-N / N-1 / N-N relation-type mix, and learnable regularity
//!   (relations act as noisy mappings between entity groups) so embedding
//!   quality metrics (MRR, TCA) behave qualitatively like on Freebase.
//! - [`io`]: OpenKE-style TSV loading, so the *real* FB15K/FB250K can be
//!   dropped in when available.
//! - [`batch`]: seeded epoch shuffling, batching, and uniform sharding.
//! - [`FilterIndex`]: the all-known-triples index used for filtered
//!   ranking metrics and for avoiding false-negative samples.

pub mod batch;
pub mod dataset;
pub mod filter;
pub mod io;
pub mod powerlaw;
pub mod synth;
pub mod triple;
pub mod vocab;

pub use dataset::{classify_relations, Dataset, DatasetStats, RelationCategory, Split};
pub use filter::{FilterIndex, GroupedFilter};
pub use powerlaw::{PermutedZipf, ZipfSampler};
pub use synth::{SynthConfig, SynthPreset};
pub use triple::Triple;
pub use vocab::Vocab;
