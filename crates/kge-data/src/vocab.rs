//! String ⇄ dense-id vocabularies for entities and relations.

use std::collections::HashMap;

/// An append-only bidirectional mapping between names and dense `u32` ids.
#[derive(Debug, Clone, Default)]
pub struct Vocab {
    by_name: HashMap<String, u32>,
    names: Vec<String>,
}

impl Vocab {
    pub fn new() -> Self {
        Self::default()
    }

    /// Id for `name`, inserting it if unseen.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.by_name.insert(name.to_owned(), id);
        self.names.push(name.to_owned());
        id
    }

    /// Id for `name` if already interned.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Name for `id`.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.intern("/m/alpha");
        let b = v.intern("/m/beta");
        assert_ne!(a, b);
        assert_eq!(v.intern("/m/alpha"), a);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn lookup_both_directions() {
        let mut v = Vocab::new();
        let id = v.intern("capital_of");
        assert_eq!(v.get("capital_of"), Some(id));
        assert_eq!(v.name(id), Some("capital_of"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.name(999), None);
    }

    #[test]
    fn ids_are_dense_in_insertion_order() {
        let mut v = Vocab::new();
        for i in 0..10 {
            assert_eq!(v.intern(&format!("e{i}")), i as u32);
        }
    }
}
