//! Skewed discrete samplers: Zipf (for relation frequencies) and
//! power-law popularity (for entity degrees).
//!
//! Freebase skims have heavily skewed relation frequencies and entity
//! degrees; these samplers reproduce that shape in the synthetic
//! generator. Sampling uses an inverse-CDF table with binary search —
//! O(log n) per draw, deterministic given the RNG.

use rand::Rng;

/// Discrete sampler over `0..n` with probability ∝ `(i+1)^(-exponent)`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `n ≥ 1` items with skew `exponent ≥ 0`
    /// (0 = uniform; Freebase relation frequencies resemble ~0.9–1.1).
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n >= 1, "need at least one item");
        assert!(exponent >= 0.0 && exponent.is_finite());
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += ((i + 1) as f64).powf(-exponent);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        // Guard against FP drift on the last bucket.
        *cdf.last_mut().unwrap() = 1.0;
        ZipfSampler { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        false // construction requires n >= 1
    }

    /// Draw one index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index with cdf >= u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of item `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

/// Zipf sampler composed with a seeded permutation of the id space, so the
/// popularity ranks are spread across `0..n` instead of piling up at the
/// low ids. This is the shape real query traffic has against an entity
/// table: a few arbitrary ids are hot, and they are *not* the first rows
/// of the table (which would make every hot lookup a same-tile cache hit
/// and flatter the serving benchmark).
#[derive(Debug, Clone)]
pub struct PermutedZipf {
    ranks: ZipfSampler,
    /// `rank → id`: seeded Fisher–Yates shuffle of `0..n`.
    ids: Vec<u32>,
}

impl PermutedZipf {
    /// Sampler over `0..n` ids whose popularity follows a Zipf law with
    /// `exponent`, with the rank→id assignment drawn from `seed`.
    pub fn new(n: usize, exponent: f64, seed: u64) -> Self {
        assert!(n >= 1 && n <= u32::MAX as usize);
        let mut ids: Vec<u32> = (0..n as u32).collect();
        // Seeded Fisher–Yates via a SplitMix64 counter stream (matches the
        // shim StdRng construction; independent of the sampling RNG).
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        for i in (1..n).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            ids.swap(i, j);
        }
        PermutedZipf {
            ranks: ZipfSampler::new(n, exponent),
            ids,
        }
    }

    /// Number of ids.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        false // construction requires n >= 1
    }

    /// Draw one id.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        self.ids[self.ranks.sample(rng)]
    }

    /// The id holding popularity rank `r` (0 = hottest).
    pub fn id_at_rank(&self, r: usize) -> u32 {
        self.ids[r]
    }
}

/// Deal `total` items into `n` buckets proportionally to a Zipf pmf,
/// guaranteeing every bucket gets at least `min_per_bucket` (used to give
/// every relation at least a few triples).
pub fn zipf_allocation(n: usize, total: usize, exponent: f64, min_per_bucket: usize) -> Vec<usize> {
    assert!(n >= 1);
    assert!(
        total >= n * min_per_bucket,
        "total {total} too small for {n} buckets × min {min_per_bucket}"
    );
    let z = ZipfSampler::new(n, exponent);
    let spare = total - n * min_per_bucket;
    let mut out: Vec<usize> = (0..n)
        .map(|i| min_per_bucket + (z.pmf(i) * spare as f64).floor() as usize)
        .collect();
    // Distribute rounding remainder to the head of the distribution.
    let mut assigned: usize = out.iter().sum();
    let mut i = 0;
    while assigned < total {
        out[i % n] += 1;
        assigned += 1;
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_exponent_zero() {
        let z = ZipfSampler::new(4, 0.0);
        for i in 0..4 {
            assert!((z.pmf(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skewed_head_heavier_than_tail() {
        let z = ZipfSampler::new(100, 1.0);
        assert!(z.pmf(0) > 10.0 * z.pmf(99));
    }

    #[test]
    fn samples_cover_support_with_head_bias() {
        let z = ZipfSampler::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[9], "head must dominate tail: {counts:?}");
        assert!(counts.iter().all(|&c| c > 0), "all items reachable");
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = ZipfSampler::new(57, 0.8);
        let s: f64 = (0..57).map(|i| z.pmf(i)).sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn allocation_exact_total_and_minimum() {
        let alloc = zipf_allocation(10, 1000, 1.0, 5);
        assert_eq!(alloc.iter().sum::<usize>(), 1000);
        assert!(alloc.iter().all(|&a| a >= 5));
        assert!(alloc[0] > alloc[9]);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn allocation_rejects_impossible_minimum() {
        let _ = zipf_allocation(10, 5, 1.0, 1);
    }

    #[test]
    fn permuted_zipf_is_a_permutation() {
        let p = PermutedZipf::new(257, 1.0, 12);
        let mut seen = vec![false; 257];
        for r in 0..257 {
            let id = p.id_at_rank(r) as usize;
            assert!(!seen[id]);
            seen[id] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn permuted_zipf_hot_id_dominates_and_is_deterministic() {
        let p = PermutedZipf::new(100, 1.1, 5);
        let q = PermutedZipf::new(100, 1.1, 5);
        assert_eq!(p.id_at_rank(0), q.id_at_rank(0));
        let hot = p.id_at_rank(0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[p.sample(&mut rng) as usize] += 1;
        }
        assert_eq!(
            counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, c)| *c)
                .map(|(i, _)| i as u32),
            Some(hot)
        );
    }

    #[test]
    fn permuted_zipf_seed_moves_the_hot_id() {
        let hot: Vec<u32> = (0..8)
            .map(|s| PermutedZipf::new(1000, 1.0, s).id_at_rank(0))
            .collect();
        let first = hot[0];
        assert!(hot.iter().any(|&h| h != first), "hot id stuck at {first}");
    }
}
