//! OpenKE-style TSV io so the real FB15K / FB250K drop in when available.
//!
//! Format: one triple per line, `head<TAB>relation<TAB>tail`, where fields
//! are either raw names (interned into a [`Vocab`]) or integer ids. A
//! dataset directory holds `train.txt`, `valid.txt`, `test.txt`.

use crate::dataset::Dataset;
use crate::triple::Triple;
use crate::vocab::Vocab;
use std::fs;
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;

/// Parse one split's worth of TSV lines, interning names.
pub fn parse_tsv<R: BufRead>(
    reader: R,
    entities: &mut Vocab,
    relations: &mut Vocab,
) -> io::Result<Vec<Triple>> {
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (h, r, t) = match (parts.next(), parts.next(), parts.next()) {
            (Some(h), Some(r), Some(t)) => (h, r, t),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: expected 3 tab-separated fields: {line:?}", lineno + 1),
                ))
            }
        };
        out.push(Triple::new(
            entities.intern(h),
            relations.intern(r),
            entities.intern(t),
        ));
    }
    Ok(out)
}

/// Load `train.txt` / `valid.txt` / `test.txt` from `dir`. Missing
/// valid/test files yield empty splits; a missing train file is an error.
pub fn load_dir(dir: &Path) -> io::Result<(Dataset, Vocab, Vocab)> {
    let mut entities = Vocab::new();
    let mut relations = Vocab::new();
    let read = |name: &str, entities: &mut Vocab, relations: &mut Vocab| -> io::Result<Vec<Triple>> {
        let path = dir.join(name);
        if !path.exists() {
            return Ok(Vec::new());
        }
        parse_tsv(BufReader::new(fs::File::open(path)?), entities, relations)
    };
    let train = read("train.txt", &mut entities, &mut relations)?;
    if train.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{}: no train.txt (or it is empty)", dir.display()),
        ));
    }
    let valid = read("valid.txt", &mut entities, &mut relations)?;
    let test = read("test.txt", &mut entities, &mut relations)?;
    let ds = Dataset {
        name: dir
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "dataset".into()),
        n_entities: entities.len(),
        n_relations: relations.len(),
        train,
        valid,
        test,
    };
    ds.validate()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok((ds, entities, relations))
}

/// Write a split as TSV of numeric ids.
pub fn write_tsv<W: Write>(mut w: W, triples: &[Triple]) -> io::Result<()> {
    for t in triples {
        writeln!(w, "{}\t{}\t{}", t.head, t.rel, t.tail)?;
    }
    Ok(())
}

/// Save all three splits of `ds` into `dir` (numeric-id TSV).
pub fn save_dir(ds: &Dataset, dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    for (name, split) in [
        ("train.txt", &ds.train),
        ("valid.txt", &ds.valid),
        ("test.txt", &ds.test),
    ] {
        write_tsv(fs::File::create(dir.join(name))?, split)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_tsv() {
        let input = "delhi\tcapital_of\tindia\nparis\tcapital_of\tfrance\n";
        let mut e = Vocab::new();
        let mut r = Vocab::new();
        let triples = parse_tsv(input.as_bytes(), &mut e, &mut r).unwrap();
        assert_eq!(triples.len(), 2);
        assert_eq!(e.len(), 4);
        assert_eq!(r.len(), 1);
        assert_eq!(triples[0], Triple::new(0, 0, 1));
        assert_eq!(triples[1], Triple::new(2, 0, 3));
    }

    #[test]
    fn parse_skips_blank_and_comment_lines() {
        let input = "\n# comment\na\tb\tc\n";
        let mut e = Vocab::new();
        let mut r = Vocab::new();
        let triples = parse_tsv(input.as_bytes(), &mut e, &mut r).unwrap();
        assert_eq!(triples.len(), 1);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        let input = "only\ttwo\n";
        let mut e = Vocab::new();
        let mut r = Vocab::new();
        let err = parse_tsv(input.as_bytes(), &mut e, &mut r).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn roundtrip_through_directory() {
        let dir = std::env::temp_dir().join(format!("kge-io-test-{}", std::process::id()));
        let ds = Dataset {
            name: "rt".into(),
            n_entities: 3,
            n_relations: 2,
            train: vec![Triple::new(0, 0, 1), Triple::new(1, 1, 2)],
            valid: vec![Triple::new(0, 1, 2)],
            test: vec![Triple::new(2, 0, 0)],
        };
        save_dir(&ds, &dir).unwrap();
        let (loaded, ents, rels) = load_dir(&dir).unwrap();
        assert_eq!(loaded.train.len(), 2);
        assert_eq!(loaded.valid.len(), 1);
        assert_eq!(loaded.test.len(), 1);
        // Ids were written numerically and re-interned as names; the graph
        // is isomorphic even if ids permute.
        assert_eq!(ents.len(), 3);
        assert_eq!(rels.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_dir_errors() {
        let err = load_dir(Path::new("/nonexistent/kge-data")).unwrap_err();
        assert!(err.to_string().contains("train.txt"));
    }
}
