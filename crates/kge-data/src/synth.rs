//! Freebase-shaped synthetic knowledge-graph generator.
//!
//! The paper evaluates on FB15K (15 K entities / 1.3 K relations / 600 K
//! triples) and FB250K (240 K / 9.3 K / 16 M), both skimmed from Freebase.
//! This generator produces graphs with the structural statistics those
//! datasets exhibit and that the paper's five strategies are sensitive to:
//!
//! - **Zipf-distributed relation frequencies** — drives the balance
//!   behaviour of the relation-partition strategy (§4.4).
//! - **Power-law entity popularity** — drives how many *distinct* entity
//!   rows a batch touches, which decides the all-reduce/all-gather
//!   crossover (§4.1) and the gradient-row sparsity (§4.2, Fig. 2).
//! - **Relation-type mix** (1-1 / 1-N / N-1 / N-N, as in Bordes et al.'s
//!   FB15K analysis) — gives the score distribution its hard-vs-easy
//!   negative structure, which the sample-selection strategy (§4.5)
//!   exploits.
//! - **Learnable regularity**: each relation acts as a (noisy) mapping
//!   between two entity intervals whose sizes are matched to the
//!   relation's triple budget (so the pattern space is never exhausted
//!   and the graph stays learnable), and the intervals of different
//!   relations overlap, sharing entities the way Freebase domains do.
//!
//! Generation is fully deterministic given the config's `seed`.

use crate::dataset::Dataset;
use crate::powerlaw::{zipf_allocation, ZipfSampler};
use crate::triple::Triple;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Parameters of the synthetic generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SynthConfig {
    pub name: String,
    pub n_entities: usize,
    pub n_relations: usize,
    /// Total distinct triples to generate (across all splits).
    pub n_triples: usize,
    /// Skew of relation frequencies. 0.75 keeps the head relation at a
    /// few percent of all triples, like Freebase skims.
    pub relation_zipf: f64,
    /// Skew of entity popularity within a relation's entity interval.
    pub entity_zipf: f64,
    /// Fraction of each relation's triples drawn uniformly at random
    /// (models Freebase noise / long-tail facts).
    pub noise_frac: f64,
    /// Fraction of triples held out for validation.
    pub valid_frac: f64,
    /// Fraction of triples held out for test.
    pub test_frac: f64,
    pub seed: u64,
}

/// Named presets matching the paper's two datasets. `scale` linearly
/// scales entities, relations and triples together, preserving per-entity
/// degree and relation skew; `scale = 1.0` reproduces the full sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthPreset {
    /// FB15K: 14 951 entities, 1 345 relations, ~592 K triples.
    Fb15kLike,
    /// FB250K: 240 K entities, 9 280 relations, ~16 M triples.
    Fb250kLike,
}

impl SynthPreset {
    /// Build the generator config at the given scale.
    pub fn config(self, scale: f64, seed: u64) -> SynthConfig {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let (name, ents, rels, triples) = match self {
            SynthPreset::Fb15kLike => ("fb15k-like", 14951.0, 1345.0, 592_213.0),
            SynthPreset::Fb250kLike => ("fb250k-like", 240_000.0, 9280.0, 16_000_000.0),
        };
        let n_entities = ((ents * scale) as usize).max(64);
        let n_relations = ((rels * scale) as usize).max(8);
        let n_triples = ((triples * scale) as usize).max(n_relations * 16);
        SynthConfig {
            name: format!("{name}@{scale}"),
            n_entities,
            n_relations,
            n_triples,
            relation_zipf: 0.75,
            entity_zipf: 0.8,
            noise_frac: 0.05,
            valid_frac: 0.04,
            test_frac: 0.05,
            seed,
        }
    }
}

/// Relation pattern types (Bordes et al. categorization of FB15K).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RelKind {
    OneToOne,
    OneToMany,
    ManyToOne,
    ManyToMany,
}

impl RelKind {
    fn of(rel: usize) -> Self {
        match rel % 4 {
            0 => RelKind::ManyToMany, // most Freebase mass is N-N
            1 => RelKind::OneToOne,
            2 => RelKind::OneToMany,
            _ => RelKind::ManyToOne,
        }
    }
}

/// Latent rank of the hidden ground-truth model that decides which pairs
/// are "true". Small enough that a modest trained model can recover it.
const GT_RANK: usize = 8;

/// Hidden low-rank ground truth: a random ComplEx-style model over all
/// entities and relations. Triples are sampled to have *high* ground-truth
/// score, so (a) the generated graph is globally consistent and learnable,
/// and (b) held-out true pairs also score high under a well-trained model
/// — the property real knowledge graphs have that makes link prediction
/// meaningful (unseen facts are predictable from latent structure).
struct GroundTruth {
    ent: Vec<f32>, // n_e × 2·GT_RANK
    rel: Vec<f32>, // n_r × 2·GT_RANK
}

impl GroundTruth {
    fn build(config: &SynthConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xD1B54A32D192ED03);
        let d = 2 * GT_RANK;
        let mut ent = vec![0.0f32; config.n_entities * d];
        let mut rel = vec![0.0f32; config.n_relations * d];
        for v in ent.iter_mut().chain(rel.iter_mut()) {
            *v = rng.gen_range(-1.0f32..1.0);
        }
        GroundTruth { ent, rel }
    }

    #[inline]
    fn score(&self, h: usize, r: usize, t: usize) -> f32 {
        let d = GT_RANK;
        let he = &self.ent[h * 2 * d..(h + 1) * 2 * d];
        let re = &self.rel[r * 2 * d..(r + 1) * 2 * d];
        let te = &self.ent[t * 2 * d..(t + 1) * 2 * d];
        let (hr, hi) = he.split_at(d);
        let (rr, ri) = re.split_at(d);
        let (tr, ti) = te.split_at(d);
        let mut s = 0.0f32;
        for k in 0..d {
            s += rr[k] * (hr[k] * tr[k] + hi[k] * ti[k])
                + ri[k] * (hr[k] * ti[k] - hi[k] * tr[k]);
        }
        s
    }
}

/// One relation's sampling pattern: head/tail entity intervals sized to
/// the relation's budget, plus how concentrated the tail choice is
/// (the Bordes 1-1 / 1-N / N-1 / N-N mix expressed as score sharpness).
struct RelPattern {
    head_lo: usize,
    // Interval sizes are read by the structural-statistics tests.
    #[cfg_attr(not(test), allow(dead_code))]
    head_size: usize,
    tail_lo: usize,
    #[cfg_attr(not(test), allow(dead_code))]
    tail_size: usize,
    /// Ground-truth-guided tail choice: candidates scored per draw; more
    /// candidates ⇒ sharper (more functional) relation.
    candidates: usize,
    head_sampler: ZipfSampler,
    tail_sampler: ZipfSampler,
}

impl RelPattern {
    fn build(rel: usize, budget: usize, config: &SynthConfig) -> Self {
        let n_e = config.n_entities;
        let kind = RelKind::of(rel);
        // Interval sizes keep the pattern capacity comfortably above the
        // budget so deduplication never degenerates into noise, while the
        // candidate count sets how determined the tail is given the head.
        // Capacities are kept *tight* (≈1.3–2× the budget): the observed
        // triples then cover most of each relation's plausible pattern
        // space, so a high-scoring corruption is usually a *known* true
        // triple (rejected by the filter) rather than an unobserved true
        // pair — the property real KG skims have that makes
        // hardest-negative selection (§4.5) helpful instead of harmful.
        let (head_size, tail_size, candidates) = match kind {
            // Nearly functional: few plausible tails per head.
            RelKind::OneToOne => {
                let s = (budget + budget / 3).clamp(32, n_e);
                (s, s, 48)
            }
            // Few hub heads fanning out to a broad tail set.
            RelKind::OneToMany => {
                let hubs = (budget / 32).clamp(1, n_e / 4);
                let tails = (2 * budget / hubs).clamp(32, n_e);
                (hubs, tails, 4)
            }
            RelKind::ManyToOne => {
                let hubs = (budget / 32).clamp(1, n_e / 4);
                let heads = (2 * budget / hubs).clamp(32, n_e);
                (heads, hubs, 4)
            }
            // Broad but latent-structured many-to-many: the GT-guided
            // choice of best-of-`candidates` concentrates tails, so the
            // effective pair space is ≈ s²/candidates.
            RelKind::ManyToMany => {
                let s = (budget).clamp(32, n_e);
                (s, s, 16)
            }
        };
        let place = |salt: u64, size: usize| -> usize {
            if size >= n_e {
                0
            } else {
                (splitmix(config.seed ^ (rel as u64).wrapping_mul(salt)) as usize)
                    % (n_e - size + 1)
            }
        };
        RelPattern {
            head_lo: place(0x9E3779B97F4A7C15, head_size),
            head_size,
            tail_lo: place(0xC2B2AE3D27D4EB4F, tail_size),
            tail_size,
            candidates,
            head_sampler: ZipfSampler::new(head_size, config.entity_zipf),
            tail_sampler: ZipfSampler::new(tail_size, config.entity_zipf),
        }
    }

    /// Draw one structured (head, tail) pair: popularity-sampled head,
    /// then the best-scoring tail (under the hidden ground truth) among
    /// `candidates` popularity-sampled options.
    fn draw(&self, rel: usize, gt: &GroundTruth, rng: &mut StdRng) -> (usize, usize) {
        let h = self.head_lo + self.head_sampler.sample(rng);
        let mut best_t = self.tail_lo + self.tail_sampler.sample(rng);
        let mut best_s = gt.score(h, rel, best_t);
        for _ in 1..self.candidates {
            let t = self.tail_lo + self.tail_sampler.sample(rng);
            let s = gt.score(h, rel, t);
            if s > best_s {
                best_s = s;
                best_t = t;
            }
        }
        (h, best_t)
    }
}

/// Generate a dataset from `config`.
pub fn generate(config: &SynthConfig) -> Dataset {
    assert!(config.n_entities >= 16);
    assert!(config.n_relations >= 1);
    assert!(config.valid_frac + config.test_frac < 0.5);
    let mut rng = StdRng::seed_from_u64(config.seed);

    let per_relation = zipf_allocation(
        config.n_relations,
        config.n_triples,
        config.relation_zipf,
        (config.n_triples / config.n_relations / 4).clamp(4, 64),
    );

    let gt = GroundTruth::build(config);
    let mut seen: HashSet<Triple> = HashSet::with_capacity(config.n_triples * 2);
    let mut triples: Vec<Triple> = Vec::with_capacity(config.n_triples);

    for (rel, &budget) in per_relation.iter().enumerate() {
        let pattern = RelPattern::build(rel, budget, config);
        let mut produced = 0usize;
        let mut attempts = 0usize;
        let max_attempts = budget * 20 + 100;
        while produced < budget && attempts < max_attempts {
            attempts += 1;
            let t = if rng.gen_bool(config.noise_frac) {
                Triple::new(
                    rng.gen_range(0..config.n_entities) as u32,
                    rel as u32,
                    rng.gen_range(0..config.n_entities) as u32,
                )
            } else {
                let (h, t) = pattern.draw(rel, &gt, &mut rng);
                Triple::new(h as u32, rel as u32, t as u32)
            };
            if seen.insert(t) {
                triples.push(t);
                produced += 1;
            }
        }
    }

    // Shuffle, then split so that every entity/relation in valid/test was
    // already seen in train (the real datasets' construction guarantees
    // this; evaluation on unseen ids is meaningless).
    shuffle(&mut triples, &mut rng);
    let n = triples.len();
    let n_valid = (n as f64 * config.valid_frac) as usize;
    let n_test = (n as f64 * config.test_frac) as usize;

    let mut ent_seen = vec![false; config.n_entities];
    let mut rel_seen = vec![false; config.n_relations];
    let mut train = Vec::with_capacity(n - n_valid - n_test);
    let mut valid = Vec::with_capacity(n_valid);
    let mut test = Vec::with_capacity(n_test);
    for t in triples {
        let known =
            ent_seen[t.head as usize] && ent_seen[t.tail as usize] && rel_seen[t.rel as usize];
        if known && valid.len() < n_valid {
            valid.push(t);
        } else if known && test.len() < n_test {
            test.push(t);
        } else {
            ent_seen[t.head as usize] = true;
            ent_seen[t.tail as usize] = true;
            rel_seen[t.rel as usize] = true;
            train.push(t);
        }
    }

    let ds = Dataset {
        name: config.name.clone(),
        n_entities: config.n_entities,
        n_relations: config.n_relations,
        train,
        valid,
        test,
    };
    debug_assert!(ds.validate().is_ok());
    ds
}

/// Fisher–Yates with the provided RNG (deterministic per seed).
fn shuffle<T>(v: &mut [T], rng: &mut StdRng) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

/// SplitMix64 — cheap deterministic hash for per-relation constants.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SynthConfig {
        SynthConfig {
            name: "test".into(),
            n_entities: 500,
            n_relations: 24,
            n_triples: 8000,
            relation_zipf: 1.0,
            entity_zipf: 0.8,
            noise_frac: 0.05,
            valid_frac: 0.05,
            test_frac: 0.05,
            seed: 42,
        }
    }

    #[test]
    fn generates_requested_shape() {
        let ds = generate(&small_config());
        assert!(ds.validate().is_ok());
        let total = ds.train.len() + ds.valid.len() + ds.test.len();
        // Dedup may fall slightly short of the budget but must be close.
        assert!(total > 7500, "got {total}");
        assert!(!ds.valid.is_empty() && !ds.test.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&small_config());
        let b = generate(&small_config());
        assert_eq!(a.train, b.train);
        assert_eq!(a.valid, b.valid);
        assert_eq!(a.test, b.test);
        let mut cfg = small_config();
        cfg.seed = 43;
        let c = generate(&cfg);
        assert_ne!(a.train, c.train, "different seeds, different data");
    }

    #[test]
    fn no_duplicate_triples() {
        let ds = generate(&small_config());
        let set: HashSet<Triple> = ds.all_triples().collect();
        assert_eq!(set.len(), ds.all_triples().count());
    }

    #[test]
    fn eval_ids_appear_in_train() {
        let ds = generate(&small_config());
        let mut ent_in_train = vec![false; ds.n_entities];
        let mut rel_in_train = vec![false; ds.n_relations];
        for t in &ds.train {
            ent_in_train[t.head as usize] = true;
            ent_in_train[t.tail as usize] = true;
            rel_in_train[t.rel as usize] = true;
        }
        for t in ds.valid.iter().chain(&ds.test) {
            assert!(ent_in_train[t.head as usize]);
            assert!(ent_in_train[t.tail as usize]);
            assert!(rel_in_train[t.rel as usize]);
        }
    }

    #[test]
    fn relation_frequencies_are_skewed() {
        let ds = generate(&small_config());
        let stats = ds.stats();
        assert!(
            stats.relation_skew() > 2.0,
            "skew {} too uniform",
            stats.relation_skew()
        );
    }

    #[test]
    fn noise_stays_bounded_for_head_relations() {
        // The pattern capacity must not be exhausted: structured pairs
        // (inside the head/tail intervals) must dominate even for the
        // largest relation.
        let cfg = small_config();
        let ds = generate(&cfg);
        let stats = ds.stats();
        let head_rel = (0..cfg.n_relations)
            .max_by_key(|&r| stats.relation_counts[r])
            .unwrap() as u32;
        let pattern = RelPattern::build(
            head_rel as usize,
            stats.relation_counts[head_rel as usize],
            &cfg,
        );
        let in_pattern = ds
            .train
            .iter()
            .filter(|t| t.rel == head_rel)
            .filter(|t| {
                let h = t.head as usize;
                let tt = t.tail as usize;
                h >= pattern.head_lo
                    && h < pattern.head_lo + pattern.head_size
                    && tt >= pattern.tail_lo
                    && tt < pattern.tail_lo + pattern.tail_size
            })
            .count();
        let total = ds.train.iter().filter(|t| t.rel == head_rel).count();
        assert!(
            in_pattern as f64 > 0.7 * total as f64,
            "structured {in_pattern}/{total}"
        );
    }

    #[test]
    fn presets_scale_linearly() {
        let full = SynthPreset::Fb15kLike.config(1.0, 0);
        assert_eq!(full.n_entities, 14951);
        assert_eq!(full.n_relations, 1345);
        let tenth = SynthPreset::Fb15kLike.config(0.1, 0);
        assert_eq!(tenth.n_entities, 1495);
        assert!((tenth.n_triples as f64 - full.n_triples as f64 * 0.1).abs() < 2.0);
        let big = SynthPreset::Fb250kLike.config(0.02, 0);
        assert_eq!(big.n_entities, 4800);
        assert_eq!(big.n_relations, 185);
    }

    #[test]
    fn tiny_scale_generates_quickly_and_validly() {
        let cfg = SynthPreset::Fb15kLike.config(0.01, 7);
        let ds = generate(&cfg);
        assert!(ds.validate().is_ok());
        assert!(ds.train.len() > 1000);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn preset_rejects_zero_scale() {
        let _ = SynthPreset::Fb15kLike.config(0.0, 0);
    }
}
