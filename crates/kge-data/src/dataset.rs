//! Datasets: triples plus vocab sizes and splits.

use crate::triple::Triple;
use serde::{Deserialize, Serialize};

/// Which split a triple belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Split {
    Train,
    Valid,
    Test,
}

/// A knowledge graph with train/valid/test splits.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Dataset name for reports (e.g. `"fb15k-like@0.1"`).
    pub name: String,
    pub n_entities: usize,
    pub n_relations: usize,
    pub train: Vec<Triple>,
    pub valid: Vec<Triple>,
    pub test: Vec<Triple>,
}

impl Dataset {
    /// All triples across splits (used to build filtered-ranking indexes).
    pub fn all_triples(&self) -> impl Iterator<Item = Triple> + '_ {
        self.train
            .iter()
            .chain(self.valid.iter())
            .chain(self.test.iter())
            .copied()
    }

    /// Split accessor.
    pub fn split(&self, s: Split) -> &[Triple] {
        match s {
            Split::Train => &self.train,
            Split::Valid => &self.valid,
            Split::Test => &self.test,
        }
    }

    /// Validate internal consistency: every id within bounds, no split
    /// empty (train may not be empty; valid/test may be).
    pub fn validate(&self) -> Result<(), String> {
        if self.train.is_empty() {
            return Err("train split is empty".into());
        }
        for (split, triples) in [
            ("train", &self.train),
            ("valid", &self.valid),
            ("test", &self.test),
        ] {
            for t in triples.iter() {
                if t.head as usize >= self.n_entities || t.tail as usize >= self.n_entities {
                    return Err(format!(
                        "{split}: entity id out of range in {t:?} (n_entities={})",
                        self.n_entities
                    ));
                }
                if t.rel as usize >= self.n_relations {
                    return Err(format!(
                        "{split}: relation id out of range in {t:?} (n_relations={})",
                        self.n_relations
                    ));
                }
            }
        }
        Ok(())
    }

    /// Structural statistics (relation histogram etc.).
    pub fn stats(&self) -> DatasetStats {
        let mut rel_counts = vec![0usize; self.n_relations];
        let mut ent_degree = vec![0usize; self.n_entities];
        for t in &self.train {
            rel_counts[t.rel as usize] += 1;
            ent_degree[t.head as usize] += 1;
            ent_degree[t.tail as usize] += 1;
        }
        let max_rel = rel_counts.iter().copied().max().unwrap_or(0);
        let max_deg = ent_degree.iter().copied().max().unwrap_or(0);
        let nonzero_rels = rel_counts.iter().filter(|&&c| c > 0).count();
        let active_ents = ent_degree.iter().filter(|&&d| d > 0).count();
        DatasetStats {
            n_entities: self.n_entities,
            n_relations: self.n_relations,
            n_train: self.train.len(),
            n_valid: self.valid.len(),
            n_test: self.test.len(),
            max_relation_count: max_rel,
            max_entity_degree: max_deg,
            nonempty_relations: nonzero_rels,
            relation_counts: rel_counts,
            active_entities: active_ents,
            entity_degrees: ent_degree,
        }
    }
}

/// Summary statistics of a dataset (train split).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetStats {
    pub n_entities: usize,
    pub n_relations: usize,
    pub n_train: usize,
    pub n_valid: usize,
    pub n_test: usize,
    pub max_relation_count: usize,
    pub max_entity_degree: usize,
    pub nonempty_relations: usize,
    /// Triple count per relation id (train split) — the array the paper's
    /// relation-partition strategy prefix-sums (§4.4).
    pub relation_counts: Vec<usize>,
    /// Entities with train degree > 0.
    #[serde(default)]
    pub active_entities: usize,
    /// Train-split degree (head + tail occurrences) per entity id — the
    /// array hot-cache sizing and degree-aware ownership consume.
    #[serde(default)]
    pub entity_degrees: Vec<usize>,
}

impl DatasetStats {
    /// Skew of the relation distribution: max count / mean count.
    pub fn relation_skew(&self) -> f64 {
        if self.nonempty_relations == 0 {
            return 0.0;
        }
        let mean = self.n_train as f64 / self.nonempty_relations as f64;
        self.max_relation_count as f64 / mean
    }

    /// Skew of the entity degree distribution: max degree / mean degree
    /// over active (degree > 0) entities. Mirrors [`relation_skew`]; every
    /// train triple contributes two endpoint occurrences.
    ///
    /// [`relation_skew`]: DatasetStats::relation_skew
    pub fn entity_skew(&self) -> f64 {
        if self.active_entities == 0 {
            return 0.0;
        }
        let mean = (2 * self.n_train) as f64 / self.active_entities as f64;
        self.max_entity_degree as f64 / mean
    }

    /// Log2-bucketed entity degree histogram: `hist[0]` counts degree-0
    /// entities and `hist[i]` (i >= 1) counts entities whose degree lies in
    /// `[2^(i-1), 2^i)`. Compact summary of the power-law tail used to pick
    /// a hot-cache capacity.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let buckets = 2 + self
            .entity_degrees
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .checked_ilog2()
            .unwrap_or(0) as usize;
        let mut hist = vec![0usize; buckets];
        for &d in &self.entity_degrees {
            let b = if d == 0 { 0 } else { 1 + d.ilog2() as usize };
            hist[b] += 1;
        }
        hist
    }

    /// Fraction of train endpoint touches (2 per triple) covered by the
    /// `k` highest-degree entities — an upper bound on the hot-cache hit
    /// rate a capacity-`k` cache can reach, used for sizing.
    pub fn top_degree_coverage(&self, k: usize) -> f64 {
        if self.n_train == 0 || k == 0 {
            return 0.0;
        }
        let mut degs = self.entity_degrees.clone();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        degs.truncate(k);
        let covered: usize = degs.iter().sum();
        covered as f64 / (2 * self.n_train) as f64
    }
}


/// Bordes et al. (2013) relation categorization by average fan-out:
/// a relation is 1-1 / 1-N / N-1 / N-N according to whether its average
/// tails-per-head and heads-per-tail exceed 1.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelationCategory {
    OneToOne,
    OneToMany,
    ManyToOne,
    ManyToMany,
}

impl RelationCategory {
    /// Stable display label.
    pub fn label(self) -> &'static str {
        match self {
            RelationCategory::OneToOne => "1-1",
            RelationCategory::OneToMany => "1-N",
            RelationCategory::ManyToOne => "N-1",
            RelationCategory::ManyToMany => "N-N",
        }
    }
}

/// Classify every relation of `ds` from its training triples. Relations
/// with no training triples default to N-N.
pub fn classify_relations(ds: &Dataset) -> Vec<RelationCategory> {
    use std::collections::HashMap;
    let mut tails_per_head: HashMap<(u32, u32), usize> = HashMap::new();
    let mut heads_per_tail: HashMap<(u32, u32), usize> = HashMap::new();
    for t in &ds.train {
        *tails_per_head.entry((t.rel, t.head)).or_default() += 1;
        *heads_per_tail.entry((t.rel, t.tail)).or_default() += 1;
    }
    let mut tph = vec![(0usize, 0usize); ds.n_relations]; // (sum, count)
    for (&(rel, _), &c) in &tails_per_head {
        tph[rel as usize].0 += c;
        tph[rel as usize].1 += 1;
    }
    let mut hpt = vec![(0usize, 0usize); ds.n_relations];
    for (&(rel, _), &c) in &heads_per_tail {
        hpt[rel as usize].0 += c;
        hpt[rel as usize].1 += 1;
    }
    (0..ds.n_relations)
        .map(|r| {
            if tph[r].1 == 0 || hpt[r].1 == 0 {
                return RelationCategory::ManyToMany;
            }
            let avg_tph = tph[r].0 as f64 / tph[r].1 as f64;
            let avg_hpt = hpt[r].0 as f64 / hpt[r].1 as f64;
            match (avg_tph > 1.5, avg_hpt > 1.5) {
                (false, false) => RelationCategory::OneToOne,
                (true, false) => RelationCategory::OneToMany,
                (false, true) => RelationCategory::ManyToOne,
                (true, true) => RelationCategory::ManyToMany,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset {
            name: "tiny".into(),
            n_entities: 4,
            n_relations: 2,
            train: vec![
                Triple::new(0, 0, 1),
                Triple::new(1, 0, 2),
                Triple::new(2, 1, 3),
            ],
            valid: vec![Triple::new(0, 1, 3)],
            test: vec![Triple::new(3, 0, 0)],
        }
    }

    #[test]
    fn validate_accepts_consistent_data() {
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn validate_rejects_out_of_range_entity() {
        let mut d = tiny();
        d.train.push(Triple::new(99, 0, 0));
        assert!(d.validate().unwrap_err().contains("entity id"));
    }

    #[test]
    fn validate_rejects_out_of_range_relation() {
        let mut d = tiny();
        d.test.push(Triple::new(0, 99, 0));
        assert!(d.validate().unwrap_err().contains("relation id"));
    }

    #[test]
    fn validate_rejects_empty_train() {
        let mut d = tiny();
        d.train.clear();
        assert!(d.validate().is_err());
    }

    #[test]
    fn stats_counts() {
        let s = tiny().stats();
        assert_eq!(s.n_train, 3);
        assert_eq!(s.relation_counts, vec![2, 1]);
        assert_eq!(s.nonempty_relations, 2);
        assert_eq!(s.max_relation_count, 2);
        // entity 1 and 2 appear twice each in train
        assert_eq!(s.max_entity_degree, 2);
        assert!(s.relation_skew() > 1.0);
        assert_eq!(s.entity_degrees, vec![1, 2, 2, 1]);
        assert_eq!(s.active_entities, 4);
        // mean degree = 6/4 = 1.5, max = 2
        assert!((s.entity_skew() - 2.0 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn degree_histogram_buckets_by_log2() {
        let mut d = tiny();
        // Push entity 0's degree to 5: bucket index 1 + floor(log2 5) = 3.
        for _ in 0..4 {
            d.train.push(Triple::new(0, 0, 0));
        }
        let s = d.stats();
        // degrees: e0 = 1 + 8 = 9, e1 = 2, e2 = 2, e3 = 1
        assert_eq!(s.entity_degrees[0], 9);
        let hist = s.degree_histogram();
        assert_eq!(hist.iter().sum::<usize>(), s.n_entities);
        assert_eq!(hist[0], 0); // no isolated entities
        assert_eq!(hist[1], 1); // degree 1
        assert_eq!(hist[2], 2); // degree 2..3
        assert_eq!(hist[4], 1); // degree 8..15
    }

    #[test]
    fn top_degree_coverage_is_monotone_and_bounded() {
        let s = tiny().stats();
        assert_eq!(s.top_degree_coverage(0), 0.0);
        let c1 = s.top_degree_coverage(1);
        let c4 = s.top_degree_coverage(s.n_entities);
        assert!(c1 > 0.0 && c1 <= c4);
        assert!((c4 - 1.0).abs() < 1e-12);
        // top-1 entity has degree 2 of 6 endpoint touches
        assert!((c1 - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn synth_generator_shows_entity_skew() {
        // The power-law synth generator must produce a degree distribution
        // skewed enough that a small hot set covers a large share of the
        // endpoint mass — the premise of the hot cache.
        let cfg = crate::synth::SynthPreset::Fb15kLike.config(0.02, 7);
        let ds = crate::synth::generate(&cfg);
        let s = ds.stats();
        assert!(s.entity_skew() > 3.0, "entity_skew = {}", s.entity_skew());
        // Top-10% of entities must cover well over 10% of the touch mass
        // (uniform would give exactly 10%).
        let hot = s.n_entities / 10;
        let cov = s.top_degree_coverage(hot);
        assert!(cov > 0.18, "top-10% coverage = {cov}");
        let hist = s.degree_histogram();
        assert_eq!(hist.iter().sum::<usize>(), s.n_entities);
    }

    #[test]
    fn all_triples_spans_splits() {
        assert_eq!(tiny().all_triples().count(), 5);
    }

    #[test]
    fn split_accessor() {
        let d = tiny();
        assert_eq!(d.split(Split::Train).len(), 3);
        assert_eq!(d.split(Split::Valid).len(), 1);
        assert_eq!(d.split(Split::Test).len(), 1);
    }

    #[test]
    fn relation_classification_matches_fanout() {
        // rel 0: one head, many tails (1-N); rel 1: reverse (N-1);
        // rel 2: bijection (1-1); rel 3: grid (N-N).
        let mut train = Vec::new();
        for i in 1..=6u32 {
            train.push(Triple::new(0, 0, i));
            train.push(Triple::new(i, 1, 0));
            train.push(Triple::new(i, 2, i + 10));
        }
        for a in 0..3u32 {
            for b in 0..3u32 {
                train.push(Triple::new(a, 3, b + 4));
            }
        }
        let ds = Dataset {
            name: "cat".into(),
            n_entities: 20,
            n_relations: 5,
            train,
            valid: vec![],
            test: vec![],
        };
        let cats = classify_relations(&ds);
        assert_eq!(cats[0], RelationCategory::OneToMany);
        assert_eq!(cats[1], RelationCategory::ManyToOne);
        assert_eq!(cats[2], RelationCategory::OneToOne);
        assert_eq!(cats[3], RelationCategory::ManyToMany);
        // Empty relation defaults to N-N.
        assert_eq!(cats[4], RelationCategory::ManyToMany);
        assert_eq!(RelationCategory::OneToOne.label(), "1-1");
    }
}
