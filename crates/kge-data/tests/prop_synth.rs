//! Property tests for the data layer: the synthetic generator emits valid
//! datasets for arbitrary (bounded) configurations, batching preserves
//! contents, and the filter index agrees with brute force.

use kge_data::batch::{batches, uniform_shards, EpochShuffler};
use kge_data::synth::{generate, SynthConfig};
use kge_data::{FilterIndex, Triple};
use proptest::prelude::*;
use std::collections::HashSet;

fn config_strategy() -> impl Strategy<Value = SynthConfig> {
    (
        64usize..400,   // n_entities
        1usize..20,     // n_relations
        2usize..10,     // triples per relation knob
        0.0f64..2.0,    // relation zipf
        0.0f64..1.5,    // entity zipf
        0.0f64..0.3,    // noise
        any::<u64>(),   // seed
    )
        .prop_map(|(ents, rels, tpr, rz, ez, noise, seed)| SynthConfig {
            name: "prop".into(),
            n_entities: ents,
            n_relations: rels,
            n_triples: rels * tpr * 16,
            relation_zipf: rz,
            entity_zipf: ez,
            noise_frac: noise,
            valid_frac: 0.05,
            test_frac: 0.05,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generator_output_is_always_valid(cfg in config_strategy()) {
        let ds = generate(&cfg);
        prop_assert!(ds.validate().is_ok(), "{:?}", ds.validate());
        // Deduplicated.
        let set: HashSet<Triple> = ds.all_triples().collect();
        prop_assert_eq!(set.len(), ds.all_triples().count());
        // Eval ids seen in train.
        let mut ent = vec![false; cfg.n_entities];
        let mut rel = vec![false; cfg.n_relations];
        for t in &ds.train {
            ent[t.head as usize] = true;
            ent[t.tail as usize] = true;
            rel[t.rel as usize] = true;
        }
        for t in ds.valid.iter().chain(&ds.test) {
            prop_assert!(ent[t.head as usize] && ent[t.tail as usize] && rel[t.rel as usize]);
        }
    }

    #[test]
    fn generator_is_deterministic(cfg in config_strategy()) {
        let a = generate(&cfg);
        let b = generate(&cfg);
        prop_assert_eq!(a.train, b.train);
        prop_assert_eq!(a.valid, b.valid);
        prop_assert_eq!(a.test, b.test);
    }

    #[test]
    fn shards_and_batches_preserve_content(
        n in 0usize..300,
        p in 1usize..9,
        bs in 1usize..40,
    ) {
        let triples: Vec<Triple> = (0..n as u32).map(|i| Triple::new(i, 0, i + 1)).collect();
        let shards = uniform_shards(&triples, p);
        let mut reassembled: Vec<Triple> = shards.concat();
        reassembled.sort();
        prop_assert_eq!(&reassembled, &triples);
        for shard in &shards {
            let from_batches: Vec<Triple> =
                batches(shard, bs).flatten().copied().collect();
            prop_assert_eq!(&from_batches, shard);
        }
    }

    #[test]
    fn shuffle_is_permutation(n in 0usize..200, seed in any::<u64>(), epoch in any::<u64>()) {
        let mut triples: Vec<Triple> = (0..n as u32).map(|i| Triple::new(i, 0, i)).collect();
        let orig = triples.clone();
        EpochShuffler::new(seed).shuffle(&mut triples, epoch);
        triples.sort();
        prop_assert_eq!(triples, orig);
    }

    #[test]
    fn filter_index_agrees_with_linear_scan(
        triples in proptest::collection::vec((0u32..30, 0u32..5, 0u32..30), 0..80),
        probe in (0u32..30, 0u32..5, 0u32..30),
    ) {
        let triples: Vec<Triple> = triples.into_iter().map(Triple::from).collect();
        let idx = FilterIndex::from_triples(triples.iter().copied());
        let probe = Triple::from(probe);
        prop_assert_eq!(idx.contains(probe), triples.contains(&probe));
        // known_tails is exactly the set of tails sharing (rel, head).
        let mut want: Vec<u32> = triples
            .iter()
            .filter(|t| t.rel == probe.rel && t.head == probe.head)
            .map(|t| t.tail)
            .collect();
        want.sort_unstable();
        want.dedup();
        let mut got: Vec<u32> = idx.known_tails(probe.rel, probe.head).to_vec();
        got.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
