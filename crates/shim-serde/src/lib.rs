//! Offline stand-in for `serde`. The workspace only uses serde for
//! `#[derive(Serialize, Deserialize)]` markers on config/report types;
//! actual JSON emission goes through `serde_json::json!` with hand-built
//! values. The derives are re-exported no-ops from `serde_derive`.

pub use serde_derive::{Deserialize, Serialize};
