//! Error-feedback residual storage (Karimireddy et al. 2019).
//!
//! Quantization discards information; error feedback accumulates the
//! discarded part locally and adds it back to the next iteration's
//! gradient, turning the bias of sign-style compression into a delayed
//! correction. The paper cites this mechanism alongside its quantization
//! comparison; we expose it as an optional component so the benches can
//! ablate it.

use kge_core::SparseGrad;
use std::collections::HashMap;

/// Per-row residual store for one embedding table.
#[derive(Debug, Clone, Default)]
pub struct ResidualStore {
    rows: HashMap<u32, Vec<f32>>,
}

impl ResidualStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows with stored residual.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Add stored residuals into the matching rows of `grad`, consuming
    /// them. Residuals for rows not present in `grad` stay stored (they
    /// re-enter whenever that row is next touched).
    pub fn add_into(&mut self, grad: &mut SparseGrad) {
        // Walk the grad's own row list by index — no row id collection, no
        // allocation (row_mut on an existing row does not reorder entries).
        for i in 0..grad.nnz() {
            let row = grad.entry(i).0;
            if let Some(res) = self.rows.remove(&row) {
                let g = grad.row_mut(row);
                for (gv, rv) in g.iter_mut().zip(res) {
                    *gv += rv;
                }
            }
        }
    }

    /// Record `orig − sent` for one transmitted row (the dequantized form
    /// of what actually went on the wire). Allocates only the first time a
    /// row is seen; hot paths call this per row with a reused dequantize
    /// scratch buffer.
    pub fn record_row_error(&mut self, row: u32, orig: &[f32], sent: &[f32]) {
        let entry = self
            .rows
            .entry(row)
            .or_insert_with(|| vec![0.0; orig.len()]);
        for ((e, &o), &s) in entry.iter_mut().zip(orig).zip(sent) {
            *e += o - s;
        }
    }

    /// Record the whole original value for a row dropped from transmission.
    pub fn record_row_dropped(&mut self, row: u32, orig: &[f32]) {
        let entry = self
            .rows
            .entry(row)
            .or_insert_with(|| vec![0.0; orig.len()]);
        for (e, &o) in entry.iter_mut().zip(orig) {
            *e += o;
        }
    }

    /// Record `original − transmitted` for each row of `original`. The
    /// `transmitted` callback fills the provided scratch buffer with the
    /// dequantized form of what was actually sent for `row` and returns
    /// `true`, or returns `false` for rows dropped entirely (which then
    /// store the whole original value). The buffer is caller-reused across
    /// rows, so recording allocates nothing per row.
    pub fn record_error(
        &mut self,
        original: &SparseGrad,
        mut transmitted: impl FnMut(u32, &mut [f32]) -> bool,
    ) {
        let mut sent = vec![0.0f32; original.dim()];
        for (row, orig) in original.iter_sorted() {
            if transmitted(row, &mut sent) {
                self.record_row_error(row, orig, &sent);
            } else {
                self.record_row_dropped(row, orig);
            }
        }
    }

    /// Drop everything (e.g. when the learning-rate schedule resets).
    pub fn clear(&mut self) {
        self.rows.clear();
    }

    /// Fill `ids` (cleared first, capacity kept) with every stored row id
    /// in ascending order. Checkpointing iterates the store through this so
    /// the serialized bytes are independent of hash-map iteration order.
    pub fn sorted_ids_into(&self, ids: &mut Vec<u32>) {
        ids.clear();
        ids.extend(self.rows.keys().copied());
        ids.sort_unstable();
    }

    /// The stored residual for `row`, if any.
    pub fn get_row(&self, row: u32) -> Option<&[f32]> {
        self.rows.get(&row).map(|v| v.as_slice())
    }

    /// Overwrite (or insert) the residual for `row`. Checkpoint restore
    /// rebuilds a store with this.
    pub fn set_row(&mut self, row: u32, values: &[f32]) {
        match self.rows.entry(row) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let v = e.get_mut();
                v.clear();
                v.extend_from_slice(values);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(values.to_vec());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad_with(rows: &[(u32, [f32; 2])]) -> SparseGrad {
        let mut g = SparseGrad::new(2);
        for &(r, v) in rows {
            g.row_mut(r).copy_from_slice(&v);
        }
        g
    }

    #[test]
    fn conservation_transmitted_plus_residual_equals_original() {
        // Quantize-and-feedback invariant: sent + stored error == original.
        let original = grad_with(&[(0, [0.8, -0.3]), (5, [0.1, 0.1])]);
        let mut store = ResidualStore::new();
        // Pretend we transmitted a crude sign approximation of row 0 and
        // dropped row 5 entirely.
        let sent_row0 = [1.0f32, -1.0];
        store.record_error(&original, |row, buf| {
            if row == 0 {
                buf.copy_from_slice(&[1.0, -1.0]);
                true
            } else {
                false
            }
        });
        let res0 = store.rows.get(&0).unwrap().clone();
        let res5 = store.rows.get(&5).unwrap().clone();
        for k in 0..2 {
            assert!((sent_row0[k] + res0[k] - original.get(0).unwrap()[k]).abs() < 1e-6);
            assert!((res5[k] - original.get(5).unwrap()[k]).abs() < 1e-6);
        }
    }

    #[test]
    fn add_into_consumes_matching_rows_only() {
        let original = grad_with(&[(1, [1.0, 1.0]), (2, [2.0, 2.0])]);
        let mut store = ResidualStore::new();
        store.record_error(&original, |_, _| false); // everything dropped
        assert_eq!(store.len(), 2);

        let mut next = grad_with(&[(1, [0.5, 0.5])]);
        store.add_into(&mut next);
        assert_eq!(next.get(1).unwrap(), &[1.5, 1.5]);
        assert!(next.get(2).is_none(), "untouched row stays stored");
        assert_eq!(store.len(), 1);

        // Row 2's residual re-enters when row 2 is next touched.
        let mut later = grad_with(&[(2, [0.0, 0.0])]);
        store.add_into(&mut later);
        assert_eq!(later.get(2).unwrap(), &[2.0, 2.0]);
        assert!(store.is_empty());
    }

    #[test]
    fn errors_accumulate_across_rounds() {
        let mut store = ResidualStore::new();
        let g = grad_with(&[(7, [0.2, 0.0])]);
        store.record_error(&g, |_, _| false);
        store.record_error(&g, |_, _| false);
        assert_eq!(store.rows.get(&7).unwrap(), &vec![0.4, 0.0]);
    }

    #[test]
    fn export_and_set_row_roundtrip() {
        let mut store = ResidualStore::new();
        store.record_error(
            &grad_with(&[(9, [1.0, -2.0]), (3, [0.5, 0.25]), (40, [0.0, 7.0])]),
            |_, _| false,
        );
        let mut ids = Vec::new();
        store.sorted_ids_into(&mut ids);
        assert_eq!(ids, vec![3, 9, 40]);

        let mut rebuilt = ResidualStore::new();
        for &id in &ids {
            rebuilt.set_row(id, store.get_row(id).unwrap());
        }
        let mut ids2 = Vec::new();
        rebuilt.sorted_ids_into(&mut ids2);
        assert_eq!(ids, ids2);
        for &id in &ids {
            assert_eq!(store.get_row(id), rebuilt.get_row(id));
        }
        // set_row overwrites rather than accumulates.
        rebuilt.set_row(3, &[9.0, 9.0]);
        assert_eq!(rebuilt.get_row(3).unwrap(), &[9.0, 9.0]);
    }

    #[test]
    fn clear_empties_store() {
        let mut store = ResidualStore::new();
        store.record_error(&grad_with(&[(0, [1.0, 1.0])]), |_, _| false);
        store.clear();
        assert!(store.is_empty());
    }
}
