//! §4.3 — Gradient quantization.
//!
//! Two families, matching the paper:
//!
//! **1-bit** (`quant(v) = sign(v) · scale`): each element is reduced to
//! its sign plus one or two per-row scale constants. The paper explores
//! six scale rules — `max`, `avg`, `posmax`/`negmax`, `posavg`/`negavg` —
//! and adopts **max of absolute values** as the most accurate.
//!
//! **2-bit** (TernGrad-style, modified): `quant(v) = sign(v) · mean(|v|) ·
//! P` with `P_i ~ Bernoulli(min(1, |v_i| / mean(|v|)))`, i.e. values in
//! `{−s, 0, +s}`. The paper swaps TernGrad's `max(|v|)` for `mean(|v|)`
//! having found it works better for KGE gradients.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the 1-bit scheme derives its per-row scale(s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleRule {
    /// One scale: `max(|v|)` — the paper's choice.
    Max,
    /// One scale: `mean(|v|)`.
    Avg,
    /// Two scales: positives get `max(pos)`, negatives get `max(|neg|)`.
    PosNegMax,
    /// Two scales: positives get `mean(pos)`, negatives get `mean(|neg|)`.
    PosNegAvg,
}

/// A quantization scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QuantScheme {
    /// 32-bit floats, no quantization.
    None,
    /// 1 bit per element plus per-row scale(s).
    OneBit { rule: ScaleRule },
    /// 2 bits per element: `{−s, 0, +s}` with stochastic zeroing.
    TwoBit,
}

impl QuantScheme {
    /// The configuration the paper settles on (1-bit, max rule).
    pub fn paper_one_bit() -> Self {
        QuantScheme::OneBit { rule: ScaleRule::Max }
    }

    /// Bits per element on the wire (excluding per-row scales/ids).
    pub fn bits_per_element(&self) -> u32 {
        match self {
            QuantScheme::None => 32,
            QuantScheme::OneBit { .. } => 1,
            QuantScheme::TwoBit => 2,
        }
    }
}

/// A quantized gradient row in structural (pre-codec) form.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantizedRow {
    /// Raw values (scheme [`QuantScheme::None`]).
    Full(Vec<f32>),
    /// Signs plus scales: element `k` decodes to `±scale` (two-scale rules
    /// use `pos_scale` for `+` and `neg_scale` for `−`).
    OneBit {
        signs: Vec<bool>, // true = positive
        pos_scale: f32,
        neg_scale: f32,
    },
    /// Ternary levels `−1 / 0 / +1` times `scale`.
    TwoBit { levels: Vec<i8>, scale: f32 },
}

impl QuantizedRow {
    /// Reconstruct the dense row.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len()];
        self.dequantize_into(&mut out);
        out
    }

    /// Reconstruct the dense row into a caller-owned buffer, overwriting
    /// it — the allocation-free counterpart of
    /// [`QuantizedRow::dequantize`] for hot paths that reuse one scratch
    /// row (error-feedback recording, decode/apply loops).
    ///
    /// # Panics
    /// If `out.len()` differs from [`QuantizedRow::len`].
    pub fn dequantize_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.len(), "dequantize buffer size mismatch");
        match self {
            QuantizedRow::Full(v) => out.copy_from_slice(v),
            QuantizedRow::OneBit {
                signs,
                pos_scale,
                neg_scale,
            } => {
                for (o, &s) in out.iter_mut().zip(signs) {
                    *o = if s { *pos_scale } else { -*neg_scale };
                }
            }
            QuantizedRow::TwoBit { levels, scale } => {
                for (o, &l) in out.iter_mut().zip(levels) {
                    *o = l as f32 * scale;
                }
            }
        }
    }

    /// Add the dequantized row into `out` (avoids the intermediate vec).
    pub fn add_into(&self, out: &mut [f32]) {
        match self {
            QuantizedRow::Full(v) => {
                for (o, &x) in out.iter_mut().zip(v) {
                    *o += x;
                }
            }
            QuantizedRow::OneBit {
                signs,
                pos_scale,
                neg_scale,
            } => {
                for (o, &s) in out.iter_mut().zip(signs) {
                    *o += if s { *pos_scale } else { -*neg_scale };
                }
            }
            QuantizedRow::TwoBit { levels, scale } => {
                for (o, &l) in out.iter_mut().zip(levels) {
                    *o += l as f32 * scale;
                }
            }
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            QuantizedRow::Full(v) => v.len(),
            QuantizedRow::OneBit { signs, .. } => signs.len(),
            QuantizedRow::TwoBit { levels, .. } => levels.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Quantize one gradient row under `scheme`. The RNG is used only by the
/// stochastic 2-bit scheme.
pub fn quantize_row<R: Rng>(scheme: QuantScheme, v: &[f32], rng: &mut R) -> QuantizedRow {
    let mut out = QuantizedRow::Full(Vec::new());
    quantize_row_into(scheme, v, rng, &mut out);
    out
}

/// Allocation-free [`quantize_row`]: reuses `out`'s buffers when the
/// variant matches `scheme` (the steady state — hot paths keep one
/// scratch `QuantizedRow` per scheme); only a variant switch allocates.
/// RNG consumption is identical to `quantize_row`, element by element, so
/// the two produce the same bits from the same stream.
pub fn quantize_row_into<R: Rng>(
    scheme: QuantScheme,
    v: &[f32],
    rng: &mut R,
    out: &mut QuantizedRow,
) {
    match scheme {
        QuantScheme::None => {
            if let QuantizedRow::Full(buf) = out {
                buf.clear();
                buf.extend_from_slice(v);
            } else {
                *out = QuantizedRow::Full(v.to_vec());
            }
        }
        QuantScheme::OneBit { rule } => {
            let (p, n) = scales(rule, v);
            if let QuantizedRow::OneBit {
                signs,
                pos_scale,
                neg_scale,
            } = out
            {
                signs.clear();
                signs.extend(v.iter().map(|&x| x >= 0.0));
                *pos_scale = p;
                *neg_scale = n;
            } else {
                *out = QuantizedRow::OneBit {
                    signs: v.iter().map(|&x| x >= 0.0).collect(),
                    pos_scale: p,
                    neg_scale: n,
                };
            }
        }
        QuantScheme::TwoBit => {
            let scale = mean_abs(v);
            let levels = match out {
                QuantizedRow::TwoBit { levels, scale: s } => {
                    *s = if scale <= 0.0 { 0.0 } else { scale };
                    levels.clear();
                    levels
                }
                _ => {
                    *out = QuantizedRow::TwoBit {
                        levels: Vec::with_capacity(v.len()),
                        scale: if scale <= 0.0 { 0.0 } else { scale },
                    };
                    match out {
                        QuantizedRow::TwoBit { levels, .. } => levels,
                        _ => unreachable!(),
                    }
                }
            };
            if scale <= 0.0 {
                levels.resize(v.len(), 0);
                return;
            }
            levels.extend(v.iter().map(|&x| {
                let p = (x.abs() / scale).min(1.0);
                if rng.gen::<f32>() < p {
                    if x >= 0.0 {
                        1i8
                    } else {
                        -1i8
                    }
                } else {
                    0i8
                }
            }));
        }
    }
}

fn mean_abs(v: &[f32]) -> f32 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().map(|x| x.abs()).sum::<f32>() / v.len() as f32
}

/// `max(|v|)`, AVX-dispatched. f32 max is a *selection*, not a rounding
/// operation, so for finite (non-NaN) inputs the reduction is order-free
/// and the vector arm returns the identical bits; `|x|` canonicalizes
/// `-0.0` to `+0.0` before any comparison. The `Avg` rules stay on the
/// serial sum, whose rounding *does* depend on order.
fn max_abs(v: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if kge_core::simd::use_avx() {
        // SAFETY: AVX presence was just detected at runtime.
        return unsafe { max_abs_avx(v) };
    }
    v.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn max_abs_avx(v: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n = v.len();
    let n8 = n - n % 8;
    let absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFF_FFFF));
    let mut vm = _mm256_setzero_ps();
    for k in (0..n8).step_by(8) {
        let x = _mm256_and_ps(absmask, _mm256_loadu_ps(v.as_ptr().add(k)));
        vm = _mm256_max_ps(vm, x);
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), vm);
    let mut m = lanes.iter().fold(0.0f32, |m, &x| m.max(x));
    for &x in &v[n8..] {
        m = m.max(x.abs());
    }
    m
}

/// `(max(pos), max(|neg|))` with the same `x >= 0.0` split as the scalar
/// rule, AVX-dispatched. Masked-out lanes contribute `+0.0`, the fold's
/// identity, so the selection result matches the filtered scalar fold for
/// finite inputs.
fn posneg_max(v: &[f32]) -> (f32, f32) {
    #[cfg(target_arch = "x86_64")]
    if kge_core::simd::use_avx() {
        // SAFETY: AVX presence was just detected at runtime.
        return unsafe { posneg_max_avx(v) };
    }
    let pos = v.iter().filter(|&&x| x >= 0.0).fold(0.0f32, |m, &x| m.max(x));
    let neg = v.iter().filter(|&&x| x < 0.0).fold(0.0f32, |m, &x| m.max(-x));
    (pos, neg)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn posneg_max_avx(v: &[f32]) -> (f32, f32) {
    use std::arch::x86_64::*;
    let n = v.len();
    let n8 = n - n % 8;
    let zero = _mm256_setzero_ps();
    let mut vp = zero;
    let mut vn = zero;
    for k in (0..n8).step_by(8) {
        let x = _mm256_loadu_ps(v.as_ptr().add(k));
        let ge = _mm256_cmp_ps::<_CMP_GE_OQ>(x, zero);
        let lt = _mm256_cmp_ps::<_CMP_LT_OQ>(x, zero);
        vp = _mm256_max_ps(vp, _mm256_and_ps(ge, x));
        vn = _mm256_max_ps(vn, _mm256_and_ps(lt, _mm256_sub_ps(zero, x)));
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), vp);
    let mut pos = lanes.iter().fold(0.0f32, |m, &x| m.max(x));
    _mm256_storeu_ps(lanes.as_mut_ptr(), vn);
    let mut neg = lanes.iter().fold(0.0f32, |m, &x| m.max(x));
    for &x in &v[n8..] {
        if x >= 0.0 {
            pos = pos.max(x);
        } else {
            neg = neg.max(-x);
        }
    }
    (pos, neg)
}

/// Public [`scales`]: the codec's packed encode fast path
/// ([`crate::codec::RowEncoder::push_one_bit`]) derives scales straight
/// from the dense row without building a [`QuantizedRow`].
pub fn one_bit_scales(rule: ScaleRule, v: &[f32]) -> (f32, f32) {
    scales(rule, v)
}

/// Pack the signs of `v` (predicate `x >= 0.0`, exactly
/// [`quantize_row_into`]'s) straight into codec sign bytes appended to
/// `out`: bit `i` of byte `b` is element `8b + i`, the layout
/// [`crate::codec::RowEncoder::push`] produces from a sign vec. The AVX
/// arm is one `cmp_ps` + `movemask_ps` per 8 elements — movemask bit `j`
/// is lane `j`'s predicate, so the byte matches the scalar packing bit
/// for bit (including `-0.0 → positive` and `NaN → negative`).
pub fn pack_signs_into(v: &[f32], out: &mut Vec<u8>) {
    #[cfg(target_arch = "x86_64")]
    if kge_core::simd::use_avx() {
        // SAFETY: AVX presence was just detected at runtime.
        return unsafe { pack_signs_avx(v, out) };
    }
    for chunk in v.chunks(8) {
        let mut byte = 0u8;
        for (i, &x) in chunk.iter().enumerate() {
            if x >= 0.0 {
                byte |= 1 << i;
            }
        }
        out.push(byte);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn pack_signs_avx(v: &[f32], out: &mut Vec<u8>) {
    use std::arch::x86_64::*;
    let n = v.len();
    let n8 = n - n % 8;
    let zero = _mm256_setzero_ps();
    for k in (0..n8).step_by(8) {
        let ge = _mm256_cmp_ps::<_CMP_GE_OQ>(_mm256_loadu_ps(v.as_ptr().add(k)), zero);
        out.push(_mm256_movemask_ps(ge) as u8);
    }
    if n8 < n {
        let mut byte = 0u8;
        for (i, &x) in v[n8..].iter().enumerate() {
            if x >= 0.0 {
                byte |= 1 << i;
            }
        }
        out.push(byte);
    }
}

/// Overwrite `out` with the 1-bit dequantization of the dense row `v`
/// under scales `(pos_scale, neg_scale)` — the same `x >= 0.0` sign
/// predicate and `±scale` values as quantizing `v` and calling
/// [`QuantizedRow::dequantize_into`], without materializing the sign vec.
/// The exchange path uses this to record error feedback next to
/// [`crate::codec::RowEncoder::push_one_bit`]. Pure selection (AVX arm is
/// a `blendv` between the two broadcast scales), hence bit-identical.
pub fn one_bit_dequantize_from(v: &[f32], pos_scale: f32, neg_scale: f32, out: &mut [f32]) {
    assert_eq!(out.len(), v.len(), "dequantize buffer size mismatch");
    #[cfg(target_arch = "x86_64")]
    if kge_core::simd::use_avx() {
        // SAFETY: AVX presence was just detected at runtime.
        return unsafe { one_bit_dequantize_from_avx(v, pos_scale, neg_scale, out) };
    }
    for (o, &x) in out.iter_mut().zip(v) {
        *o = if x >= 0.0 { pos_scale } else { -neg_scale };
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn one_bit_dequantize_from_avx(v: &[f32], pos_scale: f32, neg_scale: f32, out: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = v.len().min(out.len());
    let n8 = n - n % 8;
    let zero = _mm256_setzero_ps();
    let vpos = _mm256_set1_ps(pos_scale);
    let vneg = _mm256_set1_ps(-neg_scale);
    for k in (0..n8).step_by(8) {
        let ge = _mm256_cmp_ps::<_CMP_GE_OQ>(_mm256_loadu_ps(v.as_ptr().add(k)), zero);
        _mm256_storeu_ps(out.as_mut_ptr().add(k), _mm256_blendv_ps(vneg, vpos, ge));
    }
    for k in n8..n {
        out[k] = if v[k] >= 0.0 { pos_scale } else { -neg_scale };
    }
}

/// `(pos_scale, neg_scale)` for a 1-bit rule.
fn scales(rule: ScaleRule, v: &[f32]) -> (f32, f32) {
    match rule {
        ScaleRule::Max => {
            let s = max_abs(v);
            (s, s)
        }
        ScaleRule::Avg => {
            let s = mean_abs(v);
            (s, s)
        }
        ScaleRule::PosNegMax => posneg_max(v),
        ScaleRule::PosNegAvg => {
            let (psum, pn) = v
                .iter()
                .filter(|&&x| x >= 0.0)
                .fold((0.0f32, 0usize), |(s, n), &x| (s + x, n + 1));
            let (nsum, nn) = v
                .iter()
                .filter(|&&x| x < 0.0)
                .fold((0.0f32, 0usize), |(s, n), &x| (s - x, n + 1));
            (
                if pn > 0 { psum / pn as f32 } else { 0.0 },
                if nn > 0 { nsum / nn as f32 } else { 0.0 },
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const V: [f32; 6] = [0.5, -1.0, 0.25, -0.25, 2.0, -0.5];

    #[test]
    fn none_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let q = quantize_row(QuantScheme::None, &V, &mut rng);
        assert_eq!(q.dequantize(), V.to_vec());
        assert_eq!(QuantScheme::None.bits_per_element(), 32);
    }

    #[test]
    fn one_bit_max_uses_max_abs_scale() {
        let mut rng = StdRng::seed_from_u64(0);
        let q = quantize_row(QuantScheme::paper_one_bit(), &V, &mut rng);
        let d = q.dequantize();
        assert_eq!(d, vec![2.0, -2.0, 2.0, -2.0, 2.0, -2.0]);
    }

    #[test]
    fn one_bit_avg_uses_mean_abs_scale() {
        let mut rng = StdRng::seed_from_u64(0);
        let q = quantize_row(QuantScheme::OneBit { rule: ScaleRule::Avg }, &V, &mut rng);
        let mean = V.iter().map(|x| x.abs()).sum::<f32>() / 6.0;
        let d = q.dequantize();
        for (orig, dq) in V.iter().zip(&d) {
            assert_eq!(*dq, mean.copysign(*orig));
        }
    }

    #[test]
    fn one_bit_posneg_scales_differ() {
        let mut rng = StdRng::seed_from_u64(0);
        let q = quantize_row(
            QuantScheme::OneBit {
                rule: ScaleRule::PosNegMax,
            },
            &V,
            &mut rng,
        );
        let d = q.dequantize();
        // positives → max positive 2.0; negatives → max |neg| = 1.0
        assert_eq!(d, vec![2.0, -1.0, 2.0, -1.0, 2.0, -1.0]);

        let q = quantize_row(
            QuantScheme::OneBit {
                rule: ScaleRule::PosNegAvg,
            },
            &V,
            &mut rng,
        );
        let d = q.dequantize();
        let pos_avg = (0.5 + 0.25 + 2.0) / 3.0;
        let neg_avg = (1.0 + 0.25 + 0.5) / 3.0;
        assert!((d[0] - pos_avg).abs() < 1e-6);
        assert!((d[1] + neg_avg).abs() < 1e-6);
    }

    #[test]
    fn one_bit_preserves_signs() {
        let mut rng = StdRng::seed_from_u64(0);
        for rule in [ScaleRule::Max, ScaleRule::Avg, ScaleRule::PosNegMax, ScaleRule::PosNegAvg] {
            let q = quantize_row(QuantScheme::OneBit { rule }, &V, &mut rng);
            for (orig, dq) in V.iter().zip(q.dequantize()) {
                assert!(
                    orig * dq >= 0.0,
                    "sign flipped under {rule:?}: {orig} -> {dq}"
                );
            }
        }
    }

    #[test]
    fn two_bit_levels_are_ternary_and_scale_is_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let q = quantize_row(QuantScheme::TwoBit, &V, &mut rng);
        match &q {
            QuantizedRow::TwoBit { levels, scale } => {
                assert!(levels.iter().all(|&l| (-1..=1).contains(&l)));
                let mean = V.iter().map(|x| x.abs()).sum::<f32>() / 6.0;
                assert!((scale - mean).abs() < 1e-6);
                // The largest-magnitude element has p = 1: never zeroed.
                assert_eq!(levels[4], 1);
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn two_bit_is_unbiased_in_expectation() {
        // E[level_i · scale] = sign·min(1,|v|/m)·m ≈ v for |v| ≤ m.
        let v = [0.1f32, -0.2, 0.3];
        let m = (0.1 + 0.2 + 0.3) / 3.0;
        assert!(v.iter().all(|x| x.abs() <= m + 0.11)); // 0.3 clips slightly
        let mut sums = [0.0f64; 3];
        let trials = 4000;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(seed);
            let q = quantize_row(QuantScheme::TwoBit, &v, &mut rng);
            for (s, x) in sums.iter_mut().zip(q.dequantize()) {
                *s += x as f64;
            }
        }
        for (i, s) in sums.iter().enumerate() {
            let mean = s / trials as f64;
            let expect = (v[i].abs().min(m) * v[i].signum()) as f64;
            assert!(
                (mean - expect).abs() < 0.02,
                "elem {i}: mean {mean} vs expected {expect}"
            );
        }
    }

    #[test]
    fn zero_vector_quantizes_to_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        let z = [0.0f32; 4];
        for scheme in [QuantScheme::paper_one_bit(), QuantScheme::TwoBit] {
            let q = quantize_row(scheme, &z, &mut rng);
            assert!(q.dequantize().iter().all(|&x| x == 0.0), "{scheme:?}");
        }
    }

    #[test]
    fn add_into_matches_dequantize() {
        let mut rng = StdRng::seed_from_u64(1);
        for scheme in [QuantScheme::None, QuantScheme::paper_one_bit(), QuantScheme::TwoBit] {
            let q = quantize_row(scheme, &V, &mut rng);
            let mut acc = vec![1.0f32; V.len()];
            q.add_into(&mut acc);
            let expect: Vec<f32> = q.dequantize().iter().map(|x| x + 1.0).collect();
            assert_eq!(acc, expect);
        }
    }

    #[test]
    fn dequantize_into_overwrites_and_matches_dequantize() {
        let mut rng = StdRng::seed_from_u64(4);
        for scheme in [QuantScheme::None, QuantScheme::paper_one_bit(), QuantScheme::TwoBit] {
            let q = quantize_row(scheme, &V, &mut rng);
            let mut buf = vec![f32::NAN; V.len()]; // stale contents ignored
            q.dequantize_into(&mut buf);
            assert_eq!(buf, q.dequantize(), "{scheme:?}");
        }
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn dequantize_into_rejects_wrong_size() {
        let q = QuantizedRow::Full(vec![1.0, 2.0]);
        let mut buf = [0.0f32; 3];
        q.dequantize_into(&mut buf);
    }

    #[test]
    fn quantize_row_into_reuses_buffers_and_matches() {
        for scheme in [QuantScheme::None, QuantScheme::paper_one_bit(), QuantScheme::TwoBit] {
            let mut rng_a = StdRng::seed_from_u64(9);
            let mut rng_b = StdRng::seed_from_u64(9);
            let fresh = quantize_row(scheme, &V, &mut rng_a);
            // Warm a scratch row with a first call, then reuse it.
            let mut scratch = QuantizedRow::Full(Vec::new());
            let mut rng_warm = StdRng::seed_from_u64(1234);
            quantize_row_into(scheme, &[1.0, -2.0], &mut rng_warm, &mut scratch);
            quantize_row_into(scheme, &V, &mut rng_b, &mut scratch);
            assert_eq!(scratch, fresh, "{scheme:?}");
        }
    }

    #[test]
    fn bits_per_element() {
        assert_eq!(QuantScheme::paper_one_bit().bits_per_element(), 1);
        assert_eq!(QuantScheme::TwoBit.bits_per_element(), 2);
    }

    #[test]
    fn quantization_error_bounded_by_scale() {
        let mut rng = StdRng::seed_from_u64(2);
        let q = quantize_row(QuantScheme::paper_one_bit(), &V, &mut rng);
        let max = 2.0f32;
        for (orig, dq) in V.iter().zip(q.dequantize()) {
            assert!((orig - dq).abs() <= max);
        }
    }
}
