//! Byte-level wire formats for sparse (possibly quantized) gradient rows.
//!
//! The all-gather path communicates `(row id, payload)` pairs; the payload
//! is either raw `f32`s, 1-bit signs + scale(s), or 2-bit ternary levels +
//! scale. Encoded size is exactly what the simulated network is charged
//! for, so the formats are packed tight:
//!
//! ```text
//! header:  tag u8 | n_rows u32 | dim u32
//! F32 row:     row u32 | dim × f32
//! OneBit row:  row u32 | scale f32 [| neg_scale f32] | ⌈dim/8⌉ sign bytes
//! TwoBit row:  row u32 | scale f32 | ⌈dim/4⌉ level bytes
//! ```

use crate::quant::QuantizedRow;
use serde::{Deserialize, Serialize};

/// Wire format selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireFormat {
    /// Raw sparse f32 rows.
    F32,
    /// Sign-bit rows. `two_scales` stores separate positive/negative
    /// scales (the posmax/posavg/negmax/negavg rules).
    OneBit { two_scales: bool },
    /// Ternary rows.
    TwoBit,
}

impl WireFormat {
    fn tag(self) -> u8 {
        match self {
            WireFormat::F32 => 0,
            WireFormat::OneBit { two_scales: false } => 1,
            WireFormat::OneBit { two_scales: true } => 2,
            WireFormat::TwoBit => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, CodecError> {
        Ok(match tag {
            0 => WireFormat::F32,
            1 => WireFormat::OneBit { two_scales: false },
            2 => WireFormat::OneBit { two_scales: true },
            3 => WireFormat::TwoBit,
            _ => return Err(CodecError::BadTag(tag)),
        })
    }

    /// Bytes of one encoded row of width `dim`.
    pub fn row_bytes(self, dim: usize) -> usize {
        4 + match self {
            WireFormat::F32 => 4 * dim,
            WireFormat::OneBit { two_scales } => (if two_scales { 8 } else { 4 }) + dim.div_ceil(8),
            WireFormat::TwoBit => 4 + dim.div_ceil(4),
        }
    }

    /// Total encoded size of `n_rows` rows of width `dim`, header included.
    /// This is what the dynamic communication-selection strategy uses to
    /// price a hypothetical all-gather without encoding.
    pub fn payload_bytes(self, dim: usize, n_rows: usize) -> usize {
        9 + n_rows * self.row_bytes(dim)
    }
}

/// A decoded `(row id, payload)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct RowPayload {
    pub row: u32,
    pub data: QuantizedRow,
}

/// Codec failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    BadTag(u8),
    Truncated { need: usize, have: usize },
    WrongVariant { expected: &'static str },
    DimMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadTag(t) => write!(f, "unknown wire format tag {t}"),
            CodecError::Truncated { need, have } => {
                write!(f, "truncated payload: need {need} bytes, have {have}")
            }
            CodecError::WrongVariant { expected } => {
                write!(f, "row payload does not match wire format {expected}")
            }
            CodecError::DimMismatch { expected, got } => {
                write!(f, "row width {got} does not match declared dim {expected}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Streaming encoder that writes rows directly into a caller-owned byte
/// buffer — the buffer-reusing counterpart of [`encode_rows`]. The hot
/// exchange path keeps one `Vec<u8>` per worker and re-encodes into it
/// every batch; the byte layout is identical to [`encode_rows`], so either
/// side can decode the other's payloads.
pub struct RowEncoder<'a> {
    buf: &'a mut Vec<u8>,
    format: WireFormat,
    dim: usize,
    n_rows: u32,
}

impl<'a> RowEncoder<'a> {
    /// Start a payload in `buf` (cleared first; capacity is kept).
    pub fn new(format: WireFormat, dim: usize, buf: &'a mut Vec<u8>) -> Self {
        buf.clear();
        buf.push(format.tag());
        buf.extend_from_slice(&0u32.to_le_bytes()); // n_rows, patched by finish()
        buf.extend_from_slice(&(dim as u32).to_le_bytes());
        RowEncoder {
            buf,
            format,
            dim,
            n_rows: 0,
        }
    }

    /// Append one `(row id, payload)` pair.
    pub fn push(&mut self, row: u32, data: &QuantizedRow) -> Result<(), CodecError> {
        if data.len() != self.dim {
            return Err(CodecError::DimMismatch {
                expected: self.dim,
                got: data.len(),
            });
        }
        self.buf.extend_from_slice(&row.to_le_bytes());
        match (data, self.format) {
            (QuantizedRow::Full(v), WireFormat::F32) => {
                for &x in v {
                    self.buf.extend_from_slice(&x.to_le_bytes());
                }
            }
            (
                QuantizedRow::OneBit {
                    signs,
                    pos_scale,
                    neg_scale,
                },
                WireFormat::OneBit { two_scales },
            ) => {
                self.buf.extend_from_slice(&pos_scale.to_le_bytes());
                if two_scales {
                    self.buf.extend_from_slice(&neg_scale.to_le_bytes());
                } else if pos_scale != neg_scale {
                    return Err(CodecError::WrongVariant {
                        expected: "one-scale OneBit",
                    });
                }
                for chunk in signs.chunks(8) {
                    let mut byte = 0u8;
                    for (i, &s) in chunk.iter().enumerate() {
                        if s {
                            byte |= 1 << i;
                        }
                    }
                    self.buf.push(byte);
                }
            }
            (QuantizedRow::TwoBit { levels, scale }, WireFormat::TwoBit) => {
                self.buf.extend_from_slice(&scale.to_le_bytes());
                for chunk in levels.chunks(4) {
                    let mut byte = 0u8;
                    for (i, &l) in chunk.iter().enumerate() {
                        let code: u8 = match l {
                            0 => 0b00,
                            1 => 0b01,
                            _ => 0b10, // -1
                        };
                        byte |= code << (2 * i);
                    }
                    self.buf.push(byte);
                }
            }
            _ => {
                return Err(CodecError::WrongVariant {
                    expected: match self.format {
                        WireFormat::F32 => "F32",
                        WireFormat::OneBit { .. } => "OneBit",
                        WireFormat::TwoBit => "TwoBit",
                    },
                })
            }
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Append one OneBit row by quantizing the dense row `v` straight into
    /// the packed wire format — scales via
    /// [`crate::quant::one_bit_scales`], signs via
    /// [`crate::quant::pack_signs_into`]'s movemask packing — skipping the
    /// intermediate `Vec<bool>` a [`QuantizedRow::OneBit`] would carry.
    /// The bytes are identical to `quantize_row_into` + [`Self::push`];
    /// the scales are returned so callers can record error feedback (see
    /// [`crate::quant::one_bit_dequantize_from`]) without re-deriving
    /// them.
    pub fn push_one_bit(
        &mut self,
        row: u32,
        v: &[f32],
        rule: crate::quant::ScaleRule,
    ) -> Result<(f32, f32), CodecError> {
        let two_scales = match self.format {
            WireFormat::OneBit { two_scales } => two_scales,
            _ => return Err(CodecError::WrongVariant { expected: "OneBit" }),
        };
        if v.len() != self.dim {
            return Err(CodecError::DimMismatch {
                expected: self.dim,
                got: v.len(),
            });
        }
        let (pos, neg) = crate::quant::one_bit_scales(rule, v);
        self.buf.extend_from_slice(&row.to_le_bytes());
        self.buf.extend_from_slice(&pos.to_le_bytes());
        if two_scales {
            self.buf.extend_from_slice(&neg.to_le_bytes());
        } else if pos != neg {
            return Err(CodecError::WrongVariant {
                expected: "one-scale OneBit",
            });
        }
        crate::quant::pack_signs_into(v, self.buf);
        self.n_rows += 1;
        Ok((pos, neg))
    }

    /// Append a raw `f32` row under the [`WireFormat::F32`] format without
    /// materializing a [`QuantizedRow`] (the parameter-server relation
    /// broadcast path encodes embedding rows straight out of the table).
    pub fn push_f32(&mut self, row: u32, v: &[f32]) -> Result<(), CodecError> {
        if self.format != WireFormat::F32 {
            return Err(CodecError::WrongVariant { expected: "F32" });
        }
        if v.len() != self.dim {
            return Err(CodecError::DimMismatch {
                expected: self.dim,
                got: v.len(),
            });
        }
        self.buf.extend_from_slice(&row.to_le_bytes());
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Patch the row count into the header and return the payload length.
    pub fn finish(self) -> usize {
        self.buf[1..5].copy_from_slice(&self.n_rows.to_le_bytes());
        self.buf.len()
    }
}

/// Encode rows (all of width `dim`) under `format`.
pub fn encode_rows(
    format: WireFormat,
    dim: usize,
    rows: &[RowPayload],
) -> Result<Vec<u8>, CodecError> {
    let mut buf = Vec::with_capacity(format.payload_bytes(dim, rows.len()));
    let mut enc = RowEncoder::new(format, dim, &mut buf);
    for rp in rows {
        enc.push(rp.row, &rp.data)?;
    }
    enc.finish();
    Ok(buf)
}

/// A borrowed view of one encoded row: the row id plus the packed payload
/// bytes still sitting in the receive buffer. [`RowRef::add_into`] and
/// [`RowRef::dequantize_into`] apply the row without materializing a
/// [`QuantizedRow`], which keeps the decode/accumulate loop allocation-free.
#[derive(Debug, Clone, Copy)]
pub struct RowRef<'a> {
    /// The row id this payload belongs to.
    pub row: u32,
    dim: usize,
    data: RowBytes<'a>,
}

#[derive(Debug, Clone, Copy)]
enum RowBytes<'a> {
    Full(&'a [u8]),
    OneBit {
        sign_bytes: &'a [u8],
        pos_scale: f32,
        neg_scale: f32,
    },
    TwoBit {
        level_bytes: &'a [u8],
        scale: f32,
    },
}

impl RowRef<'_> {
    /// Declared row width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Add the dequantized row into `out`, reading the packed bytes in
    /// place. Values are bit-identical to decoding a [`QuantizedRow`] and
    /// calling [`QuantizedRow::add_into`].
    ///
    /// # Panics
    /// If `out.len()` differs from the declared row width.
    pub fn add_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim, "row width mismatch");
        match self.data {
            RowBytes::Full(bytes) => {
                for (o, b) in out.iter_mut().zip(bytes.chunks_exact(4)) {
                    *o += f32::from_le_bytes([b[0], b[1], b[2], b[3]]);
                }
            }
            RowBytes::OneBit {
                sign_bytes,
                pos_scale,
                neg_scale,
            } => {
                one_bit_apply::<true>(sign_bytes, pos_scale, neg_scale, out);
            }
            RowBytes::TwoBit { level_bytes, scale } => {
                for (k, o) in out.iter_mut().enumerate() {
                    let level: f32 = match (level_bytes[k / 4] >> (2 * (k % 4))) & 0b11 {
                        0b00 => 0.0,
                        0b01 => 1.0,
                        _ => -1.0,
                    };
                    *o += level * scale;
                }
            }
        }
    }

    /// Overwrite `out` with the dequantized row. Written values are
    /// bit-exact: an F32 payload restores the original bytes (including
    /// negative zeros), matching [`QuantizedRow::dequantize_into`].
    ///
    /// # Panics
    /// If `out.len()` differs from the declared row width.
    pub fn dequantize_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim, "row width mismatch");
        match self.data {
            RowBytes::Full(bytes) => {
                for (o, b) in out.iter_mut().zip(bytes.chunks_exact(4)) {
                    *o = f32::from_le_bytes([b[0], b[1], b[2], b[3]]);
                }
            }
            RowBytes::OneBit {
                sign_bytes,
                pos_scale,
                neg_scale,
            } => {
                one_bit_apply::<false>(sign_bytes, pos_scale, neg_scale, out);
            }
            RowBytes::TwoBit { level_bytes, scale } => {
                for (k, o) in out.iter_mut().enumerate() {
                    let level: f32 = match (level_bytes[k / 4] >> (2 * (k % 4))) & 0b11 {
                        0b00 => 0.0,
                        0b01 => 1.0,
                        _ => -1.0,
                    };
                    *o = level * scale;
                }
            }
        }
    }

    /// Materialize the payload as an owned [`QuantizedRow`] (allocates;
    /// the compatibility path used by [`decode_rows`]).
    pub fn to_quantized(&self) -> QuantizedRow {
        match self.data {
            RowBytes::Full(bytes) => QuantizedRow::Full(
                bytes
                    .chunks_exact(4)
                    .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                    .collect(),
            ),
            RowBytes::OneBit {
                sign_bytes,
                pos_scale,
                neg_scale,
            } => QuantizedRow::OneBit {
                signs: (0..self.dim)
                    .map(|k| sign_bytes[k / 8] & (1 << (k % 8)) != 0)
                    .collect(),
                pos_scale,
                neg_scale,
            },
            RowBytes::TwoBit { level_bytes, scale } => QuantizedRow::TwoBit {
                levels: (0..self.dim)
                    .map(|k| match (level_bytes[k / 4] >> (2 * (k % 4))) & 0b11 {
                        0b00 => 0i8,
                        0b01 => 1,
                        _ => -1,
                    })
                    .collect(),
                scale,
            },
        }
    }
}

/// Expand packed sign bytes into `±scale` values, eight elements per sign
/// byte — the OneBit decode fast path behind [`RowRef::add_into`]
/// (`ADD = true`) and [`RowRef::dequantize_into`] (`ADD = false`). The
/// portable body expands each byte through a two-entry value table; the
/// AVX2 arm broadcasts the byte, turns its bits into a lane mask
/// (`and` + `cmpeq` against `1,2,…,128` — bit `i` selects lane `i`,
/// matching the codec's `1 << i` packing) and `blendv`s between the two
/// broadcast scales. Both are pure selections of the same two f32 values
/// the per-element probe produced, hence bit-identical to it.
fn one_bit_apply<const ADD: bool>(sign_bytes: &[u8], pos_scale: f32, neg_scale: f32, out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if kge_core::simd::use_avx2() {
        // SAFETY: AVX2 presence was just detected at runtime.
        return unsafe { one_bit_apply_avx2::<ADD>(sign_bytes, pos_scale, neg_scale, out) };
    }
    let vals = [-neg_scale, pos_scale];
    let n = out.len();
    let n8 = n - n % 8;
    for (b, o8) in sign_bytes.iter().zip(out[..n8].chunks_exact_mut(8)) {
        for (i, o) in o8.iter_mut().enumerate() {
            let x = vals[((b >> i) & 1) as usize];
            if ADD {
                *o += x;
            } else {
                *o = x;
            }
        }
    }
    for (i, o) in out[n8..].iter_mut().enumerate() {
        let x = vals[((sign_bytes[n8 / 8] >> i) & 1) as usize];
        if ADD {
            *o += x;
        } else {
            *o = x;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn one_bit_apply_avx2<const ADD: bool>(
    sign_bytes: &[u8],
    pos_scale: f32,
    neg_scale: f32,
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    let n = out.len();
    let n8 = n - n % 8;
    assert!(sign_bytes.len() >= n.div_ceil(8));
    let vpos = _mm256_set1_ps(pos_scale);
    let vneg = _mm256_set1_ps(-neg_scale);
    let bits = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
    let op = out.as_mut_ptr();
    for (j, &b) in sign_bytes[..n8 / 8].iter().enumerate() {
        let vb = _mm256_set1_epi32(b as i32);
        let mask = _mm256_cmpeq_epi32(_mm256_and_si256(vb, bits), bits);
        let sel = _mm256_blendv_ps(vneg, vpos, _mm256_castsi256_ps(mask));
        let p = op.add(j * 8);
        if ADD {
            _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), sel));
        } else {
            _mm256_storeu_ps(p, sel);
        }
    }
    let vals = [-neg_scale, pos_scale];
    for (i, o) in out[n8..].iter_mut().enumerate() {
        let x = vals[((sign_bytes[n8 / 8] >> i) & 1) as usize];
        if ADD {
            *o += x;
        } else {
            *o = x;
        }
    }
}

/// Streaming zero-copy decoder over a payload produced by [`encode_rows`]
/// or [`RowEncoder`]. Yields [`RowRef`]s borrowing the input buffer.
pub struct RowDecoder<'a> {
    buf: &'a [u8],
    format: WireFormat,
    dim: usize,
    remaining: u32,
}

impl<'a> RowDecoder<'a> {
    /// Parse the payload header.
    pub fn new(bytes: &'a [u8]) -> Result<Self, CodecError> {
        if bytes.len() < 9 {
            return Err(CodecError::Truncated {
                need: 9,
                have: bytes.len(),
            });
        }
        let format = WireFormat::from_tag(bytes[0])?;
        let n_rows = u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]);
        let dim = u32::from_le_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]) as usize;
        Ok(RowDecoder {
            buf: &bytes[9..],
            format,
            dim,
            remaining: n_rows,
        })
    }

    /// Declared row width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The payload's wire format.
    pub fn format(&self) -> WireFormat {
        self.format
    }

    /// Rows not yet yielded.
    pub fn remaining(&self) -> usize {
        self.remaining as usize
    }

    /// Yield the next row, or `None` when the declared count is exhausted.
    #[allow(clippy::should_implement_trait)] // fallible next: Iterator would lose the error
    pub fn next_row(&mut self) -> Option<Result<RowRef<'a>, CodecError>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.parse_row())
    }

    fn parse_row(&mut self) -> Result<RowRef<'a>, CodecError> {
        let body = self.format.row_bytes(self.dim) - 4;
        let need = 4 + body;
        if self.buf.len() < need {
            return Err(CodecError::Truncated {
                need,
                have: self.buf.len(),
            });
        }
        let row = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        let payload = &self.buf[4..need];
        self.buf = &self.buf[need..];
        let data = match self.format {
            WireFormat::F32 => RowBytes::Full(payload),
            WireFormat::OneBit { two_scales } => {
                let pos_scale = f32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]);
                let (neg_scale, off) = if two_scales {
                    (
                        f32::from_le_bytes([payload[4], payload[5], payload[6], payload[7]]),
                        8,
                    )
                } else {
                    (pos_scale, 4)
                };
                RowBytes::OneBit {
                    sign_bytes: &payload[off..],
                    pos_scale,
                    neg_scale,
                }
            }
            WireFormat::TwoBit => RowBytes::TwoBit {
                level_bytes: &payload[4..],
                scale: f32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]),
            },
        };
        Ok(RowRef {
            row,
            dim: self.dim,
            data,
        })
    }
}

/// Decode a payload produced by [`encode_rows`]. Returns the rows and the
/// declared row width.
pub fn decode_rows(bytes: &[u8]) -> Result<(Vec<RowPayload>, usize), CodecError> {
    let mut dec = RowDecoder::new(bytes)?;
    let mut rows = Vec::with_capacity(dec.remaining());
    while let Some(r) = dec.next_row() {
        let r = r?;
        rows.push(RowPayload {
            row: r.row,
            data: r.to_quantized(),
        });
    }
    Ok((rows, dec.dim))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::{quantize_row, QuantScheme};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_rows(scheme: QuantScheme, dim: usize, n: usize) -> Vec<RowPayload> {
        let mut rng = StdRng::seed_from_u64(11);
        (0..n)
            .map(|i| {
                let v: Vec<f32> = (0..dim)
                    .map(|k| ((i * 7 + k * 3) % 11) as f32 - 5.0 + 0.5 * (i as f32))
                    .collect();
                RowPayload {
                    row: (i * 13) as u32,
                    data: quantize_row(scheme, &v, &mut rng),
                }
            })
            .collect()
    }

    #[test]
    fn f32_roundtrip() {
        let rows = sample_rows(QuantScheme::None, 7, 5);
        let bytes = encode_rows(WireFormat::F32, 7, &rows).unwrap();
        let (decoded, dim) = decode_rows(&bytes).unwrap();
        assert_eq!(dim, 7);
        assert_eq!(decoded, rows);
    }

    /// The dense rows behind `sample_rows(scheme, dim, n)` (the packed
    /// fast path quantizes straight from these).
    fn sample_dense(dim: usize, n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|k| ((i * 7 + k * 3) % 11) as f32 - 5.0 + 0.5 * (i as f32))
                    .collect()
            })
            .collect()
    }

    /// Encode the same dense rows through [`RowEncoder::push_one_bit`]
    /// and assert byte-identity with the `QuantizedRow` reference payload.
    fn assert_packed_path_matches(
        rule: crate::quant::ScaleRule,
        fmt: WireFormat,
        dim: usize,
        rows: &[RowPayload],
        reference: &[u8],
    ) {
        let dense = sample_dense(dim, rows.len());
        let mut buf = Vec::new();
        let mut enc = RowEncoder::new(fmt, dim, &mut buf);
        for (rp, v) in rows.iter().zip(&dense) {
            enc.push_one_bit(rp.row, v, rule).unwrap();
        }
        enc.finish();
        assert_eq!(buf, reference, "packed fast path must match {fmt:?}");
    }

    #[test]
    fn one_bit_roundtrip_one_scale() {
        let rows = sample_rows(QuantScheme::paper_one_bit(), 13, 4);
        let fmt = WireFormat::OneBit { two_scales: false };
        let bytes = encode_rows(fmt, 13, &rows).unwrap();
        assert_eq!(bytes.len(), fmt.payload_bytes(13, 4));
        let (decoded, _) = decode_rows(&bytes).unwrap();
        for (a, b) in decoded.iter().zip(&rows) {
            assert_eq!(a.row, b.row);
            assert_eq!(a.data.dequantize(), b.data.dequantize());
        }
        assert_packed_path_matches(crate::quant::ScaleRule::Max, fmt, 13, &rows, &bytes);
    }

    #[test]
    fn one_bit_roundtrip_two_scales() {
        use crate::quant::ScaleRule;
        let rows = sample_rows(
            QuantScheme::OneBit {
                rule: ScaleRule::PosNegAvg,
            },
            9,
            3,
        );
        let fmt = WireFormat::OneBit { two_scales: true };
        let bytes = encode_rows(fmt, 9, &rows).unwrap();
        let (decoded, _) = decode_rows(&bytes).unwrap();
        assert_eq!(decoded, rows);
        assert_packed_path_matches(ScaleRule::PosNegAvg, fmt, 9, &rows, &bytes);
    }

    #[test]
    fn push_one_bit_rejects_mismatches() {
        let mut buf = Vec::new();
        let mut enc = RowEncoder::new(WireFormat::F32, 4, &mut buf);
        let err = enc
            .push_one_bit(0, &[1.0; 4], crate::quant::ScaleRule::Max)
            .unwrap_err();
        assert!(matches!(err, CodecError::WrongVariant { .. }));

        let mut buf = Vec::new();
        let mut enc = RowEncoder::new(WireFormat::OneBit { two_scales: false }, 4, &mut buf);
        let err = enc
            .push_one_bit(0, &[1.0; 3], crate::quant::ScaleRule::Max)
            .unwrap_err();
        assert!(matches!(err, CodecError::DimMismatch { .. }));
        // A two-scale rule cannot ride a one-scale format (unless the
        // scales coincide) — same contract as `push`.
        let err = enc
            .push_one_bit(0, &[1.0, -2.0, 3.0, -4.0], crate::quant::ScaleRule::PosNegMax)
            .unwrap_err();
        assert!(matches!(err, CodecError::WrongVariant { .. }));
    }

    #[test]
    fn two_bit_roundtrip() {
        let rows = sample_rows(QuantScheme::TwoBit, 10, 6);
        let bytes = encode_rows(WireFormat::TwoBit, 10, &rows).unwrap();
        assert_eq!(bytes.len(), WireFormat::TwoBit.payload_bytes(10, 6));
        let (decoded, _) = decode_rows(&bytes).unwrap();
        assert_eq!(decoded, rows);
    }

    #[test]
    fn one_bit_is_much_smaller_than_f32() {
        let dim = 128;
        let f32_size = WireFormat::F32.payload_bytes(dim, 100);
        let one_bit = WireFormat::OneBit { two_scales: false }.payload_bytes(dim, 100);
        // 4 + 512 vs 4 + 4 + 16 per row → ~21x smaller.
        assert!(f32_size > 20 * one_bit / 2, "f32={f32_size} 1bit={one_bit}");
        assert!(one_bit < f32_size / 10);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let bytes = encode_rows(WireFormat::F32, 4, &[]).unwrap();
        let (rows, dim) = decode_rows(&bytes).unwrap();
        assert!(rows.is_empty());
        assert_eq!(dim, 4);
    }

    #[test]
    fn wrong_variant_rejected() {
        let rows = sample_rows(QuantScheme::None, 4, 1);
        let err = encode_rows(WireFormat::TwoBit, 4, &rows).unwrap_err();
        assert!(matches!(err, CodecError::WrongVariant { .. }));
    }

    #[test]
    fn dim_mismatch_rejected() {
        let rows = sample_rows(QuantScheme::None, 4, 1);
        let err = encode_rows(WireFormat::F32, 5, &rows).unwrap_err();
        assert!(matches!(err, CodecError::DimMismatch { .. }));
    }

    #[test]
    fn truncated_payload_rejected() {
        let rows = sample_rows(QuantScheme::None, 4, 2);
        let bytes = encode_rows(WireFormat::F32, 4, &rows).unwrap();
        let err = decode_rows(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(matches!(err, CodecError::Truncated { .. }));
    }

    #[test]
    fn bad_tag_rejected() {
        let err = decode_rows(&[9u8, 0, 0, 0, 0, 0, 0, 0, 0]).unwrap_err();
        assert_eq!(err, CodecError::BadTag(9));
    }

    #[test]
    fn row_encoder_matches_encode_rows_bytewise() {
        for (scheme, fmt, dim) in [
            (QuantScheme::None, WireFormat::F32, 7),
            (
                QuantScheme::paper_one_bit(),
                WireFormat::OneBit { two_scales: false },
                13,
            ),
            (
                QuantScheme::OneBit {
                    rule: crate::quant::ScaleRule::PosNegAvg,
                },
                WireFormat::OneBit { two_scales: true },
                9,
            ),
            (QuantScheme::TwoBit, WireFormat::TwoBit, 10),
        ] {
            let rows = sample_rows(scheme, dim, 5);
            let reference = encode_rows(fmt, dim, &rows).unwrap();
            let mut buf = vec![0xAAu8; 3]; // stale contents must be discarded
            let mut enc = RowEncoder::new(fmt, dim, &mut buf);
            for rp in &rows {
                enc.push(rp.row, &rp.data).unwrap();
            }
            let n = enc.finish();
            assert_eq!(n, buf.len());
            assert_eq!(buf, reference, "{fmt:?}");
        }
    }

    #[test]
    fn push_f32_matches_full_quantized_push() {
        let rows = sample_rows(QuantScheme::None, 6, 3);
        let reference = encode_rows(WireFormat::F32, 6, &rows).unwrap();
        let mut buf = Vec::new();
        let mut enc = RowEncoder::new(WireFormat::F32, 6, &mut buf);
        for rp in &rows {
            match &rp.data {
                QuantizedRow::Full(v) => enc.push_f32(rp.row, v).unwrap(),
                _ => unreachable!(),
            }
        }
        enc.finish();
        assert_eq!(buf, reference);
    }

    #[test]
    fn push_f32_rejects_non_f32_format() {
        let mut buf = Vec::new();
        let mut enc = RowEncoder::new(WireFormat::TwoBit, 4, &mut buf);
        let err = enc.push_f32(0, &[1.0, 2.0, 3.0, 4.0]).unwrap_err();
        assert!(matches!(err, CodecError::WrongVariant { .. }));
    }

    #[test]
    fn row_decoder_add_into_matches_quantized_add_into() {
        for (scheme, fmt, dim) in [
            (QuantScheme::None, WireFormat::F32, 7),
            (
                QuantScheme::paper_one_bit(),
                WireFormat::OneBit { two_scales: false },
                13,
            ),
            (
                QuantScheme::OneBit {
                    rule: crate::quant::ScaleRule::PosNegAvg,
                },
                WireFormat::OneBit { two_scales: true },
                9,
            ),
            (QuantScheme::TwoBit, WireFormat::TwoBit, 10),
        ] {
            let rows = sample_rows(scheme, dim, 4);
            let bytes = encode_rows(fmt, dim, &rows).unwrap();
            let mut dec = RowDecoder::new(&bytes).unwrap();
            assert_eq!(dec.dim(), dim);
            assert_eq!(dec.format(), fmt);
            assert_eq!(dec.remaining(), 4);
            for rp in &rows {
                let r = dec.next_row().unwrap().unwrap();
                assert_eq!(r.row, rp.row);
                let mut borrowed = vec![0.5f32; dim];
                let mut owned = vec![0.5f32; dim];
                r.add_into(&mut borrowed);
                rp.data.add_into(&mut owned);
                assert_eq!(borrowed, owned, "{fmt:?}");
                let mut deq = vec![f32::NAN; dim];
                r.dequantize_into(&mut deq);
                assert_eq!(deq, rp.data.dequantize(), "{fmt:?}");
                assert_eq!(r.to_quantized(), rp.data, "{fmt:?}");
            }
            assert!(dec.next_row().is_none());
        }
    }

    #[test]
    fn row_decoder_reports_truncation() {
        let rows = sample_rows(QuantScheme::None, 4, 2);
        let bytes = encode_rows(WireFormat::F32, 4, &rows).unwrap();
        let mut dec = RowDecoder::new(&bytes[..bytes.len() - 3]).unwrap();
        assert!(dec.next_row().unwrap().is_ok());
        let err = dec.next_row().unwrap().unwrap_err();
        assert!(matches!(err, CodecError::Truncated { .. }));
    }

    #[test]
    fn row_bytes_formula() {
        assert_eq!(WireFormat::F32.row_bytes(8), 4 + 32);
        assert_eq!(WireFormat::OneBit { two_scales: false }.row_bytes(8), 4 + 4 + 1);
        assert_eq!(WireFormat::OneBit { two_scales: true }.row_bytes(9), 4 + 8 + 2);
        assert_eq!(WireFormat::TwoBit.row_bytes(8), 4 + 4 + 2);
    }
}
