//! Byte-level wire formats for sparse (possibly quantized) gradient rows.
//!
//! The all-gather path communicates `(row id, payload)` pairs; the payload
//! is either raw `f32`s, 1-bit signs + scale(s), or 2-bit ternary levels +
//! scale. Encoded size is exactly what the simulated network is charged
//! for, so the formats are packed tight:
//!
//! ```text
//! header:  tag u8 | n_rows u32 | dim u32
//! F32 row:     row u32 | dim × f32
//! OneBit row:  row u32 | scale f32 [| neg_scale f32] | ⌈dim/8⌉ sign bytes
//! TwoBit row:  row u32 | scale f32 | ⌈dim/4⌉ level bytes
//! ```

use crate::quant::QuantizedRow;
use bytes::{Buf, BufMut, BytesMut};
use serde::{Deserialize, Serialize};

/// Wire format selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireFormat {
    /// Raw sparse f32 rows.
    F32,
    /// Sign-bit rows. `two_scales` stores separate positive/negative
    /// scales (the posmax/posavg/negmax/negavg rules).
    OneBit { two_scales: bool },
    /// Ternary rows.
    TwoBit,
}

impl WireFormat {
    fn tag(self) -> u8 {
        match self {
            WireFormat::F32 => 0,
            WireFormat::OneBit { two_scales: false } => 1,
            WireFormat::OneBit { two_scales: true } => 2,
            WireFormat::TwoBit => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, CodecError> {
        Ok(match tag {
            0 => WireFormat::F32,
            1 => WireFormat::OneBit { two_scales: false },
            2 => WireFormat::OneBit { two_scales: true },
            3 => WireFormat::TwoBit,
            _ => return Err(CodecError::BadTag(tag)),
        })
    }

    /// Bytes of one encoded row of width `dim`.
    pub fn row_bytes(self, dim: usize) -> usize {
        4 + match self {
            WireFormat::F32 => 4 * dim,
            WireFormat::OneBit { two_scales } => (if two_scales { 8 } else { 4 }) + dim.div_ceil(8),
            WireFormat::TwoBit => 4 + dim.div_ceil(4),
        }
    }

    /// Total encoded size of `n_rows` rows of width `dim`, header included.
    /// This is what the dynamic communication-selection strategy uses to
    /// price a hypothetical all-gather without encoding.
    pub fn payload_bytes(self, dim: usize, n_rows: usize) -> usize {
        9 + n_rows * self.row_bytes(dim)
    }
}

/// A decoded `(row id, payload)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct RowPayload {
    pub row: u32,
    pub data: QuantizedRow,
}

/// Codec failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    BadTag(u8),
    Truncated { need: usize, have: usize },
    WrongVariant { expected: &'static str },
    DimMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadTag(t) => write!(f, "unknown wire format tag {t}"),
            CodecError::Truncated { need, have } => {
                write!(f, "truncated payload: need {need} bytes, have {have}")
            }
            CodecError::WrongVariant { expected } => {
                write!(f, "row payload does not match wire format {expected}")
            }
            CodecError::DimMismatch { expected, got } => {
                write!(f, "row width {got} does not match declared dim {expected}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Encode rows (all of width `dim`) under `format`.
pub fn encode_rows(
    format: WireFormat,
    dim: usize,
    rows: &[RowPayload],
) -> Result<Vec<u8>, CodecError> {
    let mut buf = BytesMut::with_capacity(format.payload_bytes(dim, rows.len()));
    buf.put_u8(format.tag());
    buf.put_u32_le(rows.len() as u32);
    buf.put_u32_le(dim as u32);
    for rp in rows {
        if rp.data.len() != dim {
            return Err(CodecError::DimMismatch {
                expected: dim,
                got: rp.data.len(),
            });
        }
        buf.put_u32_le(rp.row);
        match (&rp.data, format) {
            (QuantizedRow::Full(v), WireFormat::F32) => {
                for &x in v {
                    buf.put_f32_le(x);
                }
            }
            (
                QuantizedRow::OneBit {
                    signs,
                    pos_scale,
                    neg_scale,
                },
                WireFormat::OneBit { two_scales },
            ) => {
                buf.put_f32_le(*pos_scale);
                if two_scales {
                    buf.put_f32_le(*neg_scale);
                } else if pos_scale != neg_scale {
                    return Err(CodecError::WrongVariant {
                        expected: "one-scale OneBit",
                    });
                }
                for chunk in signs.chunks(8) {
                    let mut byte = 0u8;
                    for (i, &s) in chunk.iter().enumerate() {
                        if s {
                            byte |= 1 << i;
                        }
                    }
                    buf.put_u8(byte);
                }
            }
            (QuantizedRow::TwoBit { levels, scale }, WireFormat::TwoBit) => {
                buf.put_f32_le(*scale);
                for chunk in levels.chunks(4) {
                    let mut byte = 0u8;
                    for (i, &l) in chunk.iter().enumerate() {
                        let code: u8 = match l {
                            0 => 0b00,
                            1 => 0b01,
                            _ => 0b10, // -1
                        };
                        byte |= code << (2 * i);
                    }
                    buf.put_u8(byte);
                }
            }
            _ => {
                return Err(CodecError::WrongVariant {
                    expected: match format {
                        WireFormat::F32 => "F32",
                        WireFormat::OneBit { .. } => "OneBit",
                        WireFormat::TwoBit => "TwoBit",
                    },
                })
            }
        }
    }
    Ok(buf.to_vec())
}

/// Decode a payload produced by [`encode_rows`]. Returns the rows and the
/// declared row width.
pub fn decode_rows(bytes: &[u8]) -> Result<(Vec<RowPayload>, usize), CodecError> {
    let mut buf = bytes;
    let need = |buf: &[u8], n: usize| -> Result<(), CodecError> {
        if buf.remaining() < n {
            Err(CodecError::Truncated {
                need: n,
                have: buf.remaining(),
            })
        } else {
            Ok(())
        }
    };
    need(buf, 9)?;
    let format = WireFormat::from_tag(buf.get_u8())?;
    let n_rows = buf.get_u32_le() as usize;
    let dim = buf.get_u32_le() as usize;
    let mut rows = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        need(buf, 4)?;
        let row = buf.get_u32_le();
        let data = match format {
            WireFormat::F32 => {
                need(buf, 4 * dim)?;
                let mut v = Vec::with_capacity(dim);
                for _ in 0..dim {
                    v.push(buf.get_f32_le());
                }
                QuantizedRow::Full(v)
            }
            WireFormat::OneBit { two_scales } => {
                need(buf, if two_scales { 8 } else { 4 } + dim.div_ceil(8))?;
                let pos_scale = buf.get_f32_le();
                let neg_scale = if two_scales { buf.get_f32_le() } else { pos_scale };
                let mut signs = Vec::with_capacity(dim);
                for _ in 0..dim.div_ceil(8) {
                    let byte = buf.get_u8();
                    for i in 0..8 {
                        if signs.len() < dim {
                            signs.push(byte & (1 << i) != 0);
                        }
                    }
                }
                QuantizedRow::OneBit {
                    signs,
                    pos_scale,
                    neg_scale,
                }
            }
            WireFormat::TwoBit => {
                need(buf, 4 + dim.div_ceil(4))?;
                let scale = buf.get_f32_le();
                let mut levels = Vec::with_capacity(dim);
                for _ in 0..dim.div_ceil(4) {
                    let byte = buf.get_u8();
                    for i in 0..4 {
                        if levels.len() < dim {
                            levels.push(match (byte >> (2 * i)) & 0b11 {
                                0b00 => 0i8,
                                0b01 => 1,
                                _ => -1,
                            });
                        }
                    }
                }
                QuantizedRow::TwoBit { levels, scale }
            }
        };
        rows.push(RowPayload { row, data });
    }
    Ok((rows, dim))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::{quantize_row, QuantScheme};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_rows(scheme: QuantScheme, dim: usize, n: usize) -> Vec<RowPayload> {
        let mut rng = StdRng::seed_from_u64(11);
        (0..n)
            .map(|i| {
                let v: Vec<f32> = (0..dim)
                    .map(|k| ((i * 7 + k * 3) % 11) as f32 - 5.0 + 0.5 * (i as f32))
                    .collect();
                RowPayload {
                    row: (i * 13) as u32,
                    data: quantize_row(scheme, &v, &mut rng),
                }
            })
            .collect()
    }

    #[test]
    fn f32_roundtrip() {
        let rows = sample_rows(QuantScheme::None, 7, 5);
        let bytes = encode_rows(WireFormat::F32, 7, &rows).unwrap();
        let (decoded, dim) = decode_rows(&bytes).unwrap();
        assert_eq!(dim, 7);
        assert_eq!(decoded, rows);
    }

    #[test]
    fn one_bit_roundtrip_one_scale() {
        let rows = sample_rows(QuantScheme::paper_one_bit(), 13, 4);
        let fmt = WireFormat::OneBit { two_scales: false };
        let bytes = encode_rows(fmt, 13, &rows).unwrap();
        assert_eq!(bytes.len(), fmt.payload_bytes(13, 4));
        let (decoded, _) = decode_rows(&bytes).unwrap();
        for (a, b) in decoded.iter().zip(&rows) {
            assert_eq!(a.row, b.row);
            assert_eq!(a.data.dequantize(), b.data.dequantize());
        }
    }

    #[test]
    fn one_bit_roundtrip_two_scales() {
        use crate::quant::ScaleRule;
        let rows = sample_rows(
            QuantScheme::OneBit {
                rule: ScaleRule::PosNegAvg,
            },
            9,
            3,
        );
        let fmt = WireFormat::OneBit { two_scales: true };
        let bytes = encode_rows(fmt, 9, &rows).unwrap();
        let (decoded, _) = decode_rows(&bytes).unwrap();
        assert_eq!(decoded, rows);
    }

    #[test]
    fn two_bit_roundtrip() {
        let rows = sample_rows(QuantScheme::TwoBit, 10, 6);
        let bytes = encode_rows(WireFormat::TwoBit, 10, &rows).unwrap();
        assert_eq!(bytes.len(), WireFormat::TwoBit.payload_bytes(10, 6));
        let (decoded, _) = decode_rows(&bytes).unwrap();
        assert_eq!(decoded, rows);
    }

    #[test]
    fn one_bit_is_much_smaller_than_f32() {
        let dim = 128;
        let f32_size = WireFormat::F32.payload_bytes(dim, 100);
        let one_bit = WireFormat::OneBit { two_scales: false }.payload_bytes(dim, 100);
        // 4 + 512 vs 4 + 4 + 16 per row → ~21x smaller.
        assert!(f32_size > 20 * one_bit / 2, "f32={f32_size} 1bit={one_bit}");
        assert!(one_bit < f32_size / 10);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let bytes = encode_rows(WireFormat::F32, 4, &[]).unwrap();
        let (rows, dim) = decode_rows(&bytes).unwrap();
        assert!(rows.is_empty());
        assert_eq!(dim, 4);
    }

    #[test]
    fn wrong_variant_rejected() {
        let rows = sample_rows(QuantScheme::None, 4, 1);
        let err = encode_rows(WireFormat::TwoBit, 4, &rows).unwrap_err();
        assert!(matches!(err, CodecError::WrongVariant { .. }));
    }

    #[test]
    fn dim_mismatch_rejected() {
        let rows = sample_rows(QuantScheme::None, 4, 1);
        let err = encode_rows(WireFormat::F32, 5, &rows).unwrap_err();
        assert!(matches!(err, CodecError::DimMismatch { .. }));
    }

    #[test]
    fn truncated_payload_rejected() {
        let rows = sample_rows(QuantScheme::None, 4, 2);
        let bytes = encode_rows(WireFormat::F32, 4, &rows).unwrap();
        let err = decode_rows(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(matches!(err, CodecError::Truncated { .. }));
    }

    #[test]
    fn bad_tag_rejected() {
        let err = decode_rows(&[9u8, 0, 0, 0, 0, 0, 0, 0, 0]).unwrap_err();
        assert_eq!(err, CodecError::BadTag(9));
    }

    #[test]
    fn row_bytes_formula() {
        assert_eq!(WireFormat::F32.row_bytes(8), 4 + 32);
        assert_eq!(WireFormat::OneBit { two_scales: false }.row_bytes(8), 4 + 4 + 1);
        assert_eq!(WireFormat::OneBit { two_scales: true }.row_bytes(9), 4 + 8 + 2);
        assert_eq!(WireFormat::TwoBit.row_bytes(8), 4 + 4 + 2);
    }
}
