//! Stored-quantized row arena: resident embedding storage for the sharded
//! store's cold rows.
//!
//! The wire codec ([`crate::codec`]) compresses *gradients in flight*;
//! this module compresses *parameters at rest*. An owner rank keeps its
//! entity rows in a [`RowArena`] — either full-precision f32 or 8-bit
//! symmetric-quantized (per-row scale `max|x| / 127`, round-to-nearest) —
//! and dequantizes on pull. Int8 cuts resident bytes per row from `4·d`
//! to `d + 4`, which is what pushes the sharded store's per-rank model
//! memory under the 15%-of-replica mark on FB250K-scale configs.
//!
//! Quantization is deterministic (pure function of the row values), so
//! two runs that store the same rows read back the same bytes — the
//! sharded determinism suite relies on that. It is, however, lossy:
//! training against an Int8 arena follows a slightly different (still
//! deterministic) trajectory than f32 storage.

/// Storage precision of a [`RowArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArenaKind {
    /// Full-precision rows, `4·dim` bytes per row.
    F32,
    /// 8-bit symmetric quantization, `dim + 4` bytes per row (codes plus
    /// one f32 scale).
    Int8,
}

/// Fixed-capacity row store addressed by a dense local index.
#[derive(Debug, Clone)]
pub struct RowArena {
    kind: ArenaKind,
    rows: usize,
    dim: usize,
    /// F32 backing (empty for Int8).
    values: Vec<f32>,
    /// Int8 backing (empty for F32).
    codes: Vec<i8>,
    /// Per-row dequantization scale (Int8 only).
    scales: Vec<f32>,
}

impl RowArena {
    /// Zero-initialized arena of `rows × dim`.
    pub fn new(kind: ArenaKind, rows: usize, dim: usize) -> Self {
        let (values, codes, scales) = match kind {
            ArenaKind::F32 => (vec![0.0; rows * dim], Vec::new(), Vec::new()),
            ArenaKind::Int8 => (Vec::new(), vec![0; rows * dim], vec![0.0; rows]),
        };
        RowArena {
            kind,
            rows,
            dim,
            values,
            codes,
            scales,
        }
    }

    pub fn kind(&self) -> ArenaKind {
        self.kind
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Resident bytes of the row storage itself (codes + scales or f32
    /// values). Excludes the struct header; this is the number the bench
    /// memory accounting sums.
    pub fn value_bytes(&self) -> usize {
        match self.kind {
            ArenaKind::F32 => self.values.len() * 4,
            ArenaKind::Int8 => self.codes.len() + self.scales.len() * 4,
        }
    }

    /// Store `row` at local index `idx`, quantizing if the arena is Int8.
    /// Round-to-nearest with per-row scale `max|x| / 127`; an all-zero row
    /// stores scale 0 and reads back exactly zero.
    pub fn store(&mut self, idx: usize, row: &[f32]) {
        assert_eq!(row.len(), self.dim);
        match self.kind {
            ArenaKind::F32 => {
                self.values[idx * self.dim..(idx + 1) * self.dim].copy_from_slice(row);
            }
            ArenaKind::Int8 => {
                let mut max_abs = 0.0f32;
                for &x in row {
                    max_abs = max_abs.max(x.abs());
                }
                let scale = max_abs / 127.0;
                self.scales[idx] = scale;
                let inv = if scale > 0.0 { 1.0 / scale } else { 0.0 };
                let out = &mut self.codes[idx * self.dim..(idx + 1) * self.dim];
                for (c, &x) in out.iter_mut().zip(row) {
                    // Round-to-nearest, ties away from zero; |x| ≤ max_abs
                    // keeps the code inside ±127 before the clamp.
                    *c = (x * inv).round().clamp(-127.0, 127.0) as i8;
                }
            }
        }
    }

    /// Read the row at `idx` into `out`, dequantizing if needed.
    pub fn load_into(&self, idx: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim);
        match self.kind {
            ArenaKind::F32 => {
                out.copy_from_slice(&self.values[idx * self.dim..(idx + 1) * self.dim]);
            }
            ArenaKind::Int8 => {
                let scale = self.scales[idx];
                let codes = &self.codes[idx * self.dim..(idx + 1) * self.dim];
                for (o, &c) in out.iter_mut().zip(codes) {
                    *o = c as f32 * scale;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_arena_roundtrips_exactly() {
        let mut a = RowArena::new(ArenaKind::F32, 3, 4);
        let row = [1.5f32, -2.25, 0.0, 1e-3];
        a.store(1, &row);
        let mut out = [0.0f32; 4];
        a.load_into(1, &mut out);
        assert_eq!(out, row);
        assert_eq!(a.value_bytes(), 3 * 4 * 4);
    }

    #[test]
    fn int8_arena_bounds_error_by_half_step() {
        let mut a = RowArena::new(ArenaKind::Int8, 2, 8);
        let row: Vec<f32> = (0..8).map(|i| (i as f32 - 3.5) * 0.37).collect();
        a.store(0, &row);
        let mut out = [0.0f32; 8];
        a.load_into(0, &mut out);
        let max_abs = row.iter().fold(0.0f32, |m, x| m.max(x.abs()));
        let half_step = max_abs / 127.0 / 2.0 * 1.0001;
        for (x, y) in row.iter().zip(out.iter()) {
            assert!((x - y).abs() <= half_step, "{x} vs {y}");
        }
    }

    #[test]
    fn int8_arena_is_deterministic_and_idempotent() {
        let row: Vec<f32> = (0..16).map(|i| ((i * 37 % 11) as f32 - 5.0) * 0.01).collect();
        let mut a = RowArena::new(ArenaKind::Int8, 1, 16);
        let mut b = RowArena::new(ArenaKind::Int8, 1, 16);
        a.store(0, &row);
        b.store(0, &row);
        let (mut oa, mut ob) = ([0.0f32; 16], [0.0f32; 16]);
        a.load_into(0, &mut oa);
        b.load_into(0, &mut ob);
        assert_eq!(oa, ob);
        // Re-storing the dequantized row reproduces it exactly: the max
        // element is a fixed point of the quantizer, so the scale is
        // preserved and every code re-rounds to itself.
        a.store(0, &oa);
        let mut oa2 = [0.0f32; 16];
        a.load_into(0, &mut oa2);
        assert_eq!(oa, oa2);
    }

    #[test]
    fn zero_row_stores_zero_scale() {
        let mut a = RowArena::new(ArenaKind::Int8, 1, 4);
        a.store(0, &[0.0; 4]);
        let mut out = [1.0f32; 4];
        a.load_into(0, &mut out);
        assert_eq!(out, [0.0; 4]);
    }

    #[test]
    fn int8_saves_close_to_4x() {
        let a = RowArena::new(ArenaKind::Int8, 100, 64);
        let f = RowArena::new(ArenaKind::F32, 100, 64);
        assert_eq!(a.value_bytes(), 100 * (64 + 4));
        assert_eq!(f.value_bytes(), 100 * 64 * 4);
        assert!((a.value_bytes() as f64) < 0.27 * f.value_bytes() as f64);
    }
}
