//! # kge-compress — gradient compression for distributed KGE training
//!
//! Implements strategies S2 and S3 of the paper plus the wire formats that
//! carry compressed gradients through the all-gather collective:
//!
//! - [`row_select`] — §4.2 *Selecting the Gradient Vectors*: drop gradient
//!   rows with small 2-norm, either by hard thresholds (`avg`,
//!   `avg × 0.1`) or by the paper's preferred **Bernoulli random
//!   selection** `P(keep row i) = min(1, ‖g_i‖₂ / mean‖g‖₂)`.
//! - [`quant`] — §4.3 *Gradient Quantization*: the paper's chosen **1-bit**
//!   scheme `sign(v)·max(|v|)` with all the explored variants (`avg`,
//!   `posmax`/`negmax`, `posavg`/`negavg`) and the TernGrad-style
//!   **2-bit** scheme `sign(v)·mean(|v|)·Bernoulli`.
//! - [`codec`] — compact byte encodings of sparse f32 rows, 1-bit rows and
//!   2-bit rows, so communicated sizes are the real wire sizes the cost
//!   model charges (a 1-bit row is `4 + 4·k + ⌈d/8⌉` bytes instead of
//!   `4 + 4d`).
//! - [`residual`] — error-feedback storage (Karimireddy et al. style):
//!   accumulate the quantization error locally and add it back before the
//!   next compression.

pub mod arena;
pub mod codec;
pub mod quant;
pub mod residual;
pub mod row_select;

pub use arena::{ArenaKind, RowArena};
pub use codec::{decode_rows, encode_rows, RowDecoder, RowEncoder, RowPayload, RowRef, WireFormat};
pub use quant::{one_bit_dequantize_from, QuantScheme, QuantizedRow, ScaleRule};
pub use residual::ResidualStore;
pub use row_select::{RowSelection, RowSelector};
