//! §4.2 — Selecting the gradient vectors.
//!
//! The 2-norm of a gradient row is used as a proxy for how much that row
//! contributes to reducing the loss. Rows below a threshold are dropped
//! before communication. The paper compares three policies and adopts the
//! Bernoulli one (its "random selection", RS):
//!
//! - `avg` threshold: drop rows with `‖g‖ < mean‖g‖` — too aggressive;
//! - `avg × 0.1`: drop rows with `‖g‖ < 0.1·mean‖g‖`;
//! - **Bernoulli**: keep row `i` with `P = min(1, ‖g_i‖ / mean‖g‖)` —
//!   small rows still get through occasionally, which preserves
//!   convergence while introducing substantial sparsity (Fig. 3).

use kge_core::matrix::l2_norm;
use kge_core::SparseGrad;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Row-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RowSelector {
    /// Keep everything (dense baseline).
    None,
    /// Drop rows whose norm is below `factor × mean norm`.
    Threshold { factor: f32 },
    /// The paper's random selection: keep with `min(1, norm/mean)`.
    /// `rescale` divides kept rows by their keep probability, making the
    /// estimator unbiased (Wangni et al.); the paper does not rescale, so
    /// its RS uses `rescale = false`.
    Bernoulli { rescale: bool },
    /// Related-work baseline (Aji & Heafield 2017 adapted to rows): keep
    /// only the `keep_fraction` of rows with the largest norms.
    TopK { keep_fraction: f32 },
}

impl RowSelector {
    /// The paper's RS configuration.
    pub fn paper_rs() -> Self {
        RowSelector::Bernoulli { rescale: false }
    }
}

/// Outcome statistics of one selection pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RowSelection {
    pub rows_before: usize,
    pub rows_after: usize,
}

impl RowSelection {
    /// Fraction of rows dropped (the paper's "sparsity", Fig. 3b).
    pub fn sparsity(&self) -> f64 {
        if self.rows_before == 0 {
            0.0
        } else {
            1.0 - self.rows_after as f64 / self.rows_before as f64
        }
    }
}

/// Apply the policy to `grad` in place, dropping (and optionally
/// rescaling) rows. Returns before/after row counts.
pub fn select_rows<R: Rng>(
    selector: RowSelector,
    grad: &mut SparseGrad,
    rng: &mut R,
) -> RowSelection {
    let rows_before = grad.nnz();
    if rows_before == 0 || matches!(selector, RowSelector::None) {
        return RowSelection {
            rows_before,
            rows_after: rows_before,
        };
    }
    // Mean of row 2-norms (the paper's C).
    let norms = grad.row_norms();
    let mean: f32 = norms.iter().map(|&(_, n)| n).sum::<f32>() / rows_before as f32;
    if mean <= 0.0 {
        // All-zero gradient: nothing worth communicating.
        grad.clear();
        return RowSelection {
            rows_before,
            rows_after: 0,
        };
    }
    match selector {
        RowSelector::None => unreachable!(),
        RowSelector::Threshold { factor } => {
            let cut = factor * mean;
            grad.retain(|_, g| l2_norm(g) >= cut);
        }
        RowSelector::TopK { keep_fraction } => {
            let keep = ((rows_before as f32 * keep_fraction).ceil() as usize)
                .clamp(1, rows_before);
            // Norms are already computed; find the keep-th largest as cut.
            let mut by_norm: Vec<f32> = norms.iter().map(|&(_, n)| n).collect();
            by_norm.sort_by(|a, b| b.partial_cmp(a).expect("finite norms"));
            let cut = by_norm[keep - 1];
            // `>= cut` may keep a few extra ties; acceptable and simple.
            grad.retain(|_, g| l2_norm(g) >= cut);
        }
        RowSelector::Bernoulli { rescale } => {
            // Draw keep decisions in sorted-row order so the outcome is
            // deterministic given the RNG state.
            let mut keep_scale: std::collections::HashMap<u32, f32> =
                std::collections::HashMap::with_capacity(rows_before);
            for &(row, n) in &norms {
                let p = (n / mean).min(1.0);
                if p > 0.0 && rng.gen::<f32>() < p {
                    keep_scale.insert(row, if rescale { 1.0 / p } else { 1.0 });
                }
            }
            grad.retain(|row, _| keep_scale.contains_key(&row));
            if rescale {
                // Second pass: scale kept rows by 1/p.
                let rows: Vec<(u32, f32)> = keep_scale.into_iter().collect();
                for (row, s) in rows {
                    if s != 1.0 {
                        if let Some(_g) = grad.get(row) {
                            for v in grad.row_mut(row).iter_mut() {
                                *v *= s;
                            }
                        }
                    }
                }
            }
        }
    }
    RowSelection {
        rows_before,
        rows_after: grad.nnz(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// 20 rows with norms 1..=20 (row id = norm).
    fn graded_grad() -> SparseGrad {
        let mut g = SparseGrad::new(2);
        for i in 1..=20u32 {
            let v = (i as f32) / 2f32.sqrt();
            g.row_mut(i).copy_from_slice(&[v, v]);
        }
        g
    }

    #[test]
    fn none_keeps_everything() {
        let mut g = graded_grad();
        let mut rng = StdRng::seed_from_u64(0);
        let sel = select_rows(RowSelector::None, &mut g, &mut rng);
        assert_eq!(sel.rows_after, 20);
        assert_eq!(sel.sparsity(), 0.0);
    }

    #[test]
    fn avg_threshold_drops_below_mean() {
        let mut g = graded_grad();
        let mut rng = StdRng::seed_from_u64(0);
        let sel = select_rows(RowSelector::Threshold { factor: 1.0 }, &mut g, &mut rng);
        // mean norm = 10.5, rows 11..=20 survive.
        assert_eq!(sel.rows_after, 10);
        assert!(g.get(11).is_some());
        assert!(g.get(10).is_none());
    }

    #[test]
    fn tenth_of_avg_threshold_keeps_most() {
        let mut g = graded_grad();
        let mut rng = StdRng::seed_from_u64(0);
        let sel = select_rows(RowSelector::Threshold { factor: 0.1 }, &mut g, &mut rng);
        // cut = 1.05: only row 1 (norm 1) dropped.
        assert_eq!(sel.rows_after, 19);
    }

    #[test]
    fn bernoulli_always_keeps_rows_at_or_above_mean() {
        for seed in 0..20 {
            let mut g = graded_grad();
            let mut rng = StdRng::seed_from_u64(seed);
            select_rows(RowSelector::paper_rs(), &mut g, &mut rng);
            for row in 11..=20u32 {
                assert!(g.get(row).is_some(), "row {row} must survive (p=1)");
            }
        }
    }

    #[test]
    fn bernoulli_introduces_sparsity_on_skewed_grads() {
        // One dominant row and many tiny ones: tiny rows are mostly dropped.
        let mut g = SparseGrad::new(1);
        g.row_mut(0)[0] = 100.0;
        for i in 1..200u32 {
            g.row_mut(i)[0] = 0.01;
        }
        let mut rng = StdRng::seed_from_u64(5);
        let sel = select_rows(RowSelector::paper_rs(), &mut g, &mut rng);
        assert!(g.get(0).is_some());
        assert!(
            sel.sparsity() > 0.9,
            "tiny rows should mostly drop: {}",
            sel.sparsity()
        );
    }

    #[test]
    fn bernoulli_keep_probability_matches_norm_ratio() {
        // Row with norm = mean/2 should survive ~50% of seeds.
        let mut kept = 0usize;
        let trials = 400;
        for seed in 0..trials {
            let mut g = SparseGrad::new(1);
            g.row_mut(0)[0] = 1.0; // the probe row
            g.row_mut(1)[0] = 3.0; // mean = 2 → p(probe) = 0.5
            let mut rng = StdRng::seed_from_u64(seed as u64);
            select_rows(RowSelector::paper_rs(), &mut g, &mut rng);
            if g.get(0).is_some() {
                kept += 1;
            }
        }
        let rate = kept as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.08, "keep rate {rate}");
    }

    #[test]
    fn rescaled_bernoulli_is_unbiased() {
        // E[kept value] should equal the original value when rescaling.
        let trials = 2000;
        let mut sum = 0.0f64;
        for seed in 0..trials {
            let mut g = SparseGrad::new(1);
            g.row_mut(0)[0] = 1.0;
            g.row_mut(1)[0] = 3.0;
            let mut rng = StdRng::seed_from_u64(seed as u64);
            select_rows(RowSelector::Bernoulli { rescale: true }, &mut g, &mut rng);
            sum += g.get(0).map_or(0.0, |v| v[0] as f64);
        }
        let mean = sum / trials as f64;
        assert!((mean - 1.0).abs() < 0.08, "estimator mean {mean}");
    }

    #[test]
    fn zero_gradient_clears() {
        let mut g = SparseGrad::new(2);
        g.row_mut(3); // all-zero row
        let mut rng = StdRng::seed_from_u64(0);
        let sel = select_rows(RowSelector::paper_rs(), &mut g, &mut rng);
        assert_eq!(sel.rows_after, 0);
        assert_eq!(sel.sparsity(), 1.0);
    }

    #[test]
    fn empty_gradient_is_noop() {
        let mut g = SparseGrad::new(2);
        let mut rng = StdRng::seed_from_u64(0);
        let sel = select_rows(RowSelector::paper_rs(), &mut g, &mut rng);
        assert_eq!(sel.rows_before, 0);
        assert_eq!(sel.sparsity(), 0.0);
    }

    #[test]
    fn topk_keeps_exactly_the_largest() {
        let mut g = graded_grad(); // norms 1..=20
        let mut rng = StdRng::seed_from_u64(0);
        let sel = select_rows(
            RowSelector::TopK { keep_fraction: 0.25 },
            &mut g,
            &mut rng,
        );
        assert_eq!(sel.rows_after, 5);
        for row in 16..=20u32 {
            assert!(g.get(row).is_some(), "row {row} is in the top 25%");
        }
        assert!(g.get(15).is_none());
    }

    #[test]
    fn topk_keeps_at_least_one_row() {
        let mut g = graded_grad();
        let mut rng = StdRng::seed_from_u64(0);
        let sel = select_rows(
            RowSelector::TopK { keep_fraction: 0.0 },
            &mut g,
            &mut rng,
        );
        assert_eq!(sel.rows_after, 1);
        assert!(g.get(20).is_some());
    }

    #[test]
    fn topk_full_fraction_keeps_everything() {
        let mut g = graded_grad();
        let mut rng = StdRng::seed_from_u64(0);
        let sel = select_rows(
            RowSelector::TopK { keep_fraction: 1.0 },
            &mut g,
            &mut rng,
        );
        assert_eq!(sel.rows_after, 20);
    }
}
