//! Property tests for the compression stack: codec roundtrips, sign
//! preservation, error-feedback conservation, and selection invariants.

use kge_compress::codec::{decode_rows, encode_rows, RowDecoder, RowEncoder, RowPayload};
use kge_compress::quant::{quantize_row, QuantScheme, QuantizedRow, ScaleRule};
use kge_compress::row_select::{select_rows, RowSelector};
use kge_compress::{ResidualStore, WireFormat};
use kge_core::SparseGrad;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn row_strategy(dim: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, dim..=dim)
}

const RULES: [ScaleRule; 4] = [
    ScaleRule::Max,
    ScaleRule::Avg,
    ScaleRule::PosNegMax,
    ScaleRule::PosNegAvg,
];

fn fmt_for(rule: ScaleRule) -> WireFormat {
    WireFormat::OneBit {
        two_scales: matches!(rule, ScaleRule::PosNegMax | ScaleRule::PosNegAvg),
    }
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn f32_codec_roundtrips_exactly(
        dim in 1usize..40,
        rows in proptest::collection::vec((0u32..10_000, any::<u64>()), 0..20),
    ) {
        let payload: Vec<RowPayload> = rows
            .iter()
            .map(|&(row, seed)| RowPayload {
                row,
                data: kge_compress::quant::QuantizedRow::Full(det_row(dim, seed)),
            })
            .collect();
        let bytes = encode_rows(WireFormat::F32, dim, &payload).unwrap();
        let (decoded, d) = decode_rows(&bytes).unwrap();
        prop_assert_eq!(d, dim);
        prop_assert_eq!(decoded, payload);
    }

    #[test]
    fn one_bit_codec_roundtrips(dim in 1usize..70, v in row_strategy(16), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = v;
        v.resize(dim, 0.25);
        let q = quantize_row(QuantScheme::paper_one_bit(), &v, &mut rng);
        let payload = vec![RowPayload { row: 7, data: q }];
        let bytes = encode_rows(WireFormat::OneBit { two_scales: false }, dim, &payload).unwrap();
        let (decoded, _) = decode_rows(&bytes).unwrap();
        prop_assert_eq!(decoded[0].data.dequantize(), payload[0].data.dequantize());
    }

    #[test]
    fn two_bit_codec_roundtrips(dim in 1usize..70, seed in any::<u64>()) {
        let v = det_row(dim, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let q = quantize_row(QuantScheme::TwoBit, &v, &mut rng);
        let payload = vec![RowPayload { row: 3, data: q }];
        let bytes = encode_rows(WireFormat::TwoBit, dim, &payload).unwrap();
        let (decoded, _) = decode_rows(&bytes).unwrap();
        prop_assert_eq!(&decoded[0].data, &payload[0].data);
    }

    #[test]
    fn quantization_never_flips_signs(v in row_strategy(24), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for scheme in [
            QuantScheme::paper_one_bit(),
            QuantScheme::OneBit { rule: ScaleRule::Avg },
            QuantScheme::OneBit { rule: ScaleRule::PosNegMax },
            QuantScheme::OneBit { rule: ScaleRule::PosNegAvg },
            QuantScheme::TwoBit,
        ] {
            let q = quantize_row(scheme, &v, &mut rng).dequantize();
            for (orig, deq) in v.iter().zip(&q) {
                prop_assert!(orig * deq >= 0.0, "{scheme:?}: {orig} -> {deq}");
            }
        }
    }

    #[test]
    fn one_bit_magnitude_bounded_by_max_abs(v in row_strategy(16), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let max = v.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let q = quantize_row(QuantScheme::paper_one_bit(), &v, &mut rng).dequantize();
        for x in q {
            prop_assert!(x.abs() <= max + 1e-6);
        }
    }

    #[test]
    fn error_feedback_conserves_signal(
        vals in proptest::collection::vec((0u32..100, row_strategy(6)), 1..8),
        seed in any::<u64>(),
    ) {
        // transmitted + residual == original, row by row.
        let mut grad = SparseGrad::new(6);
        for (row, v) in &vals {
            let r = grad.row_mut(*row);
            for (a, b) in r.iter_mut().zip(v) {
                *a += b;
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let sent: std::collections::HashMap<u32, Vec<f32>> = grad
            .iter_sorted()
            .map(|(row, g)| {
                (row, quantize_row(QuantScheme::paper_one_bit(), g, &mut rng).dequantize())
            })
            .collect();
        let mut store = ResidualStore::new();
        store.record_error(&grad, |row, buf| match sent.get(&row) {
            Some(v) => {
                buf.copy_from_slice(v);
                true
            }
            None => false,
        });

        // Drain residuals back and check conservation.
        let mut drained = SparseGrad::new(6);
        for (row, _) in grad.iter_sorted() {
            drained.row_mut(row);
        }
        store.add_into(&mut drained);
        for (row, orig) in grad.iter_sorted() {
            let s = &sent[&row];
            let res = drained.get(row).unwrap();
            for k in 0..6 {
                let recon = s[k] + res[k];
                prop_assert!((recon - orig[k]).abs() <= 1e-4 * (1.0 + orig[k].abs()));
            }
        }
    }

    #[test]
    fn selection_output_is_subset(
        norms in proptest::collection::vec(0.0f32..50.0, 1..60),
        seed in any::<u64>(),
    ) {
        let mut grad = SparseGrad::new(1);
        for (i, &n) in norms.iter().enumerate() {
            grad.row_mut(i as u32)[0] = n;
        }
        let before: Vec<u32> = grad.iter_sorted().map(|(r, _)| r).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let sel = select_rows(RowSelector::paper_rs(), &mut grad, &mut rng);
        let after: Vec<u32> = grad.iter_sorted().map(|(r, _)| r).collect();
        prop_assert!(after.iter().all(|r| before.contains(r)));
        prop_assert_eq!(sel.rows_after, after.len());
        prop_assert_eq!(sel.rows_before, before.len());
        // Values of surviving rows are untouched (paper RS does not rescale).
        for &r in &after {
            prop_assert_eq!(grad.get(r).unwrap()[0], norms[r as usize]);
        }
    }

    #[test]
    fn packed_one_bit_encode_matches_scalar_codec(dim in 1usize..70, seed in any::<u64>()) {
        // The packed fast path (SIMD scales + movemask sign packing,
        // straight into wire bytes) must be byte-identical to quantizing
        // into a `QuantizedRow` and pushing it — for every rule, odd dims,
        // and both dispatch arms of the force-scalar override.
        let v = det_row(dim, seed);
        for force in [true, false] {
            kge_core::simd::set_force_scalar(Some(force));
            for rule in RULES {
                let fmt = fmt_for(rule);
                let mut rng = StdRng::seed_from_u64(seed);
                let q = quantize_row(QuantScheme::OneBit { rule }, &v, &mut rng);
                let reference =
                    encode_rows(fmt, dim, &[RowPayload { row: 42, data: q.clone() }]).unwrap();
                let mut buf = Vec::new();
                let mut enc = RowEncoder::new(fmt, dim, &mut buf);
                let (pos, neg) = enc.push_one_bit(42, &v, rule).unwrap();
                enc.finish();
                prop_assert_eq!(&buf, &reference, "rule {:?} force_scalar {}", rule, force);
                // Returned scales and the error-feedback companion match
                // the QuantizedRow bit for bit.
                if let QuantizedRow::OneBit { pos_scale, neg_scale, .. } = &q {
                    prop_assert_eq!(pos.to_bits(), pos_scale.to_bits(), "rule {:?}", rule);
                    prop_assert_eq!(neg.to_bits(), neg_scale.to_bits(), "rule {:?}", rule);
                }
                let mut from_dense = vec![f32::NAN; dim];
                kge_compress::one_bit_dequantize_from(&v, pos, neg, &mut from_dense);
                let mut from_row = vec![f32::NAN; dim];
                q.dequantize_into(&mut from_row);
                prop_assert_eq!(bits(&from_dense), bits(&from_row), "rule {:?}", rule);
            }
        }
        kge_core::simd::set_force_scalar(None);
    }

    #[test]
    fn simd_and_scalar_codec_arms_bit_identical(dim in 1usize..70, seed in any::<u64>()) {
        // Quantize → encode → decode (through the byte-expanded /
        // AVX2-blend fast paths) under both dispatch arms: wire bytes,
        // dequantized values, accumulated values and error-feedback rows
        // must all be bit-identical.
        let v = det_row(dim, seed);
        for rule in RULES {
            let fmt = fmt_for(rule);
            let mut runs = Vec::new();
            for force in [true, false] {
                kge_core::simd::set_force_scalar(Some(force));
                let mut buf = Vec::new();
                let mut enc = RowEncoder::new(fmt, dim, &mut buf);
                let (pos, neg) = enc.push_one_bit(9, &v, rule).unwrap();
                enc.finish();
                let mut dec = RowDecoder::new(&buf).unwrap();
                let r = dec.next_row().unwrap().unwrap();
                let mut deq = vec![f32::NAN; dim];
                r.dequantize_into(&mut deq);
                let mut acc = vec![0.5f32; dim];
                r.add_into(&mut acc);
                let mut ef = vec![f32::NAN; dim];
                kge_compress::one_bit_dequantize_from(&v, pos, neg, &mut ef);
                runs.push((buf.clone(), bits(&deq), bits(&acc), bits(&ef)));
            }
            kge_core::simd::set_force_scalar(None);
            prop_assert_eq!(&runs[0], &runs[1], "rule {:?}", rule);
        }
    }

    #[test]
    fn wire_sizes_match_formula(
        dim in 1usize..100,
        n_rows in 0usize..30,
    ) {
        for format in [
            WireFormat::F32,
            WireFormat::OneBit { two_scales: false },
            WireFormat::OneBit { two_scales: true },
            WireFormat::TwoBit,
        ] {
            let mut rng = StdRng::seed_from_u64(1);
            let scheme = match format {
                WireFormat::F32 => QuantScheme::None,
                WireFormat::OneBit { two_scales: false } => QuantScheme::paper_one_bit(),
                WireFormat::OneBit { two_scales: true } => QuantScheme::OneBit { rule: ScaleRule::PosNegAvg },
                WireFormat::TwoBit => QuantScheme::TwoBit,
            };
            let payload: Vec<RowPayload> = (0..n_rows)
                .map(|i| RowPayload {
                    row: i as u32,
                    data: quantize_row(scheme, &det_row(dim, i as u64), &mut rng),
                })
                .collect();
            let bytes = encode_rows(format, dim, &payload).unwrap();
            prop_assert_eq!(bytes.len(), format.payload_bytes(dim, n_rows));
        }
    }
}

fn det_row(dim: usize, seed: u64) -> Vec<f32> {
    (0..dim)
        .map(|i| {
            let x = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(i as u64);
            ((x % 4001) as f32 - 2000.0) / 100.0
        })
        .collect()
}
