//! Property test for the chunked gradient merge: accumulating per-example
//! row contributions into fixed-size per-chunk `SparseGrad`s and merging
//! the chunks in order must equal accumulating every example sequentially
//! into one `SparseGrad` — exactly, when the values are representable
//! without rounding (small integers), which makes f32 addition associative
//! and lets the test assert bit equality rather than approximate equality.

use kge_core::SparseGrad;
use proptest::prelude::*;

const DIM: usize = 4;
const CHUNK: usize = 7; // deliberately not a divisor of most lengths

/// One example: a row index plus its four small-integer contributions.
type Example = (u32, (i8, i8, i8, i8));

fn sequential(examples: &[Example]) -> SparseGrad {
    let mut g = SparseGrad::new(DIM);
    for &(row, v) in examples {
        let vals = [v.0, v.1, v.2, v.3];
        for (d, &x) in g.row_mut(row).iter_mut().zip(vals.iter()) {
            *d += x as f32;
        }
    }
    g
}

fn chunked(examples: &[Example]) -> SparseGrad {
    let mut total = SparseGrad::new(DIM);
    for chunk in examples.chunks(CHUNK) {
        let part = sequential(chunk);
        total.merge(&part);
    }
    total
}

fn as_sorted_vec(g: &SparseGrad) -> Vec<(u32, Vec<f32>)> {
    g.iter_sorted().map(|(r, v)| (r, v.to_vec())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn chunked_merge_equals_sequential_accumulation(
        examples in proptest::collection::vec(
            (0u32..32, (-8i8..8, -8i8..8, -8i8..8, -8i8..8)),
            0..60,
        ),
    ) {
        let seq = sequential(&examples);
        let chk = chunked(&examples);
        prop_assert_eq!(as_sorted_vec(&seq), as_sorted_vec(&chk));
    }

    #[test]
    fn merge_is_associative_over_chunk_boundaries(
        examples in proptest::collection::vec(
            (0u32..16, (-8i8..8, -8i8..8, -8i8..8, -8i8..8)),
            1..40,
        ),
        split in 0usize..40,
    ) {
        // Any split point gives the same result as no split at all.
        let split = split.min(examples.len());
        let mut merged = sequential(&examples[..split]);
        merged.merge(&sequential(&examples[split..]));
        prop_assert_eq!(as_sorted_vec(&sequential(&examples)), as_sorted_vec(&merged));
    }
}
