//! Thread-count independence: the chunked-parallel training hot path must
//! produce bit-identical results whether each simulated node's worker pool
//! has 1 thread or 4. Chunk structure, per-chunk RNG streams, and the
//! chunk-ordered merge are all fixed by `(seed, rank, epoch, batch, chunk)`
//! coordinates, never by the executing thread.

use kge_train::{train, StrategyConfig, TrainConfig};
use kge_data::synth::{generate, SynthConfig};
use kge_train::TrainOutcome;
use simgrid::{Cluster, ClusterSpec};

fn dataset() -> kge_data::Dataset {
    generate(&SynthConfig {
        name: "threads".into(),
        n_entities: 150,
        n_relations: 10,
        n_triples: 2000,
        relation_zipf: 1.0,
        entity_zipf: 0.8,
        noise_frac: 0.05,
        valid_frac: 0.08,
        test_frac: 0.08,
        seed: 17,
    })
}

fn run_with_threads(threads: usize, strategy: StrategyConfig) -> TrainOutcome {
    // The per-node pool honors RAYON_NUM_THREADS (see
    // `trainer::node_pool_threads`); this test is the only one in this
    // binary, so flipping the process-wide variable between runs is safe.
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    let ds = dataset();
    let cluster = Cluster::new(2, ClusterSpec::cray_xc40());
    let mut c = TrainConfig::new(4, 64, strategy);
    c.plateau_tolerance = 3;
    c.max_lr_drops = 1;
    c.max_epochs = 6;
    c.valid_samples = 64;
    c.base_lr = 5e-3;
    let out = train(&ds, &cluster, &c);
    std::env::remove_var("RAYON_NUM_THREADS");
    out
}

#[test]
fn training_is_bit_identical_at_1_and_4_threads() {
    for strategy in [
        StrategyConfig::baseline_allreduce(2),
        StrategyConfig::baseline_allgather(2),
        StrategyConfig::combined(3),
    ] {
        let a = run_with_threads(1, strategy);
        let b = run_with_threads(4, strategy);
        assert_eq!(
            a.entities.as_slice(),
            b.entities.as_slice(),
            "entities diverged across thread counts"
        );
        assert_eq!(
            a.relations.as_slice(),
            b.relations.as_slice(),
            "relations diverged across thread counts"
        );
        assert_eq!(a.report.epochs, b.report.epochs);
        assert_eq!(
            a.report.sim_total_seconds, b.report.sim_total_seconds,
            "simulated time must not depend on host thread count"
        );
    }
}
