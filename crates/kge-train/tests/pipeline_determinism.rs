//! Determinism guarantees of the pipelined gradient exchange.
//!
//! Two properties, both bit-level:
//!
//! 1. **Staleness 0 collapses to the synchronous path.** A pipelined mode
//!    with an empty window must reproduce its synchronous base collective
//!    exactly — per-epoch losses, final model rows, and wire bytes — for
//!    every model × quantization combination, at any thread count.
//! 2. **A non-empty window is thread-count independent.** With staleness
//!    ≥ 1 the interleaving of launches and completions is fixed by batch
//!    index, and every stochastic stage draw comes from an RNG keyed on
//!    `(seed, rank, epoch, batch, stage)` — so 1-thread and 4-thread
//!    worker pools produce identical bits.
//!
//! `scripts/check.sh` re-runs this binary under `KGE_FORCE_SCALAR=1`, so
//! both SIMD dispatch arms are covered.

use kge_compress::quant::QuantScheme;
use kge_data::synth::{generate, SynthConfig};
use kge_train::config::{CommMode, ModelKind, StrategyConfig, TrainConfig};
use kge_train::{train, TrainOutcome};
use simgrid::{Cluster, ClusterSpec};
use std::sync::Mutex;

/// Tests in one binary run concurrently; every test that flips the
/// process-wide `RAYON_NUM_THREADS` serializes through this lock.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn dataset() -> kge_data::Dataset {
    generate(&SynthConfig {
        name: "pipeline".into(),
        n_entities: 120,
        n_relations: 8,
        n_triples: 1500,
        relation_zipf: 1.0,
        entity_zipf: 0.8,
        noise_frac: 0.05,
        valid_frac: 0.08,
        test_frac: 0.08,
        seed: 41,
    })
}

fn run(comm: CommMode, model: ModelKind, quant: QuantScheme, threads: usize) -> TrainOutcome {
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    let ds = dataset();
    let cluster = Cluster::new(2, ClusterSpec::cray_xc40());
    let mut strategy = StrategyConfig::baseline_allgather(2);
    strategy.comm = comm;
    strategy.quant = quant;
    let mut c = TrainConfig::new(4, 64, strategy);
    c.model = model;
    c.plateau_tolerance = 3;
    c.max_lr_drops = 1;
    c.max_epochs = 4;
    c.valid_samples = 64;
    c.base_lr = 5e-3;
    let out = train(&ds, &cluster, &c);
    std::env::remove_var("RAYON_NUM_THREADS");
    out
}

/// Bitwise comparison of everything the staleness-0 equivalence promises:
/// losses, model rows, and wire traffic.
fn assert_bit_identical(a: &TrainOutcome, b: &TrainOutcome, tag: &str) {
    assert_eq!(a.entities.as_slice(), b.entities.as_slice(), "{tag}: entity rows");
    assert_eq!(a.relations.as_slice(), b.relations.as_slice(), "{tag}: relation rows");
    assert_eq!(a.report.epochs, b.report.epochs, "{tag}: epochs");
    for (x, y) in a.report.trace.iter().zip(&b.report.trace) {
        assert_eq!(
            x.train_loss.to_bits(),
            y.train_loss.to_bits(),
            "{tag}: loss at epoch {}",
            x.epoch
        );
        assert_eq!(x.bytes_sent, y.bytes_sent, "{tag}: bytes at epoch {}", x.epoch);
        assert_eq!(
            x.sim_seconds.to_bits(),
            y.sim_seconds.to_bits(),
            "{tag}: sim time at epoch {}",
            x.epoch
        );
    }
    assert_eq!(a.report.wire_bytes_sent, b.report.wire_bytes_sent, "{tag}: wire sent");
    assert_eq!(a.report.wire_bytes_recv, b.report.wire_bytes_recv, "{tag}: wire recv");
}

#[test]
fn staleness_zero_reproduces_synchronous_allgather_bit_exactly() {
    let _guard = ENV_LOCK.lock().unwrap();
    for model in [ModelKind::ComplEx, ModelKind::DistMult, ModelKind::TransE] {
        for quant in [QuantScheme::None, QuantScheme::paper_one_bit()] {
            let sync = run(CommMode::AllGather, model, quant, 1);
            assert_eq!(sync.report.pipelined_epochs, 0);
            for threads in [1usize, 4] {
                let stale0 = run(CommMode::Pipelined { staleness: 0 }, model, quant, threads);
                // An empty window never runs the pipelined machinery.
                assert_eq!(stale0.report.pipelined_epochs, 0);
                assert_bit_identical(
                    &sync,
                    &stale0,
                    &format!("{model:?}/{quant:?}/{threads}t"),
                );
            }
        }
    }
}

#[test]
fn staleness_zero_reproduces_synchronous_allreduce_bit_exactly() {
    let _guard = ENV_LOCK.lock().unwrap();
    // Quantization only touches the gather wire path; one scheme suffices.
    for model in [ModelKind::ComplEx, ModelKind::DistMult, ModelKind::TransE] {
        let sync = run(CommMode::AllReduce, model, QuantScheme::None, 1);
        for threads in [1usize, 4] {
            let stale0 = run(
                CommMode::PipelinedAllReduce { staleness: 0 },
                model,
                QuantScheme::None,
                threads,
            );
            assert_eq!(stale0.report.pipelined_epochs, 0);
            assert_bit_identical(&sync, &stale0, &format!("{model:?}/allreduce/{threads}t"));
        }
    }
}

#[test]
fn pipelined_window_is_bit_identical_across_thread_counts() {
    let _guard = ENV_LOCK.lock().unwrap();
    // TwoBit's dithered encoding draws from the stage RNG on every row —
    // the sharpest probe of stage-keyed determinism.
    for (comm, quant) in [
        (CommMode::Pipelined { staleness: 1 }, QuantScheme::None),
        (CommMode::Pipelined { staleness: 1 }, QuantScheme::paper_one_bit()),
        (CommMode::Pipelined { staleness: 2 }, QuantScheme::TwoBit),
        (CommMode::PipelinedAllReduce { staleness: 1 }, QuantScheme::None),
    ] {
        let a = run(comm, ModelKind::ComplEx, quant, 1);
        let b = run(comm, ModelKind::ComplEx, quant, 4);
        // Every epoch actually ran pipelined.
        assert_eq!(a.report.pipelined_epochs, a.report.epochs, "{comm:?}");
        assert_bit_identical(&a, &b, &format!("{comm:?}/{quant:?}"));
        assert_eq!(
            a.report.sim_total_seconds.to_bits(),
            b.report.sim_total_seconds.to_bits(),
            "{comm:?}: simulated time must not depend on host thread count"
        );
    }
}

#[test]
fn pipelined_run_is_deterministic_across_invocations() {
    let _guard = ENV_LOCK.lock().unwrap();
    let comm = CommMode::pipelined();
    let a = run(comm, ModelKind::ComplEx, QuantScheme::paper_one_bit(), 2);
    let b = run(comm, ModelKind::ComplEx, QuantScheme::paper_one_bit(), 2);
    assert_bit_identical(&a, &b, "repeat");
}
