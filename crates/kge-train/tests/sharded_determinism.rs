//! Sharded-trainer equivalence and determinism guards.
//!
//! The load-bearing claim of the sharded store is that partitioning the
//! entity table changes *where* rows live, never *what* is computed:
//! with f32 cold storage, a sharded run — with or without the hot cache
//! — is **bit-identical** to the full-replica all-gather trainer on the
//! same config, at 1 and 4 worker threads. Int8 cold storage follows a
//! different (quantized) trajectory but must be deterministic
//! run-to-run, and crash recovery (shrink + state migration) must both
//! complete and be deterministic.

use kge_data::synth::{generate, SynthConfig};
use kge_train::{train, PrefetchMode, ShardedConfig, StrategyConfig, TrainConfig, TrainOutcome};
use simgrid::{Cluster, ClusterSpec, FaultPlan};

fn sharded_cfg(hot_cache_rows: usize, cold_int8: bool, prefetch: PrefetchMode) -> ShardedConfig {
    ShardedConfig {
        hot_cache_rows,
        cold_int8,
        prefetch,
    }
}

fn dataset() -> kge_data::Dataset {
    generate(&SynthConfig {
        name: "sharded-det".into(),
        n_entities: 180,
        n_relations: 10,
        n_triples: 2400,
        relation_zipf: 1.0,
        entity_zipf: 0.9,
        noise_frac: 0.05,
        valid_frac: 0.08,
        test_frac: 0.08,
        seed: 23,
    })
}

fn config(nodes_batch: usize, sharded: Option<ShardedConfig>) -> TrainConfig {
    let mut c = TrainConfig::new(4, nodes_batch, StrategyConfig::baseline_allgather(2));
    c.plateau_tolerance = 3;
    c.max_lr_drops = 1;
    c.max_epochs = 4;
    // Sharded mode defers ranking/validation to post-training eval; the
    // replica reference must run the same (constant) plateau signal.
    c.valid_samples = 0;
    c.base_lr = 5e-3;
    c.sharded = sharded;
    c
}

fn run(
    p: usize,
    threads: usize,
    batch: usize,
    sharded: Option<ShardedConfig>,
    plan: Option<FaultPlan>,
) -> TrainOutcome {
    // The per-node pool honors RAYON_NUM_THREADS (see
    // `trainer::node_pool_threads`); tests in this binary run serially
    // within each #[test], and each run resets the variable.
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    let ds = dataset();
    let mut cluster = Cluster::new(p, ClusterSpec::cray_xc40());
    if let Some(plan) = plan {
        cluster = cluster.with_fault_plan(plan);
    }
    let out = train(&ds, &cluster, &config(batch, sharded));
    std::env::remove_var("RAYON_NUM_THREADS");
    out
}

fn assert_same_model(a: &TrainOutcome, b: &TrainOutcome, tag: &str) {
    assert_eq!(
        a.entities.as_slice(),
        b.entities.as_slice(),
        "{tag}: entities diverged"
    );
    assert_eq!(
        a.relations.as_slice(),
        b.relations.as_slice(),
        "{tag}: relations diverged"
    );
    assert_eq!(a.report.epochs, b.report.epochs, "{tag}: epoch count");
}

#[test]
fn sharded_f32_matches_replica_bit_for_bit() {
    // Cache disabled and enabled: both must reproduce the replica
    // trainer exactly — hot rows only change which aggregate carries a
    // gradient, never its f32 summation order.
    for p in [1usize, 4] {
        let replica = run(p, 1, 64, None, None);
        for cache in [0usize, 32] {
            for threads in [1usize, 4] {
                let sharded = run(
                    p,
                    threads,
                    64,
                    Some(sharded_cfg(cache, false, PrefetchMode::Off)),
                    None,
                );
                let tag = format!("p={p} cache={cache} threads={threads}");
                assert_same_model(&replica, &sharded, &tag);
                let sh = sharded.report.sharded.expect("sharded report attached");
                assert!(
                    sh.resident_model_bytes < sh.replica_model_bytes || p == 1,
                    "{tag}: sharding must shrink the per-rank resident model"
                );
                if cache > 0 && p > 1 {
                    assert!(sh.cache_accesses > 0, "{tag}: touch counter dead");
                }
            }
        }
    }
}

#[test]
fn sharded_config_sweep_matches_replica() {
    // Small proptest-style sweep over (world size, batch size, cache
    // capacity): every cell must agree with its replica reference.
    for (p, batch, cache) in [
        (2usize, 32usize, 8usize),
        (2, 96, 64),
        (3, 48, 16),
        (4, 32, 128),
    ] {
        let replica = run(p, 1, batch, None, None);
        let sharded = run(
            p,
            1,
            batch,
            Some(sharded_cfg(cache, false, PrefetchMode::Off)),
            None,
        );
        assert_same_model(&replica, &sharded, &format!("p={p} batch={batch} cache={cache}"));
    }
}

#[test]
fn sharded_prefetch_f32_matches_replica_bit_for_bit() {
    // The prefetch ring changes *when* rows move, never what is
    // computed: with f32 storage, prefetch-on runs — any thread count,
    // cache on or off — must still be bit-identical to the full-replica
    // trainer, and their simulated timelines must agree across thread
    // counts.
    for p in [1usize, 4] {
        let replica = run(p, 1, 64, None, None);
        for cache in [0usize, 32] {
            let mut sim_bits = None;
            for threads in [1usize, 4] {
                let prefetched = run(
                    p,
                    threads,
                    64,
                    Some(sharded_cfg(cache, false, PrefetchMode::On)),
                    None,
                );
                let tag = format!("prefetch p={p} cache={cache} threads={threads}");
                assert_same_model(&replica, &prefetched, &tag);
                let bits = prefetched.report.sim_total_seconds.to_bits();
                if let Some(prev) = sim_bits {
                    assert_eq!(prev, bits, "{tag}: timeline diverged across threads");
                }
                sim_bits = Some(bits);
                let sh = prefetched.report.sharded.expect("sharded report attached");
                assert_eq!(
                    sh.prefetch_epochs, prefetched.report.epochs,
                    "{tag}: PrefetchMode::On must run the ring every epoch"
                );
                if p > 1 {
                    assert!(
                        sh.hidden_pull_s > 0.0,
                        "{tag}: prefetched pulls hid no seconds"
                    );
                    assert!(
                        sh.hidden_push_s > 0.0,
                        "{tag}: deferred pushes hid no seconds"
                    );
                }
            }
        }
    }
}

#[test]
fn sharded_prefetch_dynamic_arm_is_value_safe() {
    // DRS over the prefetch arm probes mid-training; because both arms
    // are bit-identical in f32, the trained model must still equal the
    // replica no matter which arm each epoch ran — and the arm sequence
    // itself must be thread-count independent.
    let cfg = Some(sharded_cfg(32, false, PrefetchMode::Dynamic));
    let replica = run(4, 1, 64, None, None);
    let a = run(4, 1, 64, cfg, None);
    let b = run(4, 4, 64, cfg, None);
    assert_same_model(&replica, &a, "dynamic prefetch vs replica");
    assert_same_model(&a, &b, "dynamic prefetch threads=1 vs 4");
    assert_eq!(
        a.report.sim_total_seconds.to_bits(),
        b.report.sim_total_seconds.to_bits(),
        "dynamic arm sequence diverged across threads"
    );
}

#[test]
fn sharded_int8_cold_storage_is_deterministic() {
    // Int8-at-rest quantizes the cold tier, so it is *not* bit-equal to
    // the replica — but two runs (across thread counts) must agree
    // exactly, and the trained model must stay close to the f32 one.
    let cfg = Some(sharded_cfg(32, true, PrefetchMode::Off));
    let a = run(4, 1, 64, cfg, None);
    let b = run(4, 4, 64, cfg, None);
    assert_same_model(&a, &b, "int8 threads=1 vs 4");

    let f32_run = run(4, 1, 64, None, None);
    let (qa, fa) = (a.entities.as_slice(), f32_run.entities.as_slice());
    let max_abs = qa
        .iter()
        .zip(fa)
        .map(|(x, y)| (x - y).abs())
        .fold(0f32, f32::max);
    assert!(
        max_abs < 0.05,
        "int8 cold tier drifted {max_abs} from the f32 model"
    );

    // Prefetch over int8 follows its own trajectory (a limbo capture
    // holds the pre-quantization value a sync pull would re-quantize),
    // but it must still be deterministic across thread counts.
    let pcfg = Some(sharded_cfg(32, true, PrefetchMode::On));
    let pa = run(4, 1, 64, pcfg, None);
    let pb = run(4, 4, 64, pcfg, None);
    assert_same_model(&pa, &pb, "int8 prefetch threads=1 vs 4");
    assert_eq!(
        pa.report.sim_total_seconds.to_bits(),
        pb.report.sim_total_seconds.to_bits(),
        "int8 prefetch timeline diverged"
    );
}

#[test]
fn sharded_crash_recovery_shrinks_and_stays_deterministic() {
    // Crash rank 2 partway through: survivors must shrink, migrate
    // cached + exchanged rows onto the new ownership map, and finish;
    // and the whole recovery trajectory must be bit-reproducible.
    let fault_free = run(4, 1, 64, None, None);
    let total = fault_free.report.sim_total_seconds;
    let cfg = Some(sharded_cfg(32, false, PrefetchMode::Off));
    let plan = || FaultPlan::seeded(7).with_crash(2, 0.4 * total);
    let a = run(4, 1, 64, cfg, Some(plan()));
    let b = run(4, 4, 64, cfg, Some(plan()));
    assert_eq!(a.report.recoveries, 1, "the crash must trigger a shrink");
    assert_eq!(a.report.surviving_nodes, 3);
    assert_eq!(a.report.crashed_ranks, vec![2]);
    assert!(
        a.report.epochs > 0,
        "survivors must keep training after the shrink"
    );
    assert_same_model(&a, &b, "crash recovery threads=1 vs 4");
    assert_eq!(
        a.report.sim_total_seconds.to_bits(),
        b.report.sim_total_seconds.to_bits(),
        "recovery timeline diverged"
    );
}

#[test]
fn sharded_crash_mid_ring_discards_in_flight_slots_deterministically() {
    // Crash while the prefetch ring has a launched slot and deferred
    // push charges in flight: the shrink drops the undelivered wire
    // messages with the old world and the ring resets, so survivors
    // recover exactly as in the synchronous path — and the whole
    // trajectory stays bit-reproducible across thread counts.
    let fault_free = run(4, 1, 64, None, None);
    let total = fault_free.report.sim_total_seconds;
    let cfg = Some(sharded_cfg(32, false, PrefetchMode::On));
    let plan = || FaultPlan::seeded(7).with_crash(2, 0.4 * total);
    let a = run(4, 1, 64, cfg, Some(plan()));
    let b = run(4, 4, 64, cfg, Some(plan()));
    assert_eq!(a.report.recoveries, 1, "the crash must trigger a shrink");
    assert_eq!(a.report.surviving_nodes, 3);
    assert_eq!(a.report.crashed_ranks, vec![2]);
    assert!(
        a.report.epochs > 0,
        "survivors must keep training after the shrink"
    );
    assert_same_model(&a, &b, "crash mid-ring threads=1 vs 4");
    assert_eq!(
        a.report.sim_total_seconds.to_bits(),
        b.report.sim_total_seconds.to_bits(),
        "mid-ring recovery timeline diverged"
    );
}
