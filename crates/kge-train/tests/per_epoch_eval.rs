//! The opt-in per-epoch ranking evaluation: sharded across ranks inside
//! the trainer's epoch loop, metrics allreduced, recorded on the trace.

use kge_data::synth::{generate, SynthConfig};
use kge_train::{train, StrategyConfig, TrainConfig};
use simgrid::{Cluster, ClusterSpec};

fn dataset() -> kge_data::Dataset {
    generate(&SynthConfig {
        name: "per-epoch-eval".into(),
        n_entities: 120,
        n_relations: 8,
        n_triples: 1500,
        relation_zipf: 1.0,
        entity_zipf: 0.8,
        noise_frac: 0.05,
        valid_frac: 0.1,
        test_frac: 0.08,
        seed: 23,
    })
}

fn config() -> TrainConfig {
    let mut c = TrainConfig::new(4, 64, StrategyConfig::baseline_allreduce(2));
    c.plateau_tolerance = 3;
    c.max_lr_drops = 1;
    c.max_epochs = 6;
    c.valid_samples = 64;
    c.base_lr = 5e-3;
    c.eval_every = 2;
    c.eval_max_queries = Some(40);
    c
}

#[test]
fn eval_epochs_record_ranking_metrics() {
    let ds = dataset();
    let cluster = Cluster::new(2, ClusterSpec::cray_xc40());
    let out = train(&ds, &cluster, &config());
    assert!(out.report.epochs >= 2, "needs at least one eval epoch");
    for e in &out.report.trace {
        if (e.epoch + 1) % 2 == 0 {
            let m = e.ranking.expect("eval epoch must carry ranking metrics");
            assert_eq!(m.n_queries, 2 * 40.min(ds.valid.len()));
            assert!(m.mrr > 0.0 && m.mrr <= 1.0);
            assert!(m.hits1 <= m.hits3 && m.hits3 <= m.hits10 && m.hits10 <= 1.0);
            assert!(m.mean_rank >= 1.0 && m.mean_rank <= ds.n_entities as f64);
        } else {
            assert!(e.ranking.is_none(), "off-cadence epoch carries no eval");
        }
    }
}

#[test]
fn per_epoch_eval_is_deterministic_and_node_count_invariant_in_count() {
    // Same config on 1 and 2 nodes: the subsample (hence n_queries) and
    // the integer-valued hit counts match; reruns are bit-identical.
    let ds = dataset();
    let a = train(&ds, &Cluster::new(1, ClusterSpec::ideal()), &config());
    let b = train(&ds, &Cluster::new(1, ClusterSpec::ideal()), &config());
    let c = train(&ds, &Cluster::new(2, ClusterSpec::ideal()), &config());
    let ranks_a: Vec<_> = a.report.trace.iter().filter_map(|e| e.ranking).collect();
    let ranks_b: Vec<_> = b.report.trace.iter().filter_map(|e| e.ranking).collect();
    assert!(!ranks_a.is_empty());
    assert_eq!(ranks_a, ranks_b, "rerun must be bit-identical");
    for (ea, ec) in a.report.trace.iter().zip(&c.report.trace) {
        if let (Some(ma), Some(mc)) = (ea.ranking, ec.ranking) {
            assert_eq!(ma.n_queries, mc.n_queries);
        }
    }
}
