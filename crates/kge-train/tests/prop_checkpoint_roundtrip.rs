//! Property tests for the checkpoint codec.
//!
//! Three laws, over arbitrary model / optimizer / residual / RNG states
//! at every supported dimension ({15, 64, 128}) and residual population
//! corresponding to each quantization scheme (error feedback only exists
//! under the lossy schemes):
//!
//! 1. encode → decode is bit-identical for every field;
//! 2. truncation at any byte is a typed [`CheckpointError`], never a
//!    panic or a silent partial load;
//! 3. corruption of any single byte is a typed error, never a panic.

use kge_compress::ResidualStore;
use kge_core::{EmbeddingTable, OptimStateView};
use kge_eval::RankingMetrics;
use kge_train::checkpoint::{decode, encode_into, CheckpointError, CheckpointView, Tallies};
use kge_train::comm_select::{CommChoice, SelectorSnapshot};
use kge_train::lr::PlateauSnapshot;
use kge_train::report::EpochTrace;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simgrid::{Collective, TimeBreakdown};

/// The dimensions the resume matrix trains at (ComplEx rank 4 and the
/// odd/large strides that exercise every SIMD tail path).
const DIMS: [usize; 3] = [15, 64, 128];

/// Residual population per quantization scheme: `None` keeps no error
/// feedback, the lossy schemes accumulate per-row residuals.
const SCHEMES: usize = 3; // F32, OneBit, TwoBit

struct ArbState {
    ent: EmbeddingTable,
    rel: EmbeddingTable,
    ent_opt_kind: u8,
    rel_opt_kind: u8,
    ent_m: Vec<f32>,
    ent_v: Vec<f32>,
    ent_row_t: Vec<u32>,
    rel_accum: Vec<f32>,
    ent_residual: ResidualStore,
    rel_residual: ResidualStore,
    tallies: Tallies,
    trace: Vec<EpochTrace>,
    traffic: Vec<(Collective, [u64; 6])>,
    p2p_seq: Vec<u64>,
    selector: Option<SelectorSnapshot>,
}

/// Derive a full training state from structural parameters and one seed.
/// Everything downstream of the seed is deterministic, so a failing case
/// shrinks and replays exactly.
fn build_state(dim: usize, n_ent: usize, n_rel: usize, scheme: usize, seed: u64) -> ArbState {
    let mut rng = StdRng::seed_from_u64(seed);
    let ent = EmbeddingTable::xavier(n_ent, dim, &mut rng);
    let rel = EmbeddingTable::xavier(n_rel, dim, &mut rng);
    let ent_opt_kind = rng.gen_range(0..3u8);
    let rel_opt_kind = rng.gen_range(0..3u8);
    let randvec = |rng: &mut StdRng, n: usize| -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-8.0f32..8.0)).collect()
    };
    let ent_m = randvec(&mut rng, n_ent * dim);
    let ent_v = randvec(&mut rng, n_ent * dim);
    let ent_row_t: Vec<u32> = (0..n_ent).map(|_| rng.gen_range(0..90u32)).collect();
    let rel_accum = randvec(&mut rng, n_rel * dim);

    let mut ent_residual = ResidualStore::new();
    let mut rel_residual = ResidualStore::new();
    if scheme > 0 {
        // Lossy schemes: sprinkle residual rows (dense for TwoBit).
        let every = if scheme == 2 { 1 } else { 3 };
        for row in (0..n_ent).step_by(every) {
            ent_residual.set_row(row as u32, &randvec(&mut rng, dim));
        }
        for row in 0..n_rel.min(2) {
            rel_residual.set_row(row as u32, &randvec(&mut rng, dim));
        }
    }

    let tallies = Tallies {
        allreduce_epochs: rng.gen_range(0..50),
        allgather_epochs: rng.gen_range(0..50),
        pipelined_epochs: rng.gen_range(0..50),
        recoveries: rng.gen_range(0..3),
        rejoins: rng.gen_range(0..3),
        checkpoints_written: rng.gen_range(0..9),
        crashed_ranks: (0..rng.gen_range(0..3usize)).map(|i| i * 2).collect(),
    };
    let trace: Vec<EpochTrace> = (0..rng.gen_range(0..4usize))
        .map(|e| EpochTrace {
            epoch: e,
            sim_seconds: rng.gen_range(0.0..100.0),
            comm: [
                CommChoice::AllReduce,
                CommChoice::AllGather,
                CommChoice::PipelinedAllReduce,
                CommChoice::PipelinedAllGather,
            ][rng.gen_range(0..4usize)],
            valid_acc: rng.gen_range(0.0..1.0),
            train_loss: rng.gen_range(0.0..2.0f64),
            lr_scale: rng.gen_range(0.5..4.0f32),
            mean_nonzero_rows: rng.gen_range(0.0..100.0),
            mean_rows_sent: rng.gen_range(0.0..100.0),
            rs_sparsity: rng.gen_range(0.0..1.0),
            bytes_sent: rng.gen_range(0..1u64 << 40),
            ranking: if rng.gen_range(0..2) == 0 {
                None
            } else {
                Some(RankingMetrics {
                    mrr: rng.gen_range(0.0..1.0),
                    mean_rank: rng.gen_range(1.0..500.0),
                    hits1: rng.gen_range(0.0..1.0),
                    hits3: rng.gen_range(0.0..1.0),
                    hits10: rng.gen_range(0.0..1.0),
                    n_queries: rng.gen_range(0..10_000),
                })
            },
        })
        .collect();
    let traffic: Vec<(Collective, [u64; 6])> = [
        Collective::AllReduce,
        Collective::AllGatherV,
        Collective::Broadcast,
        Collective::Barrier,
        Collective::Gather,
        Collective::PointToPoint,
    ]
    .into_iter()
    .take(rng.gen_range(0..7usize))
    .map(|c| {
        let mut counters = [0u64; 6];
        for x in &mut counters {
            *x = rng.gen_range(0..1u64 << 48);
        }
        (c, counters)
    })
    .collect();
    let p2p_seq: Vec<u64> = (0..rng.gen_range(1..6usize))
        .map(|_| rng.gen_range(0..1000))
        .collect();
    let selector = if rng.gen_range(0..4usize) == 0 {
        None
    } else {
        Some(SelectorSnapshot {
            state: rng.gen_range(0..4u8),
            arm: CommChoice::PipelinedAllGather,
            check_every: rng.gen_range(1..20),
            epoch: rng.gen_range(0..100),
            last_allreduce_time: if rng.gen_range(0..2) == 0 {
                None
            } else {
                Some(rng.gen_range(0.0..10.0))
            },
            gather_time: rng.gen_range(0.0..10.0),
        })
    };
    ArbState {
        ent,
        rel,
        ent_opt_kind,
        rel_opt_kind,
        ent_m,
        ent_v,
        ent_row_t,
        rel_accum,
        ent_residual,
        rel_residual,
        tallies,
        trace,
        traffic,
        p2p_seq,
        selector,
    }
}

fn encode_state(s: &ArbState, seed: u64) -> Vec<u8> {
    let ent_opt = match s.ent_opt_kind {
        0 => OptimStateView::Stateless,
        1 => OptimStateView::Adam {
            m: &s.ent_m,
            v: &s.ent_v,
            t: seed % 1000,
            row_t: &s.ent_row_t,
        },
        _ => OptimStateView::Adagrad { accum: &s.ent_m },
    };
    let rel_opt = match s.rel_opt_kind {
        0 => OptimStateView::Stateless,
        1 => OptimStateView::Adagrad { accum: &s.rel_accum },
        _ => OptimStateView::Stateless,
    };
    let view = CheckpointView {
        world_size: 4,
        rank: (seed % 4) as usize,
        next_epoch: (seed % 17) as usize,
        seed,
        ent: &s.ent,
        rel: &s.rel,
        ent_opt,
        rel_opt,
        ent_residual: &s.ent_residual,
        rel_residual: &s.rel_residual,
        rng_state: seed.wrapping_mul(0x9E3779B97F4A7C15),
        schedule: PlateauSnapshot {
            node_scale: 4.0,
            decay_scale: 1.0,
            decay: 0.1,
            tolerance: 15,
            max_drops: 2,
            drops: (seed % 3),
            best: 0.5 + (seed % 7) as f64 / 16.0,
            since_best: seed % 5,
            converged: seed.is_multiple_of(2),
        },
        selector: s.selector,
        tallies: &s.tallies,
        trace: &s.trace,
        clock_now_s: (seed % 1_000_000) as f64 / 7.0,
        breakdown: TimeBreakdown {
            compute_s: 1.0,
            comm_s: 2.0,
            idle_s: 3.0,
            fault_s: 4.0,
            retry_s: 5.0,
            checkpoint_s: 6.0,
            overlap_s: 7.0,
            hidden_comm_s: 8.0,
        },
        traffic: &s.traffic,
        coll_seq: seed % 9999,
        p2p_seq: &s.p2p_seq,
    };
    let mut out = Vec::new();
    let mut ids = Vec::new();
    encode_into(&view, &mut ids, &mut out);
    out
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn prop_checkpoint_roundtrip(
        dim_idx in 0usize..DIMS.len(),
        n_ent in 1usize..24,
        n_rel in 1usize..6,
        scheme in 0usize..SCHEMES,
        seed in any::<u64>(),
    ) {
        let dim = DIMS[dim_idx];
        let s = build_state(dim, n_ent, n_rel, scheme, seed);
        let bytes = encode_state(&s, seed);
        let ck = decode(&bytes).expect("roundtrip decode");

        prop_assert_eq!((ck.dim, ck.n_entities, ck.n_relations), (dim, n_ent, n_rel));
        prop_assert_eq!(ck.seed, seed);
        prop_assert_eq!(bits(ck.ent.as_slice()), bits(s.ent.as_slice()));
        prop_assert_eq!(bits(ck.rel.as_slice()), bits(s.rel.as_slice()));
        prop_assert_eq!(ck.rng_state, seed.wrapping_mul(0x9E3779B97F4A7C15));
        prop_assert_eq!(&ck.tallies, &s.tallies);
        prop_assert_eq!(ck.trace.len(), s.trace.len());
        for (a, b) in ck.trace.iter().zip(&s.trace) {
            prop_assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits());
            prop_assert_eq!(a.sim_seconds.to_bits(), b.sim_seconds.to_bits());
            prop_assert_eq!(a.comm, b.comm);
            prop_assert_eq!(a.bytes_sent, b.bytes_sent);
            prop_assert_eq!(a.ranking.map(|r| r.n_queries), b.ranking.map(|r| r.n_queries));
        }
        prop_assert_eq!(ck.traffic, s.traffic.clone());
        prop_assert_eq!(ck.p2p_seq, s.p2p_seq.clone());
        prop_assert_eq!(ck.selector.map(|x| x.epoch), s.selector.map(|x| x.epoch));

        // Optimizer state, bit for bit.
        match (s.ent_opt_kind, &ck.ent_opt) {
            (0, kge_train::OptimSnapshot::Stateless) => {}
            (1, kge_train::OptimSnapshot::Adam { m, v, t, row_t }) => {
                prop_assert_eq!(bits(m), bits(&s.ent_m));
                prop_assert_eq!(bits(v), bits(&s.ent_v));
                prop_assert_eq!(*t, seed % 1000);
                prop_assert_eq!(row_t.clone(), s.ent_row_t.clone());
            }
            (2, kge_train::OptimSnapshot::Adagrad { accum }) => {
                prop_assert_eq!(bits(accum), bits(&s.ent_m));
            }
            (k, other) => prop_assert!(false, "kind {} decoded as {:?}", k, other),
        }

        // Residuals: sorted, complete, bit-identical.
        let mut expect_rows: Vec<u32> = Vec::new();
        s.ent_residual.sorted_ids_into(&mut expect_rows);
        prop_assert_eq!(
            ck.ent_residual.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
            expect_rows.clone()
        );
        for (row, values) in &ck.ent_residual {
            prop_assert_eq!(
                bits(values),
                bits(s.ent_residual.get_row(*row).expect("row present"))
            );
        }
    }

    #[test]
    fn prop_truncation_is_typed_error(
        seed in any::<u64>(),
        cut_frac in 0.0f64..1.0,
    ) {
        let s = build_state(15, 6, 2, 1, seed);
        let bytes = encode_state(&s, seed);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assert!(cut < bytes.len());
        // Must be an error — and reaching here at all means no panic.
        prop_assert!(decode(&bytes[..cut]).is_err());
    }

    #[test]
    fn prop_single_byte_corruption_is_detected(
        seed in any::<u64>(),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let s = build_state(15, 6, 2, 2, seed);
        let mut bytes = encode_state(&s, seed);
        let pos = ((bytes.len() as f64) * pos_frac) as usize;
        bytes[pos] ^= flip;
        let res = decode(&bytes);
        prop_assert!(res.is_err(), "corrupt byte {} accepted", pos);
        // The error is one of the typed kinds, not an Io smuggled panic.
        match res.expect_err("checked above") {
            CheckpointError::BadMagic
            | CheckpointError::UnsupportedVersion { .. }
            | CheckpointError::Truncated { .. }
            | CheckpointError::CrcMismatch { .. }
            | CheckpointError::BadSectionTag { .. }
            | CheckpointError::BadValue { .. } => {}
            CheckpointError::Io(m) => prop_assert!(false, "unexpected Io error: {}", m),
        }
    }
}
