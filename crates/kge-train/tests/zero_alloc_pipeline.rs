//! Zero-allocation regression test for the **pipelined** exchange path.
//!
//! Companion to `zero_alloc.rs` (which covers the synchronous exchanges);
//! kept in its own binary so the counting global allocator only ever sees
//! one test's traffic. Drives the trainer's pipelined steady state — a
//! two-slot ring of [`PipelineSlot`]s where batch `b` first completes the
//! exchange staged at `b − window` and then stages its own payload, with
//! a fresh stage-keyed RNG per batch (the shim `StdRng` is a stack-only
//! splitmix64 counter, so per-batch construction is free). After a
//! warm-up epoch sizes every slot's wire buffers, a second epoch plus its
//! drain must perform **zero** heap allocations.

#[global_allocator]
static ALLOC: kge_core::alloc_count::CountingAlloc = kge_core::alloc_count::CountingAlloc;

use kge_compress::row_select::select_rows;
use kge_compress::QuantScheme;
use kge_core::alloc_count;
use kge_core::SparseGrad;
use kge_data::synth::{generate, SynthConfig};
use kge_data::FilterIndex;
use kge_train::exchange::{
    complete_allreduce_overlapped, complete_gather_exchange_overlapped, encode_gather_payload,
    stage_allreduce_payload, PipelineSlot,
};
use kge_train::{BatchWorkspace, StrategyConfig, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simgrid::{Cluster, ClusterSpec};

const WINDOW: usize = 2;

#[test]
fn steady_state_pipelined_loop_allocates_nothing() {
    let ds = generate(&SynthConfig {
        name: "alloc-pipe".into(),
        n_entities: 300,
        n_relations: 12,
        n_triples: 3000,
        relation_zipf: 1.0,
        entity_zipf: 0.8,
        noise_frac: 0.05,
        valid_frac: 0.05,
        test_frac: 0.05,
        seed: 9,
    });
    let config = TrainConfig::new(4, 256, StrategyConfig::baseline_allgather(2));

    let deltas = Cluster::new(1, ClusterSpec::cray_xc40()).run(|ctx| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("single-thread pool");
        pool.install(|| {
            let model = config.model.build(config.rank);
            let model = model.as_ref();
            let dim = model.storage_dim();
            let filter = FilterIndex::build(&ds);
            let mut init_rng = StdRng::seed_from_u64(config.seed);
            let mut ent = kge_core::EmbeddingTable::xavier(ds.n_entities, dim, &mut init_rng);
            let mut rel = kge_core::EmbeddingTable::xavier(ds.n_relations, dim, &mut init_rng);
            let mut ent_opt = config.optimizer.build(config.base_lr, ds.n_entities, dim);
            let mut rel_opt = config.optimizer.build(config.base_lr, ds.n_relations, dim);
            let mut ws = BatchWorkspace::new(dim);
            let mut pipeline: Vec<PipelineSlot> =
                (0..WINDOW).map(|_| PipelineSlot::default()).collect();
            let mut agg = SparseGrad::new(dim);
            let batches = ds.train.len().div_ceil(config.batch_size);
            assert!(batches > WINDOW, "need a steady state deeper than the window");

            // One pipelined epoch: complete-then-launch per batch (both
            // the gather and the dense all-reduce flavors, like a DRS
            // run that alternates), then drain the last WINDOW slots.
            let epoch = |ent: &mut kge_core::EmbeddingTable,
                             rel: &mut kge_core::EmbeddingTable,
                             ws: &mut BatchWorkspace,
                             pipeline: &mut Vec<PipelineSlot>,
                             agg: &mut SparseGrad,
                             ent_opt: &mut dyn kge_core::RowOptimizer,
                             rel_opt: &mut dyn kge_core::RowOptimizer,
                             ctx: &mut simgrid::NodeCtx| {
                let complete = |slot: &mut PipelineSlot,
                                    agg: &mut SparseGrad,
                                    ent: &mut kge_core::EmbeddingTable,
                                    rel: &mut kge_core::EmbeddingTable,
                                    ent_opt: &mut dyn kge_core::RowOptimizer,
                                    rel_opt: &mut dyn kge_core::RowOptimizer,
                                    ctx: &mut simgrid::NodeCtx| {
                    complete_gather_exchange_overlapped(
                        ctx.comm_mut(),
                        dim,
                        &mut slot.ent_gather,
                        agg,
                        slot.anchor_s,
                    )
                    .expect("ent gather completion");
                    agg.ensure_sorted();
                    ent_opt.step_lazy(ent, agg, 1.0);
                    complete_allreduce_overlapped(ctx.comm_mut(), &mut slot.rel_dense, slot.anchor_s)
                        .expect("rel allreduce completion");
                    rel_opt.step_dense(rel, &slot.rel_dense, 1.0);
                };
                for b in 0..batches {
                    ws.batch_gradients_into(
                        model, ent, rel, &ds.train, b, &config, &filter, None, 0, 0,
                    );
                    if b >= WINDOW {
                        let slot = &mut pipeline[b % WINDOW];
                        complete(slot, agg, ent, rel, ent_opt, rel_opt, ctx);
                    }
                    // Launch: stage-keyed RNG, row selection, encode.
                    let slot = &mut pipeline[b % WINDOW];
                    slot.anchor_s = ctx.comm().clock().now_s();
                    let mut stage_rng = StdRng::seed_from_u64(config.seed ^ ((b as u64) << 1));
                    select_rows(config.strategy.row_select, ws.ent_grad_mut(), &mut stage_rng);
                    ws.ent_grad_mut().ensure_sorted();
                    slot.ent_stats = encode_gather_payload(
                        ws.ent_grad(),
                        dim,
                        QuantScheme::paper_one_bit(),
                        None,
                        &mut stage_rng,
                        &mut slot.ent_gather,
                    );
                    slot.rel_stats = stage_allreduce_payload(
                        ws.rel_grad(),
                        &mut slot.rel_dense,
                        ds.n_relations * dim,
                    );
                }
                for b in batches - WINDOW..batches {
                    let slot = &mut pipeline[b % WINDOW];
                    complete(slot, agg, ent, rel, ent_opt, rel_opt, ctx);
                }
            };

            // Warm-up pass: allowed (and expected) to allocate.
            epoch(
                &mut ent,
                &mut rel,
                &mut ws,
                &mut pipeline,
                &mut agg,
                ent_opt.as_mut(),
                rel_opt.as_mut(),
                ctx,
            );

            // Steady-state pass: every slot's buffers must be reused.
            let start = alloc_count::snapshot();
            epoch(
                &mut ent,
                &mut rel,
                &mut ws,
                &mut pipeline,
                &mut agg,
                ent_opt.as_mut(),
                rel_opt.as_mut(),
                ctx,
            );
            alloc_count::since(start)
        })
    });

    let delta = deltas[0];
    assert_eq!(
        delta.allocs, 0,
        "steady-state pipelined loop allocated {} times ({} bytes)",
        delta.allocs, delta.bytes
    );
}
