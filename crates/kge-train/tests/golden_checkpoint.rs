//! Golden-checkpoint compatibility.
//!
//! A fixture checkpoint encoded at format version 1 is committed under
//! `tests/fixtures/`. Decoding it must keep working bit-for-bit — or, if
//! the format version is ever bumped, fail with the explicit
//! `UnsupportedVersion` error — so any change to the on-disk layout shows
//! up in review as either a fixture regeneration or a version bump, never
//! as a silent reinterpretation of old bytes.
//!
//! Regenerate after an *intentional* format change with:
//!
//! ```text
//! KGE_BLESS_GOLDEN=1 cargo test -p kge-train --test golden_checkpoint
//! ```

use kge_compress::ResidualStore;
use kge_core::{EmbeddingTable, OptimStateView};
use kge_train::checkpoint::{self, CheckpointError, CheckpointView, Tallies, VERSION};
use kge_train::comm_select::{CommChoice, SelectorSnapshot};
use kge_train::lr::PlateauSnapshot;
use kge_train::report::EpochTrace;
use simgrid::{Collective, TimeBreakdown};
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("golden-v{VERSION}.kgc"))
}

/// Deterministic table fill — no RNG, so the fixture bytes depend only on
/// the checkpoint format, not on any generator implementation.
fn table(rows: usize, dim: usize, salt: f32) -> EmbeddingTable {
    let mut t = EmbeddingTable::zeros(rows, dim);
    for (i, x) in t.as_mut_slice().iter_mut().enumerate() {
        *x = (i as f32 * 0.03125 - 1.0) * salt;
    }
    t
}

/// The canonical golden state. Every field uses a distinct value so a
/// section mix-up cannot cancel out.
fn golden_bytes() -> Vec<u8> {
    let ent = table(9, 15, 1.0);
    let rel = table(4, 15, -0.5);
    let m: Vec<f32> = (0..9 * 15).map(|i| i as f32 * 0.25).collect();
    let v: Vec<f32> = (0..9 * 15).map(|i| i as f32 * 0.125 + 1.0).collect();
    let row_t: Vec<u32> = (0..9).map(|i| i * 3).collect();
    let accum: Vec<f32> = (0..4 * 15).map(|i| i as f32 * 0.5).collect();
    let mut ent_residual = ResidualStore::new();
    ent_residual.set_row(7, &[0.75; 15]);
    ent_residual.set_row(2, &[-0.25; 15]);
    let rel_residual = ResidualStore::new();
    let tallies = Tallies {
        allreduce_epochs: 10,
        allgather_epochs: 4,
        pipelined_epochs: 2,
        recoveries: 1,
        rejoins: 1,
        checkpoints_written: 3,
        crashed_ranks: vec![1],
    };
    let trace = vec![EpochTrace {
        epoch: 13,
        sim_seconds: 21.5,
        comm: CommChoice::PipelinedAllGather,
        valid_acc: 0.625,
        train_loss: 0.375,
        lr_scale: 2.0,
        mean_nonzero_rows: 55.0,
        mean_rows_sent: 44.0,
        rs_sparsity: 0.25,
        bytes_sent: 123_456,
        ranking: None,
    }];
    let traffic = vec![
        (Collective::AllReduce, [11, 1000, 2000, 800, 900, 3]),
        (Collective::PointToPoint, [2, 64, 64, 64, 64, 0]),
    ];
    let p2p_seq = vec![5, 0, 2, 0];
    let view = CheckpointView {
        world_size: 4,
        rank: 2,
        next_epoch: 14,
        seed: 0xC0FFEE,
        ent: &ent,
        rel: &rel,
        ent_opt: OptimStateView::Adam {
            m: &m,
            v: &v,
            t: 77,
            row_t: &row_t,
        },
        rel_opt: OptimStateView::Adagrad { accum: &accum },
        ent_residual: &ent_residual,
        rel_residual: &rel_residual,
        rng_state: 0x1234_5678_9ABC_DEF0,
        schedule: PlateauSnapshot {
            node_scale: 4.0,
            decay_scale: 0.1,
            decay: 0.1,
            tolerance: 15,
            max_drops: 2,
            drops: 1,
            best: 0.6875,
            since_best: 4,
            converged: false,
        },
        selector: Some(SelectorSnapshot {
            state: 3,
            arm: CommChoice::PipelinedAllGather,
            check_every: 10,
            epoch: 13,
            last_allreduce_time: Some(1.75),
            gather_time: 1.25,
        }),
        tallies: &tallies,
        trace: &trace,
        clock_now_s: 321.25,
        breakdown: TimeBreakdown {
            compute_s: 250.0,
            comm_s: 50.0,
            idle_s: 10.0,
            fault_s: 5.0,
            retry_s: 2.0,
            checkpoint_s: 3.0,
            overlap_s: 1.0,
            hidden_comm_s: 0.25,
        },
        traffic: &traffic,
        coll_seq: 99,
        p2p_seq: &p2p_seq,
    };
    let mut out = Vec::new();
    let mut ids = Vec::new();
    checkpoint::encode_into(&view, &mut ids, &mut out);
    out
}

#[test]
fn golden_fixture_stays_loadable() {
    let path = fixture_path();
    if std::env::var_os("KGE_BLESS_GOLDEN").is_some() {
        checkpoint::write_file(&path, &golden_bytes()).expect("bless fixture");
    }
    let ck = match checkpoint::read_file(&path) {
        Ok(ck) => ck,
        // A deliberate version bump is the one acceptable failure, and it
        // must be *this* error — anything else means the new code
        // misreads old bytes.
        Err(CheckpointError::UnsupportedVersion { found, supported }) => {
            assert_ne!(found, supported, "same version must decode");
            return;
        }
        Err(e) => panic!(
            "golden fixture {} failed to load with {e}; regenerate with \
             KGE_BLESS_GOLDEN=1 only if the format changed intentionally",
            path.display()
        ),
    };
    assert_eq!(ck.world_size, 4);
    assert_eq!(ck.rank, 2);
    assert_eq!(ck.next_epoch, 14);
    assert_eq!((ck.dim, ck.n_entities, ck.n_relations), (15, 9, 4));
    assert_eq!(ck.seed, 0xC0FFEE);
    assert_eq!(ck.rng_state, 0x1234_5678_9ABC_DEF0);
    assert_eq!(ck.ent.as_slice(), table(9, 15, 1.0).as_slice());
    assert_eq!(ck.rel.as_slice(), table(4, 15, -0.5).as_slice());
    match &ck.ent_opt {
        kge_train::OptimSnapshot::Adam { t, row_t, .. } => {
            assert_eq!(*t, 77);
            assert_eq!(row_t[8], 24);
        }
        other => panic!("golden ent optimizer decoded as {other:?}"),
    }
    assert_eq!(ck.ent_residual.len(), 2);
    assert_eq!(ck.ent_residual[0].0, 2, "sorted by row id");
    assert_eq!(ck.tallies.rejoins, 1);
    assert_eq!(ck.trace[0].epoch, 13);
    assert_eq!(ck.clock_now_s, 321.25);
    assert_eq!(ck.breakdown.checkpoint_s, 3.0);
    assert_eq!(ck.coll_seq, 99);
    assert_eq!(ck.p2p_seq, vec![5, 0, 2, 0]);
    assert_eq!(ck.selector.expect("selector present").state, 3);
}

/// The in-memory encoder must still produce the committed bytes exactly:
/// byte-level drift (even decode-compatible drift) invalidates existing
/// checksums and replication, so it has to be a conscious choice.
#[test]
fn golden_fixture_bytes_are_stable() {
    let path = fixture_path();
    if std::env::var_os("KGE_BLESS_GOLDEN").is_some() {
        checkpoint::write_file(&path, &golden_bytes()).expect("bless fixture");
    }
    let on_disk = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "golden fixture {} missing ({e}); generate with KGE_BLESS_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        on_disk,
        golden_bytes(),
        "encoder output drifted from the committed v{VERSION} fixture"
    );
}
