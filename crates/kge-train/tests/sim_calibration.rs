//! Calibration check referenced by `ClusterSpec::cray_xc40()` docs: the
//! analytic cost model must price one epoch of the paper's full-scale
//! FB250K single-node run near the paper's measured ~500 s (Fig. 1d).
//!
//! Nothing trains here — the check is purely on the pricing formulas, so
//! it stays meaningful (and fast) even though running the full-scale
//! workload itself would take hours.

use simgrid::ClusterSpec;

/// Paper-scale FB250K numbers.
const TRIPLES: f64 = 16_000_000.0;
const ENTITIES: f64 = 240_000.0;
const RANK: usize = 100; // paper: up to 200 dims = 2×100 (complex)
const BATCH: f64 = 10_000.0;
const NEG_PER_POS: f64 = 1.0;

#[test]
fn single_node_fb250k_epoch_prices_near_paper() {
    let spec = ClusterSpec::cray_xc40();
    let storage_dim = 2 * RANK;
    let score_flops = (10 * RANK) as f64;

    // Forward + backward over every example (1 positive + 1 negative per
    // training triple), backward costed at 2× forward.
    let examples = TRIPLES * (1.0 + NEG_PER_POS);
    let fwd_bwd = examples * score_flops * 3.0;

    // Dense Adam on the entity matrix once per batch (the paper's
    // all-reduce baseline semantics at p=1).
    let batches = TRIPLES / BATCH;
    let adam = batches * ENTITIES * storage_dim as f64 * 12.0;

    let epoch_s = spec.compute_time(fwd_bwd + adam);
    assert!(
        (300.0..800.0).contains(&epoch_s),
        "single-node FB250K epoch priced at {epoch_s:.0} s; paper Fig. 1d shows ~500 s"
    );
}

#[test]
fn sixteen_node_allreduce_epoch_time_is_paper_magnitude() {
    // Paper Fig. 1d: at 16 nodes an all-reduce epoch costs ~150-250 s.
    let spec = ClusterSpec::cray_xc40();
    let model = simgrid::CostModel::new(spec.clone());
    let p = 16;
    let storage_dim = 2 * RANK;

    let batches_per_node = TRIPLES / BATCH / p as f64;
    let dense_bytes = (ENTITIES as usize) * storage_dim * 4;
    let comm_per_batch = model.allreduce(p, dense_bytes);

    let score_flops = (10 * RANK) as f64;
    let examples_per_node = TRIPLES * 2.0 / p as f64;
    let compute = spec.compute_time(
        examples_per_node * score_flops * 3.0
            + batches_per_node * ENTITIES * storage_dim as f64 * 12.0,
    );
    let epoch_s = compute + batches_per_node * comm_per_batch;
    assert!(
        (50.0..600.0).contains(&epoch_s),
        "16-node all-reduce epoch priced at {epoch_s:.0} s; paper shows order 100-250 s"
    );
}

#[test]
fn allgather_crossover_lives_between_4_and_8_nodes_at_paper_scale() {
    // Paper Tables 1–2 / Fig 1: all-gather beats all-reduce at p ≤ 4 and
    // loses at p ≥ 8 on FB250K. Check the cost model places the crossover
    // there for paper-scale message sizes.
    let model = simgrid::CostModel::new(ClusterSpec::cray_xc40());
    let storage_dim = 2 * RANK;
    let dense_bytes = (ENTITIES as usize) * storage_dim * 4;
    // ~30 k distinct entity rows touched by a 10 k-triple batch with one
    // negative each (heads + tails, partially overlapping).
    let sparse_rows = 30_000usize;
    let sparse_bytes = sparse_rows * (storage_dim * 4 + 4);

    let gather_wins = |p: usize| {
        model.allgatherv(&vec![sparse_bytes; p]) < model.allreduce(p, dense_bytes)
    };
    assert!(gather_wins(2), "all-gather must win at p=2");
    assert!(gather_wins(4), "all-gather must win at p=4");
    assert!(!gather_wins(16), "all-reduce must win at p=16");
}
