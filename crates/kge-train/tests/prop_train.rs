//! Property tests on trainer components: the LR schedule's invariants,
//! the DRS state machine, and negative-sampling guarantees.

use kge_train::{CommChoice, DynamicCommSelector, LrDecision, PlateauSchedule};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lr_scale_never_increases_and_stays_positive(
        metrics in proptest::collection::vec(0.0f64..1.0, 1..200),
        p in 1usize..20,
        tolerance in 1usize..10,
        max_drops in 0usize..4,
    ) {
        let mut s = PlateauSchedule::new(p, 4.0, 0.1, tolerance, max_drops);
        let mut prev = s.lr_scale();
        prop_assert!((1.0..=4.0).contains(&prev));
        for &m in &metrics {
            let _ = s.observe(m);
            let cur = s.lr_scale();
            prop_assert!(cur > 0.0);
            prop_assert!(cur <= prev + 1e-9, "lr scale must be non-increasing");
            prev = cur;
        }
    }

    #[test]
    fn schedule_converges_within_bounded_stale_epochs(
        tolerance in 1usize..8,
        max_drops in 0usize..4,
    ) {
        // A never-improving metric must converge after at most
        // (max_drops + 1) × tolerance stale epochs.
        let mut s = PlateauSchedule::new(1, 4.0, 0.1, tolerance, max_drops);
        s.observe(1.0); // set the best
        let bound = (max_drops + 1) * tolerance + 1;
        let mut converged_at = None;
        for i in 0..bound {
            if matches!(s.observe(0.0), LrDecision::Converged) {
                converged_at = Some(i);
                break;
            }
        }
        prop_assert!(converged_at.is_some(), "did not converge within {bound} epochs");
        prop_assert_eq!(s.drops(), max_drops);
    }

    #[test]
    fn improving_metric_never_converges(
        steps in 1usize..100,
        tolerance in 1usize..5,
    ) {
        let mut s = PlateauSchedule::new(2, 4.0, 0.5, tolerance, 2);
        for i in 0..steps {
            let d = s.observe(i as f64);
            prop_assert_eq!(d, LrDecision::Continue);
        }
        prop_assert!(!s.converged());
    }

    #[test]
    fn drs_switch_is_permanent(times in proptest::collection::vec(0.0f64..10.0, 1..100)) {
        let mut sel = DynamicCommSelector::new(3);
        let mut committed: Option<CommChoice> = None;
        for &t in &times {
            if !sel.still_dynamic() && committed.is_none() {
                // First epoch after the switch: remember the winning arm.
                committed = Some(sel.choice());
                prop_assert!(committed != Some(CommChoice::AllReduce));
            }
            if let Some(arm) = committed {
                // Once switched, the choice is pinned forever.
                prop_assert_eq!(sel.choice(), arm);
            }
            sel.observe_epoch(t);
        }
    }

    #[test]
    fn drs_probe_cadence(check_every in 1usize..20) {
        // With every probe arm always slower, the selector must stay on
        // all-reduce except during the two-epoch probe rounds that recur
        // every `check_every` all-reduce epochs.
        let mut sel = DynamicCommSelector::new(check_every);
        let mut probes = 0usize;
        for _ in 0..100 {
            let t = match sel.choice() {
                CommChoice::AllReduce => 1.0,
                // Alternative arm being timed: always slower, never switch.
                _ => {
                    probes += 1;
                    2.0
                }
            };
            sel.observe_epoch(t);
        }
        prop_assert!(sel.still_dynamic());
        // Each cycle is `check_every` all-reduce epochs + 2 probe epochs.
        prop_assert!(probes >= 2 * (100 / (check_every + 2)) / 2, "probes {probes}");
    }
}
