//! Property tests on trainer components: the LR schedule's invariants,
//! the DRS state machine, and negative-sampling guarantees.

use kge_train::{CommChoice, DynamicCommSelector, LrDecision, PlateauSchedule};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lr_scale_never_increases_and_stays_positive(
        metrics in proptest::collection::vec(0.0f64..1.0, 1..200),
        p in 1usize..20,
        tolerance in 1usize..10,
        max_drops in 0usize..4,
    ) {
        let mut s = PlateauSchedule::new(p, 4.0, 0.1, tolerance, max_drops);
        let mut prev = s.lr_scale();
        prop_assert!((1.0..=4.0).contains(&prev));
        for &m in &metrics {
            let _ = s.observe(m);
            let cur = s.lr_scale();
            prop_assert!(cur > 0.0);
            prop_assert!(cur <= prev + 1e-9, "lr scale must be non-increasing");
            prev = cur;
        }
    }

    #[test]
    fn schedule_converges_within_bounded_stale_epochs(
        tolerance in 1usize..8,
        max_drops in 0usize..4,
    ) {
        // A never-improving metric must converge after at most
        // (max_drops + 1) × tolerance stale epochs.
        let mut s = PlateauSchedule::new(1, 4.0, 0.1, tolerance, max_drops);
        s.observe(1.0); // set the best
        let bound = (max_drops + 1) * tolerance + 1;
        let mut converged_at = None;
        for i in 0..bound {
            if matches!(s.observe(0.0), LrDecision::Converged) {
                converged_at = Some(i);
                break;
            }
        }
        prop_assert!(converged_at.is_some(), "did not converge within {bound} epochs");
        prop_assert_eq!(s.drops(), max_drops);
    }

    #[test]
    fn improving_metric_never_converges(
        steps in 1usize..100,
        tolerance in 1usize..5,
    ) {
        let mut s = PlateauSchedule::new(2, 4.0, 0.5, tolerance, 2);
        for i in 0..steps {
            let d = s.observe(i as f64);
            prop_assert_eq!(d, LrDecision::Continue);
        }
        prop_assert!(!s.converged());
    }

    #[test]
    fn drs_switch_is_permanent(times in proptest::collection::vec(0.0f64..10.0, 1..100)) {
        let mut sel = DynamicCommSelector::new(3);
        let mut switched = false;
        for &t in &times {
            if !sel.still_dynamic() {
                switched = true;
            }
            let before = sel.choice();
            sel.observe_epoch(t);
            if switched {
                // Once switched, the choice is pinned to all-gather.
                prop_assert_eq!(before, CommChoice::AllGather);
                prop_assert_eq!(sel.choice(), CommChoice::AllGather);
            }
        }
    }

    #[test]
    fn drs_probe_cadence(check_every in 1usize..20) {
        // With all-gather always slower, the selector must stay on
        // all-reduce except at probe epochs, which occur every
        // `check_every` all-reduce epochs.
        let mut sel = DynamicCommSelector::new(check_every);
        let mut probes = 0usize;
        for _ in 0..100 {
            let choice = sel.choice();
            let t = match choice {
                CommChoice::AllReduce => 1.0,
                CommChoice::AllGather => {
                    probes += 1;
                    2.0 // always slower: never switch
                }
            };
            sel.observe_epoch(t);
        }
        prop_assert!(sel.still_dynamic());
        prop_assert!(probes >= 100 / (check_every + 1) / 2, "probes {probes}");
    }
}
