//! Resume equivalence: checkpoint-at-k then resume must be bit-identical
//! to the uninterrupted run.
//!
//! Every cell runs three legs from one seed:
//!
//! - **A** — the uninterrupted run: `max_epochs` epochs with periodic
//!   checkpointing enabled (`checkpoint_every = CKPT_AT`).
//! - **B1** — the "crashed" run: identical config but stopped after
//!   `CKPT_AT` epochs, leaving a checkpoint on disk.
//! - **B2** — the resumed run: `resume_from` B1's checkpoint directory,
//!   full `max_epochs`, checkpointing still enabled so the simulated
//!   clock charges the same `checkpoint_s` as leg A.
//!
//! B2 must equal A bit-for-bit: final loss history, every entity and
//! relation row, per-epoch simulated clocks and wire bytes — i.e. the
//! resumed run replays every RNG draw, quantization dither, and f32
//! summation of the run it replaces. `scripts/check.sh` re-runs this
//! binary under `KGE_FORCE_SCALAR=1` to cover both SIMD dispatch arms.

use kge_compress::quant::QuantScheme;
use kge_data::synth::{generate, SynthConfig};
use kge_train::config::{CommMode, ModelKind, OptimizerKind, StrategyConfig, TrainConfig};
use kge_train::{train, TrainOutcome};
use simgrid::{Cluster, ClusterSpec};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Epoch count of the full run and the epoch the "crashed" leg stops at.
const FULL_EPOCHS: usize = 4;
const CKPT_AT: usize = 2;

/// Tests in one binary run concurrently; every test that flips the
/// process-wide `RAYON_NUM_THREADS` serializes through this lock.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Unique scratch directories: tests run concurrently in one process and
/// the same binary may run twice (plain + forced-scalar) side by side.
static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "kge-resume-{}-{}-{}",
        std::process::id(),
        tag,
        n
    ))
}

fn dataset() -> kge_data::Dataset {
    generate(&SynthConfig {
        name: "resume".into(),
        n_entities: 120,
        n_relations: 8,
        n_triples: 1500,
        relation_zipf: 1.0,
        entity_zipf: 0.8,
        noise_frac: 0.05,
        valid_frac: 0.08,
        test_frac: 0.08,
        seed: 41,
    })
}

#[derive(Clone, Copy)]
struct Cell {
    model: ModelKind,
    comm: CommMode,
    quant: QuantScheme,
    optimizer: OptimizerKind,
    threads: usize,
}

fn config_for(cell: &Cell) -> TrainConfig {
    let mut strategy = StrategyConfig::baseline_allgather(2);
    strategy.comm = cell.comm;
    strategy.quant = cell.quant;
    let mut c = TrainConfig::new(4, 64, strategy);
    c.model = cell.model;
    c.optimizer = cell.optimizer;
    c.plateau_tolerance = 3;
    c.max_lr_drops = 1;
    c.max_epochs = FULL_EPOCHS;
    c.valid_samples = 64;
    c.base_lr = 5e-3;
    c
}

fn run_leg(
    cell: &Cell,
    max_epochs: usize,
    ckpt_dir: &Path,
    resume_from: Option<&Path>,
) -> TrainOutcome {
    std::env::set_var("RAYON_NUM_THREADS", cell.threads.to_string());
    let ds = dataset();
    let cluster = Cluster::new(2, ClusterSpec::cray_xc40());
    let mut c = config_for(cell);
    c.max_epochs = max_epochs;
    c.checkpoint_every = CKPT_AT;
    c.checkpoint_dir = Some(ckpt_dir.to_path_buf());
    c.resume_from = resume_from.map(Path::to_path_buf);
    let out = train(&ds, &cluster, &c);
    std::env::remove_var("RAYON_NUM_THREADS");
    out
}

/// Run the three legs for one cell and assert B2 ≡ A bit-for-bit.
fn assert_resume_equivalent(cell: &Cell, tag: &str) {
    let dir_a = scratch_dir("a");
    let dir_b = scratch_dir("b");

    let a = run_leg(cell, FULL_EPOCHS, &dir_a, None);
    let b1 = run_leg(cell, CKPT_AT, &dir_b, None);
    assert_eq!(
        b1.report.checkpoints_written, 1,
        "{tag}: interrupted leg must leave exactly one checkpoint"
    );
    let b2 = run_leg(cell, FULL_EPOCHS, &dir_b, Some(&dir_b));

    assert_eq!(
        a.entities.as_slice(),
        b2.entities.as_slice(),
        "{tag}: entity rows"
    );
    assert_eq!(
        a.relations.as_slice(),
        b2.relations.as_slice(),
        "{tag}: relation rows"
    );
    assert_eq!(a.report.epochs, b2.report.epochs, "{tag}: epochs");
    assert_eq!(a.report.converged, b2.report.converged, "{tag}: converged");
    assert_eq!(
        a.report.checkpoints_written, b2.report.checkpoints_written,
        "{tag}: checkpoint tally carries across the resume"
    );
    assert_eq!(
        a.report.allreduce_epochs, b2.report.allreduce_epochs,
        "{tag}: allreduce tally"
    );
    assert_eq!(
        a.report.allgather_epochs, b2.report.allgather_epochs,
        "{tag}: allgather tally"
    );
    assert_eq!(
        a.report.pipelined_epochs, b2.report.pipelined_epochs,
        "{tag}: pipelined tally"
    );
    for (x, y) in a.report.trace.iter().zip(&b2.report.trace) {
        assert_eq!(
            x.train_loss.to_bits(),
            y.train_loss.to_bits(),
            "{tag}: loss at epoch {}",
            x.epoch
        );
        assert_eq!(
            x.valid_acc.to_bits(),
            y.valid_acc.to_bits(),
            "{tag}: valid acc at epoch {}",
            x.epoch
        );
        assert_eq!(
            x.sim_seconds.to_bits(),
            y.sim_seconds.to_bits(),
            "{tag}: sim clock at epoch {}",
            x.epoch
        );
        assert_eq!(x.bytes_sent, y.bytes_sent, "{tag}: bytes at epoch {}", x.epoch);
    }
    assert_eq!(
        a.report.sim_total_seconds.to_bits(),
        b2.report.sim_total_seconds.to_bits(),
        "{tag}: total simulated time"
    );

    for d in [dir_a, dir_b] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn resume_matrix_synchronous_allgather() {
    let _guard = ENV_LOCK.lock().unwrap();
    for model in [ModelKind::ComplEx, ModelKind::DistMult, ModelKind::TransE] {
        for quant in [QuantScheme::None, QuantScheme::paper_one_bit()] {
            for threads in [1usize, 4] {
                let cell = Cell {
                    model,
                    comm: CommMode::AllGather,
                    quant,
                    optimizer: OptimizerKind::Adam,
                    threads,
                };
                assert_resume_equivalent(
                    &cell,
                    &format!("{model:?}/allgather/{quant:?}/{threads}t"),
                );
            }
        }
    }
}

#[test]
fn resume_matrix_pipelined() {
    let _guard = ENV_LOCK.lock().unwrap();
    // The pipelined window is where the RNG-stream bookkeeping is
    // sharpest: stage-keyed draws for row selection and dither, plus the
    // in-flight slot protocol straddling the checkpoint epoch boundary
    // (the window drains at epoch end, so the boundary is clean).
    for model in [ModelKind::ComplEx, ModelKind::DistMult, ModelKind::TransE] {
        for quant in [QuantScheme::None, QuantScheme::paper_one_bit()] {
            for threads in [1usize, 4] {
                let cell = Cell {
                    model,
                    comm: CommMode::Pipelined { staleness: 1 },
                    quant,
                    optimizer: OptimizerKind::Adam,
                    threads,
                };
                assert_resume_equivalent(
                    &cell,
                    &format!("{model:?}/pipelined/{quant:?}/{threads}t"),
                );
            }
        }
    }
}

#[test]
fn resume_preserves_dynamic_selector_state() {
    let _guard = ENV_LOCK.lock().unwrap();
    // check_every = 2 puts the selector mid-probe at the checkpoint epoch:
    // the snapshot must carry the probe state machine, not just the arm.
    let cell = Cell {
        model: ModelKind::ComplEx,
        comm: CommMode::Dynamic { check_every: 2 },
        quant: QuantScheme::paper_one_bit(),
        optimizer: OptimizerKind::Adam,
        threads: 2,
    };
    assert_resume_equivalent(&cell, "dynamic/check2");
}

#[test]
fn resume_preserves_adagrad_accumulators() {
    let _guard = ENV_LOCK.lock().unwrap();
    let cell = Cell {
        model: ModelKind::DistMult,
        comm: CommMode::AllReduce,
        quant: QuantScheme::None,
        optimizer: OptimizerKind::Adagrad,
        threads: 2,
    };
    assert_resume_equivalent(&cell, "adagrad/allreduce");
}

#[test]
fn resume_from_missing_or_mismatched_checkpoint_fails_loudly() {
    let _guard = ENV_LOCK.lock().unwrap();
    let dir = scratch_dir("bad");
    let cell = Cell {
        model: ModelKind::ComplEx,
        comm: CommMode::AllGather,
        quant: QuantScheme::None,
        optimizer: OptimizerKind::Adam,
        threads: 1,
    };
    // Missing checkpoint directory: the run must panic, not silently
    // train from scratch while claiming to resume.
    let missing = dir.clone();
    let c = cell;
    let res = std::panic::catch_unwind(move || run_leg(&c, FULL_EPOCHS, &missing, Some(&missing)));
    assert!(res.is_err(), "resume from a missing checkpoint must fail");
    let _ = std::fs::remove_dir_all(dir);
}
