//! Acceptance test for trainer-level crash resilience: a 4-rank training
//! run that loses one rank mid-run completes with finite loss on a
//! rebalanced partition, reports the recovery in the fault/retry time
//! buckets, and is bit-reproducible from the fault plan's seed.

use kge_data::synth::{generate, SynthConfig};
use kge_train::config::{CommMode, StrategyConfig, TrainConfig};
use kge_train::{train, TrainOutcome};
use simgrid::{Cluster, ClusterSpec, FaultPlan};

fn dataset() -> kge_data::Dataset {
    generate(&SynthConfig {
        name: "faults".into(),
        n_entities: 120,
        n_relations: 8,
        n_triples: 1500,
        relation_zipf: 1.0,
        entity_zipf: 0.8,
        noise_frac: 0.05,
        valid_frac: 0.08,
        test_frac: 0.08,
        seed: 31,
    })
}

fn config() -> TrainConfig {
    let mut c = TrainConfig::new(4, 64, StrategyConfig::baseline_allreduce(2));
    c.plateau_tolerance = 3;
    c.max_lr_drops = 1;
    c.max_epochs = 8;
    c.valid_samples = 64;
    c.base_lr = 5e-3;
    c
}

fn run(plan: Option<FaultPlan>, config: &TrainConfig) -> TrainOutcome {
    let mut cluster = Cluster::new(4, ClusterSpec::cray_xc40());
    if let Some(plan) = plan {
        cluster = cluster.with_fault_plan(plan);
    }
    train(&dataset(), &cluster, config)
}

/// Crash original rank 2 at ~40% of the fault-free run's simulated time.
fn crash_plan(fault_free_total_s: f64) -> FaultPlan {
    FaultPlan::seeded(99).with_crash(2, 0.4 * fault_free_total_s)
}

#[test]
fn losing_one_rank_mid_run_recovers_and_completes() {
    let fault_free = run(None, &config());
    let total = fault_free.report.sim_total_seconds;
    assert!(total > 0.0);

    let faulted = run(Some(crash_plan(total)), &config());
    let r = &faulted.report;

    // The crash happened, was attributed, and the world shrank once.
    assert_eq!(r.nodes, 4);
    assert_eq!(r.surviving_nodes, 3, "world should shrink to 3");
    assert_eq!(r.recoveries, 1);
    assert_eq!(r.crashed_ranks, vec![2]);

    // The aborted epoch is dropped, the rest completed.
    assert!(r.epochs > 0 && r.epochs < config().max_epochs);
    assert_eq!(r.epochs, r.trace.len());
    assert_eq!(r.allreduce_epochs + r.allgather_epochs, r.epochs);

    // Recovery time is visible: the failure-detection timeout lands in
    // the fault bucket of the reporting survivor.
    assert!(r.breakdown.fault_s > 0.0, "{:?}", r.breakdown);

    // Finite model and loss on the rebalanced 3-way partition.
    for t in &r.trace {
        assert!(t.train_loss.is_finite(), "epoch {}", t.epoch);
    }
    assert!(faulted.entities.as_slice().iter().all(|v| v.is_finite()));
    assert!(faulted.relations.as_slice().iter().all(|v| v.is_finite()));

    // Wire conservation holds across the crash (the dead rank's pre-crash
    // traffic is counted on both sides).
    assert!(r.wire_bytes_sent > 0);
    assert_eq!(r.wire_bytes_sent, r.wire_bytes_recv);
}

#[test]
fn faulted_run_is_bit_reproducible() {
    let total = run(None, &config()).report.sim_total_seconds;
    let a = run(Some(crash_plan(total)), &config());
    let b = run(Some(crash_plan(total)), &config());
    assert_eq!(a.entities.as_slice(), b.entities.as_slice());
    assert_eq!(a.relations.as_slice(), b.relations.as_slice());
    assert_eq!(a.report.breakdown, b.report.breakdown);
    assert_eq!(
        a.report.sim_total_seconds.to_bits(),
        b.report.sim_total_seconds.to_bits()
    );
    assert_eq!(a.report.crashed_ranks, b.report.crashed_ranks);
    assert_eq!(a.report.epochs, b.report.epochs);
}

/// Same crash scenario, but with the exchange pipelined two batches deep:
/// the crash lands with launches in flight, so the survivors must drain
/// the pipeline (discarding the aborted epoch's partial window), shrink
/// to three ranks, and keep producing bit-reproducible results.
#[test]
fn crash_with_pipelined_exchange_in_flight_drains_and_recovers() {
    let mut c = config();
    c.strategy.comm = CommMode::Pipelined { staleness: 2 };

    let fault_free = run(None, &c);
    let total = fault_free.report.sim_total_seconds;
    assert!(total > 0.0);
    assert_eq!(
        fault_free.report.pipelined_epochs, fault_free.report.epochs,
        "every fault-free epoch should run pipelined"
    );

    let a = run(Some(crash_plan(total)), &c);
    let r = &a.report;

    // The crash happened mid-pipeline and the world shrank once.
    assert_eq!(r.surviving_nodes, 3, "world should shrink to 3");
    assert_eq!(r.recoveries, 1);
    assert_eq!(r.crashed_ranks, vec![2]);
    assert!(r.breakdown.fault_s > 0.0, "{:?}", r.breakdown);

    // The aborted epoch (and its partial window) is rolled back; every
    // surviving epoch ran — and is counted — as pipelined all-gather.
    assert!(r.epochs > 0 && r.epochs < c.max_epochs);
    assert_eq!(r.epochs, r.trace.len());
    assert_eq!(r.allgather_epochs, r.epochs);
    assert_eq!(r.allreduce_epochs, 0);
    assert_eq!(r.pipelined_epochs, r.epochs);

    // Finite model on the rebalanced partition, and the in-flight
    // traffic of the dead rank still balances globally.
    for t in &r.trace {
        assert!(t.train_loss.is_finite(), "epoch {}", t.epoch);
    }
    assert!(a.entities.as_slice().iter().all(|v| v.is_finite()));
    assert!(a.relations.as_slice().iter().all(|v| v.is_finite()));
    assert!(r.wire_bytes_sent > 0);
    assert_eq!(r.wire_bytes_sent, r.wire_bytes_recv);

    // Draining is deterministic: the same plan replays bit-exactly.
    let b = run(Some(crash_plan(total)), &c);
    assert_eq!(a.entities.as_slice(), b.entities.as_slice());
    assert_eq!(a.relations.as_slice(), b.relations.as_slice());
    assert_eq!(a.report.breakdown, b.report.breakdown);
    assert_eq!(
        a.report.sim_total_seconds.to_bits(),
        b.report.sim_total_seconds.to_bits()
    );
    assert_eq!(a.report.epochs, b.report.epochs);
}

/// The full elastic cycle: rank 2 crashes (shrink 4 → 3), recovers, and
/// rejoins at the next epoch boundary (re-grow 3 → 4). The rejoiner
/// receives the leader's checkpoint image over the simulated wire, so the
/// re-expanded world trains on as one replica — finite, conserved, and
/// bit-reproducible from the single plan seed.
#[test]
fn crashed_rank_rejoins_and_training_reexpands() {
    let fault_free = run(None, &config());
    let total = fault_free.report.sim_total_seconds;
    assert!(total > 0.0);

    let plan = || FaultPlan::seeded(99).with_crash_and_rejoin(2, 0.4 * total, 0.5 * total);
    let a = run(Some(plan()), &config());
    let r = &a.report;

    // Shrink then re-grow: one recovery, one rejoin, back to full size.
    assert_eq!(r.nodes, 4);
    assert_eq!(r.recoveries, 1);
    assert_eq!(r.rejoins, 1, "recovered rank must re-enter the world");
    assert_eq!(r.surviving_nodes, 4, "world should re-expand to 4");
    assert_eq!(r.crashed_ranks, vec![2]);
    assert!(r.breakdown.fault_s > 0.0, "{:?}", r.breakdown);

    // Only the aborted epoch is lost; everything after the rejoin ran at
    // full width on the rebalanced 4-way partition.
    assert!(r.epochs > 0 && r.epochs < config().max_epochs);
    assert_eq!(r.epochs, r.trace.len());
    assert_eq!(r.allreduce_epochs + r.allgather_epochs, r.epochs);
    for t in &r.trace {
        assert!(t.train_loss.is_finite(), "epoch {}", t.epoch);
    }
    assert!(a.entities.as_slice().iter().all(|v| v.is_finite()));
    assert!(a.relations.as_slice().iter().all(|v| v.is_finite()));

    // Wire conservation spans the whole cycle: pre-crash traffic of the
    // dead rank, the shrunken epochs, the checkpoint-image transfer that
    // re-seeds the rejoiner, and the re-expanded epochs.
    assert!(r.wire_bytes_sent > 0);
    assert_eq!(r.wire_bytes_sent, r.wire_bytes_recv);

    // The entire elastic cycle replays bit-exactly from the plan seed.
    let b = run(Some(plan()), &config());
    assert_eq!(a.entities.as_slice(), b.entities.as_slice());
    assert_eq!(a.relations.as_slice(), b.relations.as_slice());
    assert_eq!(a.report.breakdown, b.report.breakdown);
    assert_eq!(
        a.report.sim_total_seconds.to_bits(),
        b.report.sim_total_seconds.to_bits()
    );
    assert_eq!(a.report.epochs, b.report.epochs);
    assert_eq!(a.report.rejoins, b.report.rejoins);
}

#[test]
fn crash_without_recovery_stops_training_at_the_crash() {
    let baseline = run(None, &config());
    let total = baseline.report.sim_total_seconds;

    let mut c = config();
    c.recover_from_crashes = false;
    let stopped = run(Some(crash_plan(total)), &c);
    let r = &stopped.report;

    // No shrink happened: the job stopped with the crash recorded.
    assert_eq!(r.recoveries, 0);
    assert_eq!(r.surviving_nodes, 4);
    assert_eq!(r.crashed_ranks, vec![2]);
    assert!(!r.converged);
    assert!(
        r.epochs < baseline.report.epochs,
        "stopped at the crash: {} vs {}",
        r.epochs,
        baseline.report.epochs
    );
    assert_eq!(r.allreduce_epochs + r.allgather_epochs, r.epochs);
}
