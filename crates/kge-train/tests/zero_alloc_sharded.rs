//! Zero-allocation regression test for the sharded batch pipeline.
//!
//! Same contract as `zero_alloc.rs`, extended to the partitioned-storage
//! path: after a warm-up epoch, a steady-state epoch through
//! `sharded_batch_step` — staging, touched-union build, batch-local
//! table fill, gradient split/encode, hot all-gather + decode, relation
//! exchange, lazy Adam on arena and cache rows, and the cache
//! admission/eviction machinery — must perform **zero** heap
//! allocations.
//!
//! Scope: per-rank and single-thread, like the replica guarantee.
//! Multi-rank runs move p2p payloads through channels (`Message` owns
//! its bytes) and multi-thread pools spawn workers, both of which
//! allocate by construction. On one rank the pull and push loops skip
//! self, the own-bucket cold gradient is decoded from its reused wire
//! buffer, and the single-participant all-gather copies into reused
//! receive buffers.

#[global_allocator]
static ALLOC: kge_core::alloc_count::CountingAlloc = kge_core::alloc_count::CountingAlloc;

use kge_core::alloc_count;
use kge_data::synth::{generate, SynthConfig};
use kge_data::FilterIndex;
use kge_partition::{entity_owners, partition_for};
use kge_train::shard::{
    sharded_batch_step, sharded_batch_step_prefetch, sharded_epoch_prefetch_begin,
    sharded_epoch_prefetch_drain, PrefetchRing, ShardedBufs, ShardedStore,
};
use kge_train::{PrefetchMode, ShardedConfig, StrategyConfig, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simgrid::{Cluster, ClusterSpec};

#[test]
fn steady_state_sharded_batch_loop_allocates_nothing() {
    let ds = generate(&SynthConfig {
        name: "sharded-alloc-probe".into(),
        n_entities: 300,
        n_relations: 12,
        n_triples: 3000,
        relation_zipf: 1.0,
        entity_zipf: 0.9,
        noise_frac: 0.05,
        valid_frac: 0.05,
        test_frac: 0.05,
        seed: 9,
    });
    let mut config = TrainConfig::new(4, 256, StrategyConfig::baseline_allgather(2));
    config.valid_samples = 0;
    config.sharded = Some(ShardedConfig {
        hot_cache_rows: 48,
        cold_int8: false,
        prefetch: PrefetchMode::Off,
    });
    config.validate().expect("valid sharded config");

    let deltas = Cluster::new(1, ClusterSpec::cray_xc40()).run(|ctx| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("single-thread pool");
        pool.install(|| {
            let model = config.model.build(config.rank);
            let model = model.as_ref();
            let dim = model.storage_dim();
            let filter = FilterIndex::build(&ds);
            let degrees = ds.stats().entity_degrees;
            let part = partition_for(&ds.train, ds.n_relations, 1, false);
            let owners = entity_owners(&part, ds.n_entities);

            let mut init_rng = StdRng::seed_from_u64(config.seed);
            let ent = kge_core::EmbeddingTable::xavier(ds.n_entities, dim, &mut init_rng);
            let mut rel = kge_core::EmbeddingTable::xavier(ds.n_relations, dim, &mut init_rng);
            let mut store = ShardedStore::new(
                kge_compress::ArenaKind::F32,
                dim,
                0,
                owners,
                &degrees,
                config.sharded.unwrap().hot_cache_rows,
                config.base_lr,
            );
            store.init_owned_from(&ent);
            drop(ent);
            let mut rel_opt = config.optimizer.build(config.base_lr, ds.n_relations, dim);
            let mut rng = StdRng::seed_from_u64(config.seed ^ 1);
            let mut bufs = ShardedBufs::new(dim, ds.n_entities, 1, &config);
            let batches = ds.train.len().div_ceil(config.batch_size);

            let mut tick = 0u64;
            let epoch_pass = |epoch: usize,
                                  tick: &mut u64,
                                  store: &mut ShardedStore,
                                  rel: &mut kge_core::EmbeddingTable,
                                  rel_opt: &mut dyn kge_core::RowOptimizer,
                                  bufs: &mut ShardedBufs,
                                  rng: &mut StdRng,
                                  ctx: &mut simgrid::NodeCtx| {
                for b in 0..batches {
                    sharded_batch_step(
                        ctx,
                        model,
                        &config,
                        store,
                        rel,
                        rel_opt,
                        &ds.train,
                        &filter,
                        None,
                        bufs,
                        rng,
                        epoch,
                        b,
                        *tick,
                        1.0,
                    )
                    .expect("single-rank batch cannot crash");
                    *tick += 1;
                }
                store.flush_epoch();
            };

            // Warm-up epoch: allowed (and expected) to allocate — wire
            // buffers, sparse slabs, the LRU queue all reach steady size.
            epoch_pass(
                0,
                &mut tick,
                &mut store,
                &mut rel,
                rel_opt.as_mut(),
                &mut bufs,
                &mut rng,
                ctx,
            );

            // Steady-state epoch: every buffer must be reused. Cache
            // churn (admissions, evictions, bumps, the epoch flush)
            // happens in-place.
            let start = alloc_count::snapshot();
            epoch_pass(
                1,
                &mut tick,
                &mut store,
                &mut rel,
                rel_opt.as_mut(),
                &mut bufs,
                &mut rng,
                ctx,
            );
            alloc_count::since(start)
        })
    });

    let delta = deltas[0];
    assert_eq!(
        delta.allocs, 0,
        "steady-state sharded batch loop allocated {} times ({} bytes)",
        delta.allocs, delta.bytes
    );
}

#[test]
fn steady_state_prefetch_ring_allocates_nothing() {
    // Same contract, prefetch pipeline: after one warm epoch the full
    // ring cycle — staging into a slot, touched-union dedup, launch-time
    // classification, request staging, compute from the slot table,
    // eviction capture into the launched slot, deferred-push settlement,
    // and the epoch drain — must perform zero steady-state allocations.
    let ds = generate(&SynthConfig {
        name: "sharded-prefetch-alloc-probe".into(),
        n_entities: 300,
        n_relations: 12,
        n_triples: 3000,
        relation_zipf: 1.0,
        entity_zipf: 0.9,
        noise_frac: 0.05,
        valid_frac: 0.05,
        test_frac: 0.05,
        seed: 9,
    });
    let mut config = TrainConfig::new(4, 256, StrategyConfig::baseline_allgather(2));
    config.valid_samples = 0;
    config.sharded = Some(ShardedConfig {
        hot_cache_rows: 48,
        cold_int8: false,
        prefetch: PrefetchMode::On,
    });
    config.validate().expect("valid sharded config");

    let deltas = Cluster::new(1, ClusterSpec::cray_xc40()).run(|ctx| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("single-thread pool");
        pool.install(|| {
            let model = config.model.build(config.rank);
            let model = model.as_ref();
            let dim = model.storage_dim();
            let filter = FilterIndex::build(&ds);
            let degrees = ds.stats().entity_degrees;
            let part = partition_for(&ds.train, ds.n_relations, 1, false);
            let owners = entity_owners(&part, ds.n_entities);

            let mut init_rng = StdRng::seed_from_u64(config.seed);
            let ent = kge_core::EmbeddingTable::xavier(ds.n_entities, dim, &mut init_rng);
            let mut rel = kge_core::EmbeddingTable::xavier(ds.n_relations, dim, &mut init_rng);
            let mut store = ShardedStore::new(
                kge_compress::ArenaKind::F32,
                dim,
                0,
                owners,
                &degrees,
                config.sharded.unwrap().hot_cache_rows,
                config.base_lr,
            );
            store.init_owned_from(&ent);
            drop(ent);
            let mut rel_opt = config.optimizer.build(config.base_lr, ds.n_relations, dim);
            let mut rng = StdRng::seed_from_u64(config.seed ^ 1);
            let mut bufs = ShardedBufs::new(dim, ds.n_entities, 1, &config);
            let mut ring = PrefetchRing::new(dim, ds.n_entities, 1, &config);
            let batches = ds.train.len().div_ceil(config.batch_size);

            let mut tick = 0u64;
            let mut epoch_pass = |epoch: usize,
                                  tick: &mut u64,
                                  store: &mut ShardedStore,
                                  rel: &mut kge_core::EmbeddingTable,
                                  rel_opt: &mut dyn kge_core::RowOptimizer,
                                  bufs: &mut ShardedBufs,
                                  rng: &mut StdRng,
                                  ctx: &mut simgrid::NodeCtx| {
                sharded_epoch_prefetch_begin(
                    ctx, model, &config, store, rel, &ds.train, &filter, None, bufs, &mut ring,
                    epoch, batches,
                )
                .expect("single-rank prime cannot crash");
                for b in 0..batches {
                    sharded_batch_step_prefetch(
                        ctx,
                        model,
                        &config,
                        store,
                        rel,
                        rel_opt,
                        &ds.train,
                        &filter,
                        None,
                        bufs,
                        &mut ring,
                        rng,
                        epoch,
                        b,
                        batches,
                        *tick,
                        1.0,
                    )
                    .expect("single-rank batch cannot crash");
                    *tick += 1;
                }
                sharded_epoch_prefetch_drain(ctx, bufs, &mut ring);
                store.flush_epoch();
            };

            // Warm-up epoch: slot tables, wire buffers, the LRU queue all
            // reach steady size.
            epoch_pass(
                0,
                &mut tick,
                &mut store,
                &mut rel,
                rel_opt.as_mut(),
                &mut bufs,
                &mut rng,
                ctx,
            );

            // Steady-state epoch through the full ring cycle.
            let start = alloc_count::snapshot();
            epoch_pass(
                1,
                &mut tick,
                &mut store,
                &mut rel,
                rel_opt.as_mut(),
                &mut bufs,
                &mut rng,
                ctx,
            );
            alloc_count::since(start)
        })
    });

    let delta = deltas[0];
    assert_eq!(
        delta.allocs, 0,
        "steady-state prefetch ring allocated {} times ({} bytes)",
        delta.allocs, delta.bytes
    );
}
