//! Strategy × interconnect × exchange-mode matrix: each of the paper's
//! five strategies (DRS, row selection, quantization, relation partition,
//! sample selection) trains to a finite loss on both an ideal (zero-cost)
//! and a Cray-XC40-like network, in both synchronous and pipelined
//! exchange modes, with a monotone simulated clock and exact wire-level
//! traffic conservation (Σ bytes sent == Σ bytes received across ranks).
//! Pipelining may only hide communication behind compute, so for every
//! cell the pipelined run must not take longer than its synchronous twin.

use kge_compress::quant::QuantScheme;
use kge_data::synth::{generate, SynthConfig};
use kge_train::config::{CommMode, NegSampling, StrategyConfig, TrainConfig};
use kge_train::report::TrainOutcome;
use kge_train::train;
use simgrid::{Cluster, ClusterSpec};

fn dataset() -> kge_data::Dataset {
    generate(&SynthConfig {
        name: "matrix".into(),
        n_entities: 120,
        n_relations: 8,
        n_triples: 1500,
        relation_zipf: 1.0,
        entity_zipf: 0.8,
        noise_frac: 0.05,
        valid_frac: 0.08,
        test_frac: 0.08,
        seed: 23,
    })
}

/// One strategy flag flipped on per entry, against the all-reduce
/// baseline — the paper's ablation axes.
fn strategies() -> Vec<(&'static str, StrategyConfig)> {
    let mut drs = StrategyConfig::baseline_allreduce(2);
    drs.comm = CommMode::Dynamic { check_every: 2 };

    let mut rs = StrategyConfig::baseline_allgather(2);
    rs.row_select = kge_compress::RowSelector::paper_rs();

    let mut quant = StrategyConfig::baseline_allgather(2);
    quant.quant = QuantScheme::paper_one_bit();

    let mut rp = StrategyConfig::baseline_allgather(2);
    rp.relation_partition = true;

    let mut ss = StrategyConfig::baseline_allreduce(2);
    ss.neg = NegSampling::select(1, 4);

    vec![
        ("drs", drs),
        ("row-select", rs),
        ("quantization", quant),
        ("relation-partition", rp),
        ("sample-selection", ss),
    ]
}

/// Map a strategy's collective to its pipelined variant (window 1).
/// Dynamic stays dynamic — DRS probes the pipelined arms on its own.
fn pipelined(mut s: StrategyConfig) -> StrategyConfig {
    s.comm = match s.comm {
        CommMode::AllReduce => CommMode::PipelinedAllReduce { staleness: 1 },
        CommMode::AllGather => CommMode::Pipelined { staleness: 1 },
        other => other,
    };
    s
}

fn run(ds: &kge_data::Dataset, spec: &ClusterSpec, strategy: StrategyConfig) -> TrainOutcome {
    let cluster = Cluster::new(4, spec.clone());
    let mut c = TrainConfig::new(4, 64, strategy);
    c.plateau_tolerance = 3;
    c.max_lr_drops = 1;
    c.max_epochs = 4;
    c.valid_samples = 64;
    c.base_lr = 5e-3;
    train(ds, &cluster, &c)
}

fn assert_invariants(out: &TrainOutcome, tag: &str) {
    let r = &out.report;

    assert_eq!(r.epochs, r.trace.len(), "{tag}");
    assert!(r.epochs > 0, "{tag}");
    assert_eq!(r.surviving_nodes, 4, "{tag}");
    assert_eq!(r.recoveries, 0, "{tag}");
    assert!(r.crashed_ranks.is_empty(), "{tag}");

    // Finite loss everywhere, and the model actually moved.
    for t in &r.trace {
        assert!(t.train_loss.is_finite(), "{tag} epoch {}", t.epoch);
        assert!(t.valid_acc.is_finite(), "{tag} epoch {}", t.epoch);
    }
    assert!(out.entities.as_slice().iter().all(|v| v.is_finite()), "{tag}");

    // Monotone simulated clock: every epoch costs nonnegative time and
    // the total is at least the sum of the parts.
    let mut sum = 0.0;
    for t in &r.trace {
        assert!(t.sim_seconds >= 0.0, "{tag} epoch {}", t.epoch);
        sum += t.sim_seconds;
    }
    assert!(
        r.sim_total_seconds >= sum * (1.0 - 1e-9),
        "{tag}: total {} < epoch sum {sum}",
        r.sim_total_seconds
    );
    // Real networks take real time; ideal networks still charge compute.
    assert!(r.sim_total_seconds > 0.0, "{tag}");

    // Exact wire conservation across all four ranks.
    assert!(r.wire_bytes_sent > 0, "{tag}: nothing communicated?");
    assert_eq!(
        r.wire_bytes_sent, r.wire_bytes_recv,
        "{tag}: wire bytes not conserved"
    );
}

#[test]
fn five_strategies_on_two_interconnects_sync_and_pipelined() {
    let ds = dataset();
    for (spec_name, spec) in [
        ("ideal", ClusterSpec::ideal()),
        ("cray_xc40", ClusterSpec::cray_xc40()),
    ] {
        for (strat_name, strategy) in strategies() {
            let tag = format!("{strat_name}/{spec_name}");
            let sync = run(&ds, &spec, strategy);
            assert_invariants(&sync, &format!("{tag}/sync"));

            let piped = run(&ds, &spec, pipelined(strategy));
            assert_invariants(&piped, &format!("{tag}/pipelined"));

            // Overlap can only hide time, never add it. DRS maps to
            // itself, where the comparison degenerates to equality. The
            // 1% slack covers strategies with stochastic row selection:
            // the pipelined launch draws from a stage-keyed RNG, not the
            // node RNG, so the selected rows (and their flop charges)
            // differ by a hair even though the exchange itself is never
            // dearer.
            assert!(
                piped.report.sim_total_seconds
                    <= sync.report.sim_total_seconds * 1.01,
                "{tag}: pipelined {} slower than synchronous {}",
                piped.report.sim_total_seconds,
                sync.report.sim_total_seconds
            );
        }
    }
}
