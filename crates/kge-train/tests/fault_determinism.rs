//! Fault-free determinism guard: attaching `FaultPlan::none()` must be a
//! perfect no-op. The run with an inert plan is bit-identical — final
//! embeddings and the full TimeBreakdown — to the run with no plan at
//! all, at both 1 and 4 worker threads per simulated node. This pins the
//! inert-plan early-outs in the clock/communicator fault hooks: they may
//! not perturb float arithmetic or time accounting in any way.

use kge_data::synth::{generate, SynthConfig};
use kge_train::{train, StrategyConfig, TrainConfig, TrainOutcome};
use simgrid::{Cluster, ClusterSpec, FaultPlan};

fn dataset() -> kge_data::Dataset {
    generate(&SynthConfig {
        name: "fault-free".into(),
        n_entities: 150,
        n_relations: 10,
        n_triples: 2000,
        relation_zipf: 1.0,
        entity_zipf: 0.8,
        noise_frac: 0.05,
        valid_frac: 0.08,
        test_frac: 0.08,
        seed: 17,
    })
}

fn run(threads: usize, with_none_plan: bool) -> TrainOutcome {
    // The per-node pool honors RAYON_NUM_THREADS (see
    // `trainer::node_pool_threads`); this test is the only one in this
    // binary, so flipping the process-wide variable between runs is safe.
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    let ds = dataset();
    let mut cluster = Cluster::new(2, ClusterSpec::cray_xc40());
    if with_none_plan {
        cluster = cluster.with_fault_plan(FaultPlan::none());
    }
    let mut c = TrainConfig::new(4, 64, StrategyConfig::combined(3));
    c.plateau_tolerance = 3;
    c.max_lr_drops = 1;
    c.max_epochs = 6;
    c.valid_samples = 64;
    c.base_lr = 5e-3;
    let out = train(&ds, &cluster, &c);
    std::env::remove_var("RAYON_NUM_THREADS");
    out
}

#[test]
fn none_plan_run_is_bit_identical_to_no_plan_run() {
    let baseline = run(1, false);
    for (threads, with_plan) in [(1, true), (4, false), (4, true)] {
        let other = run(threads, with_plan);
        let tag = format!("threads={threads} none_plan={with_plan}");
        assert_eq!(
            baseline.entities.as_slice(),
            other.entities.as_slice(),
            "{tag}: entities diverged"
        );
        assert_eq!(
            baseline.relations.as_slice(),
            other.relations.as_slice(),
            "{tag}: relations diverged"
        );
        assert_eq!(
            baseline.report.breakdown, other.report.breakdown,
            "{tag}: TimeBreakdown diverged"
        );
        assert_eq!(
            baseline.report.sim_total_seconds.to_bits(),
            other.report.sim_total_seconds.to_bits(),
            "{tag}: simulated clock diverged"
        );
        assert_eq!(baseline.report.epochs, other.report.epochs, "{tag}");
        assert_eq!(baseline.report.recoveries, 0, "{tag}");
        assert!(other.report.crashed_ranks.is_empty(), "{tag}");
        assert_eq!(
            baseline.report.wire_bytes_sent, other.report.wire_bytes_sent,
            "{tag}: wire traffic diverged"
        );
    }
}
