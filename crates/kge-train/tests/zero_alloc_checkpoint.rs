//! Zero-allocation regression test for the periodic-checkpoint path.
//!
//! The trainer checkpoints through three pooled buffers (the byte sink,
//! the residual-id scratch, and the traffic export scratch) that live for
//! the whole run. After one warm-up encode has grown every pool to its
//! high-water mark, further checkpoints of evolving state — mutated model
//! rows, advanced optimizer clocks, new residuals of the same shape,
//! longer RNG streams — must perform **zero** heap allocations: a
//! steady-state epoch with `checkpoint_every` set pays serialization CPU
//! and the modeled clock charge, never allocator traffic. (Writing the
//! bytes to disk goes through `std::fs` and is outside the guarantee, as
//! is a checkpoint whose state outgrew the pools.)

#[global_allocator]
static ALLOC: kge_core::alloc_count::CountingAlloc = kge_core::alloc_count::CountingAlloc;

use kge_compress::ResidualStore;
use kge_core::{alloc_count, EmbeddingTable, OptimStateView};
use kge_train::checkpoint::{encode_into, CheckpointView, Tallies};
use kge_train::comm_select::{CommChoice, SelectorSnapshot};
use kge_train::lr::PlateauSnapshot;
use kge_train::report::EpochTrace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simgrid::{Collective, TimeBreakdown};

#[test]
fn steady_state_checkpoint_encoding_allocates_nothing() {
    let dim = 64usize;
    let n_ent = 300usize;
    let n_rel = 12usize;
    let mut rng = StdRng::seed_from_u64(17);
    let mut ent = EmbeddingTable::xavier(n_ent, dim, &mut rng);
    let rel = EmbeddingTable::xavier(n_rel, dim, &mut rng);
    let m = vec![0.25f32; n_ent * dim];
    let v = vec![0.5f32; n_ent * dim];
    let row_t = vec![7u32; n_ent];
    let accum = vec![1.5f32; n_rel * dim];
    let mut ent_residual = ResidualStore::new();
    let residual_row = vec![0.125f32; dim];
    for row in (0..n_ent).step_by(3) {
        ent_residual.set_row(row as u32, &residual_row);
    }
    let rel_residual = ResidualStore::new();
    let tallies = Tallies {
        allreduce_epochs: 9,
        allgather_epochs: 3,
        pipelined_epochs: 2,
        recoveries: 0,
        rejoins: 0,
        checkpoints_written: 4,
        crashed_ranks: Vec::new(),
    };
    let trace: Vec<EpochTrace> = (0..12)
        .map(|e| EpochTrace {
            epoch: e,
            sim_seconds: e as f64 * 1.5,
            comm: CommChoice::AllGather,
            valid_acc: 0.5,
            train_loss: 0.75,
            lr_scale: 2.0,
            mean_nonzero_rows: 80.0,
            mean_rows_sent: 60.0,
            rs_sparsity: 0.25,
            bytes_sent: 1 << 20,
            ranking: None,
        })
        .collect();
    let traffic = vec![
        (Collective::AllGatherV, [12, 4096, 8192, 2048, 2048, 2]),
        (Collective::Barrier, [24, 0, 0, 0, 0, 0]),
    ];
    let p2p_seq = vec![0u64; 4];

    // The trainer's pooled buffers.
    let mut buf: Vec<u8> = Vec::new();
    let mut ids: Vec<u32> = Vec::new();
    let mut traffic_scratch: Vec<(Collective, [u64; 6])> = Vec::new();

    let encode = |epoch: usize,
                      ent: &EmbeddingTable,
                      buf: &mut Vec<u8>,
                      ids: &mut Vec<u32>,
                      traffic_scratch: &mut Vec<(Collective, [u64; 6])>| {
        traffic_scratch.clear();
        traffic_scratch.extend_from_slice(&traffic);
        let view = CheckpointView {
            world_size: 4,
            rank: 1,
            next_epoch: epoch,
            seed: 42,
            ent,
            rel: &rel,
            ent_opt: OptimStateView::Adam {
                m: &m,
                v: &v,
                t: epoch as u64,
                row_t: &row_t,
            },
            rel_opt: OptimStateView::Adagrad { accum: &accum },
            ent_residual: &ent_residual,
            rel_residual: &rel_residual,
            rng_state: 0x9E37 ^ epoch as u64,
            schedule: PlateauSnapshot {
                node_scale: 4.0,
                decay_scale: 1.0,
                decay: 0.1,
                tolerance: 15,
                max_drops: 2,
                drops: 0,
                best: 0.5,
                since_best: epoch as u64 % 3,
                converged: false,
            },
            selector: Some(SelectorSnapshot {
                state: 0,
                arm: CommChoice::AllReduce,
                check_every: 10,
                epoch: epoch as u64,
                last_allreduce_time: Some(1.5),
                gather_time: 2.5,
            }),
            tallies: &tallies,
            trace: &trace,
            clock_now_s: epoch as f64 * 2.25,
            breakdown: TimeBreakdown::default(),
            traffic: &*traffic_scratch,
            coll_seq: epoch as u64 * 3,
            p2p_seq: &p2p_seq,
        };
        encode_into(&view, ids, buf);
    };

    // Warm-up: pools grow to their high-water marks.
    encode(1, &ent, &mut buf, &mut ids, &mut traffic_scratch);
    let warm_len = buf.len();
    assert!(warm_len > 0);

    // Steady state: evolving values, identical shapes — zero allocations.
    // The counters are process-global, so libtest's own helper threads can
    // inject a stray allocation; a real leak in the encode path would fire
    // on every pass, so one clean pass out of five proves the path clean.
    let mut last = alloc_count::AllocSnapshot {
        allocs: u64::MAX,
        deallocs: 0,
        bytes: 0,
    };
    let mut clean = false;
    for attempt in 0..5 {
        let start = alloc_count::snapshot();
        for epoch in 2..8 {
            ent.as_mut_slice()[attempt * 8 + epoch] += 0.0625;
            encode(epoch, &ent, &mut buf, &mut ids, &mut traffic_scratch);
            assert_eq!(buf.len(), warm_len, "same shapes must encode to same size");
        }
        last = alloc_count::since(start);
        if last.allocs == 0 {
            clean = true;
            break;
        }
    }
    assert!(
        clean,
        "steady-state checkpoint encode allocated {} times ({} bytes) on every attempt",
        last.allocs, last.bytes
    );
}
