//! Zero-allocation regression test for the steady-state training hot
//! path (ISSUE: fused batched kernels + fully reused buffers).
//!
//! Installs the counting global allocator from `kge-core` and drives the
//! exact batch pipeline the trainer runs — fused block-kernel gradient
//! computation, row selection, the all-reduce *and* all-gather exchanges
//! (with and without 1-bit quantization), and the optimizer step — on a
//! single-rank cluster with a single-thread worker pool. After one full
//! warm-up pass over every batch, a second pass over the same batches
//! must perform **zero** heap allocations: every arena, wire buffer,
//! sparse slab, and optimizer structure is reused.
//!
//! Scope: the guarantee is per-rank and single-thread. Multi-rank runs
//! move bytes through channels and multi-thread pools spawn workers, both
//! of which allocate outside the kernel path by construction (see
//! DESIGN.md).

#[global_allocator]
static ALLOC: kge_core::alloc_count::CountingAlloc = kge_core::alloc_count::CountingAlloc;

use kge_compress::row_select::select_rows;
use kge_compress::QuantScheme;
use kge_core::alloc_count;
use kge_train::exchange::{exchange_allgather_into, exchange_allreduce, GatherBufs};
use kge_train::{BatchWorkspace, StrategyConfig, TrainConfig};
use kge_core::SparseGrad;
use kge_data::synth::{generate, SynthConfig};
use kge_data::FilterIndex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simgrid::{Cluster, ClusterSpec};

#[test]
fn steady_state_batch_loop_allocates_nothing() {
    let ds = generate(&SynthConfig {
        name: "alloc-probe".into(),
        n_entities: 300,
        n_relations: 12,
        n_triples: 3000,
        relation_zipf: 1.0,
        entity_zipf: 0.8,
        noise_frac: 0.05,
        valid_frac: 0.05,
        test_frac: 0.05,
        seed: 9,
    });
    let config = TrainConfig::new(4, 256, StrategyConfig::baseline_allreduce(2));

    let deltas = Cluster::new(1, ClusterSpec::cray_xc40()).run(|ctx| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("single-thread pool");
        pool.install(|| {
            let model = config.model.build(config.rank);
            let model = model.as_ref();
            let dim = model.storage_dim();
            let filter = FilterIndex::build(&ds);
            let mut init_rng = StdRng::seed_from_u64(config.seed);
            let mut ent = kge_core::EmbeddingTable::xavier(ds.n_entities, dim, &mut init_rng);
            let mut rel = kge_core::EmbeddingTable::xavier(ds.n_relations, dim, &mut init_rng);
            let mut ent_opt = config.optimizer.build(config.base_lr, ds.n_entities, dim);
            let mut rel_opt = config.optimizer.build(config.base_lr, ds.n_relations, dim);
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5DEECE66D);
            let mut ws = BatchWorkspace::new(dim);
            // One wire-buffer set per scheme, like a real run (the
            // trainer's scheme is fixed; a shared buffer would rebuild
            // the quantized-row variant on every switch).
            let mut gather = [GatherBufs::new(), GatherBufs::new()];
            let mut agg = SparseGrad::new(dim);
            let mut dense_ent = vec![0.0f32; ds.n_entities * dim];
            let mut dense_rel = vec![0.0f32; ds.n_relations * dim];
            let batches = ds.train.len().div_ceil(config.batch_size);

            // One epoch = every batch through all three exchange flavors,
            // so each pass exercises identical code and buffer shapes.
            let epoch = |ent: &mut kge_core::EmbeddingTable,
                             rel: &mut kge_core::EmbeddingTable,
                             ws: &mut BatchWorkspace,
                             rng: &mut StdRng,
                             gather: &mut [GatherBufs; 2],
                             agg: &mut SparseGrad,
                             dense_ent: &mut Vec<f32>,
                             dense_rel: &mut Vec<f32>,
                             ent_opt: &mut dyn kge_core::RowOptimizer,
                             rel_opt: &mut dyn kge_core::RowOptimizer,
                             ctx: &mut simgrid::NodeCtx| {
                for b in 0..batches {
                    ws.batch_gradients_into(
                        model, ent, rel, &ds.train, b, &config, &filter, None, 0, 0,
                    );
                    select_rows(config.strategy.row_select, ws.ent_grad_mut(), rng);

                    // All-reduce flavor: dense wire buffer + dense step.
                    exchange_allreduce(ctx.comm_mut(), ws.ent_grad(), dense_ent)
                        .expect("allreduce");
                    ent_opt.step_dense(ent, dense_ent, 1.0);

                    // All-gather flavors: f32 and 1-bit quantized wire
                    // rows into the reused gather buffers + sparse agg,
                    // then a lazy (row-sparse) step.
                    for (i, scheme) in [QuantScheme::None, QuantScheme::paper_one_bit()]
                        .into_iter()
                        .enumerate()
                    {
                        ws.ent_grad_mut().ensure_sorted();
                        exchange_allgather_into(
                            ctx.comm_mut(),
                            ws.ent_grad(),
                            dim,
                            scheme,
                            None,
                            rng,
                            &mut gather[i],
                            agg,
                        )
                        .expect("allgather");
                        agg.ensure_sorted();
                        ent_opt.step_lazy(ent, agg, 1.0);
                    }

                    exchange_allreduce(ctx.comm_mut(), ws.rel_grad(), dense_rel)
                        .expect("rel allreduce");
                    rel_opt.step_dense(rel, dense_rel, 1.0);
                }
            };

            // Warm-up pass: allowed (and expected) to allocate.
            epoch(
                &mut ent,
                &mut rel,
                &mut ws,
                &mut rng,
                &mut gather,
                &mut agg,
                &mut dense_ent,
                &mut dense_rel,
                ent_opt.as_mut(),
                rel_opt.as_mut(),
                ctx,
            );

            // Steady-state pass: every buffer must be reused.
            let start = alloc_count::snapshot();
            epoch(
                &mut ent,
                &mut rel,
                &mut ws,
                &mut rng,
                &mut gather,
                &mut agg,
                &mut dense_ent,
                &mut dense_rel,
                ent_opt.as_mut(),
                rel_opt.as_mut(),
                ctx,
            );
            alloc_count::since(start)
        })
    });

    let delta = deltas[0];
    assert_eq!(
        delta.allocs, 0,
        "steady-state batch loop allocated {} times ({} bytes)",
        delta.allocs, delta.bytes
    );
}
