//! Gradient exchange: the communication step of one training batch.
//!
//! Two paths, matching the paper's baseline taxonomy (§3.4):
//!
//! - **Dense all-reduce**: the local row-sparse gradient is scattered into
//!   a dense `rows × dim` matrix (zeros included) and sum-all-reduced.
//!   Quantization does not apply here — signs cannot be summed — which is
//!   exactly why the paper's quantization benefits show up on the gather
//!   path and why DRS picks all-gather more often once quantization is on.
//! - **Sparse all-gather**: the non-zero rows (after row selection) are
//!   encoded — raw `f32`, 1-bit or 2-bit — into a byte payload, gathered
//!   from every rank, decoded, and summed locally.
//!
//! Both paths return the aggregated gradient **averaged** over ranks.

use kge_compress::codec::{RowDecoder, RowEncoder};
use kge_compress::quant::{quantize_row_into, QuantScheme, QuantizedRow};
use kge_compress::{ResidualStore, WireFormat};
use kge_core::SparseGrad;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simgrid::{Communicator, OverlapStats, SimError};

use crate::splitmix64;

/// Aggregated gradient, shaped by the path that produced it.
#[derive(Debug, Clone)]
pub enum AggGrad {
    /// Dense `rows × dim` buffer (all-reduce path).
    Dense(Vec<f32>),
    /// Row-sparse gradient (all-gather path).
    Sparse(SparseGrad),
}

impl AggGrad {
    /// View as sparse, converting a dense buffer by extracting rows with
    /// any non-zero entry (used when the optimizer runs in lazy style).
    pub fn into_sparse(self, dim: usize) -> SparseGrad {
        match self {
            AggGrad::Sparse(g) => g,
            AggGrad::Dense(buf) => {
                let mut g = SparseGrad::new(dim);
                for (row, chunk) in buf.chunks(dim).enumerate() {
                    if chunk.iter().any(|&x| x != 0.0) {
                        g.row_mut(row as u32).copy_from_slice(chunk);
                    }
                }
                g
            }
        }
    }
}

/// Statistics of one exchange.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExchangeStats {
    /// Bytes this rank contributed.
    pub bytes_sent: usize,
    /// Rows this rank contributed (post-selection).
    pub rows_sent: usize,
    /// Total rows gathered across ranks (gather path only).
    pub rows_gathered: usize,
}

/// Dense all-reduce of `grad` scattered over a reusable `dense` buffer of
/// `rows × dim` floats. Returns the rank-averaged dense gradient in
/// `dense` and the stats.
pub fn exchange_allreduce(
    comm: &mut Communicator,
    grad: &SparseGrad,
    dense: &mut [f32],
) -> Result<ExchangeStats, SimError> {
    dense.fill(0.0);
    grad.scatter_into(dense);
    comm.allreduce_sum_f32(dense)?;
    let inv = 1.0 / comm.size() as f32;
    for v in dense.iter_mut() {
        *v *= inv;
    }
    Ok(ExchangeStats {
        bytes_sent: std::mem::size_of_val(dense),
        rows_sent: grad.nnz(),
        rows_gathered: 0,
    })
}

/// Reusable buffers for the all-gather path: the encoded send payload, the
/// flat receive buffer, per-rank byte counts, one quantization scratch row
/// and one dequantize scratch row (error feedback). One per worker; after
/// the first batch has sized them the steady state allocates nothing.
#[derive(Debug, Clone)]
pub struct GatherBufs {
    send: Vec<u8>,
    recv: Vec<u8>,
    counts: Vec<usize>,
    qrow: QuantizedRow,
    dequant: Vec<f32>,
}

impl GatherBufs {
    pub fn new() -> Self {
        GatherBufs {
            send: Vec::new(),
            recv: Vec::new(),
            counts: Vec::new(),
            qrow: QuantizedRow::Full(Vec::new()),
            dequant: Vec::new(),
        }
    }
}

impl Default for GatherBufs {
    fn default() -> Self {
        Self::new()
    }
}

/// Sparse all-gather of `grad` rows under `scheme`.
///
/// Test-only convenience wrapper over [`exchange_allgather_into`] that
/// allocates the wire buffers and aggregate per call; every non-test call
/// site keeps a [`GatherBufs`] and an aggregate [`SparseGrad`] per worker
/// and uses the `_into` variant, which allocates nothing in steady state.
#[cfg(test)]
pub fn exchange_allgather(
    comm: &mut Communicator,
    grad: &SparseGrad,
    dim: usize,
    scheme: QuantScheme,
    residuals: Option<&mut ResidualStore>,
    rng: &mut StdRng,
) -> Result<(SparseGrad, ExchangeStats), SimError> {
    let mut bufs = GatherBufs::new();
    let mut agg = SparseGrad::new(dim);
    let stats = exchange_allgather_into(comm, grad, dim, scheme, residuals, rng, &mut bufs, &mut agg)?;
    Ok((agg, stats))
}

/// Sparse all-gather of `grad` rows under `scheme`, reusing `bufs` for
/// every intermediate and writing the rank-averaged aggregate into `agg`
/// (cleared first; capacity kept).
///
/// Rows are quantized and encoded in one fused pass in sorted row order
/// straight into the reusable send buffer, and peers' payloads are decoded
/// and accumulated straight out of the receive buffer via borrowed row
/// views — no intermediate `QuantizedRow`s or payload vectors. Only the
/// stochastic 2-bit scheme consumes randomness: one base value drawn from
/// the node stream seeds an independent per-row stream, so results are
/// identical at any thread count and the caller's RNG trajectory does not
/// depend on the row count. Wire bytes are identical to the allocating
/// path, so simulated time and traffic are unchanged.
///
/// When `scheme` quantizes and `residuals` is provided, the quantization
/// error of every transmitted row is accumulated as error feedback
/// (Karimireddy-style); the caller is responsible for having added the
/// previous residuals into `grad` *before* row selection.
#[allow(clippy::too_many_arguments)]
pub fn exchange_allgather_into(
    comm: &mut Communicator,
    grad: &SparseGrad,
    dim: usize,
    scheme: QuantScheme,
    residuals: Option<&mut ResidualStore>,
    rng: &mut StdRng,
    bufs: &mut GatherBufs,
    agg: &mut SparseGrad,
) -> Result<ExchangeStats, SimError> {
    let mut stats = encode_gather_payload(grad, dim, scheme, residuals, rng, bufs);
    stats.rows_gathered = complete_gather_exchange(comm, dim, bufs, agg)?;
    Ok(stats)
}

/// Quantize + encode `grad`'s rows into `bufs.send` — the local half of a
/// sparse all-gather, with no communication. Returns the stats of the
/// staged payload (`rows_gathered` still 0). The bytes produced are
/// exactly what [`exchange_allgather_into`] would put on the wire; the
/// pipelined path stages them in a [`PipelineSlot`] at launch and runs
/// the collective later via [`complete_gather_exchange_overlapped`].
pub fn encode_gather_payload(
    grad: &SparseGrad,
    dim: usize,
    scheme: QuantScheme,
    mut residuals: Option<&mut ResidualStore>,
    rng: &mut StdRng,
    bufs: &mut GatherBufs,
) -> ExchangeStats {
    let format = wire_format(scheme);
    let base: u64 = if matches!(scheme, QuantScheme::TwoBit) {
        rng.gen()
    } else {
        0
    };
    let record = residuals.is_some() && !matches!(scheme, QuantScheme::None);
    if record {
        bufs.dequant.resize(dim, 0.0);
    }
    let mut enc = RowEncoder::new(format, dim, &mut bufs.send);
    let mut rows_sent = 0usize;
    if let QuantScheme::OneBit { rule } = scheme {
        // Packed fast path: 1-bit rows quantize straight into the wire
        // format (SIMD scales + movemask sign packing, no intermediate
        // sign vec or per-row RNG — OneBit draws nothing from its
        // stream). Bytes, scales and recorded residuals are bit-identical
        // to the generic loop below.
        for (row, g) in grad.iter_sorted() {
            let (pos, neg) = enc
                .push_one_bit(row, g, rule)
                .expect("encode of freshly quantized row");
            if record {
                let store = residuals.as_deref_mut().expect("record implies Some");
                kge_compress::one_bit_dequantize_from(g, pos, neg, &mut bufs.dequant);
                store.record_row_error(row, g, &bufs.dequant);
            }
            rows_sent += 1;
        }
    } else {
        for (row, g) in grad.iter_sorted() {
            let mut row_rng = StdRng::seed_from_u64(base ^ splitmix64(row as u64 + 1));
            quantize_row_into(scheme, g, &mut row_rng, &mut bufs.qrow);
            if record {
                let store = residuals.as_deref_mut().expect("record implies Some");
                bufs.qrow.dequantize_into(&mut bufs.dequant);
                store.record_row_error(row, g, &bufs.dequant);
            }
            enc.push(row, &bufs.qrow)
                .expect("encode of freshly quantized row");
            rows_sent += 1;
        }
    }
    let bytes_sent = enc.finish();
    ExchangeStats {
        bytes_sent,
        rows_sent,
        rows_gathered: 0,
    }
}

/// Run the collective + decode half of a sparse all-gather over a payload
/// staged in `bufs.send` by [`encode_gather_payload`]. Returns the total
/// rows gathered. `agg` receives the rank-averaged aggregate.
pub fn complete_gather_exchange(
    comm: &mut Communicator,
    dim: usize,
    bufs: &mut GatherBufs,
    agg: &mut SparseGrad,
) -> Result<usize, SimError> {
    comm.allgatherv_bytes_into(&bufs.send, &mut bufs.recv, &mut bufs.counts)?;
    Ok(decode_gathered(comm.size(), dim, bufs, agg))
}

/// [`complete_gather_exchange`] priced as an overlapped collective that
/// was launched at simulated time `anchor_s` (see
/// [`Communicator::allgatherv_bytes_overlapped_into`]). Payload bytes and
/// the decoded aggregate are bit-identical to the synchronous completion.
pub fn complete_gather_exchange_overlapped(
    comm: &mut Communicator,
    dim: usize,
    bufs: &mut GatherBufs,
    agg: &mut SparseGrad,
    anchor_s: f64,
) -> Result<(usize, OverlapStats), SimError> {
    let overlap =
        comm.allgatherv_bytes_overlapped_into(&bufs.send, &mut bufs.recv, &mut bufs.counts, anchor_s)?;
    Ok((decode_gathered(comm.size(), dim, bufs, agg), overlap))
}

/// Decode and sum every rank's payload in rank order, so overlapping rows
/// accumulate deterministically; `agg` ends rank-averaged.
fn decode_gathered(size: usize, dim: usize, bufs: &mut GatherBufs, agg: &mut SparseGrad) -> usize {
    agg.clear();
    let mut rows_gathered = 0usize;
    let mut off = 0usize;
    for &c in &bufs.counts {
        let mut dec = RowDecoder::new(&bufs.recv[off..off + c])
            .expect("peer payload encoded by the same code");
        debug_assert_eq!(dec.dim(), dim);
        off += c;
        while let Some(r) = dec.next_row() {
            let r = r.expect("peer payload encoded by the same code");
            rows_gathered += 1;
            let row = r.row;
            r.add_into(agg.row_mut(row));
        }
    }
    agg.scale(1.0 / size as f32);
    rows_gathered
}

/// Scatter `grad` into a reusable dense buffer of `len` floats — the
/// local half of a dense all-reduce, with no communication. The pipelined
/// path stages this in a [`PipelineSlot`] at launch and completes it
/// later with [`complete_allreduce_overlapped`].
pub fn stage_allreduce_payload(
    grad: &SparseGrad,
    dense: &mut Vec<f32>,
    len: usize,
) -> ExchangeStats {
    dense.resize(len, 0.0);
    dense.fill(0.0);
    grad.scatter_into(dense);
    ExchangeStats {
        bytes_sent: len * std::mem::size_of::<f32>(),
        rows_sent: grad.nnz(),
        rows_gathered: 0,
    }
}

/// All-reduce + rank-average a payload staged by
/// [`stage_allreduce_payload`], priced as an overlapped collective
/// launched at simulated time `anchor_s`. Numerics match
/// [`exchange_allreduce`] bit-exactly.
pub fn complete_allreduce_overlapped(
    comm: &mut Communicator,
    dense: &mut [f32],
    anchor_s: f64,
) -> Result<OverlapStats, SimError> {
    let overlap = comm.allreduce_sum_f32_overlapped(dense, anchor_s)?;
    let inv = 1.0 / comm.size() as f32;
    for v in dense.iter_mut() {
        *v *= inv;
    }
    Ok(overlap)
}

/// One in-flight exchange of the pipelined trainer: the staged wire
/// payload (encoded gather bytes or scattered dense buffer) for the
/// entity table and — when relation partitioning is off — the relation
/// table, plus the launch anchor the overlapped pricing needs. Each slot
/// owns its buffers, so batch N's payload survives while batch N+1
/// encodes into the next slot; a ring of `staleness` slots double-buffers
/// the whole pipeline with zero steady-state allocation.
#[derive(Debug, Clone, Default)]
pub struct PipelineSlot {
    /// Gather-path wire buffers for the entity table.
    pub ent_gather: GatherBufs,
    /// Gather-path wire buffers for the relation table.
    pub rel_gather: GatherBufs,
    /// Dense all-reduce payload for the entity table.
    pub ent_dense: Vec<f32>,
    /// Dense all-reduce payload for the relation table.
    pub rel_dense: Vec<f32>,
    /// Simulated time at which this exchange was launched.
    pub anchor_s: f64,
    /// Batch index the staged gradients belong to (diagnostics).
    pub batch: usize,
    /// Stats of the staged entity payload (completed at drain time).
    pub ent_stats: ExchangeStats,
    /// Stats of the staged relation payload.
    pub rel_stats: ExchangeStats,
}

/// Wire format implied by a quantization scheme.
pub fn wire_format(scheme: QuantScheme) -> WireFormat {
    match scheme {
        QuantScheme::None => WireFormat::F32,
        QuantScheme::OneBit { rule } => WireFormat::OneBit {
            two_scales: matches!(
                rule,
                kge_compress::ScaleRule::PosNegMax | kge_compress::ScaleRule::PosNegAvg
            ),
        },
        QuantScheme::TwoBit => WireFormat::TwoBit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use simgrid::{Cluster, ClusterSpec};

    fn local_grad(rank: usize, dim: usize) -> SparseGrad {
        let mut g = SparseGrad::new(dim);
        // Rank r contributes rows r and 10+r plus a shared row 5.
        for row in [rank as u32, 10 + rank as u32, 5] {
            for (k, v) in g.row_mut(row).iter_mut().enumerate() {
                *v = (rank + 1) as f32 * 0.1 + k as f32;
            }
        }
        g
    }

    #[test]
    fn allreduce_averages_dense() {
        let cluster = Cluster::new(4, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            let g = local_grad(ctx.rank(), 2);
            let mut dense = vec![0.0f32; 16 * 2];
            let stats = exchange_allreduce(ctx.comm_mut(), &g, &mut dense).unwrap();
            (dense, stats.bytes_sent)
        });
        // Shared row 5: sum over ranks of (r+1)*0.1 + k, divided by 4.
        let expect_5_0: f32 = (1..=4).map(|r| r as f32 * 0.1).sum::<f32>() / 4.0;
        for (dense, bytes) in &out {
            assert!((dense[5 * 2] - expect_5_0).abs() < 1e-6);
            assert_eq!(*bytes, 16 * 2 * 4);
        }
        // All replicas identical.
        for (dense, _) in &out[1..] {
            assert_eq!(dense, &out[0].0);
        }
    }

    #[test]
    fn allgather_f32_matches_allreduce() {
        let cluster = Cluster::new(3, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            let g = local_grad(ctx.rank(), 4);
            let mut dense = vec![0.0f32; 16 * 4];
            exchange_allreduce(ctx.comm_mut(), &g, &mut dense).unwrap();

            let g = local_grad(ctx.rank(), 4);
            let mut rng = StdRng::seed_from_u64(0);
            let (sparse, stats) =
                exchange_allgather(ctx.comm_mut(), &g, 4, QuantScheme::None, None, &mut rng)
                    .unwrap();
            (dense, sparse.to_dense(16), stats)
        });
        for (dense, sparse_dense, stats) in out {
            for (a, b) in dense.iter().zip(&sparse_dense) {
                assert!((a - b).abs() < 1e-6, "paths must agree: {a} vs {b}");
            }
            assert_eq!(stats.rows_sent, 3);
            assert_eq!(stats.rows_gathered, 9);
            assert!(stats.bytes_sent > 0);
        }
    }

    #[test]
    fn quantized_gather_is_smaller_and_sign_faithful() {
        let cluster = Cluster::new(2, ClusterSpec::cray_xc40());
        let dim = 32;
        let out = cluster.run(|ctx| {
            let mut g = SparseGrad::new(dim);
            for (k, v) in g.row_mut(7).iter_mut().enumerate() {
                *v = if k % 2 == 0 { 0.5 } else { -0.5 };
            }
            let mut rng = StdRng::seed_from_u64(1);
            let (f32_agg, f32_stats) =
                exchange_allgather(ctx.comm_mut(), &g, dim, QuantScheme::None, None, &mut rng)
                    .unwrap();
            let (q_agg, q_stats) = exchange_allgather(
                ctx.comm_mut(),
                &g,
                dim,
                QuantScheme::paper_one_bit(),
                None,
                &mut rng,
            )
            .unwrap();
            (f32_agg, f32_stats, q_agg, q_stats)
        });
        for (f32_agg, f32_stats, q_agg, q_stats) in out {
            assert!(q_stats.bytes_sent * 4 < f32_stats.bytes_sent);
            // Same magnitude everywhere (|v| constant ⇒ max == |v|), so the
            // quantized aggregate is exact here.
            let a = f32_agg.get(7).unwrap();
            let b = q_agg.get(7).unwrap();
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn error_feedback_records_quantization_error() {
        let cluster = Cluster::new(1, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            let mut g = SparseGrad::new(2);
            g.row_mut(0).copy_from_slice(&[1.0, -0.25]);
            let mut store = ResidualStore::new();
            let mut rng = StdRng::seed_from_u64(0);
            let _ = exchange_allgather(
                ctx.comm_mut(),
                &g,
                2,
                QuantScheme::paper_one_bit(),
                Some(&mut store),
                &mut rng,
            )
            .unwrap();
            // Sent [1, -1]; error = original − sent = [0, 0.75].
            let mut next = SparseGrad::new(2);
            next.row_mut(0); // touch row 0 so the residual re-enters
            store.add_into(&mut next);
            next.get(0).unwrap().to_vec()
        });
        assert!((out[0][0] - 0.0).abs() < 1e-6);
        assert!((out[0][1] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn allgather_into_reuses_buffers_and_matches_allocating_path() {
        let cluster = Cluster::new(2, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            let mut results = Vec::new();
            // One set of buffers reused across schemes and calls.
            let mut bufs = GatherBufs::new();
            let mut agg = SparseGrad::new(4);
            for scheme in [
                QuantScheme::None,
                QuantScheme::paper_one_bit(),
                QuantScheme::TwoBit,
            ] {
                let mut g = local_grad(ctx.rank(), 4);
                g.ensure_sorted();
                let mut rng_a = StdRng::seed_from_u64(3);
                let mut rng_b = StdRng::seed_from_u64(3);
                let (fresh, fresh_stats) =
                    exchange_allgather(ctx.comm_mut(), &g, 4, scheme, None, &mut rng_a).unwrap();
                let stats = exchange_allgather_into(
                    ctx.comm_mut(),
                    &g,
                    4,
                    scheme,
                    None,
                    &mut rng_b,
                    &mut bufs,
                    &mut agg,
                )
                .unwrap();
                results.push((
                    fresh.to_dense(16),
                    agg.to_dense(16),
                    fresh_stats.bytes_sent,
                    stats.bytes_sent,
                ));
            }
            results
        });
        for per_rank in out {
            for (fresh, reused, fresh_bytes, reused_bytes) in per_rank {
                assert_eq!(fresh, reused, "aggregates must be bit-identical");
                assert_eq!(fresh_bytes, reused_bytes, "wire bytes must match");
            }
        }
    }

    #[test]
    fn staged_encode_plus_overlapped_complete_matches_fused_path() {
        let cluster = Cluster::new(3, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            let mut results = Vec::new();
            let mut slot = PipelineSlot::default();
            let mut agg = SparseGrad::new(4);
            let mut bufs = GatherBufs::new();
            let mut agg_ref = SparseGrad::new(4);
            for scheme in [
                QuantScheme::None,
                QuantScheme::paper_one_bit(),
                QuantScheme::TwoBit,
            ] {
                let mut g = local_grad(ctx.rank(), 4);
                g.ensure_sorted();
                let mut rng_a = StdRng::seed_from_u64(9);
                let mut rng_b = StdRng::seed_from_u64(9);
                let ref_stats = exchange_allgather_into(
                    ctx.comm_mut(),
                    &g,
                    4,
                    scheme,
                    None,
                    &mut rng_a,
                    &mut bufs,
                    &mut agg_ref,
                )
                .unwrap();
                // Staged path: encode at "launch", complete later as an
                // overlapped collective.
                slot.anchor_s = ctx.comm().clock().now_s();
                let mut stats =
                    encode_gather_payload(&g, 4, scheme, None, &mut rng_b, &mut slot.ent_gather);
                let (gathered, overlap) = complete_gather_exchange_overlapped(
                    ctx.comm_mut(),
                    4,
                    &mut slot.ent_gather,
                    &mut agg,
                    slot.anchor_s,
                )
                .unwrap();
                stats.rows_gathered = gathered;
                assert!(overlap.hidden_s >= 0.0 && overlap.visible_s >= 0.0);
                results.push((
                    agg_ref.to_dense(16),
                    agg.to_dense(16),
                    ref_stats.bytes_sent,
                    stats.bytes_sent,
                    ref_stats.rows_gathered,
                    stats.rows_gathered,
                ));
            }
            results
        });
        for per_rank in out {
            for (a, b, ab, bb, ag, bg) in per_rank {
                assert_eq!(a, b, "aggregates must be bit-identical");
                assert_eq!(ab, bb, "wire bytes must match");
                assert_eq!(ag, bg, "gathered row counts must match");
            }
        }
    }

    #[test]
    fn staged_allreduce_matches_synchronous_path() {
        let cluster = Cluster::new(4, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            let g = local_grad(ctx.rank(), 2);
            let mut dense = vec![0.0f32; 16 * 2];
            let ref_stats = exchange_allreduce(ctx.comm_mut(), &g, &mut dense).unwrap();

            let mut staged = Vec::new();
            let anchor = ctx.comm().clock().now_s();
            let stats = stage_allreduce_payload(&g, &mut staged, 16 * 2);
            let overlap =
                complete_allreduce_overlapped(ctx.comm_mut(), &mut staged, anchor).unwrap();
            assert_eq!(stats.bytes_sent, ref_stats.bytes_sent);
            assert_eq!(stats.rows_sent, ref_stats.rows_sent);
            assert_eq!(overlap.window_s, 0.0, "no compute between launch/complete");
            (dense, staged)
        });
        for (dense, staged) in out {
            assert_eq!(dense, staged, "staged all-reduce must be bit-identical");
        }
    }

    #[test]
    fn into_sparse_extracts_nonzero_rows() {
        let dense = AggGrad::Dense(vec![0.0, 0.0, 1.0, 2.0, 0.0, 0.0]);
        let sparse = dense.into_sparse(2);
        assert_eq!(sparse.nnz(), 1);
        assert_eq!(sparse.get(1).unwrap(), &[1.0, 2.0]);
    }

    #[test]
    fn wire_format_mapping() {
        use kge_compress::ScaleRule;
        assert_eq!(wire_format(QuantScheme::None), WireFormat::F32);
        assert_eq!(
            wire_format(QuantScheme::paper_one_bit()),
            WireFormat::OneBit { two_scales: false }
        );
        assert_eq!(
            wire_format(QuantScheme::OneBit {
                rule: ScaleRule::PosNegAvg
            }),
            WireFormat::OneBit { two_scales: true }
        );
        assert_eq!(wire_format(QuantScheme::TwoBit), WireFormat::TwoBit);
    }
}
