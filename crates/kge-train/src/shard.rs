//! Partitioned entity storage with hot/cold tiering — the sharded
//! trainer.
//!
//! The replica trainer keeps the full entity table on every rank, which
//! caps the trainable graph at single-node memory. This module breaks
//! that wall: each entity row is *resident only on its owner rank*
//! (ownership derived from the same `partition_for` distribution the
//! trainer shards triples with), batches **pull** the deduplicated union
//! of rows they touch from owners over priced `ShardPull` point-to-point
//! messages, and row-sparse gradients are **pushed** back to owners over
//! `ShardPush` for the lazy Adam step. On top sits a capacity-bounded,
//! *globally consistent* cache of high-degree rows replicated on every
//! rank, so the hottest rows are synced once per admission instead of
//! pulled once per batch.
//!
//! ## Tiering and update classes
//!
//! Entity rows fall into three classes per batch:
//!
//! 1. **Cached** rows (in the replicated hot cache): never pulled, never
//!    pushed. Their gradients ride an all-gather shared by every rank;
//!    every rank applies the identical lazy Adam step to its cache copy.
//! 2. **Eligible-but-uncached** rows (in the degree-ranked hot set but
//!    not currently cached): their gradients ride the same all-gather;
//!    only the owner applies the step to its arena. Because the
//!    aggregate is shared, these rows are also the *admission stream* —
//!    every rank sees the same stream and runs the same LRU policy, which
//!    is what keeps the cache bit-identical everywhere without a
//!    coordination protocol.
//! 3. **Cold** rows: gradients are encoded per owner and pushed p2p; the
//!    owner sums contributions in ascending source-rank order (its own
//!    contribution spliced at its own rank position), scales by `1/p`,
//!    and steps — the exact f32 summation order of the replica trainer's
//!    gather decode, which is what makes sharded f32 runs bit-identical
//!    to the full-replica trainer.
//!
//! Cold rows may be stored 8-bit quantized at rest
//! ([`kge_compress::RowArena`]); they are dequantized on pull (the
//! requester decodes via `RowRef::dequantize_into`). Int8 storage is
//! deterministic run-to-run but follows a different trajectory than f32.
//!
//! ## Cache invalidation
//!
//! The cache is flushed (owners write values + Adam moments back to
//! their arenas) and cleared at every epoch boundary, so a hot row costs
//! one admission sync per epoch. Eviction is batch-granular LRU driven
//! only by the shared admission stream — never by rank-local pulls — via
//! a lazy-deletion queue compacted when it outgrows 4× capacity.
//!
//! ## Crash recovery
//!
//! Crashes manifest at collectives, so every participant aborts the same
//! batch together with identical cache state. Survivors shrink the
//! communicator, harvest what they hold (their arenas plus the
//! replicated cache), exchange owned rows that are not globally cached,
//! recompute ownership at the new world size, and regenerate rows that
//! died with the crashed rank from the deterministic Xavier init (fresh
//! optimizer state). Elastic rejoin is not supported in sharded mode —
//! a crashed rank parks until the survivors close the lobby.
//!
//! ## Prefetch pipeline
//!
//! With [`crate::PrefetchMode`] on, the per-batch pull round-trip is
//! restructured into a two-slot ring ([`PrefetchRing`]): while batch `b`
//! computes, batch `b+1` is already staged, its touched union deduped
//! and classified against the cache state *as of its launch*, and its
//! pull requests in flight. Responses settle with overlap pricing
//! against the launch anchor (`Communicator::recv_bytes_from_as_overlapped`),
//! so a pull-bound epoch approaches `max(compute, pull)`; cold pushes
//! for batch `b` are consumed in place but priced behind batch `b+1`'s
//! compute window. Resident rows are read at *use* time and evictions
//! between launch and use are captured into the slot ([`EvictSink`]),
//! which is what keeps f32 prefetch runs bit-identical to the
//! synchronous path — and therefore to the replica trainer.

use crate::config::{PrefetchMode, TrainConfig};
use crate::lr::PlateauSchedule;
use crate::neg::CorruptionBias;
use crate::report::{EpochTrace, ShardedReport, TrainOutcome, TrainReport};
use crate::trainer::{
    chunk_seed, compute_chunk, distribute, node_pool_threads, stage_chunk, ChunkScratch,
    GRAD_CHUNK, ZERO_ROW_EPS,
};
use crate::comm_select::PrefetchSelector;
use crate::CommChoice;
use kge_compress::codec::{RowDecoder, RowEncoder, WireFormat};
use kge_compress::quant::QuantScheme;
use kge_compress::{ArenaKind, RowArena};
use kge_core::{Adam, EmbeddingTable, KgeModel, RowOptimizer, SparseGrad};
use kge_data::batch::EpochShuffler;
use kge_data::{Dataset, FilterIndex, Triple};
use kge_partition::{entity_owners, hot_set, partition_for};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simgrid::{Cluster, Collective, NodeCtx, SimError};

/// Sentinel for "no slot" in the id → slot maps.
const NO_SLOT: u32 = u32::MAX;

/// Adam lazy-step cost per row element, matching
/// `AdamState::lazy_step_flops`.
const ADAM_FLOPS_PER_ELEM: usize = 12;

/// Per-rank entity storage: the owned-row arena (f32 or int8), the
/// owner's Adam state for those rows, and the replicated hot cache.
///
/// Every cache-policy decision (admission, recency, eviction) is a pure
/// function of the shared hot-aggregate stream and the shared batch
/// counter, so the cache maps and contents are bit-identical on every
/// rank by construction — no invalidation traffic is ever needed.
pub struct ShardedStore {
    dim: usize,
    rank: usize,
    n_entities: usize,
    /// Entity id → owner rank, identical on every rank.
    owners: Vec<u32>,
    /// Sorted entity ids this rank owns.
    owned: Vec<u32>,
    /// Entity id → arena slot (`NO_SLOT` if not owned here).
    arena_slot: Vec<u32>,
    arena: RowArena,
    /// Owner-side Adam state, one row per arena slot.
    opt_m: Vec<f32>,
    opt_v: Vec<f32>,
    opt_t: Vec<u32>,
    adam: Adam,
    // --- Replicated hot cache --------------------------------------
    capacity: usize,
    /// Entity id → cacheable (member of the degree-ranked hot set).
    eligible: Vec<bool>,
    eligible_rows: usize,
    /// Entity id → cache slot (`NO_SLOT` if not cached).
    cache_slot: Vec<u32>,
    /// Cache slot → entity id (`NO_SLOT` if empty).
    cache_id: Vec<u32>,
    cache_val: Vec<f32>,
    cache_m: Vec<f32>,
    cache_v: Vec<f32>,
    cache_t: Vec<u32>,
    /// Slot → batch tick of the last shared-stream touch.
    cache_used: Vec<u64>,
    /// Slot holds owner-synced state (admission sync completed). Unsynced
    /// slots are placeholders between admission and the same batch's sync
    /// and are never read or written back.
    cache_synced: Vec<bool>,
    cache_len: usize,
    /// Lazy-deletion LRU queue of `(tick, id)`; stale entries are skipped
    /// at eviction time and purged by compaction.
    evq: Vec<(u64, u32)>,
    evq_head: usize,
    evq_scratch: Vec<(u64, u32)>,
    // --- Metrics ----------------------------------------------------
    hits: u64,
    lookups: u64,
    touches: u64,
    row_buf: Vec<f32>,
}

impl ShardedStore {
    /// Build the store for `rank` of `p`: ownership map, zeroed arena,
    /// and an empty cache whose eligible set is the top `2 × capacity`
    /// rows by degree (fixed for the run, so eligibility is a shared
    /// constant and the admission stream is well-defined).
    pub fn new(
        kind: ArenaKind,
        dim: usize,
        rank: usize,
        owners: Vec<u32>,
        degrees: &[usize],
        capacity: usize,
        base_lr: f32,
    ) -> Self {
        let n_entities = owners.len();
        let capacity = capacity.min(n_entities);
        let mut arena_slot = vec![NO_SLOT; n_entities];
        let mut owned = Vec::new();
        for (id, &o) in owners.iter().enumerate() {
            if o as usize == rank {
                arena_slot[id] = owned.len() as u32;
                owned.push(id as u32);
            }
        }
        let mut eligible = vec![false; n_entities];
        let hot = hot_set(degrees, 2 * capacity);
        for &id in &hot {
            eligible[id as usize] = true;
        }
        let n_owned = owned.len();
        ShardedStore {
            dim,
            rank,
            n_entities,
            owners,
            owned,
            arena_slot,
            arena: RowArena::new(kind, n_owned, dim),
            opt_m: vec![0.0; n_owned * dim],
            opt_v: vec![0.0; n_owned * dim],
            opt_t: vec![0; n_owned],
            adam: Adam {
                lr: base_lr,
                ..Adam::default()
            },
            capacity,
            eligible,
            eligible_rows: hot.len(),
            cache_slot: vec![NO_SLOT; n_entities],
            cache_id: vec![NO_SLOT; capacity],
            cache_val: vec![0.0; capacity * dim],
            cache_m: vec![0.0; capacity * dim],
            cache_v: vec![0.0; capacity * dim],
            cache_t: vec![0; capacity],
            cache_used: vec![0; capacity],
            cache_synced: vec![false; capacity],
            cache_len: 0,
            evq: Vec::new(),
            evq_head: 0,
            evq_scratch: Vec::new(),
            hits: 0,
            lookups: 0,
            touches: 0,
            row_buf: vec![0.0; dim],
        }
    }

    pub fn n_entities(&self) -> usize {
        self.n_entities
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn eligible_rows(&self) -> usize {
        self.eligible_rows
    }

    pub fn owned_rows(&self) -> usize {
        self.owned.len()
    }

    pub fn owned_ids(&self) -> &[u32] {
        &self.owned
    }

    pub fn owner_of(&self, id: u32) -> usize {
        self.owners[id as usize] as usize
    }

    pub fn is_owned(&self, id: u32) -> bool {
        self.owners[id as usize] as usize == self.rank
    }

    pub fn is_eligible(&self, id: u32) -> bool {
        self.eligible[id as usize]
    }

    pub fn is_cached(&self, id: u32) -> bool {
        self.cache_slot[id as usize] != NO_SLOT
    }

    fn is_synced(&self, id: u32) -> bool {
        let slot = self.cache_slot[id as usize];
        slot != NO_SLOT && self.cache_synced[slot as usize]
    }

    /// Copy every owned row out of the (fully replicated, transient)
    /// init table; optimizer state stays zero.
    pub fn init_owned_from(&mut self, table: &EmbeddingTable) {
        for i in 0..self.owned.len() {
            self.arena.store(i, table.row(self.owned[i] as usize));
        }
    }

    /// Install an owned row with explicit optimizer state (recovery /
    /// migration path).
    pub fn set_owned_row(&mut self, id: u32, value: &[f32], m: &[f32], v: &[f32], t: u32) {
        let slot = self.arena_slot[id as usize] as usize;
        let d = self.dim;
        self.arena.store(slot, value);
        self.opt_m[slot * d..(slot + 1) * d].copy_from_slice(m);
        self.opt_v[slot * d..(slot + 1) * d].copy_from_slice(v);
        self.opt_t[slot] = t;
    }

    /// Read an owned row's arena value (dequantized) into `out`.
    pub fn read_owned_into(&self, id: u32, out: &mut [f32]) {
        self.arena
            .load_into(self.arena_slot[id as usize] as usize, out);
    }

    /// Owned row's Adam state `(m, v, t)`.
    pub fn owned_state(&self, id: u32) -> (&[f32], &[f32], u32) {
        let slot = self.arena_slot[id as usize] as usize;
        let d = self.dim;
        (
            &self.opt_m[slot * d..(slot + 1) * d],
            &self.opt_v[slot * d..(slot + 1) * d],
            self.opt_t[slot],
        )
    }

    /// Read a row for compute: cache copy if cached, else the owned
    /// arena copy. Callers guarantee non-cached non-owned rows are
    /// pulled instead.
    pub fn read_resident_into(&self, id: u32, out: &mut [f32]) {
        let slot = self.cache_slot[id as usize];
        if slot != NO_SLOT {
            let s = slot as usize;
            debug_assert!(self.cache_synced[s], "read of unsynced cache row");
            out.copy_from_slice(&self.cache_val[s * self.dim..(s + 1) * self.dim]);
        } else {
            self.read_owned_into(id, out);
        }
    }

    /// Count one entity-row touch for the tiering metrics. A **lookup**
    /// is a touch of a row the hot tier manages (the eligible set) —
    /// touches of cold-tier rows go straight to pull/push and never
    /// consult the cache. A **hit** is a lookup that found the row
    /// cached. `touches` counts everything, so `lookups / touches` is
    /// the hot tier's coverage of the access stream.
    pub fn count_touch(&mut self, id: u32) {
        self.touches += 1;
        if self.eligible[id as usize] {
            self.lookups += 1;
            if self.cache_slot[id as usize] != NO_SLOT {
                self.hits += 1;
            }
        }
    }

    /// `(hits, lookups, touches)` — see [`ShardedStore::count_touch`].
    pub fn hit_counters(&self) -> (u64, u64, u64) {
        (self.hits, self.lookups, self.touches)
    }

    /// Lazy Adam step on a cached row (replicated: every rank applies
    /// the identical step to its copy).
    pub fn step_cached(&mut self, id: u32, g: &[f32], lr: f32) {
        let s = self.cache_slot[id as usize] as usize;
        debug_assert!(self.cache_synced[s], "step on unsynced cache row");
        let d = self.dim;
        let adam = self.adam;
        adam.step_row_lazy(
            &mut self.cache_t[s],
            &mut self.cache_m[s * d..(s + 1) * d],
            &mut self.cache_v[s * d..(s + 1) * d],
            &mut self.cache_val[s * d..(s + 1) * d],
            g,
            lr,
        );
    }

    /// Lazy Adam step on an owned arena row (owner-only).
    pub fn step_owned(&mut self, id: u32, g: &[f32], lr: f32) {
        let slot = self.arena_slot[id as usize] as usize;
        let d = self.dim;
        self.arena.load_into(slot, &mut self.row_buf);
        let adam = self.adam;
        adam.step_row_lazy(
            &mut self.opt_t[slot],
            &mut self.opt_m[slot * d..(slot + 1) * d],
            &mut self.opt_v[slot * d..(slot + 1) * d],
            &mut self.row_buf,
            g,
            lr,
        );
        self.arena.store(slot, &self.row_buf);
    }

    fn evq_push(&mut self, tick: u64, id: u32) {
        if self.evq.len() - self.evq_head >= (4 * self.capacity).max(1024)
            || self.evq_head > self.evq.len().max(64) / 2
        {
            self.evq_compact();
        }
        self.evq.push((tick, id));
    }

    /// Rebuild the queue from the live cache in `(last_used, id)` order,
    /// dropping every stale entry.
    fn evq_compact(&mut self) {
        self.evq_scratch.clear();
        for slot in 0..self.capacity {
            let id = self.cache_id[slot];
            if id != NO_SLOT {
                self.evq_scratch.push((self.cache_used[slot], id));
            }
        }
        self.evq_scratch.sort_unstable();
        self.evq.clear();
        self.evq.extend_from_slice(&self.evq_scratch);
        self.evq_head = 0;
    }

    /// Write a cache slot's state back to the owner arena (no-op unless
    /// this rank owns the row and the slot was synced).
    fn write_back(&mut self, slot: usize, id: u32) {
        if !self.cache_synced[slot] || self.owners[id as usize] as usize != self.rank {
            return;
        }
        let a = self.arena_slot[id as usize] as usize;
        let d = self.dim;
        self.arena.store(a, &self.cache_val[slot * d..(slot + 1) * d]);
        self.opt_m[a * d..(a + 1) * d].copy_from_slice(&self.cache_m[slot * d..(slot + 1) * d]);
        self.opt_v[a * d..(a + 1) * d].copy_from_slice(&self.cache_v[slot * d..(slot + 1) * d]);
        self.opt_t[a] = self.cache_t[slot];
    }

    /// Evict the least-recently-used row and return its freed slot. If a
    /// prefetch slot registered an [`EvictSink`], the victim's cache
    /// value is captured into it first (the prefetched batch classified
    /// the row as cached at launch and must still read the same f32
    /// value the synchronous path would have).
    fn evict_one(&mut self, sink: &mut Option<EvictSink<'_>>) -> usize {
        loop {
            debug_assert!(self.evq_head < self.evq.len(), "LRU queue underflow");
            let (used, id) = self.evq[self.evq_head];
            self.evq_head += 1;
            let slot = self.cache_slot[id as usize];
            if slot != NO_SLOT && self.cache_used[slot as usize] == used {
                let s = slot as usize;
                if let Some(sink) = sink.as_mut() {
                    sink.capture(id, &self.cache_val[s * self.dim..(s + 1) * self.dim]);
                }
                self.write_back(s, id);
                self.cache_slot[id as usize] = NO_SLOT;
                self.cache_id[s] = NO_SLOT;
                self.cache_synced[s] = false;
                self.cache_len -= 1;
                return s;
            }
        }
    }

    /// Refresh a cached row's recency from the shared stream.
    pub fn bump(&mut self, id: u32, tick: u64) {
        let slot = self.cache_slot[id as usize];
        if slot == NO_SLOT {
            return;
        }
        if self.cache_used[slot as usize] != tick {
            self.cache_used[slot as usize] = tick;
            self.evq_push(tick, id);
        }
    }

    /// Admit an eligible row, evicting the LRU row if full. The slot is
    /// a placeholder (unsynced) until [`ShardedStore::fill_admitted`]
    /// lands the owner's state in the same batch's admission sync.
    pub fn admit(&mut self, id: u32, tick: u64) {
        self.admit_with_sink(id, tick, &mut None);
    }

    /// [`ShardedStore::admit`] with an optional eviction capture target
    /// for the prefetch pipeline.
    fn admit_with_sink(&mut self, id: u32, tick: u64, sink: &mut Option<EvictSink<'_>>) {
        if self.capacity == 0 || self.cache_slot[id as usize] != NO_SLOT {
            return;
        }
        let slot = if self.cache_len == self.capacity {
            self.evict_one(sink)
        } else {
            self.cache_len
        };
        self.cache_slot[id as usize] = slot as u32;
        self.cache_id[slot] = id;
        self.cache_used[slot] = tick;
        self.cache_synced[slot] = false;
        self.cache_len += 1;
        self.evq_push(tick, id);
    }

    /// Land the owner's post-update state in a freshly admitted slot.
    pub fn fill_admitted(&mut self, id: u32, t: u32, value: &[f32], m: &[f32], v: &[f32]) {
        let slot = self.cache_slot[id as usize];
        if slot == NO_SLOT {
            return; // evicted again before the sync — arena stays authoritative
        }
        let s = slot as usize;
        if self.cache_synced[s] {
            return;
        }
        let d = self.dim;
        self.cache_val[s * d..(s + 1) * d].copy_from_slice(value);
        self.cache_m[s * d..(s + 1) * d].copy_from_slice(m);
        self.cache_v[s * d..(s + 1) * d].copy_from_slice(v);
        self.cache_t[s] = t;
        self.cache_synced[s] = true;
    }

    /// Epoch-boundary invalidation: owners write every synced row back
    /// to their arenas, then all ranks drop the whole cache. Hot rows
    /// cost one admission sync per epoch, not one pull per batch.
    pub fn flush_epoch(&mut self) {
        for slot in 0..self.capacity {
            let id = self.cache_id[slot];
            if id == NO_SLOT {
                continue;
            }
            self.write_back(slot, id);
            self.cache_slot[id as usize] = NO_SLOT;
            self.cache_id[slot] = NO_SLOT;
            self.cache_synced[slot] = false;
        }
        self.cache_len = 0;
        self.evq.clear();
        self.evq_head = 0;
    }

    /// Harvest every synced cache row into full-size recovery buffers
    /// (crash-migration path; cache rows are replicated, so survivors
    /// recover them even when the owner crashed).
    fn export_cache_into(
        &self,
        val: &mut [f32],
        m: &mut [f32],
        v: &mut [f32],
        t: &mut [u32],
        have: &mut [bool],
    ) {
        let d = self.dim;
        for slot in 0..self.capacity {
            let id = self.cache_id[slot];
            if id == NO_SLOT || !self.cache_synced[slot] {
                continue;
            }
            let i = id as usize;
            val[i * d..(i + 1) * d].copy_from_slice(&self.cache_val[slot * d..(slot + 1) * d]);
            m[i * d..(i + 1) * d].copy_from_slice(&self.cache_m[slot * d..(slot + 1) * d]);
            v[i * d..(i + 1) * d].copy_from_slice(&self.cache_v[slot * d..(slot + 1) * d]);
            t[i] = self.cache_t[slot];
            have[i] = true;
        }
    }

    /// Resident model bytes on this rank: arena storage plus cache
    /// values. (Optimizer moments are reported separately.)
    pub fn resident_model_bytes(&self) -> usize {
        self.arena.value_bytes() + self.cache_val.len() * 4
    }

    /// Resident optimizer-state bytes on this rank (owner moments +
    /// step counts + cache moments).
    pub fn opt_state_bytes(&self) -> usize {
        (self.opt_m.len() + self.opt_v.len() + self.cache_m.len() + self.cache_v.len()) * 4
            + (self.opt_t.len() + self.cache_t.len()) * 4
    }
}

/// Every reusable buffer of the sharded batch pipeline. Steady-state
/// batches allocate nothing once these are warm (single rank; multi-rank
/// runs move message payloads through channels, which allocate by
/// construction).
pub struct ShardedBufs {
    chunks: Vec<ChunkScratch>,
    /// Batch-local embedding table: row `i` holds the value of
    /// `touched[i]`. Sized to the worst-case touched union.
    local_tab: EmbeddingTable,
    touched: Vec<u32>,
    /// Entity id → batch-local id (`NO_SLOT` when untouched); only the
    /// touched entries are ever written and reset.
    g2l: Vec<u32>,
    req_ids: Vec<Vec<u32>>,
    req_wire: Vec<u8>,
    resp_wire: Vec<u8>,
    cold_wire: Vec<Vec<u8>>,
    hot_send: Vec<u8>,
    hot_recv: Vec<u8>,
    hot_counts: Vec<usize>,
    adm_send: Vec<u8>,
    adm_recv: Vec<u8>,
    adm_counts: Vec<usize>,
    admit_ids: Vec<u32>,
    /// Batch-local-id keyed entity gradient (chunk-merge target).
    ent_grad: SparseGrad,
    rel_grad: SparseGrad,
    /// Global-id keyed aggregates.
    hot_agg: SparseGrad,
    cold_agg: SparseGrad,
    gather: crate::exchange::GatherBufs,
    rel_agg: SparseGrad,
    row_buf: Vec<f32>,
    /// Cumulative pull/push lane seconds (visible + hidden), for the
    /// sharded report. Accumulated from clock deltas around the lane
    /// operations — never from extra charges, so the sync path's clock
    /// trajectory is untouched.
    lane: LaneTimes,
}

impl ShardedBufs {
    pub fn new(dim: usize, n_entities: usize, p: usize, config: &TrainConfig) -> Self {
        let n_chunks = config.batch_size.div_ceil(GRAD_CHUNK).max(1);
        let max_touched =
            (2 * config.batch_size * (1 + config.strategy.neg.train)).min(n_entities).max(1);
        ShardedBufs {
            chunks: (0..n_chunks).map(|_| ChunkScratch::new(dim)).collect(),
            local_tab: EmbeddingTable::zeros(max_touched, dim),
            touched: Vec::new(),
            g2l: vec![NO_SLOT; n_entities],
            req_ids: (0..p).map(|_| Vec::new()).collect(),
            req_wire: Vec::new(),
            resp_wire: Vec::new(),
            cold_wire: (0..p).map(|_| Vec::new()).collect(),
            hot_send: Vec::new(),
            hot_recv: Vec::new(),
            hot_counts: Vec::new(),
            adm_send: Vec::new(),
            adm_recv: Vec::new(),
            adm_counts: Vec::new(),
            admit_ids: Vec::new(),
            ent_grad: SparseGrad::new(dim),
            rel_grad: SparseGrad::new(dim),
            hot_agg: SparseGrad::new(dim),
            cold_agg: SparseGrad::new(dim),
            gather: crate::exchange::GatherBufs::new(),
            rel_agg: SparseGrad::new(dim),
            row_buf: vec![0.0; dim],
            lane: LaneTimes::default(),
        }
    }

    /// Shrink/regrow the per-peer buffer sets after a world-size change.
    fn resize_world(&mut self, p: usize) {
        self.req_ids.resize_with(p, Vec::new);
        self.cold_wire.resize_with(p, Vec::new);
    }
}

/// `&mut T` wrapper asserting cross-thread safety for the disjoint-index
/// access pattern of the parallel chunk loop (each index claimed by
/// exactly one worker).
struct SendPtr<T>(*mut T);
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// # Safety
    /// Callers must guarantee no two live references share an index.
    #[allow(clippy::mut_from_ref)]
    unsafe fn at(&self, i: usize) -> &mut T {
        &mut *self.0.add(i)
    }
}

/// Decode one encoded gradient payload, adding rows into `agg`. Returns
/// the number of rows decoded.
fn add_payload_into(payload: &[u8], agg: &mut SparseGrad, what: &str) -> usize {
    let mut dec = RowDecoder::new(payload).unwrap_or_else(|e| panic!("{what}: {e}"));
    let mut rows = 0;
    while let Some(r) = dec.next_row() {
        let r = r.unwrap_or_else(|e| panic!("{what}: {e}"));
        r.add_into(agg.row_mut(r.row));
        rows += 1;
    }
    rows
}

// --- Prefetch ring -----------------------------------------------------

/// Fill classes of a prefetch slot's batch-local rows, fixed when the
/// slot launches. `REMOTE` rows are requested over the wire; `OWNED` and
/// `CACHED` rows are read from resident state at *use* time (so they
/// observe the intervening batch's updates, like the synchronous path);
/// `LIMBO` rows were cached at launch but evicted before use — their
/// value was captured into the slot at eviction time.
const CLASS_REMOTE: u8 = 0;
const CLASS_OWNED: u8 = 1;
const CLASS_CACHED: u8 = 2;
const CLASS_LIMBO: u8 = 3;

/// Capture target for rows a prefetched batch classified as cached at
/// launch but that the intervening batch's admission pass evicts before
/// use. The victim's post-update cache value — bit-for-bit what the
/// synchronous path would have read (or pulled back from the owner's
/// write-back) — is copied straight into the slot's batch-local table.
pub struct EvictSink<'a> {
    g2l: &'a [u32],
    class: &'a mut [u8],
    local_tab: &'a mut EmbeddingTable,
}

impl EvictSink<'_> {
    fn capture(&mut self, id: u32, value: &[f32]) {
        let li = self.g2l[id as usize];
        if li == NO_SLOT {
            return;
        }
        let li = li as usize;
        if self.class[li] == CLASS_CACHED {
            self.local_tab.row_mut(li).copy_from_slice(value);
            self.class[li] = CLASS_LIMBO;
        }
    }
}

/// Simulated wall-clock and hidden-occupancy accounting for the sharded
/// p2p lanes, accumulated over a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaneTimes {
    /// Seconds spent on `ShardPull` operations (requests, serving,
    /// response settle — idle wait plus visible occupancy).
    pub pull_s: f64,
    /// Seconds spent on `ShardPush` operations.
    pub push_s: f64,
    /// Pull-response occupancy hidden behind the prefetch window.
    pub hidden_pull_s: f64,
    /// Push occupancy hidden behind the next batch's compute.
    pub hidden_push_s: f64,
}

/// One in-flight batch of the prefetch ring: staged chunks, the deduped
/// touched union with its private id map, per-row fill classes, and the
/// per-owner request lists, all fixed at launch time.
struct PrefetchSlot {
    chunks: Vec<ChunkScratch>,
    local_tab: EmbeddingTable,
    touched: Vec<u32>,
    /// Entity id → batch-local id, private to this slot (the shared
    /// `ShardedBufs` map belongs to whichever batch is computing).
    g2l: Vec<u32>,
    /// Batch-local id → fill class.
    class: Vec<u8>,
    req_ids: Vec<Vec<u32>>,
    /// Clock reading just before the pull requests went out — the start
    /// of the window their responses may hide behind.
    anchor_s: f64,
    batch_idx: usize,
    bs: usize,
    n_chunks: usize,
    live: bool,
}

/// Deferred pricing for the previous batch's cold pushes: the payloads
/// were consumed (unpriced) exactly where the synchronous path consumes
/// them, and their occupancy settles against the *next* batch's compute
/// window via `charge_p2p_deferred`.
struct PendingPush {
    anchor_s: f64,
    /// `(arrival_s, bytes)` per received payload.
    items: Vec<(f64, usize)>,
    live: bool,
}

/// Two-slot one-batch-ahead prefetch pipeline state for the sharded
/// trainer. Owned by the epoch loop (not by [`ShardedBufs`]) so a crash
/// can drop every in-flight slot without touching the batch buffers;
/// all buffers reach steady size after one warm epoch and are reused.
pub struct PrefetchRing {
    slots: [PrefetchSlot; 2],
    cur: usize,
    /// Stashed pull-request payloads for the next batch, popped in FIFO
    /// position at the cold-aggregation phase and served after the
    /// admission sync so responses carry post-update rows.
    req_stash: Vec<Vec<u8>>,
    pending_push: PendingPush,
}

impl PrefetchRing {
    pub fn new(dim: usize, n_entities: usize, p: usize, config: &TrainConfig) -> Self {
        let n_chunks = config.batch_size.div_ceil(GRAD_CHUNK).max(1);
        let max_touched =
            (2 * config.batch_size * (1 + config.strategy.neg.train)).min(n_entities).max(1);
        let slot = || PrefetchSlot {
            chunks: (0..n_chunks).map(|_| ChunkScratch::new(dim)).collect(),
            local_tab: EmbeddingTable::zeros(max_touched, dim),
            touched: Vec::new(),
            g2l: vec![NO_SLOT; n_entities],
            class: vec![CLASS_REMOTE; max_touched],
            req_ids: (0..p).map(|_| Vec::new()).collect(),
            anchor_s: 0.0,
            batch_idx: 0,
            bs: 0,
            n_chunks: 0,
            live: false,
        };
        PrefetchRing {
            slots: [slot(), slot()],
            cur: 0,
            req_stash: (0..p).map(|_| Vec::new()).collect(),
            pending_push: PendingPush {
                anchor_s: 0.0,
                items: Vec::new(),
                live: false,
            },
        }
    }

    /// Drop every in-flight slot and deferred charge: the epoch-boundary
    /// drain, and crash recovery (where the shrunken world also drops the
    /// undelivered messages themselves, so nothing dangles).
    pub fn reset(&mut self) {
        for slot in self.slots.iter_mut() {
            if slot.live {
                for &id in &slot.touched {
                    slot.g2l[id as usize] = NO_SLOT;
                }
            }
            slot.live = false;
        }
        self.cur = 0;
        for s in self.req_stash.iter_mut() {
            s.clear();
        }
        self.pending_push.items.clear();
        self.pending_push.live = false;
    }

    /// Shrink/regrow the per-peer buffer sets after a world-size change.
    pub fn resize_world(&mut self, p: usize) {
        for slot in self.slots.iter_mut() {
            slot.req_ids.resize_with(p, Vec::new);
        }
        self.req_stash.resize_with(p, Vec::new);
    }
}

// --- Shared batch phases ----------------------------------------------
//
// The synchronous step and the prefetch pipeline run the *same*
// arithmetic in the same order; these helpers are the verbatim phases of
// the original `sharded_batch_step`, extracted so both paths share them.

/// Batch extent: `(examples, chunks)`.
fn batch_shape(config: &TrainConfig, shard: &[Triple]) -> (usize, usize) {
    if shard.is_empty() {
        (0, 0)
    } else {
        let bs = config.batch_size.min(shard.len());
        (bs, bs.div_ceil(GRAD_CHUNK))
    }
}

/// Stage every chunk (sampling only; placeholder tables, corruption
/// range = the global entity count).
#[allow(clippy::too_many_arguments)]
fn stage_batch(
    model: &dyn KgeModel,
    local_tab: &EmbeddingTable,
    rel: &EmbeddingTable,
    n_entities: usize,
    shard: &[Triple],
    config: &TrainConfig,
    filter: &FilterIndex,
    bias: Option<&CorruptionBias>,
    rank: usize,
    epoch: usize,
    batch_idx: usize,
    bs: usize,
    n_chunks: usize,
    chunks: &mut [ChunkScratch],
) {
    let start = batch_idx * config.batch_size;
    for (c, chunk) in chunks.iter_mut().enumerate().take(n_chunks) {
        let lo = c * GRAD_CHUNK;
        let hi = (lo + GRAD_CHUNK).min(bs);
        stage_chunk(
            model,
            local_tab,
            rel,
            n_entities,
            shard,
            start,
            lo,
            hi,
            config,
            filter,
            bias,
            chunk_seed(config.seed, rank, epoch, batch_idx, c),
            chunk,
        );
    }
}

/// Touched union + local-id map.
fn build_touched(
    chunks: &[ChunkScratch],
    n_chunks: usize,
    touched: &mut Vec<u32>,
    g2l: &mut [u32],
    cap_rows: usize,
) {
    touched.clear();
    for c in chunks.iter().take(n_chunks) {
        for &(h, _, t) in &c.triples {
            touched.push(h);
            touched.push(t);
        }
    }
    touched.sort_unstable();
    touched.dedup();
    debug_assert!(touched.len() <= cap_rows);
    for (li, &id) in touched.iter().enumerate() {
        g2l[id as usize] = li as u32;
    }
}

/// Remap triples to batch-local entity ids, counting cache hits per
/// touch while the global ids are still in hand.
fn remap_and_count(
    chunks: &mut [ChunkScratch],
    n_chunks: usize,
    g2l: &[u32],
    store: &mut ShardedStore,
) {
    for c in chunks.iter_mut().take(n_chunks) {
        for tr in c.triples.iter_mut() {
            let (h, r, t) = *tr;
            store.count_touch(h);
            store.count_touch(t);
            *tr = (g2l[h as usize], r, g2l[t as usize]);
        }
    }
}

/// Compute chunks in parallel (fixed chunk structure, chunk-ordered
/// merge — thread-count independent), then merge. Returns
/// `(loss, examples)`.
#[allow(clippy::too_many_arguments)]
fn compute_and_merge(
    ctx: &mut NodeCtx,
    model: &dyn KgeModel,
    config: &TrainConfig,
    chunks: &mut [ChunkScratch],
    n_chunks: usize,
    local_tab: &EmbeddingTable,
    rel: &EmbeddingTable,
    inv_batch: f32,
    ent_grad: &mut SparseGrad,
    rel_grad: &mut SparseGrad,
) -> (f64, usize) {
    {
        let chunks = &mut chunks[..n_chunks];
        let ptr = SendPtr(chunks.as_mut_ptr());
        rayon::par_for_each_index(n_chunks, |c| {
            // SAFETY: each index is claimed by exactly one worker, so the
            // &mut aliases are disjoint.
            let cs = unsafe { ptr.at(c) };
            compute_chunk(model, local_tab, rel, inv_batch, config, cs);
        });
    }
    ent_grad.clear();
    rel_grad.clear();
    let mut loss = 0.0f64;
    let mut examples = 0usize;
    for c in chunks.iter().take(n_chunks) {
        loss += c.loss;
        examples += c.examples;
        ent_grad.merge(&c.ent);
        rel_grad.merge(&c.rel);
    }
    ctx.comm_mut()
        .clock_mut()
        .charge_flops(examples as f64 * model.score_flops() * 3.0);
    (loss, examples)
}

/// Split the entity gradient: hot-set rows into the shared all-gather
/// payload (ascending global id), cold rows encoded per owner with the
/// own-rank bucket kept locally. Encoding never touches the clock, so
/// separating it from the sends is charge-identical.
fn encode_entity_grads(
    store: &ShardedStore,
    touched: &[u32],
    ent_grad: &SparseGrad,
    dim: usize,
    hot_send: &mut Vec<u8>,
    cold_wire: &mut [Vec<u8>],
    p: usize,
) {
    {
        let mut hot_enc = RowEncoder::new(WireFormat::F32, dim, hot_send);
        for (lid, g) in ent_grad.iter_sorted() {
            let id = touched[lid as usize];
            if store.is_eligible(id) {
                hot_enc.push_f32(id, g).expect("hot gradient row");
            }
        }
        hot_enc.finish();
    }
    for (dst, wire) in cold_wire.iter_mut().enumerate().take(p) {
        let mut enc = RowEncoder::new(WireFormat::F32, dim, wire);
        for (lid, g) in ent_grad.iter_sorted() {
            let id = touched[lid as usize];
            if !store.is_eligible(id) && store.owner_of(id) == dst {
                enc.push_f32(id, g).expect("cold gradient row");
            }
        }
        enc.finish();
    }
}

/// Hot exchange: all-gather the hot payloads, decode in ascending rank
/// order, and scale by 1/p — the replica gather-decode arithmetic.
fn hot_exchange(
    ctx: &mut NodeCtx,
    hot_send: &[u8],
    hot_recv: &mut Vec<u8>,
    hot_counts: &mut Vec<usize>,
    hot_agg: &mut SparseGrad,
    p: usize,
    dim: usize,
) -> Result<(), SimError> {
    ctx.comm_mut().allgatherv_bytes_into(hot_send, hot_recv, hot_counts)?;
    hot_agg.clear();
    let mut gathered = 0usize;
    let mut off = 0usize;
    for &c in hot_counts.iter() {
        gathered += add_payload_into(&hot_recv[off..off + c], hot_agg, "hot payload");
        off += c;
    }
    hot_agg.scale(1.0 / p as f32);
    hot_agg.ensure_sorted();
    ctx.comm_mut()
        .clock_mut()
        .charge_flops((gathered * dim) as f64);
    Ok(())
}

/// Relation exchange — byte-for-byte the replica trainer's plain
/// all-gather arm.
fn relation_exchange(
    ctx: &mut NodeCtx,
    rng: &mut StdRng,
    rel_grad: &mut SparseGrad,
    gather: &mut crate::exchange::GatherBufs,
    rel_agg: &mut SparseGrad,
    dim: usize,
) -> Result<(), SimError> {
    rel_grad.ensure_sorted();
    let stats = crate::exchange::exchange_allgather_into(
        ctx.comm_mut(),
        rel_grad,
        dim,
        QuantScheme::None,
        None,
        rng,
        gather,
        rel_agg,
    )?;
    ctx.comm_mut()
        .clock_mut()
        .charge_flops((stats.rows_gathered * dim) as f64);
    Ok(())
}

/// Apply the aggregates: cached rows step replicated everywhere;
/// eligible-uncached rows step on the owner's arena; cold rows step on
/// the owner's arena from the p2p aggregate; relation rows mirror the
/// replica's lazy path.
#[allow(clippy::too_many_arguments)]
fn apply_updates(
    ctx: &mut NodeCtx,
    store: &mut ShardedStore,
    rel: &mut EmbeddingTable,
    rel_opt: &mut dyn RowOptimizer,
    hot_agg: &SparseGrad,
    cold_agg: &SparseGrad,
    rel_agg: &mut SparseGrad,
    lr: f32,
    lr_scale: f32,
    dim: usize,
) {
    let mut stepped = 0usize;
    for (id, g) in hot_agg.iter_sorted() {
        if store.is_cached(id) {
            store.step_cached(id, g, lr);
            stepped += 1;
        } else if store.is_owned(id) {
            store.step_owned(id, g, lr);
            stepped += 1;
        }
    }
    for (id, g) in cold_agg.iter_sorted() {
        debug_assert!(store.is_owned(id), "cold push routed to non-owner");
        store.step_owned(id, g, lr);
        stepped += 1;
    }
    ctx.comm_mut()
        .clock_mut()
        .charge_flops((stepped * dim * ADAM_FLOPS_PER_ELEM) as f64);
    rel_agg.ensure_sorted();
    ctx.comm_mut()
        .clock_mut()
        .charge_flops(rel_opt.lazy_step_flops(rel_agg.nnz()));
    rel_opt.step_lazy(rel, rel_agg, lr_scale);
}

/// Cache admission/eviction, driven only by the shared hot stream so
/// every rank transitions identically. The optional sink captures
/// evictions for a launched-but-unused prefetch slot.
fn admission(
    store: &mut ShardedStore,
    hot_agg: &SparseGrad,
    admit_ids: &mut Vec<u32>,
    tick: u64,
    sink: &mut Option<EvictSink<'_>>,
) {
    admit_ids.clear();
    for (id, _) in hot_agg.iter_sorted() {
        if store.is_cached(id) {
            store.bump(id, tick);
        } else if store.is_eligible(id) && store.capacity() > 0 {
            admit_ids.push(id);
        }
    }
    for &id in admit_ids.iter() {
        store.admit_with_sink(id, tick, sink);
    }
}

/// Admission sync: owners publish post-update state for their newly
/// admitted rows; `admit_ids` is a shared quantity, so skipping the
/// collective when it is empty is itself collective.
#[allow(clippy::too_many_arguments)]
fn admission_sync(
    ctx: &mut NodeCtx,
    store: &mut ShardedStore,
    admit_ids: &[u32],
    adm_send: &mut Vec<u8>,
    adm_recv: &mut Vec<u8>,
    adm_counts: &mut Vec<usize>,
    row_buf: &mut [f32],
    dim: usize,
) -> Result<(), SimError> {
    if admit_ids.is_empty() {
        return Ok(());
    }
    adm_send.clear();
    for &id in admit_ids {
        if store.is_owned(id) && store.is_cached(id) && !store.is_synced(id) {
            store.read_owned_into(id, row_buf);
            adm_send.extend_from_slice(&id.to_le_bytes());
            let (m, v, t) = store.owned_state(id);
            adm_send.extend_from_slice(&t.to_le_bytes());
            for &x in row_buf.iter() {
                adm_send.extend_from_slice(&x.to_le_bytes());
            }
            for &x in m {
                adm_send.extend_from_slice(&x.to_le_bytes());
            }
            for &x in v {
                adm_send.extend_from_slice(&x.to_le_bytes());
            }
        }
    }
    ctx.comm_mut().allgatherv_bytes_into(adm_send, adm_recv, adm_counts)?;
    let rec = 8 + 12 * dim;
    debug_assert_eq!(adm_recv.len() % rec, 0);
    let mut off = 0usize;
    while off + rec <= adm_recv.len() {
        let b = &adm_recv[off..off + rec];
        let id = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        let t = u32::from_le_bytes([b[4], b[5], b[6], b[7]]);
        // Decode the three dim-length f32 runs into the shared row
        // buffer one at a time to stay allocation-free.
        let f32_at = |base: usize, k: usize| {
            let o = base + 4 * k;
            f32::from_le_bytes([b[o], b[o + 1], b[o + 2], b[o + 3]])
        };
        for (k, slot) in row_buf.iter_mut().enumerate().take(dim) {
            *slot = f32_at(8, k);
        }
        // Fill value, then moments, directly through a dedicated entry
        // point so the store can keep its fields private.
        store.fill_admitted_from_wire(id, t, row_buf, b, dim, f32_at);
        off += rec;
    }
    Ok(())
}

/// Run one full sharded batch: stage → pull → compute → exchange → push
/// → apply → cache admission. Returns `(loss, examples, nonzero_rows,
/// rows_sent)`; a `RankCrashed` from any collective propagates so the
/// epoch loop can run the recovery policy.
///
/// Public so the allocation-regression test drives the exact code the
/// sharded trainer runs.
#[allow(clippy::too_many_arguments)]
pub fn sharded_batch_step(
    ctx: &mut NodeCtx,
    model: &dyn KgeModel,
    config: &TrainConfig,
    store: &mut ShardedStore,
    rel: &mut EmbeddingTable,
    rel_opt: &mut dyn RowOptimizer,
    shard: &[Triple],
    filter: &FilterIndex,
    bias: Option<&CorruptionBias>,
    bufs: &mut ShardedBufs,
    rng: &mut StdRng,
    epoch: usize,
    batch_idx: usize,
    tick: u64,
    lr_scale: f32,
) -> Result<(f64, usize, usize, usize), SimError> {
    let rank = ctx.rank();
    let p = ctx.size();
    let dim = store.dim;
    let n_entities = store.n_entities;
    let (bs, n_chunks) = batch_shape(config, shard);
    let inv_batch = if bs > 0 {
        1.0f32 / (bs * (1 + config.strategy.neg.train)) as f32
    } else {
        0.0
    };

    // --- Phase 1: stage every chunk (sampling only; placeholder tables,
    // corruption range = the global entity count). ----------------------
    stage_batch(
        model,
        &bufs.local_tab,
        rel,
        n_entities,
        shard,
        config,
        filter,
        bias,
        rank,
        epoch,
        batch_idx,
        bs,
        n_chunks,
        &mut bufs.chunks,
    );

    // --- Phase 2: touched union + local-id map. -------------------------
    let cap_rows = bufs.local_tab.rows();
    build_touched(&bufs.chunks, n_chunks, &mut bufs.touched, &mut bufs.g2l, cap_rows);

    // --- Phase 3: fill the batch-local table — cache, then own arena,
    // then a pull request to the owner. ----------------------------------
    for v in bufs.req_ids.iter_mut() {
        v.clear();
    }
    for (li, &id) in bufs.touched.iter().enumerate() {
        if store.is_cached(id) || store.is_owned(id) {
            store.read_resident_into(id, bufs.local_tab.row_mut(li));
        } else {
            bufs.req_ids[store.owner_of(id)].push(id);
        }
    }

    // --- Phase 4: sparse pull. Request/response over `ShardPull`, made
    // deadlock-free by async deposit: every rank first sends all its
    // requests (possibly empty, to keep the protocol uniform), then
    // serves incoming requests in ascending source order, then decodes
    // responses in the same order. Per-pair FIFO guarantees a peer's
    // request is received before its response. -----------------------
    if p > 1 {
        let lane_t0 = ctx.comm().clock().now_s();
        for dst in 0..p {
            if dst == rank {
                continue;
            }
            bufs.req_wire.clear();
            for &id in &bufs.req_ids[dst] {
                bufs.req_wire.extend_from_slice(&id.to_le_bytes());
            }
            ctx.comm_mut()
                .send_bytes_as(dst, &bufs.req_wire, Collective::ShardPull)?;
        }
        for src in 0..p {
            if src == rank {
                continue;
            }
            let msg = ctx.comm_mut().recv_bytes_from_as(src, Collective::ShardPull)?;
            {
                let mut enc = RowEncoder::new(WireFormat::F32, dim, &mut bufs.resp_wire);
                for c in msg.payload.chunks_exact(4) {
                    let id = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
                    store.read_owned_into(id, &mut bufs.row_buf);
                    enc.push_f32(id, &bufs.row_buf).expect("pull response row");
                }
                enc.finish();
            }
            ctx.comm_mut()
                .send_bytes_as(src, &bufs.resp_wire, Collective::ShardPull)?;
        }
        let mut pulled = 0usize;
        for src in 0..p {
            if src == rank {
                continue;
            }
            let msg = ctx.comm_mut().recv_bytes_from_as(src, Collective::ShardPull)?;
            let mut dec = RowDecoder::new(&msg.payload).expect("pull response payload");
            while let Some(r) = dec.next_row() {
                let r = r.expect("pull response payload");
                let li = bufs.g2l[r.row as usize];
                r.dequantize_into(bufs.local_tab.row_mut(li as usize));
                pulled += 1;
            }
        }
        // Lane seconds are a clock delta (idle + visible occupancy), not
        // an extra charge — the clock trajectory is untouched.
        bufs.lane.pull_s += ctx.comm().clock().now_s() - lane_t0;
        // Dequantize-on-pull cost (encode + decode passes).
        ctx.comm_mut()
            .clock_mut()
            .charge_flops((pulled * dim * 2) as f64);
    }

    // --- Phase 5: remap triples to batch-local entity ids, counting
    // cache hits per touch while the global ids are still in hand. ----
    remap_and_count(&mut bufs.chunks, n_chunks, &bufs.g2l, store);

    // --- Phase 6: compute chunks in parallel (fixed chunk structure,
    // chunk-ordered merge — thread-count independent), then merge. ----
    let (loss, examples) = compute_and_merge(
        ctx,
        model,
        config,
        &mut bufs.chunks,
        n_chunks,
        &bufs.local_tab,
        rel,
        inv_batch,
        &mut bufs.ent_grad,
        &mut bufs.rel_grad,
    );
    let nonzero_rows = bufs.ent_grad.rows_above_norm(ZERO_ROW_EPS);
    bufs.ent_grad.ensure_sorted();
    let rows_sent = bufs.ent_grad.nnz();

    // --- Phase 7: split the entity gradient. Hot-set rows ride a shared
    // all-gather (ascending global id — ent_grad is sorted by local id
    // and the local order is the global-sorted touched order); cold rows
    // are encoded per owner, the own-rank bucket kept locally. --------
    encode_entity_grads(
        store,
        &bufs.touched,
        &bufs.ent_grad,
        dim,
        &mut bufs.hot_send,
        &mut bufs.cold_wire,
        p,
    );
    {
        let lane_t0 = ctx.comm().clock().now_s();
        for dst in 0..p {
            if dst != rank {
                ctx.comm_mut()
                    .send_bytes_as(dst, &bufs.cold_wire[dst], Collective::ShardPush)?;
            }
        }
        bufs.lane.push_s += ctx.comm().clock().now_s() - lane_t0;
    }

    // --- Phase 8: hot exchange. Decode in ascending rank order and
    // scale by 1/p — the replica gather-decode arithmetic exactly. ----
    hot_exchange(
        ctx,
        &bufs.hot_send,
        &mut bufs.hot_recv,
        &mut bufs.hot_counts,
        &mut bufs.hot_agg,
        p,
        dim,
    )?;

    // --- Phase 9: relation exchange — byte-for-byte the replica
    // trainer's plain all-gather arm. ---------------------------------
    relation_exchange(ctx, rng, &mut bufs.rel_grad, &mut bufs.gather, &mut bufs.rel_agg, dim)?;

    // --- Phase 10: cold aggregation at owners. Ascending source order
    // with the local contribution spliced at this rank's position keeps
    // the f32 sum order identical to the replica decode. --------------
    bufs.cold_agg.clear();
    let lane_t0 = ctx.comm().clock().now_s();
    for src in 0..p {
        if src == rank {
            add_payload_into(&bufs.cold_wire[rank], &mut bufs.cold_agg, "cold payload");
        } else {
            let msg = ctx.comm_mut().recv_bytes_from_as(src, Collective::ShardPush)?;
            add_payload_into(&msg.payload, &mut bufs.cold_agg, "cold payload");
        }
    }
    bufs.lane.push_s += ctx.comm().clock().now_s() - lane_t0;
    bufs.cold_agg.scale(1.0 / p as f32);
    bufs.cold_agg.ensure_sorted();

    // --- Phase 11: apply. Cached rows step replicated everywhere;
    // eligible-uncached rows step on the owner's arena; cold rows step
    // on the owner's arena from the p2p aggregate. Relation rows mirror
    // the replica's lazy path. ----------------------------------------
    let lr = config.base_lr * lr_scale;
    apply_updates(
        ctx,
        store,
        rel,
        rel_opt,
        &bufs.hot_agg,
        &bufs.cold_agg,
        &mut bufs.rel_agg,
        lr,
        lr_scale,
        dim,
    );

    // --- Phase 12: cache admission/eviction, driven only by the shared
    // hot stream so every rank transitions identically. ----------------
    admission(store, &bufs.hot_agg, &mut bufs.admit_ids, tick, &mut None);

    // --- Phase 13: admission sync. ------------------------------------
    admission_sync(
        ctx,
        store,
        &bufs.admit_ids,
        &mut bufs.adm_send,
        &mut bufs.adm_recv,
        &mut bufs.adm_counts,
        &mut bufs.row_buf,
        dim,
    )?;

    // --- Phase 14: reset the touched map entries for the next batch. --
    for &id in &bufs.touched {
        bufs.g2l[id as usize] = NO_SLOT;
    }

    Ok((loss, examples, nonzero_rows, rows_sent))
}

// --- Prefetch pipeline -------------------------------------------------

/// Stage, classify, and request `batch_idx` into `slot` — the launch
/// half of the prefetch pipeline. Requests go out immediately (anchored
/// at the pre-send clock) so their responses can drain behind whatever
/// the rank does next; resident rows are *not* read yet — owned and
/// cached rows are filled at use time so they observe every update up to
/// the batch before this one, exactly like the synchronous path.
#[allow(clippy::too_many_arguments)]
fn prefetch_launch(
    ctx: &mut NodeCtx,
    model: &dyn KgeModel,
    config: &TrainConfig,
    store: &ShardedStore,
    rel: &EmbeddingTable,
    shard: &[Triple],
    filter: &FilterIndex,
    bias: Option<&CorruptionBias>,
    slot: &mut PrefetchSlot,
    req_wire: &mut Vec<u8>,
    lane: &mut LaneTimes,
    epoch: usize,
    batch_idx: usize,
) -> Result<(), SimError> {
    let rank = ctx.rank();
    let p = ctx.size();
    let (bs, n_chunks) = batch_shape(config, shard);
    stage_batch(
        model,
        &slot.local_tab,
        rel,
        store.n_entities,
        shard,
        config,
        filter,
        bias,
        rank,
        epoch,
        batch_idx,
        bs,
        n_chunks,
        &mut slot.chunks,
    );
    let cap_rows = slot.local_tab.rows();
    build_touched(&slot.chunks, n_chunks, &mut slot.touched, &mut slot.g2l, cap_rows);
    for v in slot.req_ids.iter_mut() {
        v.clear();
    }
    for (li, &id) in slot.touched.iter().enumerate() {
        slot.class[li] = if store.is_cached(id) {
            CLASS_CACHED
        } else if store.is_owned(id) {
            CLASS_OWNED
        } else {
            slot.req_ids[store.owner_of(id)].push(id);
            CLASS_REMOTE
        };
    }
    slot.anchor_s = ctx.comm().clock().now_s();
    if p > 1 {
        for dst in 0..p {
            if dst == rank {
                continue;
            }
            req_wire.clear();
            for &id in &slot.req_ids[dst] {
                req_wire.extend_from_slice(&id.to_le_bytes());
            }
            ctx.comm_mut().send_bytes_as(dst, req_wire, Collective::ShardPull)?;
        }
        lane.pull_s += ctx.comm().clock().now_s() - slot.anchor_s;
    }
    slot.batch_idx = batch_idx;
    slot.bs = bs;
    slot.n_chunks = n_chunks;
    slot.live = true;
    Ok(())
}

/// Settle `slot`'s prefetched pull responses — receive with overlap
/// pricing against the launch anchor, decode remote rows — then fill
/// resident rows at use time (limbo rows were captured at eviction).
fn prefetch_settle_pulls(
    ctx: &mut NodeCtx,
    store: &ShardedStore,
    slot: &mut PrefetchSlot,
    lane: &mut LaneTimes,
) -> Result<(), SimError> {
    let rank = ctx.rank();
    let p = ctx.size();
    let dim = store.dim;
    if p > 1 {
        let lane_t0 = ctx.comm().clock().now_s();
        let mut hidden = 0.0f64;
        let mut pulled = 0usize;
        for src in 0..p {
            if src == rank {
                continue;
            }
            let (msg, stats) = ctx.comm_mut().recv_bytes_from_as_overlapped(
                src,
                Collective::ShardPull,
                slot.anchor_s,
            )?;
            hidden += stats.hidden_s;
            let mut dec = RowDecoder::new(&msg.payload).expect("pull response payload");
            while let Some(r) = dec.next_row() {
                let r = r.expect("pull response payload");
                let li = slot.g2l[r.row as usize];
                r.dequantize_into(slot.local_tab.row_mut(li as usize));
                pulled += 1;
            }
        }
        lane.pull_s += ctx.comm().clock().now_s() - lane_t0;
        lane.hidden_pull_s += hidden;
        ctx.comm_mut()
            .clock_mut()
            .charge_flops((pulled * dim * 2) as f64);
    }
    for (li, &id) in slot.touched.iter().enumerate() {
        match slot.class[li] {
            CLASS_OWNED => store.read_resident_into(id, slot.local_tab.row_mut(li)),
            CLASS_CACHED => {
                debug_assert!(store.is_cached(id), "cached-class row lost without limbo capture");
                store.read_resident_into(id, slot.local_tab.row_mut(li));
            }
            _ => {}
        }
    }
    Ok(())
}

/// Serve stashed pull requests in ascending source order, encoding the
/// owner's *current* arena state — the same point in the update sequence
/// the synchronous path serves from.
fn serve_requests(
    ctx: &mut NodeCtx,
    store: &ShardedStore,
    req_stash: &[Vec<u8>],
    resp_wire: &mut Vec<u8>,
    row_buf: &mut [f32],
    lane: &mut LaneTimes,
) -> Result<(), SimError> {
    let rank = ctx.rank();
    let p = ctx.size();
    let dim = store.dim;
    let lane_t0 = ctx.comm().clock().now_s();
    for (src, payload) in req_stash.iter().enumerate().take(p) {
        if src == rank {
            continue;
        }
        {
            let mut enc = RowEncoder::new(WireFormat::F32, dim, resp_wire);
            for c in payload.chunks_exact(4) {
                let id = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
                store.read_owned_into(id, row_buf);
                enc.push_f32(id, row_buf).expect("pull response row");
            }
            enc.finish();
        }
        ctx.comm_mut().send_bytes_as(src, resp_wire, Collective::ShardPull)?;
    }
    lane.pull_s += ctx.comm().clock().now_s() - lane_t0;
    Ok(())
}

/// Settle the deferred cold-push charges against the window that opened
/// at their send anchor (called right after the next batch's compute,
/// and at the epoch drain).
fn settle_pending_push(ctx: &mut NodeCtx, pending: &mut PendingPush, lane: &mut LaneTimes) {
    if !pending.live {
        return;
    }
    let lane_t0 = ctx.comm().clock().now_s();
    let mut hidden = 0.0f64;
    for &(arrival_s, bytes) in pending.items.iter() {
        let stats = ctx.comm_mut().charge_p2p_deferred(
            Collective::ShardPush,
            arrival_s,
            bytes,
            pending.anchor_s,
        );
        hidden += stats.hidden_s;
    }
    lane.push_s += ctx.comm().clock().now_s() - lane_t0;
    lane.hidden_push_s += hidden;
    pending.items.clear();
    pending.live = false;
}

/// Prime the prefetch ring at an epoch boundary: launch batch 0's slot,
/// then run the request/serve round synchronously — there is no earlier
/// batch to hide it behind, so it is priced like the synchronous path.
#[allow(clippy::too_many_arguments)]
pub fn sharded_epoch_prefetch_begin(
    ctx: &mut NodeCtx,
    model: &dyn KgeModel,
    config: &TrainConfig,
    store: &ShardedStore,
    rel: &EmbeddingTable,
    shard: &[Triple],
    filter: &FilterIndex,
    bias: Option<&CorruptionBias>,
    bufs: &mut ShardedBufs,
    ring: &mut PrefetchRing,
    epoch: usize,
    n_batches: usize,
) -> Result<(), SimError> {
    if n_batches == 0 {
        return Ok(());
    }
    ring.cur = 0;
    prefetch_launch(
        ctx,
        model,
        config,
        store,
        rel,
        shard,
        filter,
        bias,
        &mut ring.slots[0],
        &mut bufs.req_wire,
        &mut bufs.lane,
        epoch,
        0,
    )?;
    let rank = ctx.rank();
    let p = ctx.size();
    if p > 1 {
        let lane_t0 = ctx.comm().clock().now_s();
        for src in 0..p {
            if src == rank {
                continue;
            }
            let msg = ctx.comm_mut().recv_bytes_from_as(src, Collective::ShardPull)?;
            ring.req_stash[src].clear();
            ring.req_stash[src].extend_from_slice(&msg.payload);
        }
        bufs.lane.pull_s += ctx.comm().clock().now_s() - lane_t0;
        serve_requests(ctx, store, &ring.req_stash, &mut bufs.resp_wire, &mut bufs.row_buf, &mut bufs.lane)?;
    }
    Ok(())
}

/// One batch of the prefetch pipeline. The arithmetic — staging seeds,
/// touched order, gradient summation, admission stream — is identical to
/// [`sharded_batch_step`]; only *when* rows move changes: this batch's
/// pulls were requested a batch ago and settle behind the window that
/// has been open since, the next batch launches before compute, and the
/// previous batch's push charges settle after this compute.
#[allow(clippy::too_many_arguments)]
pub fn sharded_batch_step_prefetch(
    ctx: &mut NodeCtx,
    model: &dyn KgeModel,
    config: &TrainConfig,
    store: &mut ShardedStore,
    rel: &mut EmbeddingTable,
    rel_opt: &mut dyn RowOptimizer,
    shard: &[Triple],
    filter: &FilterIndex,
    bias: Option<&CorruptionBias>,
    bufs: &mut ShardedBufs,
    ring: &mut PrefetchRing,
    rng: &mut StdRng,
    epoch: usize,
    batch_idx: usize,
    n_batches: usize,
    tick: u64,
    lr_scale: f32,
) -> Result<(f64, usize, usize, usize), SimError> {
    let rank = ctx.rank();
    let p = ctx.size();
    let dim = store.dim;
    let cur = ring.cur;
    let nxt = cur ^ 1;
    debug_assert!(
        ring.slots[cur].live && ring.slots[cur].batch_idx == batch_idx,
        "prefetch ring out of step"
    );
    let next_live = batch_idx + 1 < n_batches;

    // --- A: settle this batch's prefetched pulls, fill resident rows. --
    prefetch_settle_pulls(ctx, store, &mut ring.slots[cur], &mut bufs.lane)?;

    // --- B: launch the next batch while this one computes. -------------
    if next_live {
        prefetch_launch(
            ctx,
            model,
            config,
            store,
            rel,
            shard,
            filter,
            bias,
            &mut ring.slots[nxt],
            &mut bufs.req_wire,
            &mut bufs.lane,
            epoch,
            batch_idx + 1,
        )?;
    }

    // --- C/D: remap + count, compute + merge (identical arithmetic). ---
    let (bs, n_chunks) = (ring.slots[cur].bs, ring.slots[cur].n_chunks);
    let inv_batch = if bs > 0 {
        1.0f32 / (bs * (1 + config.strategy.neg.train)) as f32
    } else {
        0.0
    };
    let (loss, examples) = {
        let slot = &mut ring.slots[cur];
        remap_and_count(&mut slot.chunks, n_chunks, &slot.g2l, store);
        compute_and_merge(
            ctx,
            model,
            config,
            &mut slot.chunks,
            n_chunks,
            &slot.local_tab,
            rel,
            inv_batch,
            &mut bufs.ent_grad,
            &mut bufs.rel_grad,
        )
    };
    let nonzero_rows = bufs.ent_grad.rows_above_norm(ZERO_ROW_EPS);
    bufs.ent_grad.ensure_sorted();
    let rows_sent = bufs.ent_grad.nnz();

    // --- E: the previous batch's cold pushes have had a full compute
    // phase to drain behind — settle their deferred charges now. --------
    settle_pending_push(ctx, &mut ring.pending_push, &mut bufs.lane);

    // --- F: encode hot + cold gradients; cold pushes go out now and are
    // priced on the receiver against this anchor. -----------------------
    encode_entity_grads(
        store,
        &ring.slots[cur].touched,
        &bufs.ent_grad,
        dim,
        &mut bufs.hot_send,
        &mut bufs.cold_wire,
        p,
    );
    ring.pending_push.anchor_s = ctx.comm().clock().now_s();
    {
        for dst in 0..p {
            if dst != rank {
                ctx.comm_mut()
                    .send_bytes_as(dst, &bufs.cold_wire[dst], Collective::ShardPush)?;
            }
        }
        bufs.lane.push_s += ctx.comm().clock().now_s() - ring.pending_push.anchor_s;
    }

    // --- G: hot exchange; H: relation exchange (unchanged collectives).
    hot_exchange(
        ctx,
        &bufs.hot_send,
        &mut bufs.hot_recv,
        &mut bufs.hot_counts,
        &mut bufs.hot_agg,
        p,
        dim,
    )?;
    relation_exchange(ctx, rng, &mut bufs.rel_grad, &mut bufs.gather, &mut bufs.rel_agg, dim)?;

    // --- I: cold aggregation. Per-pair FIFO puts the peer's *request*
    // for the next batch (sent at its launch, before its push) ahead in
    // the mailbox — pop and stash it first, then consume the push
    // payload unpriced, deferring its occupancy to the next window. -----
    bufs.cold_agg.clear();
    for src in 0..p {
        if src == rank {
            add_payload_into(&bufs.cold_wire[rank], &mut bufs.cold_agg, "cold payload");
            continue;
        }
        if next_live {
            let lane_t0 = ctx.comm().clock().now_s();
            let msg = ctx.comm_mut().recv_bytes_from_as(src, Collective::ShardPull)?;
            bufs.lane.pull_s += ctx.comm().clock().now_s() - lane_t0;
            ring.req_stash[src].clear();
            ring.req_stash[src].extend_from_slice(&msg.payload);
        }
        let msg = ctx
            .comm_mut()
            .recv_bytes_from_as_unpriced(src, Collective::ShardPush)?;
        ring.pending_push.items.push((msg.arrival_s, msg.payload.len()));
        add_payload_into(&msg.payload, &mut bufs.cold_agg, "cold payload");
    }
    ring.pending_push.live = !ring.pending_push.items.is_empty();
    bufs.cold_agg.scale(1.0 / p as f32);
    bufs.cold_agg.ensure_sorted();

    // --- J: apply (identical to the synchronous phase 11). -------------
    let lr = config.base_lr * lr_scale;
    apply_updates(
        ctx,
        store,
        rel,
        rel_opt,
        &bufs.hot_agg,
        &bufs.cold_agg,
        &mut bufs.rel_agg,
        lr,
        lr_scale,
        dim,
    );

    // --- K: admission, with evictions captured into the launched slot
    // (rows it classified as cached must keep their sync-path value). ---
    {
        let mut sink = if next_live {
            let slot = &mut ring.slots[nxt];
            Some(EvictSink {
                g2l: &slot.g2l,
                class: &mut slot.class,
                local_tab: &mut slot.local_tab,
            })
        } else {
            None
        };
        admission(store, &bufs.hot_agg, &mut bufs.admit_ids, tick, &mut sink);
    }

    // --- L: admission sync (identical collective). ---------------------
    admission_sync(
        ctx,
        store,
        &bufs.admit_ids,
        &mut bufs.adm_send,
        &mut bufs.adm_recv,
        &mut bufs.adm_counts,
        &mut bufs.row_buf,
        dim,
    )?;

    // --- M: serve the stashed requests with post-update rows. ----------
    if next_live && p > 1 {
        serve_requests(ctx, store, &ring.req_stash, &mut bufs.resp_wire, &mut bufs.row_buf, &mut bufs.lane)?;
    }

    // --- N: retire this slot and rotate the ring. ----------------------
    {
        let slot = &mut ring.slots[cur];
        for &id in &slot.touched {
            slot.g2l[id as usize] = NO_SLOT;
        }
        slot.live = false;
    }
    ring.cur = nxt;

    Ok((loss, examples, nonzero_rows, rows_sent))
}

/// Epoch-boundary drain: settle the last batch's deferred push charges
/// and clear the ring (every slot was consumed in order, so nothing else
/// is in flight).
pub fn sharded_epoch_prefetch_drain(
    ctx: &mut NodeCtx,
    bufs: &mut ShardedBufs,
    ring: &mut PrefetchRing,
) {
    settle_pending_push(ctx, &mut ring.pending_push, &mut bufs.lane);
    ring.reset();
}

impl ShardedStore {
    /// Wire-decode helper for the admission sync: `value` is already
    /// decoded; `m`/`v` runs are decoded straight into the cache slot.
    fn fill_admitted_from_wire(
        &mut self,
        id: u32,
        t: u32,
        value: &[f32],
        record: &[u8],
        dim: usize,
        f32_at: impl Fn(usize, usize) -> f32,
    ) {
        let _ = record;
        let slot = self.cache_slot[id as usize];
        if slot == NO_SLOT {
            return;
        }
        let s = slot as usize;
        if self.cache_synced[s] {
            return;
        }
        let d = self.dim;
        debug_assert_eq!(d, dim);
        self.cache_val[s * d..(s + 1) * d].copy_from_slice(value);
        for k in 0..d {
            self.cache_m[s * d + k] = f32_at(8 + 4 * d, k);
            self.cache_v[s * d + k] = f32_at(8 + 8 * d, k);
        }
        self.cache_t[s] = t;
        self.cache_synced[s] = true;
    }
}

/// Per-node outcome of a sharded run.
struct ShardNodeResult {
    report: Option<TrainReport>,
    entities: EmbeddingTable,
    relations: EmbeddingTable,
    wire_sent: u64,
    wire_recv: u64,
    sharded: ShardedReport,
}

/// Entity ownership for a world of `p` ranks, derived from the same
/// triple partition the trainer shards with.
fn owners_for(dataset: &Dataset, p: usize) -> Vec<u32> {
    let part = partition_for(&dataset.train, dataset.n_relations, p, false);
    entity_owners(&part, dataset.n_entities)
}

/// Train `dataset` with partitioned entity storage. Same contract as
/// [`crate::train`] (which delegates here when `config.sharded` is set):
/// returns the lead survivor's report and the assembled final model.
pub fn train_sharded(dataset: &Dataset, cluster: &Cluster, config: &TrainConfig) -> TrainOutcome {
    config.validate().expect("invalid training config");
    dataset.validate().expect("invalid dataset");
    assert!(
        config.sharded.is_some(),
        "train_sharded requires config.sharded"
    );
    let mut results = cluster.run(|ctx| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(node_pool_threads(ctx.size()))
            .build()
            .expect("node thread pool");
        pool.install(|| run_sharded_node(ctx, dataset, config))
    });
    let wire_sent: u64 = results.iter().map(|r| r.wire_sent).sum();
    let wire_recv: u64 = results.iter().map(|r| r.wire_recv).sum();
    let mut agg = ShardedReport::default();
    for r in &results {
        agg.pull_wire_bytes += r.sharded.pull_wire_bytes;
        agg.push_wire_bytes += r.sharded.push_wire_bytes;
        agg.cache_hits += r.sharded.cache_hits;
        agg.cache_accesses += r.sharded.cache_accesses;
        agg.entity_touches += r.sharded.entity_touches;
        agg.resident_model_bytes = agg.resident_model_bytes.max(r.sharded.resident_model_bytes);
        agg.opt_state_bytes = agg.opt_state_bytes.max(r.sharded.opt_state_bytes);
        agg.owned_rows = agg.owned_rows.max(r.sharded.owned_rows);
        agg.replica_model_bytes = r.sharded.replica_model_bytes;
        agg.hot_capacity = r.sharded.hot_capacity;
        agg.eligible_rows = r.sharded.eligible_rows;
        // Lane seconds are per-rank wall occupancy along the epoch's
        // critical path — the cluster-level figure is the slowest rank.
        agg.pull_lane_s = agg.pull_lane_s.max(r.sharded.pull_lane_s);
        agg.push_lane_s = agg.push_lane_s.max(r.sharded.push_lane_s);
        agg.hidden_pull_s = agg.hidden_pull_s.max(r.sharded.hidden_pull_s);
        agg.hidden_push_s = agg.hidden_push_s.max(r.sharded.hidden_push_s);
        agg.prefetch_epochs = agg.prefetch_epochs.max(r.sharded.prefetch_epochs);
    }
    let lead = results
        .iter()
        .position(|r| r.report.is_some())
        .expect("a surviving rank returns the report");
    let lead = results.swap_remove(lead);
    let mut report = lead.report.expect("position() found a report");
    report.wire_bytes_sent = wire_sent;
    report.wire_bytes_recv = wire_recv;
    report.sharded = Some(agg);
    TrainOutcome {
        report,
        entities: lead.entities,
        relations: lead.relations,
    }
}

fn run_sharded_node(ctx: &mut NodeCtx, dataset: &Dataset, config: &TrainConfig) -> ShardNodeResult {
    let scfg = config.sharded.expect("caller checked config.sharded");
    let mut rank = ctx.rank();
    let mut p = ctx.size();
    let initial_p = p;
    let model = config.model.build(config.rank);
    let model: &dyn KgeModel = model.as_ref();
    let dim = model.storage_dim();
    let n_entities = dataset.n_entities;
    let kind = if scfg.cold_int8 {
        ArenaKind::Int8
    } else {
        ArenaKind::F32
    };

    let (mut base_shard, _owned_rels, mut batches_per_epoch) =
        distribute(dataset, false, rank, p, config.batch_size);
    let mut shard = base_shard.clone();
    let filter = FilterIndex::build(dataset);
    let bias = if config.strategy.bern {
        Some(CorruptionBias::fit(dataset))
    } else {
        None
    };
    let degrees = dataset.stats().entity_degrees;

    // Identical Xavier init on every rank (entity table drawn before the
    // relation table, matching the replica trainer's stream use); the
    // full entity table is transient — owned rows move into the arena
    // and the replica is dropped before the epoch loop.
    let mut init_rng = StdRng::seed_from_u64(config.seed);
    let ent_init = EmbeddingTable::xavier(n_entities, dim, &mut init_rng);
    let mut rel = EmbeddingTable::xavier(dataset.n_relations, dim, &mut init_rng);
    let mut store = ShardedStore::new(
        kind,
        dim,
        rank,
        owners_for(dataset, p),
        &degrees,
        scfg.hot_cache_rows,
        config.base_lr,
    );
    store.init_owned_from(&ent_init);
    drop(ent_init);

    let mut rel_opt = config
        .optimizer
        .build(config.base_lr, dataset.n_relations, dim);
    let mut rng = StdRng::seed_from_u64(
        config.seed ^ (rank as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15),
    );
    let shuffler = EpochShuffler::new(config.seed ^ (rank as u64) << 32);
    let mut schedule = PlateauSchedule::new(
        p,
        config.lr_scale_cap,
        config.lr_decay,
        config.plateau_tolerance,
        config.max_lr_drops,
    );
    let mut bufs = ShardedBufs::new(dim, n_entities, p, config);
    let mut ring = if scfg.prefetch == PrefetchMode::Off {
        None
    } else {
        Some(PrefetchRing::new(dim, n_entities, p, config))
    };
    let mut prefetch_sel = PrefetchSelector::new(2);
    let mut prefetch_epochs = 0usize;

    let mut trace: Vec<EpochTrace> = Vec::new();
    let mut converged = false;
    let mut survived = true;
    let mut allgather_epochs = 0usize;
    let mut recoveries = 0usize;
    let mut crashed_ranks: Vec<usize> = Vec::new();
    // Global batch counter: the LRU tick. Shared by construction — every
    // rank increments it on exactly the same (completed) batches.
    let mut tick: u64 = 0;
    let mut epoch = 0usize;

    while epoch < config.max_epochs {
        ctx.comm_mut().barrier();
        let epoch_start = ctx.comm().clock().now_s();
        let bytes_at_start = sharded_bytes_sent(ctx);
        shard.copy_from_slice(&base_shard);
        shuffler.shuffle(&mut shard, epoch as u64);
        allgather_epochs += 1;
        let lr_scale = schedule.lr_scale();
        // The arm is decided at the epoch boundary — every rank computes
        // the same answer (the selector observes the shared simulated
        // clock), so the wire protocol agrees globally for the epoch.
        let use_prefetch = match scfg.prefetch {
            PrefetchMode::Off => false,
            PrefetchMode::On => true,
            PrefetchMode::Dynamic => prefetch_sel.prefetch_arm(),
        };

        let mut epoch_loss = 0.0f64;
        let mut epoch_examples = 0usize;
        let mut nonzero_rows_sum = 0usize;
        let mut rows_sent_sum = 0usize;
        let mut crashed_this_epoch = false;

        if use_prefetch {
            let ring = ring.as_mut().expect("prefetch arm implies a ring");
            match sharded_epoch_prefetch_begin(
                ctx,
                model,
                config,
                &store,
                &rel,
                &shard,
                &filter,
                bias.as_ref(),
                &mut bufs,
                ring,
                epoch,
                batches_per_epoch,
            ) {
                Ok(()) => {}
                Err(SimError::RankCrashed { .. }) => crashed_this_epoch = true,
                Err(e) => panic!("sharded prefetch prime: {e}"),
            }
        }

        if !crashed_this_epoch {
            'batches: for b in 0..batches_per_epoch {
                let step = if use_prefetch {
                    sharded_batch_step_prefetch(
                        ctx,
                        model,
                        config,
                        &mut store,
                        &mut rel,
                        rel_opt.as_mut(),
                        &shard,
                        &filter,
                        bias.as_ref(),
                        &mut bufs,
                        ring.as_mut().expect("prefetch arm implies a ring"),
                        &mut rng,
                        epoch,
                        b,
                        batches_per_epoch,
                        tick,
                        lr_scale,
                    )
                } else {
                    sharded_batch_step(
                        ctx,
                        model,
                        config,
                        &mut store,
                        &mut rel,
                        rel_opt.as_mut(),
                        &shard,
                        &filter,
                        bias.as_ref(),
                        &mut bufs,
                        &mut rng,
                        epoch,
                        b,
                        tick,
                        lr_scale,
                    )
                };
                match step {
                    Ok((loss, examples, nonzero, rows_sent)) => {
                        epoch_loss += loss;
                        epoch_examples += examples;
                        nonzero_rows_sum += nonzero;
                        rows_sent_sum += rows_sent;
                        tick += 1;
                    }
                    Err(SimError::RankCrashed { .. }) => {
                        crashed_this_epoch = true;
                        break 'batches;
                    }
                    Err(e) => panic!("sharded batch step: {e}"),
                }
            }
        }

        if crashed_this_epoch {
            // Aborted epochs yield no trace entry; un-count the tally.
            allgather_epochs -= 1;
            crashed_ranks.extend(ctx.comm().failed_ranks());
            // Discard in-flight prefetch slots and deferred push charges:
            // the shrink replaces the whole post office, so the matching
            // wire messages vanish with the old world — conservation
            // holds because both ends drop together.
            if let Some(r) = ring.as_mut() {
                r.reset();
            }
            if !config.recover_from_crashes {
                break;
            }
            match ctx.comm_mut().shrink() {
                Ok(true) => {
                    recoveries += 1;
                    rank = ctx.rank();
                    p = ctx.size();
                    migrate_after_shrink(ctx, dataset, config, &degrees, kind, &mut store);
                    let (s, _o, b) = distribute(dataset, false, rank, p, config.batch_size);
                    base_shard = s;
                    shard.clone_from(&base_shard);
                    batches_per_epoch = b;
                    bufs.resize_world(p);
                    if let Some(r) = ring.as_mut() {
                        r.resize_world(p);
                    }
                    prefetch_sel.reset();
                    ctx.comm_mut()
                        .clock_mut()
                        .charge_flops((dataset.train.len() * 8) as f64);
                    epoch += 1;
                    continue;
                }
                Ok(false) => {
                    // Sharded mode has no elastic rejoin: the survivors
                    // never re-admit, so this unparks only when the run
                    // ends and the lobby closes.
                    if ctx.comm_mut().await_rejoin().is_some() {
                        panic!("sharded mode does not support elastic rejoin");
                    }
                    survived = false;
                    break;
                }
                Err(e) => panic!("communicator shrink: {e}"),
            }
        }

        // Epoch-boundary ring drain (settles the last batch's deferred
        // push charges), then cache invalidation: owners absorb the cache.
        if use_prefetch {
            sharded_epoch_prefetch_drain(
                ctx,
                &mut bufs,
                ring.as_mut().expect("prefetch arm implies a ring"),
            );
            prefetch_epochs += 1;
        }
        store.flush_epoch();

        // `valid_samples == 0` is enforced by validate(), so the plateau
        // signal is the same constant the replica trainer's
        // `fast_valid_accuracy` returns — the LR/stop trajectory matches.
        let acc = 0.0f64;
        let epoch_time = ctx.comm().clock().now_s() - epoch_start;
        if scfg.prefetch == PrefetchMode::Dynamic {
            prefetch_sel.observe_epoch(epoch_time);
        }
        let batches = batches_per_epoch as f64;
        trace.push(EpochTrace {
            epoch,
            sim_seconds: epoch_time,
            comm: CommChoice::AllGather,
            valid_acc: acc,
            train_loss: if epoch_examples > 0 {
                epoch_loss / epoch_examples as f64
            } else {
                0.0
            },
            lr_scale,
            mean_nonzero_rows: nonzero_rows_sum as f64 / batches,
            mean_rows_sent: rows_sent_sum as f64 / batches,
            rs_sparsity: 0.0,
            bytes_sent: sharded_bytes_sent(ctx) - bytes_at_start,
            ranking: None,
        });
        if matches!(schedule.observe(acc), crate::lr::LrDecision::Converged) {
            converged = true;
            break;
        }
        epoch += 1;
    }

    if survived {
        ctx.comm().close_lobby();
    }

    // --- Final model assembly: a one-shot gather of owned rows over the
    // deterministic init base, so the outcome carries the full table the
    // replica API promises (the one transient full-table allocation the
    // steady state never pays). -----------------------------------------
    let entities = if survived {
        store.flush_epoch();
        let mut init_rng = StdRng::seed_from_u64(config.seed);
        let mut full = EmbeddingTable::xavier(n_entities, dim, &mut init_rng);
        {
            let mut enc = RowEncoder::new(WireFormat::F32, dim, &mut bufs.adm_send);
            for i in 0..store.owned_ids().len() {
                let id = store.owned_ids()[i];
                store.read_owned_into(id, &mut bufs.row_buf);
                enc.push_f32(id, &bufs.row_buf).expect("assembly row");
            }
            enc.finish();
        }
        ctx.comm_mut()
            .allgatherv_bytes_into(&bufs.adm_send, &mut bufs.adm_recv, &mut bufs.adm_counts)
            .expect("final sharded model assembly");
        let mut off = 0usize;
        for &c in bufs.adm_counts.iter() {
            let mut dec = RowDecoder::new(&bufs.adm_recv[off..off + c]).expect("assembly payload");
            off += c;
            while let Some(r) = dec.next_row() {
                let r = r.expect("assembly payload");
                r.dequantize_into(full.row_mut(r.row as usize));
            }
        }
        full
    } else {
        EmbeddingTable::zeros(1, dim)
    };

    let (cache_hits, cache_lookups, entity_touches) = store.hit_counters();
    let tr = ctx.comm().traffic().report();
    let sharded = ShardedReport {
        pull_wire_bytes: tr.bytes_sent(Collective::ShardPull),
        push_wire_bytes: tr.bytes_sent(Collective::ShardPush),
        cache_hits,
        cache_accesses: cache_lookups,
        entity_touches,
        resident_model_bytes: store.resident_model_bytes() + rel.nbytes(),
        replica_model_bytes: (n_entities + dataset.n_relations) * dim * 4,
        opt_state_bytes: store.opt_state_bytes() + 2 * rel.nbytes() + dataset.n_relations * 4,
        hot_capacity: store.capacity(),
        eligible_rows: store.eligible_rows(),
        owned_rows: store.owned_rows(),
        pull_lane_s: bufs.lane.pull_s,
        push_lane_s: bufs.lane.push_s,
        hidden_pull_s: bufs.lane.hidden_pull_s,
        hidden_push_s: bufs.lane.hidden_push_s,
        prefetch_epochs,
    };

    let report = if survived && rank == 0 {
        Some(TrainReport {
            dataset: dataset.name.clone(),
            nodes: initial_p,
            epochs: trace.len(),
            converged,
            sim_total_seconds: ctx.comm().clock().now_s(),
            breakdown: ctx.comm().clock().breakdown(),
            trace: trace.clone(),
            allreduce_epochs: 0,
            allgather_epochs,
            pipelined_epochs: 0,
            surviving_nodes: p,
            recoveries,
            rejoins: 0,
            checkpoints_written: 0,
            crashed_ranks,
            // Filled in by train_sharded(), which sums over every rank.
            wire_bytes_sent: 0,
            wire_bytes_recv: 0,
            sharded: None,
        })
    } else {
        None
    };
    ShardNodeResult {
        report,
        entities,
        relations: rel,
        wire_sent: tr.total_wire_sent(),
        wire_recv: tr.total_wire_recv(),
        sharded,
    }
}

/// Bytes this rank contributed to gradient traffic (collectives plus the
/// sharded pull/push buckets) — the sharded analogue of the replica
/// trainer's per-epoch byte accounting.
fn sharded_bytes_sent(ctx: &NodeCtx) -> u64 {
    let r = ctx.comm().traffic().report();
    r.bytes_sent(Collective::AllGatherV)
        + r.bytes_sent(Collective::ShardPull)
        + r.bytes_sent(Collective::ShardPush)
}

/// Survivor-side state migration after a communicator shrink: harvest
/// everything the survivors hold, exchange owned-and-not-cached rows,
/// rebuild ownership at the new world size, and regenerate rows that
/// died with the crash from the deterministic init (fresh Adam state).
fn migrate_after_shrink(
    ctx: &mut NodeCtx,
    dataset: &Dataset,
    config: &TrainConfig,
    degrees: &[usize],
    kind: ArenaKind,
    store: &mut ShardedStore,
) {
    let scfg = config.sharded.expect("sharded migration");
    let rank = ctx.rank();
    let p = ctx.size();
    let dim = store.dim;
    let n = store.n_entities;

    // Transient full-size recovery buffers (migration is rare; the
    // steady-state memory bound does not include this path).
    let mut full_val = vec![0f32; n * dim];
    let mut full_m = vec![0f32; n * dim];
    let mut full_v = vec![0f32; n * dim];
    let mut full_t = vec![0u32; n];
    let mut have = vec![false; n];
    store.export_cache_into(&mut full_val, &mut full_m, &mut full_v, &mut full_t, &mut have);

    // Exchange rows this rank owns that are not globally cached (cached
    // rows are replicated — every survivor already has them). Record:
    // id u32 | t u32 | value | m | v.
    let mut send: Vec<u8> = Vec::new();
    let mut row = vec![0f32; dim];
    for &id in store.owned_ids() {
        let i = id as usize;
        if have[i] {
            continue;
        }
        store.read_owned_into(id, &mut row);
        let (m, v, t) = store.owned_state(id);
        full_val[i * dim..(i + 1) * dim].copy_from_slice(&row);
        full_m[i * dim..(i + 1) * dim].copy_from_slice(m);
        full_v[i * dim..(i + 1) * dim].copy_from_slice(v);
        full_t[i] = t;
        have[i] = true;
        send.extend_from_slice(&id.to_le_bytes());
        send.extend_from_slice(&t.to_le_bytes());
        for &x in row.iter().chain(m).chain(v) {
            send.extend_from_slice(&x.to_le_bytes());
        }
    }
    let mut recv: Vec<u8> = Vec::new();
    let mut counts: Vec<usize> = Vec::new();
    ctx.comm_mut()
        .allgatherv_bytes_into(&send, &mut recv, &mut counts)
        .expect("a second crash during sharded state migration is unsupported");
    let rec = 8 + 12 * dim;
    let mut off = 0usize;
    while off + rec <= recv.len() {
        let b = &recv[off..off + rec];
        let id = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize;
        full_t[id] = u32::from_le_bytes([b[4], b[5], b[6], b[7]]);
        for k in 0..dim {
            let f = |base: usize| {
                let o = base + 4 * k;
                f32::from_le_bytes([b[o], b[o + 1], b[o + 2], b[o + 3]])
            };
            full_val[id * dim + k] = f(8);
            full_m[id * dim + k] = f(8 + 4 * dim);
            full_v[id * dim + k] = f(8 + 8 * dim);
        }
        have[id] = true;
        off += rec;
    }

    // Rebuild the store at the new world size. Rows nobody recovered
    // (owned by the crashed rank, not cached) restart from the
    // deterministic Xavier init with zero optimizer state — the same
    // "regenerate what died" policy the replica trainer applies to a
    // crashed rank's shard contribution.
    let mut init_rng = StdRng::seed_from_u64(config.seed);
    let ent_init = EmbeddingTable::xavier(n, dim, &mut init_rng);
    let mut new_store = ShardedStore::new(
        kind,
        dim,
        rank,
        owners_for(dataset, p),
        degrees,
        scfg.hot_cache_rows,
        config.base_lr,
    );
    let zeros = vec![0f32; dim];
    for i in 0..new_store.owned_ids().len() {
        let id = new_store.owned_ids()[i];
        let j = id as usize;
        if have[j] {
            new_store.set_owned_row(
                id,
                &full_val[j * dim..(j + 1) * dim],
                &full_m[j * dim..(j + 1) * dim],
                &full_v[j * dim..(j + 1) * dim],
                full_t[j],
            );
        } else {
            new_store.set_owned_row(id, ent_init.row(j), &zeros, &zeros, 0);
        }
    }
    // Carry the hit-rate counters across the rebuild.
    new_store.hits = store.hits;
    new_store.lookups = store.lookups;
    new_store.touches = store.touches;
    *store = new_store;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_admission_eviction_and_writeback() {
        let dim = 2;
        let owners = vec![0u32; 6];
        let degrees = vec![9usize, 8, 7, 6, 2, 1];
        let mut s = ShardedStore::new(ArenaKind::F32, dim, 0, owners, &degrees, 2, 1e-3);
        assert_eq!(s.capacity(), 2);
        assert!(s.is_eligible(0) && s.is_eligible(3));
        assert!(!s.is_eligible(4), "only top 2×capacity rows are eligible");
        // Seed arena rows.
        let mut t = EmbeddingTable::zeros(6, dim);
        t.row_mut(0).copy_from_slice(&[1.0, 1.0]);
        t.row_mut(1).copy_from_slice(&[2.0, 2.0]);
        t.row_mut(2).copy_from_slice(&[3.0, 3.0]);
        s.init_owned_from(&t);

        s.admit(0, 0);
        s.fill_admitted(0, 5, &[10.0, 10.0], &[0.5, 0.5], &[0.25, 0.25]);
        s.admit(1, 0);
        s.fill_admitted(1, 3, &[20.0, 20.0], &[0.0, 0.0], &[0.0, 0.0]);
        assert!(s.is_cached(0) && s.is_cached(1));

        // Row 0 is bumped at tick 1; admitting row 2 must evict row 1
        // (older tick) and write its synced state back to the arena.
        s.bump(0, 1);
        s.admit(2, 2);
        assert!(!s.is_cached(1) && s.is_cached(0) && s.is_cached(2));
        let mut out = [0f32; 2];
        s.read_owned_into(1, &mut out);
        assert_eq!(out, [20.0, 20.0], "eviction wrote the cache copy back");
        let (_, _, t1) = s.owned_state(1);
        assert_eq!(t1, 3);

        // Flushing drops everything and writes row 0 back too.
        s.flush_epoch();
        assert!(!s.is_cached(0) && !s.is_cached(2));
        s.read_owned_into(0, &mut out);
        assert_eq!(out, [10.0, 10.0]);
        // Row 2 was never synced: its arena value must be untouched.
        s.read_owned_into(2, &mut out);
        assert_eq!(out, [3.0, 3.0], "unsynced admission never writes back");
    }

    #[test]
    fn cached_and_owned_steps_agree() {
        // Stepping a row through the cache must produce exactly the same
        // value as stepping it through the arena — the replication
        // invariant the sharded protocol rests on.
        let dim = 4;
        let degrees = vec![5usize, 1];
        let g = [0.1f32, -0.2, 0.3, -0.4];
        let mut a = ShardedStore::new(ArenaKind::F32, dim, 0, vec![0, 0], &degrees, 1, 1e-3);
        let mut b = ShardedStore::new(ArenaKind::F32, dim, 0, vec![0, 0], &degrees, 1, 1e-3);
        let mut t = EmbeddingTable::zeros(2, dim);
        t.row_mut(0).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        a.init_owned_from(&t);
        b.init_owned_from(&t);

        a.step_owned(0, &g, 5e-3);
        b.admit(0, 0);
        b.read_owned_into(0, &mut vec![0.0; dim]);
        let (m, v, tt) = (vec![0f32; dim], vec![0f32; dim], 0);
        b.fill_admitted(0, tt, t.row(0), &m, &v);
        b.step_cached(0, &g, 5e-3);
        b.flush_epoch();

        let (mut ra, mut rb) = (vec![0f32; dim], vec![0f32; dim]);
        a.read_owned_into(0, &mut ra);
        b.read_owned_into(0, &mut rb);
        assert_eq!(ra, rb);
        let (ma, va, ta) = a.owned_state(0);
        let (mb, vb, tb) = b.owned_state(0);
        assert_eq!((ma, va, ta), (mb, vb, tb));
    }

    #[test]
    fn lru_queue_compaction_keeps_evicting_correctly() {
        let dim = 1;
        let n = 64usize;
        let degrees: Vec<usize> = (0..n).map(|i| n - i).collect();
        let mut s = ShardedStore::new(ArenaKind::F32, dim, 0, vec![0; n], &degrees, 4, 1e-3);
        let t = EmbeddingTable::zeros(n, dim);
        s.init_owned_from(&t);
        // Thousands of bumps force many compactions; the cache must keep
        // exactly `capacity` rows and always evict the stalest.
        for tick in 0..5000u64 {
            let id = (tick % 8) as u32;
            if s.is_cached(id) {
                s.bump(id, tick);
            } else {
                s.admit(id, tick);
                s.fill_admitted(id, 0, &[0.0], &[0.0], &[0.0]);
            }
        }
        assert_eq!(s.cache_len, 4);
    }
}
