//! Versioned, checksummed training checkpoints with bit-exact resume.
//!
//! A checkpoint captures **everything** a rank needs to continue training
//! as if it had never stopped: the model tables, optimizer moments,
//! error-feedback residuals, the per-node RNG stream position, the LR
//! schedule, the dynamic-comm selector, the epoch trace and tallies, the
//! simulated clock, the traffic counters, and the fault-stream cursors.
//! `tests/resume_determinism.rs` asserts the resulting resume is
//! bit-identical to the uninterrupted run — every model weight, every
//! loss value, every simulated second.
//!
//! ## Byte format (version 1)
//!
//! ```text
//! magic  b"KGCK" | version u32
//! then, in fixed order, one frame per section:
//!   tag u8 | len u64 | crc32 u32 | payload (len bytes)
//! ```
//!
//! All integers are little-endian. Each section's CRC-32 (IEEE) covers
//! its payload, so truncation and bit corruption are detected and
//! reported as typed [`CheckpointError`]s — a damaged checkpoint is
//! never silently loaded and never panics the loader.

use crate::comm_select::{CommChoice, SelectorSnapshot};
use crate::lr::PlateauSnapshot;
use crate::report::EpochTrace;
use kge_compress::ResidualStore;
use kge_core::{EmbeddingTable, OptimStateView};
use kge_eval::RankingMetrics;
use simgrid::{Collective, TimeBreakdown};
use std::path::{Path, PathBuf};

/// File magic: "KGC" + "K" for knowledge-graph checkpoint.
pub const MAGIC: [u8; 4] = *b"KGCK";
/// Current format version. Decoders reject anything else with
/// [`CheckpointError::UnsupportedVersion`] rather than misparse.
pub const VERSION: u32 = 1;

mod section {
    pub const HEADER: u8 = 1;
    pub const ENT_TABLE: u8 = 2;
    pub const REL_TABLE: u8 = 3;
    pub const ENT_OPT: u8 = 4;
    pub const REL_OPT: u8 = 5;
    pub const ENT_RESIDUAL: u8 = 6;
    pub const REL_RESIDUAL: u8 = 7;
    pub const RNG: u8 = 8;
    pub const SCHEDULE: u8 = 9;
    pub const SELECTOR: u8 = 10;
    pub const TALLIES: u8 = 11;
    pub const TRACE: u8 = 12;
    pub const CLOCK: u8 = 13;
    pub const TRAFFIC: u8 = 14;
    pub const SEQS: u8 = 15;
}

/// Fixed decode order of the sections in a version-1 checkpoint.
const SECTION_ORDER: [u8; 15] = [
    section::HEADER,
    section::ENT_TABLE,
    section::REL_TABLE,
    section::ENT_OPT,
    section::REL_OPT,
    section::ENT_RESIDUAL,
    section::REL_RESIDUAL,
    section::RNG,
    section::SCHEDULE,
    section::SELECTOR,
    section::TALLIES,
    section::TRACE,
    section::CLOCK,
    section::TRAFFIC,
    section::SEQS,
];

/// Why a checkpoint could not be written or loaded. Every malformed-input
/// path yields one of these — the loader never panics on bad bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure, with the underlying error's message.
    Io(String),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`VERSION`].
    UnsupportedVersion { found: u32, supported: u32 },
    /// The byte stream ended before a declared quantity.
    Truncated { need: usize, have: usize },
    /// A section's payload does not match its stored CRC-32.
    CrcMismatch { section: u8 },
    /// A section frame carries an unexpected tag (wrong order or an
    /// unknown section).
    BadSectionTag { expected: u8, found: u8 },
    /// An enum discriminant or flag byte holds an undefined value.
    BadValue { what: &'static str, value: u64 },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o: {e}"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::UnsupportedVersion { found, supported } => {
                write!(f, "checkpoint version {found} unsupported (this build reads {supported})")
            }
            CheckpointError::Truncated { need, have } => {
                write!(f, "truncated checkpoint: need {need} bytes, have {have}")
            }
            CheckpointError::CrcMismatch { section } => {
                write!(f, "checkpoint section {section} failed its CRC check")
            }
            CheckpointError::BadSectionTag { expected, found } => {
                write!(f, "checkpoint section tag {found} where {expected} was expected")
            }
            CheckpointError::BadValue { what, value } => {
                write!(f, "checkpoint field {what} holds undefined value {value}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

// --- CRC-32 (IEEE 802.3), table-driven. --------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// --- End-of-run tallies (checkpointed so a resumed report matches). ----

/// The trainer's running tallies, carried through checkpoints so the
/// final [`crate::report::TrainReport`] of a resumed run matches the
/// uninterrupted one.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Tallies {
    pub allreduce_epochs: usize,
    pub allgather_epochs: usize,
    pub pipelined_epochs: usize,
    pub recoveries: usize,
    pub rejoins: usize,
    pub checkpoints_written: usize,
    pub crashed_ranks: Vec<usize>,
}

/// Borrowed view of one rank's live training state, the encoder's input.
/// Everything is borrowed or `Copy`, so building a view costs nothing.
pub struct CheckpointView<'a> {
    pub world_size: usize,
    pub rank: usize,
    /// First epoch the resumed run executes.
    pub next_epoch: usize,
    pub seed: u64,
    pub ent: &'a EmbeddingTable,
    pub rel: &'a EmbeddingTable,
    pub ent_opt: OptimStateView<'a>,
    pub rel_opt: OptimStateView<'a>,
    pub ent_residual: &'a ResidualStore,
    pub rel_residual: &'a ResidualStore,
    /// Position of the per-node RNG stream (`StdRng::state`).
    pub rng_state: u64,
    pub schedule: PlateauSnapshot,
    pub selector: Option<SelectorSnapshot>,
    pub tallies: &'a Tallies,
    pub trace: &'a [EpochTrace],
    pub clock_now_s: f64,
    pub breakdown: TimeBreakdown,
    pub traffic: &'a [(Collective, [u64; 6])],
    pub coll_seq: u64,
    pub p2p_seq: &'a [u64],
}

/// Owned image of a decoded checkpoint.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    pub world_size: usize,
    pub rank: usize,
    pub next_epoch: usize,
    pub dim: usize,
    pub n_entities: usize,
    pub n_relations: usize,
    pub seed: u64,
    pub ent: EmbeddingTable,
    pub rel: EmbeddingTable,
    pub ent_opt: OptimSnapshot,
    pub rel_opt: OptimSnapshot,
    /// `(row, values)` pairs sorted by row id.
    pub ent_residual: Vec<(u32, Vec<f32>)>,
    pub rel_residual: Vec<(u32, Vec<f32>)>,
    pub rng_state: u64,
    pub schedule: PlateauSnapshot,
    pub selector: Option<SelectorSnapshot>,
    pub tallies: Tallies,
    pub trace: Vec<EpochTrace>,
    pub clock_now_s: f64,
    pub breakdown: TimeBreakdown,
    pub traffic: Vec<(Collective, [u64; 6])>,
    pub coll_seq: u64,
    pub p2p_seq: Vec<u64>,
}

/// Owned optimizer state decoded from a checkpoint; apply with
/// [`OptimSnapshot::as_view`] + `RowOptimizer::load_state`.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimSnapshot {
    Stateless,
    Adam {
        m: Vec<f32>,
        v: Vec<f32>,
        t: u64,
        row_t: Vec<u32>,
    },
    Adagrad {
        accum: Vec<f32>,
    },
}

impl OptimSnapshot {
    /// Borrow as the view type `RowOptimizer::load_state` consumes.
    pub fn as_view(&self) -> OptimStateView<'_> {
        match self {
            OptimSnapshot::Stateless => OptimStateView::Stateless,
            OptimSnapshot::Adam { m, v, t, row_t } => OptimStateView::Adam {
                m,
                v,
                t: *t,
                row_t,
            },
            OptimSnapshot::Adagrad { accum } => OptimStateView::Adagrad { accum },
        }
    }
}

// --- Enum tag maps. -----------------------------------------------------

fn comm_choice_tag(c: CommChoice) -> u8 {
    match c {
        CommChoice::AllReduce => 0,
        CommChoice::AllGather => 1,
        CommChoice::PipelinedAllReduce => 2,
        CommChoice::PipelinedAllGather => 3,
    }
}

fn comm_choice_from_tag(t: u8) -> Result<CommChoice, CheckpointError> {
    Ok(match t {
        0 => CommChoice::AllReduce,
        1 => CommChoice::AllGather,
        2 => CommChoice::PipelinedAllReduce,
        3 => CommChoice::PipelinedAllGather,
        other => {
            return Err(CheckpointError::BadValue {
                what: "comm choice",
                value: other as u64,
            })
        }
    })
}

fn collective_tag(c: Collective) -> u8 {
    match c {
        Collective::AllReduce => 0,
        Collective::AllGatherV => 1,
        Collective::Broadcast => 2,
        Collective::Barrier => 3,
        Collective::Gather => 4,
        Collective::PointToPoint => 5,
        Collective::ShardPull => 6,
        Collective::ShardPush => 7,
    }
}

fn collective_from_tag(t: u8) -> Result<Collective, CheckpointError> {
    Ok(match t {
        0 => Collective::AllReduce,
        1 => Collective::AllGatherV,
        2 => Collective::Broadcast,
        3 => Collective::Barrier,
        4 => Collective::Gather,
        5 => Collective::PointToPoint,
        6 => Collective::ShardPull,
        7 => Collective::ShardPush,
        other => {
            return Err(CheckpointError::BadValue {
                what: "collective",
                value: other as u64,
            })
        }
    })
}

// --- Writer. ------------------------------------------------------------

struct Writer<'a> {
    buf: &'a mut Vec<u8>,
}

/// Offsets of an open section frame, patched by [`Writer::end_section`].
struct OpenSection {
    len_at: usize,
    crc_at: usize,
    payload_at: usize,
}

impl Writer<'_> {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32s(&mut self, vs: &[f32]) {
        for &v in vs {
            self.f32(v);
        }
    }

    fn begin_section(&mut self, tag: u8) -> OpenSection {
        self.u8(tag);
        let len_at = self.buf.len();
        self.u64(0); // patched
        let crc_at = self.buf.len();
        self.u32(0); // patched
        OpenSection {
            len_at,
            crc_at,
            payload_at: self.buf.len(),
        }
    }

    fn end_section(&mut self, open: OpenSection) {
        let len = (self.buf.len() - open.payload_at) as u64;
        let crc = crc32(&self.buf[open.payload_at..]);
        self.buf[open.len_at..open.len_at + 8].copy_from_slice(&len.to_le_bytes());
        self.buf[open.crc_at..open.crc_at + 4].copy_from_slice(&crc.to_le_bytes());
    }

    fn table(&mut self, tag: u8, t: &EmbeddingTable) {
        let s = self.begin_section(tag);
        self.u64(t.rows() as u64);
        self.u32(t.dim() as u32);
        self.f32s(t.as_slice());
        self.end_section(s);
    }

    fn optim(&mut self, tag: u8, view: OptimStateView<'_>) {
        let s = self.begin_section(tag);
        match view {
            OptimStateView::Stateless => self.u8(0),
            OptimStateView::Adam { m, v, t, row_t } => {
                self.u8(1);
                self.u64(m.len() as u64);
                self.f32s(m);
                self.f32s(v);
                self.u64(t);
                self.u64(row_t.len() as u64);
                for &r in row_t {
                    self.u32(r);
                }
            }
            OptimStateView::Adagrad { accum } => {
                self.u8(2);
                self.u64(accum.len() as u64);
                self.f32s(accum);
            }
        }
        self.end_section(s);
    }

    fn residual(&mut self, tag: u8, store: &ResidualStore, ids: &mut Vec<u32>) {
        store.sorted_ids_into(ids);
        let s = self.begin_section(tag);
        self.u64(ids.len() as u64);
        for &row in ids.iter() {
            let values = store.get_row(row).expect("sorted id present in store");
            self.u32(row);
            self.u32(values.len() as u32);
            self.f32s(values);
        }
        self.end_section(s);
    }
}

// --- Reader. ------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.buf.len() - self.pos < n {
            return Err(CheckpointError::Truncated {
                need: n,
                have: self.buf.len() - self.pos,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A length field that will index `stride`-byte records: bounded by the
    /// remaining payload so corrupted counts cannot trigger huge
    /// allocations before the (inevitable) truncation error.
    fn count(&mut self, stride: usize) -> Result<usize, CheckpointError> {
        let n = self.u64()? as usize;
        let need = n.saturating_mul(stride.max(1));
        if need > self.remaining() {
            return Err(CheckpointError::Truncated {
                need,
                have: self.remaining(),
            });
        }
        Ok(n)
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, CheckpointError> {
        let bytes = self.take(n * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Open the next section frame: check its tag, verify its CRC, and
    /// return a sub-reader over exactly its payload.
    fn section(&mut self, expected: u8) -> Result<Reader<'a>, CheckpointError> {
        let found = self.u8()?;
        if found != expected {
            return Err(CheckpointError::BadSectionTag { expected, found });
        }
        let len = self.u64()? as usize;
        let crc = self.u32()?;
        let payload = self.take(len)?;
        if crc32(payload) != crc {
            return Err(CheckpointError::CrcMismatch { section: expected });
        }
        Ok(Reader {
            buf: payload,
            pos: 0,
        })
    }

    fn table(&mut self) -> Result<EmbeddingTable, CheckpointError> {
        let rows = self.count(4)?;
        let dim = self.u32()? as usize;
        if rows.saturating_mul(dim).saturating_mul(4) > self.remaining() {
            return Err(CheckpointError::Truncated {
                need: rows * dim * 4,
                have: self.remaining(),
            });
        }
        let data = self.f32s(rows * dim)?;
        let mut t = EmbeddingTable::zeros(rows, dim);
        t.as_mut_slice().copy_from_slice(&data);
        Ok(t)
    }

    fn optim(&mut self) -> Result<OptimSnapshot, CheckpointError> {
        Ok(match self.u8()? {
            0 => OptimSnapshot::Stateless,
            1 => {
                let n = self.count(8)?; // m + v, 4 bytes each
                let m = self.f32s(n)?;
                let v = self.f32s(n)?;
                let t = self.u64()?;
                let rows = self.count(4)?;
                let mut row_t = Vec::with_capacity(rows);
                for _ in 0..rows {
                    row_t.push(self.u32()?);
                }
                OptimSnapshot::Adam { m, v, t, row_t }
            }
            2 => {
                let n = self.count(4)?;
                OptimSnapshot::Adagrad {
                    accum: self.f32s(n)?,
                }
            }
            other => {
                return Err(CheckpointError::BadValue {
                    what: "optimizer state",
                    value: other as u64,
                })
            }
        })
    }

    fn residual(&mut self) -> Result<Vec<(u32, Vec<f32>)>, CheckpointError> {
        let n = self.count(8)?; // id + width, minimum per row
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let id = self.u32()?;
            let width = self.u32()? as usize;
            if width * 4 > self.remaining() {
                return Err(CheckpointError::Truncated {
                    need: width * 4,
                    have: self.remaining(),
                });
            }
            rows.push((id, self.f32s(width)?));
        }
        Ok(rows)
    }
}

// --- Encode. ------------------------------------------------------------

/// Serialize `view` into `out` (cleared first; capacity is kept, so a
/// pooled buffer makes steady-state checkpointing allocation-free once
/// warm). `ids_scratch` is the reused row-id buffer for residual export.
pub fn encode_into(view: &CheckpointView<'_>, ids_scratch: &mut Vec<u32>, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    let mut w = Writer { buf: out };

    let s = w.begin_section(section::HEADER);
    w.u32(view.world_size as u32);
    w.u32(view.rank as u32);
    w.u64(view.next_epoch as u64);
    w.u32(view.ent.dim() as u32);
    w.u64(view.ent.rows() as u64);
    w.u64(view.rel.rows() as u64);
    w.u64(view.seed);
    w.end_section(s);

    w.table(section::ENT_TABLE, view.ent);
    w.table(section::REL_TABLE, view.rel);
    w.optim(section::ENT_OPT, view.ent_opt);
    w.optim(section::REL_OPT, view.rel_opt);
    w.residual(section::ENT_RESIDUAL, view.ent_residual, ids_scratch);
    w.residual(section::REL_RESIDUAL, view.rel_residual, ids_scratch);

    let s = w.begin_section(section::RNG);
    w.u64(view.rng_state);
    w.end_section(s);

    let s = w.begin_section(section::SCHEDULE);
    let sched = &view.schedule;
    w.f32(sched.node_scale);
    w.f32(sched.decay_scale);
    w.f32(sched.decay);
    w.u64(sched.tolerance);
    w.u64(sched.max_drops);
    w.u64(sched.drops);
    w.f64(sched.best);
    w.u64(sched.since_best);
    w.u8(sched.converged as u8);
    w.end_section(s);

    let s = w.begin_section(section::SELECTOR);
    match &view.selector {
        None => w.u8(0),
        Some(sel) => {
            w.u8(1);
            w.u8(sel.state);
            w.u8(comm_choice_tag(sel.arm));
            w.u64(sel.check_every);
            w.u64(sel.epoch);
            match sel.last_allreduce_time {
                None => w.u8(0),
                Some(t) => {
                    w.u8(1);
                    w.f64(t);
                }
            }
            w.f64(sel.gather_time);
        }
    }
    w.end_section(s);

    let s = w.begin_section(section::TALLIES);
    let t = view.tallies;
    w.u64(t.allreduce_epochs as u64);
    w.u64(t.allgather_epochs as u64);
    w.u64(t.pipelined_epochs as u64);
    w.u64(t.recoveries as u64);
    w.u64(t.rejoins as u64);
    w.u64(t.checkpoints_written as u64);
    w.u64(t.crashed_ranks.len() as u64);
    for &r in &t.crashed_ranks {
        w.u64(r as u64);
    }
    w.end_section(s);

    let s = w.begin_section(section::TRACE);
    w.u64(view.trace.len() as u64);
    for e in view.trace {
        w.u64(e.epoch as u64);
        w.f64(e.sim_seconds);
        w.u8(comm_choice_tag(e.comm));
        w.f64(e.valid_acc);
        w.f64(e.train_loss);
        w.f32(e.lr_scale);
        w.f64(e.mean_nonzero_rows);
        w.f64(e.mean_rows_sent);
        w.f64(e.rs_sparsity);
        w.u64(e.bytes_sent);
        match &e.ranking {
            None => w.u8(0),
            Some(m) => {
                w.u8(1);
                w.f64(m.mrr);
                w.f64(m.mean_rank);
                w.f64(m.hits1);
                w.f64(m.hits3);
                w.f64(m.hits10);
                w.u64(m.n_queries as u64);
            }
        }
    }
    w.end_section(s);

    let s = w.begin_section(section::CLOCK);
    w.f64(view.clock_now_s);
    let b = &view.breakdown;
    w.f64(b.compute_s);
    w.f64(b.comm_s);
    w.f64(b.idle_s);
    w.f64(b.fault_s);
    w.f64(b.retry_s);
    w.f64(b.checkpoint_s);
    w.f64(b.overlap_s);
    w.f64(b.hidden_comm_s);
    w.end_section(s);

    let s = w.begin_section(section::TRAFFIC);
    w.u64(view.traffic.len() as u64);
    for &(op, counters) in view.traffic {
        w.u8(collective_tag(op));
        for c in counters {
            w.u64(c);
        }
    }
    w.end_section(s);

    let s = w.begin_section(section::SEQS);
    w.u64(view.coll_seq);
    w.u64(view.p2p_seq.len() as u64);
    for &v in view.p2p_seq {
        w.u64(v);
    }
    w.end_section(s);
}

// --- Decode. ------------------------------------------------------------

/// Parse and validate a checkpoint image. Any structural damage —
/// truncation, bit flips, wrong magic or version, undefined enum values —
/// returns a typed error; this function never panics on malformed input.
pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }

    let mut h = r.section(SECTION_ORDER[0])?;
    let world_size = h.u32()? as usize;
    let rank = h.u32()? as usize;
    let next_epoch = h.u64()? as usize;
    let dim = h.u32()? as usize;
    let n_entities = h.u64()? as usize;
    let n_relations = h.u64()? as usize;
    let seed = h.u64()?;

    let ent = r.section(section::ENT_TABLE)?.table()?;
    let rel = r.section(section::REL_TABLE)?.table()?;
    let ent_opt = r.section(section::ENT_OPT)?.optim()?;
    let rel_opt = r.section(section::REL_OPT)?.optim()?;
    let ent_residual = r.section(section::ENT_RESIDUAL)?.residual()?;
    let rel_residual = r.section(section::REL_RESIDUAL)?.residual()?;
    let rng_state = r.section(section::RNG)?.u64()?;

    let mut s = r.section(section::SCHEDULE)?;
    let schedule = PlateauSnapshot {
        node_scale: s.f32()?,
        decay_scale: s.f32()?,
        decay: s.f32()?,
        tolerance: s.u64()?,
        max_drops: s.u64()?,
        drops: s.u64()?,
        best: s.f64()?,
        since_best: s.u64()?,
        converged: match s.u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(CheckpointError::BadValue {
                    what: "schedule converged flag",
                    value: other as u64,
                })
            }
        },
    };

    let mut s = r.section(section::SELECTOR)?;
    let selector = match s.u8()? {
        0 => None,
        1 => {
            let state = s.u8()?;
            let arm = comm_choice_from_tag(s.u8()?)?;
            let check_every = s.u64()?;
            let epoch = s.u64()?;
            let last_allreduce_time = match s.u8()? {
                0 => None,
                1 => Some(s.f64()?),
                other => {
                    return Err(CheckpointError::BadValue {
                        what: "selector time flag",
                        value: other as u64,
                    })
                }
            };
            Some(SelectorSnapshot {
                state,
                arm,
                check_every,
                epoch,
                last_allreduce_time,
                gather_time: s.f64()?,
            })
        }
        other => {
            return Err(CheckpointError::BadValue {
                what: "selector presence flag",
                value: other as u64,
            })
        }
    };

    let mut s = r.section(section::TALLIES)?;
    let mut tallies = Tallies {
        allreduce_epochs: s.u64()? as usize,
        allgather_epochs: s.u64()? as usize,
        pipelined_epochs: s.u64()? as usize,
        recoveries: s.u64()? as usize,
        rejoins: s.u64()? as usize,
        checkpoints_written: s.u64()? as usize,
        crashed_ranks: Vec::new(),
    };
    let n_crashed = s.count(8)?;
    for _ in 0..n_crashed {
        tallies.crashed_ranks.push(s.u64()? as usize);
    }

    let mut s = r.section(section::TRACE)?;
    let n_trace = s.count(8)?;
    let mut trace = Vec::with_capacity(n_trace);
    for _ in 0..n_trace {
        let epoch = s.u64()? as usize;
        let sim_seconds = s.f64()?;
        let comm = comm_choice_from_tag(s.u8()?)?;
        let valid_acc = s.f64()?;
        let train_loss = s.f64()?;
        let lr_scale = s.f32()?;
        let mean_nonzero_rows = s.f64()?;
        let mean_rows_sent = s.f64()?;
        let rs_sparsity = s.f64()?;
        let bytes_sent = s.u64()?;
        let ranking = match s.u8()? {
            0 => None,
            1 => Some(RankingMetrics {
                mrr: s.f64()?,
                mean_rank: s.f64()?,
                hits1: s.f64()?,
                hits3: s.f64()?,
                hits10: s.f64()?,
                n_queries: s.u64()? as usize,
            }),
            other => {
                return Err(CheckpointError::BadValue {
                    what: "trace ranking flag",
                    value: other as u64,
                })
            }
        };
        trace.push(EpochTrace {
            epoch,
            sim_seconds,
            comm,
            valid_acc,
            train_loss,
            lr_scale,
            mean_nonzero_rows,
            mean_rows_sent,
            rs_sparsity,
            bytes_sent,
            ranking,
        });
    }

    let mut s = r.section(section::CLOCK)?;
    let clock_now_s = s.f64()?;
    let breakdown = TimeBreakdown {
        compute_s: s.f64()?,
        comm_s: s.f64()?,
        idle_s: s.f64()?,
        fault_s: s.f64()?,
        retry_s: s.f64()?,
        checkpoint_s: s.f64()?,
        overlap_s: s.f64()?,
        hidden_comm_s: s.f64()?,
    };

    let mut s = r.section(section::TRAFFIC)?;
    let n_traffic = s.count(49)?; // tag + 6 × u64 per entry
    let mut traffic = Vec::with_capacity(n_traffic);
    for _ in 0..n_traffic {
        let op = collective_from_tag(s.u8()?)?;
        let mut counters = [0u64; 6];
        for c in counters.iter_mut() {
            *c = s.u64()?;
        }
        traffic.push((op, counters));
    }

    let mut s = r.section(section::SEQS)?;
    let coll_seq = s.u64()?;
    let n_p2p = s.count(8)?;
    let mut p2p_seq = Vec::with_capacity(n_p2p);
    for _ in 0..n_p2p {
        p2p_seq.push(s.u64()?);
    }

    Ok(Checkpoint {
        world_size,
        rank,
        next_epoch,
        dim,
        n_entities,
        n_relations,
        seed,
        ent,
        rel,
        ent_opt,
        rel_opt,
        ent_residual,
        rel_residual,
        rng_state,
        schedule,
        selector,
        tallies,
        trace,
        clock_now_s,
        breakdown,
        traffic,
        coll_seq,
        p2p_seq,
    })
}

// --- Files. -------------------------------------------------------------

/// The per-rank checkpoint file inside `dir`.
pub fn checkpoint_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("ckpt-r{rank}.kgc"))
}

/// Write a checkpoint image atomically: the bytes land in a temporary
/// sibling first and are renamed over `path`, so a crash mid-write leaves
/// the previous checkpoint intact rather than a torn file.
pub fn write_file(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| CheckpointError::Io(e.to_string()))?;
    }
    let tmp = path.with_extension("kgc.tmp");
    std::fs::write(&tmp, bytes).map_err(|e| CheckpointError::Io(e.to_string()))?;
    std::fs::rename(&tmp, path).map_err(|e| CheckpointError::Io(e.to_string()))
}

/// Read and decode the checkpoint at `path`.
pub fn read_file(path: &Path) -> Result<Checkpoint, CheckpointError> {
    let bytes = std::fs::read(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
    decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[allow(clippy::type_complexity)]
    fn sample_view_parts() -> (
        EmbeddingTable,
        EmbeddingTable,
        ResidualStore,
        ResidualStore,
        Tallies,
        Vec<EpochTrace>,
        Vec<(Collective, [u64; 6])>,
        Vec<u64>,
    ) {
        let mut rng = StdRng::seed_from_u64(7);
        let ent = EmbeddingTable::xavier(11, 6, &mut rng);
        let rel = EmbeddingTable::xavier(3, 6, &mut rng);
        let mut ent_res = ResidualStore::new();
        ent_res.set_row(4, &[0.5, -0.25, 0.0, 1.0, -1.0, 0.125]);
        ent_res.set_row(1, &[1.5; 6]);
        let rel_res = ResidualStore::new();
        let tallies = Tallies {
            allreduce_epochs: 3,
            allgather_epochs: 2,
            pipelined_epochs: 1,
            recoveries: 1,
            rejoins: 1,
            checkpoints_written: 2,
            crashed_ranks: vec![2],
        };
        let trace = vec![EpochTrace {
            epoch: 0,
            sim_seconds: 1.25,
            comm: CommChoice::PipelinedAllGather,
            valid_acc: 0.5,
            train_loss: 0.75,
            lr_scale: 2.0,
            mean_nonzero_rows: 10.0,
            mean_rows_sent: 8.0,
            rs_sparsity: 0.2,
            bytes_sent: 4096,
            ranking: Some(RankingMetrics {
                mrr: 0.4,
                mean_rank: 12.0,
                hits1: 0.25,
                hits3: 0.5,
                hits10: 0.75,
                n_queries: 64,
            }),
        }];
        let traffic = vec![
            (Collective::AllReduce, [5, 100, 200, 80, 90, 1]),
            (Collective::Barrier, [7, 0, 0, 0, 0, 0]),
        ];
        let p2p = vec![3, 0, 9];
        (ent, rel, ent_res, rel_res, tallies, trace, traffic, p2p)
    }

    fn encode_sample() -> Vec<u8> {
        let (ent, rel, ent_res, rel_res, tallies, trace, traffic, p2p) = sample_view_parts();
        let view = CheckpointView {
            world_size: 4,
            rank: 1,
            next_epoch: 5,
            seed: 42,
            ent: &ent,
            rel: &rel,
            ent_opt: OptimStateView::Adam {
                m: &[0.1; 66],
                v: &[0.2; 66],
                t: 9,
                row_t: &[3; 11],
            },
            rel_opt: OptimStateView::Stateless,
            ent_residual: &ent_res,
            rel_residual: &rel_res,
            rng_state: 0xDEAD_BEEF,
            schedule: PlateauSnapshot {
                node_scale: 4.0,
                decay_scale: 0.1,
                decay: 0.1,
                tolerance: 15,
                max_drops: 2,
                drops: 1,
                best: 0.625,
                since_best: 3,
                converged: false,
            },
            selector: Some(SelectorSnapshot {
                state: 2,
                arm: CommChoice::PipelinedAllGather,
                check_every: 10,
                epoch: 21,
                last_allreduce_time: Some(3.5),
                gather_time: 2.75,
            }),
            tallies: &tallies,
            trace: &trace,
            clock_now_s: 123.5,
            breakdown: TimeBreakdown {
                compute_s: 100.0,
                comm_s: 20.0,
                idle_s: 2.0,
                fault_s: 1.0,
                retry_s: 0.25,
                checkpoint_s: 0.25,
                overlap_s: 5.0,
                hidden_comm_s: 4.0,
            },
            traffic: &traffic,
            coll_seq: 77,
            p2p_seq: &p2p,
        };
        let mut out = Vec::new();
        let mut ids = Vec::new();
        encode_into(&view, &mut ids, &mut out);
        out
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let bytes = encode_sample();
        let (ent, rel, ..) = sample_view_parts();
        let ck = decode(&bytes).expect("decode");
        assert_eq!(ck.world_size, 4);
        assert_eq!(ck.rank, 1);
        assert_eq!(ck.next_epoch, 5);
        assert_eq!((ck.dim, ck.n_entities, ck.n_relations), (6, 11, 3));
        assert_eq!(ck.seed, 42);
        assert_eq!(ck.ent.as_slice(), ent.as_slice());
        assert_eq!(ck.rel.as_slice(), rel.as_slice());
        match &ck.ent_opt {
            OptimSnapshot::Adam { m, v, t, row_t } => {
                assert_eq!(m.len(), 66);
                assert!(m.iter().all(|&x| x == 0.1) && v.iter().all(|&x| x == 0.2));
                assert_eq!(*t, 9);
                assert_eq!(row_t, &vec![3u32; 11]);
            }
            other => panic!("wrong optim state: {other:?}"),
        }
        assert_eq!(ck.rel_opt, OptimSnapshot::Stateless);
        assert_eq!(ck.ent_residual.len(), 2);
        assert_eq!(ck.ent_residual[0].0, 1, "sorted by row id");
        assert_eq!(ck.ent_residual[1].1[3], 1.0);
        assert!(ck.rel_residual.is_empty());
        assert_eq!(ck.rng_state, 0xDEAD_BEEF);
        assert_eq!(ck.schedule.drops, 1);
        assert_eq!(ck.schedule.best, 0.625);
        let sel = ck.selector.expect("selector present");
        assert_eq!(sel.arm, CommChoice::PipelinedAllGather);
        assert_eq!(sel.last_allreduce_time, Some(3.5));
        assert_eq!(ck.tallies.crashed_ranks, vec![2]);
        assert_eq!(ck.tallies.rejoins, 1);
        assert_eq!(ck.trace.len(), 1);
        assert_eq!(ck.trace[0].ranking.unwrap().n_queries, 64);
        assert_eq!(ck.trace[0].comm, CommChoice::PipelinedAllGather);
        assert_eq!(ck.clock_now_s, 123.5);
        assert_eq!(ck.breakdown.checkpoint_s, 0.25);
        assert_eq!(ck.traffic.len(), 2);
        assert_eq!(ck.traffic[0].1, [5, 100, 200, 80, 90, 1]);
        assert_eq!(ck.coll_seq, 77);
        assert_eq!(ck.p2p_seq, vec![3, 0, 9]);
    }

    #[test]
    fn truncation_at_any_point_is_a_typed_error() {
        let bytes = encode_sample();
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).expect_err("truncated input must fail");
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated { .. }
                        | CheckpointError::BadMagic
                        | CheckpointError::CrcMismatch { .. }
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn corruption_is_detected_by_section_crcs() {
        let bytes = encode_sample();
        // Flip one bit somewhere in every section's payload region (skip
        // magic + version, whose damage surfaces as BadMagic/Version).
        let mut hits = 0usize;
        for i in (8..bytes.len()).step_by(97) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            if decode(&bad).is_err() {
                hits += 1;
            }
        }
        assert!(hits > 0, "bit flips must be caught");
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let bytes = encode_sample();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(decode(&bad), Err(CheckpointError::BadMagic)));
        let mut future = bytes.clone();
        future[4..8].copy_from_slice(&99u32.to_le_bytes());
        match decode(&future) {
            Err(CheckpointError::UnsupportedVersion { found: 99, supported }) => {
                assert_eq!(supported, VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip_is_atomic_and_readable() {
        let dir = std::env::temp_dir().join(format!("kgc-test-{}", std::process::id()));
        let path = checkpoint_path(&dir, 3);
        assert!(path.to_string_lossy().ends_with("ckpt-r3.kgc"));
        let bytes = encode_sample();
        write_file(&path, &bytes).expect("write");
        let ck = read_file(&path).expect("read");
        assert_eq!(ck.rank, 1);
        // Overwrite keeps the file readable (atomic rename).
        write_file(&path, &bytes).expect("rewrite");
        assert!(read_file(&path).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error_not_panic() {
        let err = read_file(Path::new("/nonexistent/dir/ckpt-r0.kgc")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }
}
