//! §4.1 — Dynamic selection between gradient-exchange strategies.
//!
//! The paper starts training with all-reduce. Every `k`-th epoch (k = 10)
//! it probes the alternative collectives and compares the measured epoch
//! times; if a probe was faster than the last all-reduce epoch, it
//! switches to the winning arm for the rest of training, otherwise it
//! stays on all-reduce. (Fig. 2's observation that the number of non-zero
//! gradient rows shrinks as training converges is what makes the later
//! switch profitable.)
//!
//! Beyond the paper's two arms, the selector also considers the
//! *pipelined* variants of both collectives (communication overlapped
//! with the next batch's compute, staleness window 1), so DRS decides not
//! just which collective to run but **when** — synchronously or
//! overlapped. A probe round costs two epochs: one times the synchronous
//! all-gather, the next times the pipelined variant of whichever base
//! collective has been faster so far.
//!
//! The selector is a small state machine fed one epoch-time observation
//! per epoch; it is deterministic and identical on every node because the
//! simulated epoch times are identical on every node. After the world
//! changes (a crash shrank the communicator), [`DynamicCommSelector::reset`]
//! discards all timings so every arm is re-timed at the new world size.

use serde::{Deserialize, Serialize};

/// Which exchange an epoch should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommChoice {
    AllReduce,
    AllGather,
    /// Dense all-reduce overlapped with the next batch's compute.
    PipelinedAllReduce,
    /// Sparse all-gather overlapped with the next batch's compute.
    PipelinedAllGather,
}

impl CommChoice {
    /// The underlying collective (pipelining changes *when* the exchange
    /// runs, not *what* moves on the wire).
    #[inline]
    pub fn base(self) -> CommChoice {
        match self {
            CommChoice::AllReduce | CommChoice::PipelinedAllReduce => CommChoice::AllReduce,
            CommChoice::AllGather | CommChoice::PipelinedAllGather => CommChoice::AllGather,
        }
    }

    /// Whether this arm overlaps the exchange with compute.
    #[inline]
    pub fn is_pipelined(self) -> bool {
        matches!(
            self,
            CommChoice::PipelinedAllReduce | CommChoice::PipelinedAllGather
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    /// Running all-reduce; `last_allreduce_time` remembered for comparison.
    Reduce,
    /// First probe epoch of a round: timing the synchronous all-gather.
    ProbingGather,
    /// Second probe epoch: timing the pipelined variant of whichever base
    /// collective has been faster so far. Probing the loser's pipelined
    /// variant too would waste an epoch (and, early in training, a dense
    /// all-reduce-sized payload) on an arm whose synchronous form already
    /// lost: pipelining hides an exchange behind compute but never shrinks
    /// what it moves, so the cheaper base is also the better overlap bet.
    ProbingPipelined { arm: CommChoice },
    /// Switched permanently to the given arm.
    Committed(CommChoice),
}

/// Serializable image of a [`DynamicCommSelector`], produced by
/// [`DynamicCommSelector::snapshot`]. `state` is a small tag (0 = reduce,
/// 1 = probing gather, 2 = probing pipelined, 3 = committed); `arm` is
/// meaningful for tags 2 and 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectorSnapshot {
    pub state: u8,
    pub arm: CommChoice,
    pub check_every: u64,
    pub epoch: u64,
    pub last_allreduce_time: Option<f64>,
    pub gather_time: f64,
}

/// The DRS state machine.
#[derive(Debug, Clone)]
pub struct DynamicCommSelector {
    state: State,
    check_every: usize,
    epoch: usize,
    last_allreduce_time: Option<f64>,
    gather_time: f64,
}

impl DynamicCommSelector {
    pub fn new(check_every: usize) -> Self {
        assert!(check_every >= 1);
        DynamicCommSelector {
            state: State::Reduce,
            check_every,
            epoch: 0,
            last_allreduce_time: None,
            gather_time: f64::INFINITY,
        }
    }

    /// Collective to use for the upcoming epoch.
    pub fn choice(&self) -> CommChoice {
        match self.state {
            State::Reduce => CommChoice::AllReduce,
            State::ProbingGather => CommChoice::AllGather,
            State::ProbingPipelined { arm } => arm,
            State::Committed(c) => c,
        }
    }

    /// True while the permanent switch has not happened.
    pub fn still_dynamic(&self) -> bool {
        !matches!(self.state, State::Committed(_))
    }

    /// Forget the timing history and return to the all-reduce state.
    /// Called after the communicator shrinks (a rank crashed): the epoch
    /// times the selector compared were measured at the old world size, so
    /// DRS re-times every arm from scratch at the new one.
    pub fn reset(&mut self) {
        self.state = State::Reduce;
        self.last_allreduce_time = None;
        self.gather_time = f64::INFINITY;
    }

    /// Capture the selector's complete state for checkpointing / rank
    /// rejoin. Restoring the snapshot on another selector makes its future
    /// decisions identical to this one's.
    pub fn snapshot(&self) -> SelectorSnapshot {
        let (state, arm) = match self.state {
            State::Reduce => (0, CommChoice::AllReduce),
            State::ProbingGather => (1, CommChoice::AllReduce),
            State::ProbingPipelined { arm } => (2, arm),
            State::Committed(c) => (3, c),
        };
        SelectorSnapshot {
            state,
            arm,
            check_every: self.check_every as u64,
            epoch: self.epoch as u64,
            last_allreduce_time: self.last_allreduce_time,
            gather_time: self.gather_time,
        }
    }

    /// Rebuild a selector from a [`DynamicCommSelector::snapshot`].
    pub fn restore(snap: &SelectorSnapshot) -> Result<Self, String> {
        let state = match snap.state {
            0 => State::Reduce,
            1 => State::ProbingGather,
            2 => State::ProbingPipelined { arm: snap.arm },
            3 => State::Committed(snap.arm),
            other => return Err(format!("unknown selector state tag {other}")),
        };
        if snap.check_every == 0 {
            return Err("selector snapshot has check_every == 0".into());
        }
        Ok(DynamicCommSelector {
            state,
            check_every: snap.check_every as usize,
            epoch: snap.epoch as usize,
            last_allreduce_time: snap.last_allreduce_time,
            gather_time: snap.gather_time,
        })
    }

    /// Report the epoch that just finished and its (simulated) duration.
    pub fn observe_epoch(&mut self, epoch_time_s: f64) {
        self.epoch += 1;
        match self.state {
            State::Reduce => {
                self.last_allreduce_time = Some(epoch_time_s);
                if self.epoch.is_multiple_of(self.check_every) {
                    self.state = State::ProbingGather;
                }
            }
            State::ProbingGather => {
                self.gather_time = epoch_time_s;
                let prev = self
                    .last_allreduce_time
                    .expect("probes always follow an all-reduce epoch");
                let arm = if epoch_time_s < prev {
                    CommChoice::PipelinedAllGather
                } else {
                    CommChoice::PipelinedAllReduce
                };
                self.state = State::ProbingPipelined { arm };
            }
            State::ProbingPipelined { arm } => {
                // Commit to the fastest probe iff it beats the most recent
                // all-reduce epoch. Ties resolve to the earlier probe —
                // deterministic on every rank because the compared times
                // are identical simulated epoch durations.
                let prev = self
                    .last_allreduce_time
                    .expect("probes always follow an all-reduce epoch");
                let (best, best_t) = if self.gather_time <= epoch_time_s {
                    (CommChoice::AllGather, self.gather_time)
                } else {
                    (arm, epoch_time_s)
                };
                if best_t < prev {
                    self.state = State::Committed(best);
                } else {
                    self.state = State::Reduce;
                }
            }
            State::Committed(_) => {}
        }
    }
}

/// DRS for the sharded trainer's prefetch pipeline: a two-arm variant of
/// [`DynamicCommSelector`] deciding between the synchronous pull/push
/// lane and the one-batch-ahead prefetch ring.
///
/// Starts synchronous; every `check_every`-th epoch it runs one prefetch
/// probe epoch and commits permanently to whichever arm was faster. The
/// arms compute bit-identical f32 models (see `shard.rs`), so the probe
/// is value-safe; and because the compared times are identical simulated
/// durations on every rank, all ranks take the same arm every epoch —
/// the wire protocol never desynchronizes. [`PrefetchSelector::reset`]
/// returns to the baseline after a shrink (old-world timings are stale).
#[derive(Debug, Clone, Copy, PartialEq)]
enum PrefetchState {
    /// Running the synchronous lane; last epoch time remembered.
    Baseline,
    /// Timing one prefetch epoch.
    Probing,
    /// Committed: `true` = prefetch from here on, `false` = synchronous.
    Committed(bool),
}

/// The prefetch-arm state machine (see [`PrefetchState`]).
#[derive(Debug, Clone)]
pub struct PrefetchSelector {
    state: PrefetchState,
    check_every: usize,
    epoch: usize,
    last_sync_time: Option<f64>,
}

impl PrefetchSelector {
    pub fn new(check_every: usize) -> Self {
        assert!(check_every >= 1);
        PrefetchSelector {
            state: PrefetchState::Baseline,
            check_every,
            epoch: 0,
            last_sync_time: None,
        }
    }

    /// Whether the upcoming epoch should run the prefetch ring.
    pub fn prefetch_arm(&self) -> bool {
        matches!(
            self.state,
            PrefetchState::Probing | PrefetchState::Committed(true)
        )
    }

    /// True while the permanent commit has not happened.
    pub fn still_dynamic(&self) -> bool {
        !matches!(self.state, PrefetchState::Committed(_))
    }

    /// Forget timings and return to the synchronous baseline (called
    /// after a communicator shrink; the epoch counter keeps running).
    pub fn reset(&mut self) {
        self.state = PrefetchState::Baseline;
        self.last_sync_time = None;
    }

    /// Report the epoch that just finished and its simulated duration.
    pub fn observe_epoch(&mut self, epoch_time_s: f64) {
        self.epoch += 1;
        match self.state {
            PrefetchState::Baseline => {
                self.last_sync_time = Some(epoch_time_s);
                if self.epoch.is_multiple_of(self.check_every) {
                    self.state = PrefetchState::Probing;
                }
            }
            PrefetchState::Probing => {
                // Ties keep the synchronous lane — deterministic on every
                // rank because the compared times are identical.
                let prev = self
                    .last_sync_time
                    .expect("a probe always follows a baseline epoch");
                self.state = PrefetchState::Committed(epoch_time_s < prev);
            }
            PrefetchState::Committed(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive one full probe round: `gather_t` for the all-gather epoch,
    /// then `pipelined_t` for the adaptive pipelined epoch.
    fn run_probe_round(s: &mut DynamicCommSelector, gather_t: f64, pipelined_t: f64) {
        assert_eq!(s.choice(), CommChoice::AllGather);
        s.observe_epoch(gather_t);
        assert!(s.choice().is_pipelined(), "second probe is pipelined");
        s.observe_epoch(pipelined_t);
    }

    #[test]
    fn starts_with_allreduce() {
        let s = DynamicCommSelector::new(10);
        assert_eq!(s.choice(), CommChoice::AllReduce);
        assert!(s.still_dynamic());
    }

    #[test]
    fn base_and_is_pipelined() {
        assert_eq!(CommChoice::PipelinedAllReduce.base(), CommChoice::AllReduce);
        assert_eq!(CommChoice::PipelinedAllGather.base(), CommChoice::AllGather);
        assert_eq!(CommChoice::AllReduce.base(), CommChoice::AllReduce);
        assert_eq!(CommChoice::AllGather.base(), CommChoice::AllGather);
        assert!(CommChoice::PipelinedAllGather.is_pipelined());
        assert!(!CommChoice::AllGather.is_pipelined());
    }

    #[test]
    fn probes_every_kth_epoch_adaptively() {
        let mut s = DynamicCommSelector::new(3);
        s.observe_epoch(1.0);
        assert_eq!(s.choice(), CommChoice::AllReduce);
        s.observe_epoch(1.0);
        assert_eq!(s.choice(), CommChoice::AllReduce);
        s.observe_epoch(1.0); // epoch 3 done → probes start
        assert_eq!(s.choice(), CommChoice::AllGather);
        // Gather slower than all-reduce → the pipelined probe backs the
        // all-reduce base.
        s.observe_epoch(2.0);
        assert_eq!(s.choice(), CommChoice::PipelinedAllReduce);
        s.observe_epoch(2.0);
        assert!(s.still_dynamic());
        assert_eq!(s.choice(), CommChoice::AllReduce);
    }

    #[test]
    fn faster_gather_gets_its_pipelined_variant_probed() {
        let mut s = DynamicCommSelector::new(1);
        s.observe_epoch(1.0); // AR baseline → probe next
        assert_eq!(s.choice(), CommChoice::AllGather);
        s.observe_epoch(0.9); // gather beats the baseline
        assert_eq!(s.choice(), CommChoice::PipelinedAllGather);
    }

    #[test]
    fn commits_to_fastest_winning_arm() {
        let mut s = DynamicCommSelector::new(1);
        s.observe_epoch(1.0); // AR baseline → probe next
        run_probe_round(&mut s, 0.9, 0.5);
        assert_eq!(s.choice(), CommChoice::PipelinedAllGather);
        assert!(!s.still_dynamic());
        // Slower epochs later don't flip it back.
        s.observe_epoch(100.0);
        assert_eq!(s.choice(), CommChoice::PipelinedAllGather);
    }

    #[test]
    fn reverts_when_no_probe_wins_then_probes_again() {
        let mut s = DynamicCommSelector::new(2);
        s.observe_epoch(1.0);
        s.observe_epoch(1.0); // epoch 2 → probes
        run_probe_round(&mut s, 2.0, 3.0);
        assert_eq!(s.choice(), CommChoice::AllReduce);
        assert!(s.still_dynamic());
        // Two more all-reduce epochs land on a multiple of 2 → probe again.
        s.observe_epoch(1.0);
        assert_eq!(s.choice(), CommChoice::AllReduce);
        s.observe_epoch(1.0);
        assert_eq!(s.choice(), CommChoice::AllGather);
    }

    #[test]
    fn ties_resolve_to_earlier_probe() {
        let mut s = DynamicCommSelector::new(1);
        s.observe_epoch(1.0);
        run_probe_round(&mut s, 0.5, 0.5);
        assert_eq!(s.choice(), CommChoice::AllGather);
    }

    #[test]
    fn reset_returns_to_allreduce_even_after_permanent_switch() {
        let mut s = DynamicCommSelector::new(2);
        s.observe_epoch(1.0);
        s.observe_epoch(1.0); // → probes
        run_probe_round(&mut s, 0.5, 0.8);
        assert!(!s.still_dynamic());
        assert_eq!(s.choice(), CommChoice::AllGather);
        s.reset();
        assert_eq!(s.choice(), CommChoice::AllReduce);
        assert!(s.still_dynamic());
        // The stale timings are gone: the next probe round compares
        // against a measurement taken after the reset. The epoch counter
        // kept running (it's at 4), so two more all-reduce epochs land on
        // a multiple of `check_every` and trigger probes.
        s.observe_epoch(2.0);
        s.observe_epoch(2.0);
        run_probe_round(&mut s, 3.0, 3.5); // all slower → revert
        assert_eq!(s.choice(), CommChoice::AllReduce);
        assert!(s.still_dynamic());
    }

    #[test]
    fn snapshot_restore_mid_probe_decides_identically() {
        // Snapshot in every reachable state and check the restored selector
        // tracks the original decision-for-decision.
        let timings = [1.0, 0.9, 0.5, 0.7, 1.3, 0.2];
        let mut s = DynamicCommSelector::new(2);
        for &t in &timings {
            let mut r = DynamicCommSelector::restore(&s.snapshot()).unwrap();
            let mut orig = s.clone();
            assert_eq!(r.choice(), orig.choice());
            assert_eq!(r.still_dynamic(), orig.still_dynamic());
            for &t2 in &timings {
                r.observe_epoch(t2);
                orig.observe_epoch(t2);
                assert_eq!(r.choice(), orig.choice());
                assert_eq!(r.still_dynamic(), orig.still_dynamic());
            }
            s.observe_epoch(t);
        }
        assert!(DynamicCommSelector::restore(&SelectorSnapshot {
            state: 9,
            arm: CommChoice::AllReduce,
            check_every: 2,
            epoch: 0,
            last_allreduce_time: None,
            gather_time: f64::INFINITY,
        })
        .is_err());
    }

    #[test]
    fn shrinking_gather_times_eventually_win() {
        // Simulate Fig. 2: all-gather gets cheaper as rows sparsify.
        let mut s = DynamicCommSelector::new(5);
        let mut gather_time = 2.0;
        let mut switched_at = None;
        for epoch in 0..200 {
            let t = match s.choice() {
                CommChoice::AllReduce => 1.0,
                CommChoice::AllGather => gather_time,
                // Pipelined arms hide some comm but stay above gather here.
                CommChoice::PipelinedAllReduce => 1.0,
                CommChoice::PipelinedAllGather => gather_time * 1.01,
            };
            s.observe_epoch(t);
            gather_time *= 0.9;
            if !s.still_dynamic() && switched_at.is_none() {
                switched_at = Some(epoch);
            }
        }
        assert!(switched_at.is_some(), "must eventually switch");
        assert!(s.choice() != CommChoice::AllReduce);
    }

    #[test]
    fn pipelined_arm_wins_on_comm_bound_timings() {
        // Comm-bound: all-gather slightly beats all-reduce synchronously,
        // and pipelining hides most of the remaining comm.
        let mut s = DynamicCommSelector::new(1);
        s.observe_epoch(2.0);
        run_probe_round(&mut s, 1.9, 1.1);
        assert_eq!(s.choice(), CommChoice::PipelinedAllGather);
        assert!(!s.still_dynamic());
    }

    #[test]
    fn prefetch_selector_starts_synchronous_and_probes_on_schedule() {
        let mut s = PrefetchSelector::new(2);
        assert!(!s.prefetch_arm());
        assert!(s.still_dynamic());
        s.observe_epoch(1.0);
        assert!(!s.prefetch_arm());
        s.observe_epoch(1.0); // epoch 2 → probe next
        assert!(s.prefetch_arm());
        assert!(s.still_dynamic());
    }

    #[test]
    fn prefetch_selector_commits_to_faster_probe() {
        let mut s = PrefetchSelector::new(1);
        s.observe_epoch(1.0); // baseline → probe
        assert!(s.prefetch_arm());
        s.observe_epoch(0.6); // probe wins
        assert!(s.prefetch_arm());
        assert!(!s.still_dynamic());
        // Later slow epochs don't flip it back.
        s.observe_epoch(100.0);
        assert!(s.prefetch_arm());
    }

    #[test]
    fn prefetch_selector_commits_to_baseline_when_probe_loses_or_ties() {
        for probe_t in [1.4, 1.0] {
            let mut s = PrefetchSelector::new(1);
            s.observe_epoch(1.0);
            assert!(s.prefetch_arm());
            s.observe_epoch(probe_t);
            assert!(!s.prefetch_arm(), "probe_t={probe_t} must keep sync");
            assert!(!s.still_dynamic());
        }
    }

    #[test]
    fn prefetch_selector_reset_reprobes_at_the_new_world() {
        let mut s = PrefetchSelector::new(2);
        s.observe_epoch(1.0);
        s.observe_epoch(1.0); // → probe
        s.observe_epoch(0.5); // commit prefetch
        assert!(s.prefetch_arm());
        s.reset();
        assert!(!s.prefetch_arm());
        assert!(s.still_dynamic());
        // Epoch counter kept running (3): one more baseline epoch lands
        // on a multiple of 2 and triggers a fresh probe.
        s.observe_epoch(2.0);
        assert!(s.prefetch_arm());
        s.observe_epoch(3.0); // slower at the new world → stay sync
        assert!(!s.prefetch_arm());
        assert!(!s.still_dynamic());
    }

    #[test]
    fn comm_bound_allreduce_regime_probes_pipelined_allreduce() {
        // Gather loses synchronously (dense rows), but overlapping the
        // all-reduce behind compute wins → commit PipelinedAllReduce.
        let mut s = DynamicCommSelector::new(1);
        s.observe_epoch(2.0);
        assert_eq!(s.choice(), CommChoice::AllGather);
        s.observe_epoch(2.5); // gather slower → back the all-reduce base
        assert_eq!(s.choice(), CommChoice::PipelinedAllReduce);
        s.observe_epoch(1.2);
        assert_eq!(s.choice(), CommChoice::PipelinedAllReduce);
        assert!(!s.still_dynamic());
    }
}
