//! §4.1 — Dynamic selection between all-reduce and all-gather.
//!
//! The paper starts training with all-reduce. Every `k`-th epoch (k = 10)
//! it runs one epoch with all-gather and compares the measured epoch
//! times; if the all-gather epoch was faster, it switches to all-gather
//! for the rest of training, otherwise it stays on all-reduce. (Fig. 2's
//! observation that the number of non-zero gradient rows shrinks as
//! training converges is what makes the later switch profitable.)
//!
//! The selector is a small state machine fed one epoch-time observation
//! per epoch; it is deterministic and identical on every node because the
//! simulated epoch times are identical on every node.

use serde::{Deserialize, Serialize};

/// Which collective an epoch should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommChoice {
    AllReduce,
    AllGather,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Running all-reduce; `last_ar_time` remembered for comparison.
    Reduce,
    /// This epoch is an all-gather probe.
    Probing,
    /// Switched to all-gather permanently.
    Gather,
}

/// The DRS state machine.
#[derive(Debug, Clone)]
pub struct DynamicCommSelector {
    state: State,
    check_every: usize,
    epoch: usize,
    last_allreduce_time: Option<f64>,
}

impl DynamicCommSelector {
    pub fn new(check_every: usize) -> Self {
        assert!(check_every >= 1);
        DynamicCommSelector {
            state: State::Reduce,
            check_every,
            epoch: 0,
            last_allreduce_time: None,
        }
    }

    /// Collective to use for the upcoming epoch.
    pub fn choice(&self) -> CommChoice {
        match self.state {
            State::Reduce => CommChoice::AllReduce,
            State::Probing => CommChoice::AllGather,
            State::Gather => CommChoice::AllGather,
        }
    }

    /// True while the permanent switch has not happened.
    pub fn still_dynamic(&self) -> bool {
        self.state != State::Gather
    }

    /// Forget the timing history and return to the all-reduce state.
    /// Called after the communicator shrinks (a rank crashed): the epoch
    /// times the selector compared were measured at the old world size, so
    /// DRS re-times both collectives from scratch at the new one.
    pub fn reset(&mut self) {
        self.state = State::Reduce;
        self.last_allreduce_time = None;
    }

    /// Report the epoch that just finished and its (simulated) duration.
    pub fn observe_epoch(&mut self, epoch_time_s: f64) {
        self.epoch += 1;
        match self.state {
            State::Reduce => {
                self.last_allreduce_time = Some(epoch_time_s);
                if self.epoch.is_multiple_of(self.check_every) {
                    self.state = State::Probing;
                }
            }
            State::Probing => {
                // Compare the probe against the most recent all-reduce epoch.
                let prev = self
                    .last_allreduce_time
                    .expect("probe always follows an all-reduce epoch");
                if epoch_time_s < prev {
                    self.state = State::Gather;
                } else {
                    self.state = State::Reduce;
                }
            }
            State::Gather => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_with_allreduce() {
        let s = DynamicCommSelector::new(10);
        assert_eq!(s.choice(), CommChoice::AllReduce);
        assert!(s.still_dynamic());
    }

    #[test]
    fn probes_every_kth_epoch() {
        let mut s = DynamicCommSelector::new(3);
        s.observe_epoch(1.0);
        assert_eq!(s.choice(), CommChoice::AllReduce);
        s.observe_epoch(1.0);
        assert_eq!(s.choice(), CommChoice::AllReduce);
        s.observe_epoch(1.0); // epoch 3 done → next is a probe
        assert_eq!(s.choice(), CommChoice::AllGather);
        assert!(s.still_dynamic());
    }

    #[test]
    fn switches_permanently_when_probe_wins() {
        let mut s = DynamicCommSelector::new(2);
        s.observe_epoch(1.0);
        s.observe_epoch(1.0); // → probe next
        assert_eq!(s.choice(), CommChoice::AllGather);
        s.observe_epoch(0.5); // probe faster → permanent
        assert_eq!(s.choice(), CommChoice::AllGather);
        assert!(!s.still_dynamic());
        // Slower epochs later don't flip it back.
        s.observe_epoch(100.0);
        assert_eq!(s.choice(), CommChoice::AllGather);
    }

    #[test]
    fn reverts_when_probe_loses_then_probes_again() {
        let mut s = DynamicCommSelector::new(2);
        s.observe_epoch(1.0);
        s.observe_epoch(1.0); // → probe
        assert_eq!(s.choice(), CommChoice::AllGather);
        s.observe_epoch(2.0); // probe slower → back to all-reduce
        assert_eq!(s.choice(), CommChoice::AllReduce);
        assert!(s.still_dynamic());
        // k more all-reduce epochs → probes again.
        s.observe_epoch(1.0);
        // epoch counter is now 4 (multiple of 2) → probe
        assert_eq!(s.choice(), CommChoice::AllGather);
    }

    #[test]
    fn reset_returns_to_allreduce_even_after_permanent_switch() {
        let mut s = DynamicCommSelector::new(2);
        s.observe_epoch(1.0);
        s.observe_epoch(1.0); // → probe
        s.observe_epoch(0.5); // probe faster → permanently all-gather
        assert!(!s.still_dynamic());
        s.reset();
        assert_eq!(s.choice(), CommChoice::AllReduce);
        assert!(s.still_dynamic());
        // The stale all-reduce timing is gone: the next probe compares
        // against a measurement taken after the reset. The epoch counter
        // kept running (it's at 3), so one more all-reduce epoch lands on
        // a multiple of `check_every` and triggers a probe.
        s.observe_epoch(2.0);
        assert_eq!(s.choice(), CommChoice::AllGather);
        s.observe_epoch(3.0); // probe slower than post-reset AR → revert
        assert_eq!(s.choice(), CommChoice::AllReduce);
    }

    #[test]
    fn shrinking_gather_times_eventually_win() {
        // Simulate Fig. 2: all-gather gets cheaper as rows sparsify.
        let mut s = DynamicCommSelector::new(5);
        let mut gather_time = 2.0;
        let mut switched_at = None;
        for epoch in 0..100 {
            let t = match s.choice() {
                CommChoice::AllReduce => 1.0,
                CommChoice::AllGather => gather_time,
            };
            s.observe_epoch(t);
            gather_time *= 0.9;
            if !s.still_dynamic() && switched_at.is_none() {
                switched_at = Some(epoch);
            }
        }
        assert!(switched_at.is_some(), "must eventually switch");
        assert_eq!(s.choice(), CommChoice::AllGather);
    }
}
