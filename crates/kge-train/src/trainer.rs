//! The synchronous data-parallel trainer.
//!
//! [`train`] runs one SPMD program per cluster node. Every node holds a
//! full replica of the ComplEx model; each batch it computes gradients on
//! its own triples, exchanges the entity (and, without relation partition,
//! relation) gradients through the epoch's collective, and applies an
//! identical optimizer step — so replicas stay bit-identical, which the
//! integration tests assert. With relation partition, relation rows are
//! owned and updated node-locally and re-assembled once per epoch.
//!
//! Simulated time: local compute is charged analytically per batch
//! (forward/backward/optimizer flops) to each node's clock; collectives
//! charge and synchronize clocks through the communicator. The reported
//! `TT`/epoch times are those simulated clocks — the real wall time of
//! the host machine never enters the results.

use crate::checkpoint::{self, CheckpointView, Tallies};
use crate::comm_select::{CommChoice, DynamicCommSelector};
use crate::config::{CommMode, TrainConfig, UpdateStyle};
use crate::exchange::{
    complete_allreduce_overlapped, complete_gather_exchange_overlapped, encode_gather_payload,
    exchange_allgather_into, exchange_allreduce, stage_allreduce_payload, GatherBufs,
    PipelineSlot,
};
use crate::lr::PlateauSchedule;
use crate::neg::{sample_negatives_into, CorruptionBias, NegScratch};
use crate::report::{EpochTrace, TrainOutcome, TrainReport};
use crate::snapshot::{PublishedModel, SnapshotSink};
use kge_compress::codec::{RowDecoder, RowEncoder};
use kge_compress::quant::QuantScheme;
use kge_compress::row_select::select_rows;
use kge_compress::ResidualStore;
use kge_core::loss::{logistic_loss, logistic_loss_grad};
use kge_core::{BlockScratch, EmbeddingTable, KgeModel, RowOptimizer, ScratchPool, SparseGrad};
use kge_data::batch::EpochShuffler;
use kge_data::{Dataset, FilterIndex, GroupedFilter, Triple};
use kge_eval::{evaluate_ranking_distributed, fast_valid_accuracy, RankingOptions, RankingWorkspace};
use kge_partition::{partition_for, Partition};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simgrid::{Cluster, Collective, NodeCtx, SimError};

/// Threshold below which a gradient row counts as "zero" for the Fig. 2
/// statistic (f32 rows of well-fit triples underflow toward this).
pub(crate) const ZERO_ROW_EPS: f32 = 1e-7;

/// Positives per parallel gradient chunk. Fixed — never derived from the
/// thread count — so the chunk structure, each chunk's RNG stream, and the
/// f32 summation order of the chunk-ordered merge are identical no matter
/// how many workers execute the chunks.
pub(crate) const GRAD_CHUNK: usize = 256;

/// Fixed initiation latency charged per checkpoint. The write itself is
/// asynchronous (drained by the burst buffer behind later compute); what
/// training pays synchronously is starting the transfer plus streaming
/// the serialized image out of the node.
const CKPT_LATENCY_S: f64 = 1e-3;

/// Modeled bandwidth of the checkpoint device (burst-buffer class).
const CKPT_BW_BYTES_S: f64 = 2e9;

/// Fixed initiation latency charged per serving-snapshot publish. Much
/// cheaper than a checkpoint: the publish is a lock-and-swap plus an
/// in-memory copy of the model tables into the serve hub's spare buffers
/// — no serialization, no optimizer state, no storage device.
const SNAP_LATENCY_S: f64 = 1e-5;

/// Modeled bandwidth of the in-memory snapshot copy (DRAM-streaming
/// class).
const SNAP_BW_BYTES_S: f64 = 8e9;

/// Train on `dataset` with `config` across `cluster`. Returns the lead
/// survivor's report and final (assembled) model. With a fault plan that
/// crashes ranks, the reporting rank is whichever survivor holds rank 0
/// after the final shrink; crashed ranks contribute only their wire
/// traffic totals.
pub fn train(dataset: &Dataset, cluster: &Cluster, config: &TrainConfig) -> TrainOutcome {
    train_with_snapshots(dataset, cluster, config, None)
}

/// [`train`], additionally publishing model snapshots to `sink` every
/// [`TrainConfig::serve_snapshots`] epochs (the serve-while-training entry
/// point — `kge-serve`'s snapshot hub is the intended sink). With
/// `sink = None` or cadence 0 this is exactly [`train`].
pub fn train_with_snapshots(
    dataset: &Dataset,
    cluster: &Cluster,
    config: &TrainConfig,
    sink: Option<&dyn SnapshotSink>,
) -> TrainOutcome {
    config.validate().expect("invalid training config");
    dataset.validate().expect("invalid dataset");
    if config.sharded.is_some() {
        return crate::shard::train_sharded(dataset, cluster, config);
    }
    let mut results = cluster.run(|ctx| run_node(ctx, dataset, config, sink));
    // Wire-level conservation is global: crashed ranks' pre-crash traffic
    // counts, so sum before discarding the non-reporting nodes.
    let wire_sent: u64 = results.iter().map(|r| r.wire_sent).sum();
    let wire_recv: u64 = results.iter().map(|r| r.wire_recv).sum();
    let lead = results
        .iter()
        .position(|r| r.report.is_some())
        .expect("a surviving rank returns the report");
    let lead = results.swap_remove(lead);
    let mut report = lead.report.expect("position() found a report");
    report.wire_bytes_sent = wire_sent;
    report.wire_bytes_recv = wire_recv;
    TrainOutcome {
        report,
        entities: lead.entities,
        relations: lead.relations,
    }
}

/// Per-batch working state that is reused across batches to keep the hot
/// loop allocation-free in steady state: gradient accumulators and the
/// chunk-scratch pool live in [`BatchWorkspace`]; the dense all-reduce
/// buffers, sparse aggregates, gather wire buffers, and relation-assembly
/// buffers all keep their capacity across batches and epochs.
struct Scratch {
    batch: BatchWorkspace,
    dense_ent: Vec<f32>,
    dense_rel: Vec<f32>,
    ent_agg: SparseGrad,
    rel_agg: SparseGrad,
    gather: GatherBufs,
    asm_send: Vec<u8>,
    asm_recv: Vec<u8>,
    asm_counts: Vec<usize>,
}

/// Width of the per-node worker pool: an explicit `RAYON_NUM_THREADS`
/// wins; otherwise each simulated node gets an equal share of the host's
/// cores (floor 1), mirroring how ranks of a real job split a machine.
pub(crate) fn node_pool_threads(nodes: usize) -> usize {
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    (cores / nodes.max(1)).max(1)
}

/// What one node hands back to [`train`]: the report (lead survivor
/// only), its final model replica, and its wire-level traffic totals.
pub(crate) struct NodeResult {
    pub(crate) report: Option<TrainReport>,
    pub(crate) entities: EmbeddingTable,
    pub(crate) relations: EmbeddingTable,
    pub(crate) wire_sent: u64,
    pub(crate) wire_recv: u64,
}

fn run_node(
    ctx: &mut NodeCtx,
    dataset: &Dataset,
    config: &TrainConfig,
    sink: Option<&dyn SnapshotSink>,
) -> NodeResult {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(node_pool_threads(ctx.size()))
        .build()
        .expect("node thread pool");
    pool.install(|| run_node_inner(ctx, dataset, config, sink))
}

/// Recompute everything that depends on the world size: the partition,
/// this node's shard, the relations it owns under RP, and the number of
/// batches per epoch (the max over shards, so every rank runs the same
/// count and collectives stay well-formed).
pub(crate) fn distribute(
    dataset: &Dataset,
    relation_disjoint: bool,
    rank: usize,
    p: usize,
    batch_size: usize,
) -> (Vec<Triple>, Vec<u32>, usize) {
    let partition: Partition = partition_for(&dataset.train, dataset.n_relations, p, relation_disjoint);
    let batches_per_epoch = partition
        .shards
        .iter()
        .map(|s| s.len().div_ceil(batch_size))
        .max()
        .unwrap_or(0)
        .max(1);
    let shard = partition.shards[rank].clone();
    let mut owned_rels: Vec<u32> = shard.iter().map(|t| t.rel).collect();
    owned_rels.sort_unstable();
    owned_rels.dedup();
    (shard, owned_rels, batches_per_epoch)
}

fn run_node_inner(
    ctx: &mut NodeCtx,
    dataset: &Dataset,
    config: &TrainConfig,
    sink: Option<&dyn SnapshotSink>,
) -> NodeResult {
    let mut rank = ctx.rank();
    let mut p = ctx.size();
    let initial_p = p;
    let model = config.model.build(config.rank);
    let model: &dyn KgeModel = model.as_ref();
    let dim = model.storage_dim();
    let strategy = config.strategy;

    // --- Data distribution (identical computation on every node). -------
    // `base_shard` keeps the distribution order; each epoch copies it into
    // `shard` and shuffles, so an epoch's data order is a pure function of
    // `(distribution, epoch)` — never of shuffle history. Checkpoint
    // resume and rank rejoin depend on this: neither replays past epochs.
    let (mut base_shard, mut owned_rels, mut batches_per_epoch) = distribute(
        dataset,
        strategy.relation_partition,
        rank,
        p,
        config.batch_size,
    );
    let mut shard = base_shard.clone();

    let filter = FilterIndex::build(dataset);
    // Per-epoch ranking eval (opt-in): the grouped filter and workspace are
    // built once and reused, so steady-state evaluation allocates only its
    // per-call query shard.
    let mut eval_state = if config.eval_every > 0 {
        Some((GroupedFilter::from_index(&filter), RankingWorkspace::new()))
    } else {
        None
    };
    let bias = if strategy.bern {
        Some(CorruptionBias::fit(dataset))
    } else {
        None
    };

    // --- Model replicas: identical initialization on every node. --------
    let mut init_rng = StdRng::seed_from_u64(config.seed);
    let mut ent = EmbeddingTable::xavier(dataset.n_entities, dim, &mut init_rng);
    let mut rel = EmbeddingTable::xavier(dataset.n_relations, dim, &mut init_rng);
    let mut ent_opt = config
        .optimizer
        .build(config.base_lr, dataset.n_entities, dim);
    let mut rel_opt = config
        .optimizer
        .build(config.base_lr, dataset.n_relations, dim);
    let mut ent_residual = ResidualStore::new();
    let mut rel_residual = ResidualStore::new();

    // Per-node RNG streams (data order / negatives / stochastic strategies
    // differ per node; model state stays identical because aggregated
    // gradients are identical).
    let mut rng = StdRng::seed_from_u64(
        config.seed ^ (rank as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15),
    );
    let shuffler = EpochShuffler::new(config.seed ^ (rank as u64) << 32);

    let mut schedule = PlateauSchedule::new(
        p,
        config.lr_scale_cap,
        config.lr_decay,
        config.plateau_tolerance,
        config.max_lr_drops,
    );
    let mut selector = match strategy.comm {
        CommMode::Dynamic { check_every } => Some(DynamicCommSelector::new(check_every)),
        _ => None,
    };

    let mut scratch = Scratch {
        batch: BatchWorkspace::new(dim),
        dense_ent: vec![0.0; dataset.n_entities * dim],
        dense_rel: vec![0.0; dataset.n_relations * dim],
        ent_agg: SparseGrad::new(dim),
        rel_agg: SparseGrad::new(dim),
        gather: GatherBufs::new(),
        asm_send: Vec::new(),
        asm_recv: Vec::new(),
        asm_counts: Vec::new(),
    };

    // Slot ring for the pipelined exchange, sized once to the largest
    // staleness window any epoch of this run can use, so the steady-state
    // loop never allocates slots. Each slot owns its wire buffers.
    let max_window = match strategy.comm {
        CommMode::Pipelined { staleness } | CommMode::PipelinedAllReduce { staleness } => staleness,
        CommMode::Dynamic { .. } => 1,
        _ => 0,
    };
    let mut pipeline: Vec<PipelineSlot> =
        (0..max_window).map(|_| PipelineSlot::default()).collect();

    let mut trace: Vec<EpochTrace> = Vec::new();
    let mut converged = false;
    let mut tallies = Tallies::default();
    let mut survived = true;

    // Pooled checkpoint buffers: the encoded image, the residual-id
    // scratch, and the exported traffic table are reused across every
    // checkpoint (and across rejoin state transfers), so steady-state
    // checkpointing stops allocating once warm.
    let mut ckpt_buf: Vec<u8> = Vec::new();
    let mut ckpt_ids: Vec<u32> = Vec::new();
    let mut ckpt_traffic: Vec<(Collective, [u64; 6])> = Vec::new();

    // --- Resume: adopt a checkpointed rank state wholesale. -------------
    // Every piece of state that influences a future draw, update, or clock
    // charge is restored, which is what makes the resumed run bit-identical
    // to the uninterrupted one (tests/resume_determinism.rs).
    let mut epoch = 0usize;
    if let Some(dir) = config.resume_from.as_ref() {
        let path = checkpoint::checkpoint_path(dir, rank);
        let ck = checkpoint::read_file(&path)
            .unwrap_or_else(|e| panic!("resume rank {rank} from {}: {e}", path.display()));
        assert_eq!(ck.world_size, p, "checkpoint world size mismatch");
        assert_eq!(ck.rank, rank, "checkpoint rank mismatch");
        assert_eq!(ck.seed, config.seed, "checkpoint seed mismatch");
        assert_eq!(
            (ck.dim, ck.n_entities, ck.n_relations),
            (dim, dataset.n_entities, dataset.n_relations),
            "checkpoint model shape mismatch"
        );
        ent.as_mut_slice().copy_from_slice(ck.ent.as_slice());
        rel.as_mut_slice().copy_from_slice(ck.rel.as_slice());
        ent_opt
            .load_state(ck.ent_opt.as_view())
            .unwrap_or_else(|e| panic!("resume rank {rank}: entity optimizer: {e}"));
        rel_opt
            .load_state(ck.rel_opt.as_view())
            .unwrap_or_else(|e| panic!("resume rank {rank}: relation optimizer: {e}"));
        ent_residual.clear();
        for (row, values) in &ck.ent_residual {
            ent_residual.set_row(*row, values);
        }
        rel_residual.clear();
        for (row, values) in &ck.rel_residual {
            rel_residual.set_row(*row, values);
        }
        rng = StdRng::from_state(ck.rng_state);
        schedule = PlateauSchedule::restore(&ck.schedule);
        if let Some(snap) = &ck.selector {
            selector = Some(
                DynamicCommSelector::restore(snap)
                    .unwrap_or_else(|e| panic!("resume rank {rank}: comm selector: {e}")),
            );
        }
        tallies = ck.tallies.clone();
        trace = ck.trace.clone();
        ctx.comm_mut().clock_mut().restore(ck.clock_now_s, ck.breakdown);
        ctx.comm_mut().traffic_mut().import(&ck.traffic);
        ctx.comm_mut().restore_sequences(ck.coll_seq, &ck.p2p_seq);
        epoch = ck.next_epoch;
    }

    // Set by a rank that was re-admitted mid-loop: it re-enters the epoch
    // the survivors are about to run, whose grow step already happened.
    let mut skip_grow = false;

    while epoch < config.max_epochs {
        // --- Elastic re-grow: re-admit recovered ranks at the epoch
        // boundary. Free (no collective) unless the fault plan schedules
        // recoveries. The decision is a pure function of the aligned clock
        // and the plan, so every survivor takes the same branch.
        if config.recover_from_crashes && !skip_grow {
            let rejoined_now = ctx.comm_mut().try_grow();
            if !rejoined_now.is_empty() {
                rank = ctx.rank();
                p = ctx.size();
                let (s, o, b) = distribute(
                    dataset,
                    strategy.relation_partition,
                    rank,
                    p,
                    config.batch_size,
                );
                base_shard = s;
                shard.clone_from(&base_shard);
                owned_rels = o;
                batches_per_epoch = b;
                // Same re-partitioning price as the shrink path.
                ctx.comm_mut()
                    .clock_mut()
                    .charge_flops((dataset.train.len() * 8) as f64);
                // DRS timings were measured at the old world size; every
                // rank (the rejoiner included, below) re-probes fresh.
                if let Some(sel) = selector.as_mut() {
                    sel.reset();
                }
                tallies.rejoins += rejoined_now.len();
                // The grow leader (lowest surviving original id) ships the
                // authoritative replica state to each rejoiner; its stale
                // copy died with the crash. The payload is a checkpoint
                // image — same codec, pooled buffers.
                let leader_orig = ctx
                    .comm()
                    .orig_ranks()
                    .iter()
                    .copied()
                    .find(|r| !rejoined_now.contains(r))
                    .expect("at least one survivor leads the grow");
                let leader = ctx
                    .comm()
                    .orig_ranks()
                    .iter()
                    .position(|&r| r == leader_orig)
                    .expect("leader present in grown world");
                if rank == leader {
                    for &orig in &rejoined_now {
                        let dst = ctx
                            .comm()
                            .orig_ranks()
                            .iter()
                            .position(|&r| r == orig)
                            .expect("rejoiner present in grown world");
                        encode_rank_state(
                            &mut ckpt_buf,
                            &mut ckpt_ids,
                            &mut ckpt_traffic,
                            ctx,
                            config,
                            epoch,
                            p,
                            rank,
                            &ent,
                            &rel,
                            ent_opt.as_ref(),
                            rel_opt.as_ref(),
                            &ent_residual,
                            &rel_residual,
                            &rng,
                            &schedule,
                            selector.as_ref(),
                            &tallies,
                            &trace,
                        );
                        let buf = std::mem::take(&mut ckpt_buf);
                        ctx.comm_mut()
                            .send_bytes(dst, &buf)
                            .unwrap_or_else(|e| panic!("rejoin state send: {e}"));
                        ckpt_buf = buf;
                    }
                }
            }
        }
        skip_grow = false;

        // Epoch barrier: aligns every clock so that the per-epoch times —
        // which the dynamic comm selector compares — are identical on all
        // nodes (every post-collective charge below derives from shared
        // quantities, so clocks stay equal through the epoch's end).
        ctx.comm_mut().barrier();
        let epoch_start = ctx.comm().clock().now_s();
        let bytes_at_start = ctx.comm().traffic().total_sent();
        shard.copy_from_slice(&base_shard);
        shuffler.shuffle(&mut shard, epoch as u64);

        // The epoch's collective and its staleness window. `window == 0`
        // is the synchronous path (bit-identical to the pre-pipelining
        // trainer); a pipelined choice with staleness 0 degrades to its
        // synchronous base, so `Pipelined { staleness: 0 }` reproduces
        // `AllGather` exactly. Dynamic probes pipelined arms at window 1.
        let (choice, window) = match strategy.comm {
            CommMode::AllReduce => (CommChoice::AllReduce, 0),
            CommMode::AllGather => (CommChoice::AllGather, 0),
            CommMode::Pipelined { staleness } => {
                if staleness == 0 {
                    (CommChoice::AllGather, 0)
                } else {
                    (CommChoice::PipelinedAllGather, staleness)
                }
            }
            CommMode::PipelinedAllReduce { staleness } => {
                if staleness == 0 {
                    (CommChoice::AllReduce, 0)
                } else {
                    (CommChoice::PipelinedAllReduce, staleness)
                }
            }
            CommMode::Dynamic { .. } => {
                let c = selector.as_ref().expect("dynamic selector").choice();
                (c, if c.is_pipelined() { 1 } else { 0 })
            }
        };
        match choice.base() {
            CommChoice::AllReduce => tallies.allreduce_epochs += 1,
            CommChoice::AllGather => tallies.allgather_epochs += 1,
            _ => unreachable!("base() is synchronous"),
        }
        if choice.is_pipelined() {
            tallies.pipelined_epochs += 1;
        }

        let mut epoch_loss = 0.0f64;
        let mut epoch_examples = 0usize;
        let mut nonzero_rows_sum = 0usize;
        let mut rows_sent_sum = 0usize;
        let mut rows_before_rs = 0usize;
        let mut rows_after_rs = 0usize;
        let lr_scale = schedule.lr_scale();

        // A `RankCrashed` error is observed by every participant at the
        // same collective (detection derives from shared clock deposits),
        // so all nodes — survivors and the crashed rank alike — abort the
        // epoch's batch loop together and the program stays collectively
        // well-formed. Any other error is a bug and panics as before.
        let mut crashed_this_epoch = false;
        macro_rules! try_exchange {
            ($expr:expr, $what:literal, $batches:lifetime) => {
                match $expr {
                    Ok(v) => v,
                    Err(SimError::RankCrashed { .. }) => {
                        crashed_this_epoch = true;
                        break $batches
                    }
                    Err(e) => panic!(concat!($what, ": {}"), e),
                }
            };
        }

        // Complete the in-flight exchange held in `pipeline[$idx]`: run the
        // overlapped collective priced from the slot's launch anchor,
        // decode/average, and apply the (stale) optimizer step. Used from
        // inside the batch loop (window full) and from the epoch-end drain;
        // `$lbl` names the loop a `RankCrashed` error aborts.
        macro_rules! complete_slot {
            ($idx:expr, $lbl:lifetime) => {{
                let idx: usize = $idx;
                match choice.base() {
                    CommChoice::AllReduce => {
                        {
                            let slot = &mut pipeline[idx];
                            try_exchange!(
                                complete_allreduce_overlapped(
                                    ctx.comm_mut(),
                                    &mut slot.ent_dense,
                                    slot.anchor_s,
                                ),
                                "pipelined entity allreduce",
                                $lbl
                            );
                        }
                        if !strategy.relation_partition {
                            let slot = &mut pipeline[idx];
                            try_exchange!(
                                complete_allreduce_overlapped(
                                    ctx.comm_mut(),
                                    &mut slot.rel_dense,
                                    slot.anchor_s,
                                ),
                                "pipelined relation allreduce",
                                $lbl
                            );
                        }
                        apply_update(
                            ctx,
                            ent_opt.as_mut(),
                            strategy.update_style,
                            choice,
                            &mut ent,
                            AggRef::Dense {
                                buf: &pipeline[idx].ent_dense,
                                sparse_scratch: &mut scratch.ent_agg,
                            },
                            lr_scale,
                        );
                        if !strategy.relation_partition {
                            apply_update(
                                ctx,
                                rel_opt.as_mut(),
                                strategy.update_style,
                                choice,
                                &mut rel,
                                AggRef::Dense {
                                    buf: &pipeline[idx].rel_dense,
                                    sparse_scratch: &mut scratch.rel_agg,
                                },
                                lr_scale,
                            );
                        }
                    }
                    CommChoice::AllGather => {
                        let gathered = {
                            let slot = &mut pipeline[idx];
                            let (gathered, _overlap) = try_exchange!(
                                complete_gather_exchange_overlapped(
                                    ctx.comm_mut(),
                                    dim,
                                    &mut slot.ent_gather,
                                    &mut scratch.ent_agg,
                                    slot.anchor_s,
                                ),
                                "pipelined entity allgather",
                                $lbl
                            );
                            gathered
                        };
                        // Decode + local sum cost (same charge as the
                        // synchronous gather path; `gathered` is a shared
                        // quantity, so clocks stay rank-identical).
                        ctx.comm_mut()
                            .clock_mut()
                            .charge_flops((gathered * dim) as f64);
                        if !strategy.relation_partition {
                            let slot = &mut pipeline[idx];
                            let _ = try_exchange!(
                                complete_gather_exchange_overlapped(
                                    ctx.comm_mut(),
                                    dim,
                                    &mut slot.rel_gather,
                                    &mut scratch.rel_agg,
                                    slot.anchor_s,
                                ),
                                "pipelined relation allgather",
                                $lbl
                            );
                        }
                        apply_update(
                            ctx,
                            ent_opt.as_mut(),
                            strategy.update_style,
                            choice,
                            &mut ent,
                            AggRef::Sparse {
                                grad: &mut scratch.ent_agg,
                                dense_scratch: &mut scratch.dense_ent,
                            },
                            lr_scale,
                        );
                        if !strategy.relation_partition {
                            apply_update(
                                ctx,
                                rel_opt.as_mut(),
                                strategy.update_style,
                                choice,
                                &mut rel,
                                AggRef::Sparse {
                                    grad: &mut scratch.rel_agg,
                                    dense_scratch: &mut scratch.dense_rel,
                                },
                                lr_scale,
                            );
                        }
                    }
                    _ => unreachable!("base() is synchronous"),
                }
            }};
        }

        'batches: for b in 0..batches_per_epoch {
            let (loss, n_examples) = scratch.batch.batch_gradients_into(
                model, &ent, &rel, &shard, b, config, &filter, bias.as_ref(), rank, epoch,
            );
            epoch_loss += loss;
            epoch_examples += n_examples;

            // Charge the batch's forward+backward compute.
            let fwd_bwd = n_examples as f64 * model.score_flops() * 3.0;
            let pool_extra = if strategy.neg.uses_selection() {
                // pool scored per positive; positives = examples / (1+train)
                let positives = n_examples / (1 + strategy.neg.train);
                (positives * strategy.neg.pool) as f64 * model.score_flops()
            } else {
                0.0
            };
            ctx.comm_mut().clock_mut().charge_flops(fwd_bwd + pool_extra);

            nonzero_rows_sum += scratch.batch.ent_grad.rows_above_norm(ZERO_ROW_EPS);

            if window > 0 {
                // --- Pipelined exchange: complete the slot this batch is
                // about to reuse (it holds batch `b − window`), then launch
                // batch `b`'s exchange so its collective rides behind the
                // compute of the next `window` batches. ---------------------
                let slot_idx = b % window;
                if b >= window {
                    complete_slot!(slot_idx, 'batches);
                }

                // Stage RNG streams are keyed on (seed, rank, epoch, batch,
                // stage), so every stochastic draw of the launch (row
                // selection, quantization dithers) is independent of thread
                // count and of when the overlapped collective completes.
                let mut ent_stage_rng =
                    StdRng::seed_from_u64(stage_seed(config.seed, rank, epoch, b, STAGE_ENT));
                let mut rel_stage_rng =
                    StdRng::seed_from_u64(stage_seed(config.seed, rank, epoch, b, STAGE_REL));

                // Anchor before the encode: quantize + encode run on the
                // comm thread of a real pipelined exchange, so their cost
                // (charged to this clock below) is part of the window the
                // collective's price may hide behind.
                pipeline[slot_idx].anchor_s = ctx.comm().clock().now_s();
                pipeline[slot_idx].batch = b;

                if strategy.error_feedback && !matches!(strategy.quant, QuantScheme::None) {
                    ent_residual.add_into(&mut scratch.batch.ent_grad);
                }
                let sel =
                    select_rows(strategy.row_select, &mut scratch.batch.ent_grad, &mut ent_stage_rng);
                rows_before_rs += sel.rows_before;
                rows_after_rs += sel.rows_after;
                ctx.comm_mut()
                    .clock_mut()
                    .charge_flops((sel.rows_before * dim * 2) as f64);

                match choice.base() {
                    CommChoice::AllReduce => {
                        let slot = &mut pipeline[slot_idx];
                        slot.ent_stats = stage_allreduce_payload(
                            &scratch.batch.ent_grad,
                            &mut slot.ent_dense,
                            dataset.n_entities * dim,
                        );
                        rows_sent_sum += slot.ent_stats.rows_sent;
                        if !strategy.relation_partition {
                            slot.rel_stats = stage_allreduce_payload(
                                &scratch.batch.rel_grad,
                                &mut slot.rel_dense,
                                dataset.n_relations * dim,
                            );
                        }
                    }
                    CommChoice::AllGather => {
                        // Quantization costs ~2 flops per element.
                        ctx.comm_mut()
                            .clock_mut()
                            .charge_flops((scratch.batch.ent_grad.nnz() * dim * 2) as f64);
                        let residuals = if strategy.error_feedback
                            && !matches!(strategy.quant, QuantScheme::None)
                        {
                            Some(&mut ent_residual)
                        } else {
                            None
                        };
                        scratch.batch.ent_grad.ensure_sorted();
                        let slot = &mut pipeline[slot_idx];
                        slot.ent_stats = encode_gather_payload(
                            &scratch.batch.ent_grad,
                            dim,
                            strategy.quant,
                            residuals,
                            &mut ent_stage_rng,
                            &mut slot.ent_gather,
                        );
                        rows_sent_sum += slot.ent_stats.rows_sent;
                        if !strategy.relation_partition {
                            let residuals = if strategy.error_feedback
                                && !matches!(strategy.quant, QuantScheme::None)
                            {
                                Some(&mut rel_residual)
                            } else {
                                None
                            };
                            scratch.batch.rel_grad.ensure_sorted();
                            slot.rel_stats = encode_gather_payload(
                                &scratch.batch.rel_grad,
                                dim,
                                strategy.quant,
                                residuals,
                                &mut rel_stage_rng,
                                &mut slot.rel_gather,
                            );
                        }
                    }
                    _ => unreachable!("base() is synchronous"),
                }

                // Under RP relation rows never travel; apply them
                // synchronously — the staleness window covers exchanged
                // gradients only.
                if strategy.relation_partition {
                    apply_update(
                        ctx,
                        rel_opt.as_mut(),
                        strategy.update_style,
                        choice,
                        &mut rel,
                        AggRef::Sparse {
                            grad: &mut scratch.batch.rel_grad,
                            dense_scratch: &mut scratch.dense_rel,
                        },
                        lr_scale,
                    );
                }
                continue 'batches;
            }

            // --- Entity gradient pipeline. ---------------------------
            if strategy.error_feedback && !matches!(strategy.quant, QuantScheme::None) {
                ent_residual.add_into(&mut scratch.batch.ent_grad);
            }
            let sel = select_rows(strategy.row_select, &mut scratch.batch.ent_grad, &mut rng);
            rows_before_rs += sel.rows_before;
            rows_after_rs += sel.rows_after;
            // Norm computation + selection cost.
            ctx.comm_mut()
                .clock_mut()
                .charge_flops((sel.rows_before * dim * 2) as f64);

            // `true` means the aggregate landed in the dense scratch
            // buffer; `false` means it landed in the sparse aggregate.
            let ent_dense: bool = match choice {
                CommChoice::AllReduce => {
                    let stats = try_exchange!(
                        exchange_allreduce(
                            ctx.comm_mut(),
                            &scratch.batch.ent_grad,
                            &mut scratch.dense_ent,
                        ),
                        "entity allreduce",
                        'batches
                    );
                    rows_sent_sum += stats.rows_sent;
                    true
                }
                CommChoice::AllGather => {
                    // Quantization costs ~2 flops per element.
                    ctx.comm_mut()
                        .clock_mut()
                        .charge_flops((scratch.batch.ent_grad.nnz() * dim * 2) as f64);
                    let residuals = if strategy.error_feedback
                        && !matches!(strategy.quant, QuantScheme::None)
                    {
                        Some(&mut ent_residual)
                    } else {
                        None
                    };
                    // Sort now (cheap, reuses the cached order) so the
                    // wire iteration below borrows instead of cloning.
                    scratch.batch.ent_grad.ensure_sorted();
                    let stats = try_exchange!(
                        exchange_allgather_into(
                            ctx.comm_mut(),
                            &scratch.batch.ent_grad,
                            dim,
                            strategy.quant,
                            residuals,
                            &mut rng,
                            &mut scratch.gather,
                            &mut scratch.ent_agg,
                        ),
                        "entity allgather",
                        'batches
                    );
                    rows_sent_sum += stats.rows_sent;
                    // Decode + local sum cost.
                    ctx.comm_mut()
                        .clock_mut()
                        .charge_flops((stats.rows_gathered * dim) as f64);
                    false
                }
                _ => unreachable!("pipelined choices imply window > 0"),
            };

            // --- Relation gradient pipeline. --------------------------
            // With relation partition there is no communication; relation
            // rows are node-local and stay full precision (the paper's
            // accuracy argument for RP) — the local gradient is applied
            // directly below.
            let rel_dense: bool = if strategy.relation_partition {
                false
            } else {
                match choice {
                    CommChoice::AllReduce => {
                        let _ = try_exchange!(
                            exchange_allreduce(
                                ctx.comm_mut(),
                                &scratch.batch.rel_grad,
                                &mut scratch.dense_rel,
                            ),
                            "relation allreduce",
                            'batches
                        );
                        true
                    }
                    CommChoice::AllGather => {
                        let residuals = if strategy.error_feedback
                            && !matches!(strategy.quant, QuantScheme::None)
                        {
                            Some(&mut rel_residual)
                        } else {
                            None
                        };
                        scratch.batch.rel_grad.ensure_sorted();
                        let _ = try_exchange!(
                            exchange_allgather_into(
                                ctx.comm_mut(),
                                &scratch.batch.rel_grad,
                                dim,
                                strategy.quant,
                                residuals,
                                &mut rng,
                                &mut scratch.gather,
                                &mut scratch.rel_agg,
                            ),
                            "relation allgather",
                            'batches
                        );
                        false
                    }
                    _ => unreachable!("pipelined choices imply window > 0"),
                }
            };

            // --- Optimizer step. ---------------------------------------
            let ent_ref = if ent_dense {
                AggRef::Dense {
                    buf: &scratch.dense_ent,
                    sparse_scratch: &mut scratch.ent_agg,
                }
            } else {
                AggRef::Sparse {
                    grad: &mut scratch.ent_agg,
                    dense_scratch: &mut scratch.dense_ent,
                }
            };
            apply_update(
                ctx,
                ent_opt.as_mut(),
                strategy.update_style,
                choice,
                &mut ent,
                ent_ref,
                lr_scale,
            );
            let rel_ref = if strategy.relation_partition {
                AggRef::Sparse {
                    grad: &mut scratch.batch.rel_grad,
                    dense_scratch: &mut scratch.dense_rel,
                }
            } else if rel_dense {
                AggRef::Dense {
                    buf: &scratch.dense_rel,
                    sparse_scratch: &mut scratch.rel_agg,
                }
            } else {
                AggRef::Sparse {
                    grad: &mut scratch.rel_agg,
                    dense_scratch: &mut scratch.dense_rel,
                }
            };
            apply_update(
                ctx,
                rel_opt.as_mut(),
                strategy.update_style,
                choice,
                &mut rel,
                rel_ref,
                lr_scale,
            );
        }

        // --- Pipeline drain: complete every still-in-flight exchange in
        // launch (FIFO) order, so staleness never crosses an epoch
        // boundary and the validation signal sees every batch applied.
        // After a crash the in-flight slots are discarded instead — their
        // updates were never applied, so dropping them *is* the rollback
        // of the partial window. ----------------------------------------
        if window > 0 && !crashed_this_epoch {
            'drain: for b in batches_per_epoch.saturating_sub(window)..batches_per_epoch {
                complete_slot!(b % window, 'drain);
            }
        }

        // --- Relation assembly under RP (once per epoch, so validation
        // and the final model see every relation's owner copy). ----------
        if !crashed_this_epoch && strategy.relation_partition && p > 1 {
            match assemble_relations(
                ctx,
                &mut rel,
                &owned_rels,
                dim,
                &mut scratch.asm_send,
                &mut scratch.asm_recv,
                &mut scratch.asm_counts,
            ) {
                Ok(()) => {}
                Err(SimError::RankCrashed { .. }) => crashed_this_epoch = true,
                Err(e) => panic!("relation assembly allgather: {e}"),
            }
        }

        // --- Degradation policy: drop the aborted epoch, shrink the
        // communicator to the survivors, rebalance, keep training. -------
        if crashed_this_epoch {
            // The aborted epoch yields no trace entry or validation
            // signal; un-count its collective choice so the tallies keep
            // matching the trace length.
            match choice.base() {
                CommChoice::AllReduce => tallies.allreduce_epochs -= 1,
                CommChoice::AllGather => tallies.allgather_epochs -= 1,
                _ => unreachable!("base() is synchronous"),
            }
            if choice.is_pipelined() {
                tallies.pipelined_epochs -= 1;
            }
            tallies.crashed_ranks.extend(ctx.comm().failed_ranks());
            if !config.recover_from_crashes {
                break;
            }
            match ctx.comm_mut().shrink() {
                Ok(true) => {
                    // Survivor: adopt the shrunken world and redistribute
                    // the triples over it. The LR schedule keeps its
                    // original world-size scaling (deliberate — see
                    // DESIGN.md); DRS forgets its timings and re-probes
                    // at the new size.
                    tallies.recoveries += 1;
                    rank = ctx.rank();
                    p = ctx.size();
                    let (s, o, b) = distribute(
                        dataset,
                        strategy.relation_partition,
                        rank,
                        p,
                        config.batch_size,
                    );
                    base_shard = s;
                    shard.clone_from(&base_shard);
                    owned_rels = o;
                    batches_per_epoch = b;
                    // Re-partitioning cost: a sort-like pass over the full
                    // triple set, identical on every survivor.
                    ctx.comm_mut()
                        .clock_mut()
                        .charge_flops((dataset.train.len() * 8) as f64);
                    if let Some(sel) = selector.as_mut() {
                        sel.reset();
                    }
                    epoch += 1;
                    continue;
                }
                Ok(false) => {
                    // This is the crashed rank. It parks in the rejoin
                    // lobby: if the fault plan schedules its recovery, the
                    // survivors re-admit it at an epoch boundary;
                    // otherwise they close the lobby when the run ends and
                    // it leaves the job (its replica is stale; train()
                    // only uses its wire traffic totals).
                    match ctx.comm_mut().await_rejoin() {
                        Some(leader) => {
                            rank = ctx.rank();
                            p = ctx.size();
                            let (s, o, b) = distribute(
                                dataset,
                                strategy.relation_partition,
                                rank,
                                p,
                                config.batch_size,
                            );
                            base_shard = s;
                            shard.clone_from(&base_shard);
                            owned_rels = o;
                            batches_per_epoch = b;
                            // Adopt the authoritative replica state from
                            // the grow leader. Local stream state (RNG,
                            // clock, traffic, fault cursors) stays this
                            // rank's own; residuals reset — the error
                            // feedback died with the crash.
                            let msg = ctx
                                .comm_mut()
                                .recv_bytes_from(leader)
                                .unwrap_or_else(|e| panic!("rejoin state recv: {e}"));
                            let ck = checkpoint::decode(&msg.payload)
                                .unwrap_or_else(|e| panic!("rejoin state decode: {e}"));
                            ent.as_mut_slice().copy_from_slice(ck.ent.as_slice());
                            rel.as_mut_slice().copy_from_slice(ck.rel.as_slice());
                            ent_opt
                                .load_state(ck.ent_opt.as_view())
                                .unwrap_or_else(|e| panic!("rejoin: entity optimizer: {e}"));
                            rel_opt
                                .load_state(ck.rel_opt.as_view())
                                .unwrap_or_else(|e| panic!("rejoin: relation optimizer: {e}"));
                            ent_residual.clear();
                            rel_residual.clear();
                            schedule = PlateauSchedule::restore(&ck.schedule);
                            // Mirror the survivors' post-grow DRS reset.
                            selector = match strategy.comm {
                                CommMode::Dynamic { check_every } => {
                                    Some(DynamicCommSelector::new(check_every))
                                }
                                _ => None,
                            };
                            tallies = ck.tallies.clone();
                            trace = ck.trace.clone();
                            // Re-enter at the epoch the survivors are
                            // about to run; their grow step this epoch
                            // already happened.
                            epoch = ck.next_epoch;
                            skip_grow = true;
                            continue;
                        }
                        None => {
                            survived = false;
                            break;
                        }
                    }
                }
                Err(e) => panic!("communicator shrink: {e}"),
            }
        }

        // --- Validation signal + schedule. ------------------------------
        let acc = fast_valid_accuracy(
            model,
            &ent,
            &rel,
            &dataset.valid,
            &filter,
            dataset.n_entities,
            config.valid_samples,
            config.seed ^ (epoch as u64).wrapping_mul(0x2545F4914F6CDD1D),
        );
        ctx.comm_mut().clock_mut().charge_flops(
            (config.valid_samples.min(dataset.valid.len()) * 2) as f64 * model.score_flops(),
        );

        let epoch_time = ctx.comm().clock().now_s() - epoch_start;
        if let Some(sel) = selector.as_mut() {
            sel.observe_epoch(epoch_time);
        }

        // --- Optional full ranking eval, sharded across ranks. ----------
        // Runs after `epoch_time` is taken so the dynamic comm selector's
        // per-epoch signal stays a pure training measurement; the eval's
        // compute and collectives still land on the simulated clock (and
        // therefore in `sim_total_seconds`). Collective: every surviving
        // rank reaches this point with the same epoch counter.
        let ranking = match eval_state.as_mut() {
            Some((grouped, ws))
                if (epoch + 1).is_multiple_of(config.eval_every) && !dataset.valid.is_empty() =>
            {
                Some(evaluate_ranking_distributed(
                    ctx.comm_mut(),
                    ws,
                    model,
                    &ent,
                    &rel,
                    &dataset.valid,
                    grouped,
                    &RankingOptions {
                        filtered: true,
                        max_queries: config.eval_max_queries,
                        seed: config.seed,
                    },
                ))
            }
            _ => None,
        };

        let batches = batches_per_epoch as f64;
        trace.push(EpochTrace {
            epoch,
            sim_seconds: epoch_time,
            comm: choice,
            valid_acc: acc,
            train_loss: if epoch_examples > 0 {
                epoch_loss / epoch_examples as f64
            } else {
                0.0
            },
            lr_scale,
            mean_nonzero_rows: nonzero_rows_sum as f64 / batches,
            mean_rows_sent: rows_sent_sum as f64 / batches,
            rs_sparsity: if rows_before_rs > 0 {
                1.0 - rows_after_rs as f64 / rows_before_rs as f64
            } else {
                0.0
            },
            bytes_sent: ctx.comm().traffic().total_sent() - bytes_at_start,
            ranking,
        });

        let decision = schedule.observe(acc);

        // --- Periodic checkpoint. ---------------------------------------
        // Written after the schedule has observed this epoch, so a resume
        // continues from exactly the state the uninterrupted run carries
        // into the next epoch. The modeled write cost is charged to the
        // clock's `checkpoint_s` bucket *before* the clock is captured:
        // the image embeds the post-charge clock, which is the clock the
        // uninterrupted run continues with.
        if config.checkpoint_every > 0 && (epoch + 1).is_multiple_of(config.checkpoint_every) {
            let dir = config
                .checkpoint_dir
                .as_ref()
                .expect("validated: checkpoint_every requires checkpoint_dir");
            tallies.checkpoints_written += 1;
            // Cost model: latency + model + optimizer bytes over the
            // checkpoint device bandwidth. A deterministic function of
            // table shapes only, so every rank charges the same amount
            // and clocks stay aligned.
            let state_bytes = 2 * (ent.nbytes() + rel.nbytes());
            ctx.comm_mut()
                .clock_mut()
                .charge_checkpoint_seconds(CKPT_LATENCY_S + state_bytes as f64 / CKPT_BW_BYTES_S);
            encode_rank_state(
                &mut ckpt_buf,
                &mut ckpt_ids,
                &mut ckpt_traffic,
                ctx,
                config,
                epoch + 1,
                p,
                rank,
                &ent,
                &rel,
                ent_opt.as_ref(),
                rel_opt.as_ref(),
                &ent_residual,
                &rel_residual,
                &rng,
                &schedule,
                selector.as_ref(),
                &tallies,
                &trace,
            );
            let path = checkpoint::checkpoint_path(dir, rank);
            checkpoint::write_file(&path, &ckpt_buf)
                .unwrap_or_else(|e| panic!("checkpoint write {}: {e}", path.display()));
        }

        // --- Serving-snapshot publish. ----------------------------------
        // Same boundary as the checkpoint (after the schedule observed the
        // epoch), so the bytes a sink receives equal the checkpoint-derived
        // model bytes bit-for-bit. The modeled in-memory copy cost is a
        // pure function of table shapes, so *every* rank charges it and
        // clocks stay aligned; only rank 0 calls the sink — replicas are
        // bit-identical, and after a crash-shrink the lead survivor holds
        // rank 0.
        if config.serve_snapshots > 0 && (epoch + 1).is_multiple_of(config.serve_snapshots) {
            let model_bytes = ent.nbytes() + rel.nbytes();
            let clock = ctx.comm_mut().clock_mut();
            clock.charge_checkpoint_seconds(SNAP_LATENCY_S + model_bytes as f64 / SNAP_BW_BYTES_S);
            let sim_now_s = clock.now_s();
            if rank == 0 {
                if let Some(sink) = sink {
                    sink.publish(&PublishedModel {
                        epochs_done: epoch + 1,
                        sim_now_s,
                        ent: &ent,
                        rel: &rel,
                    });
                }
            }
        }

        if matches!(decision, crate::lr::LrDecision::Converged) {
            converged = true;
            break;
        }
        epoch += 1;
    }

    // Wake any rank still parked on a recovery the run never reached.
    // Idempotent; a no-op for runs without fault plans.
    if survived {
        ctx.comm().close_lobby();
    }

    let breakdown = ctx.comm().clock().breakdown();
    // After a shrink the lead survivor holds rank 0 of the new world; the
    // crashed rank never reports even if it was the original rank 0.
    let report = if survived && rank == 0 {
        Some(TrainReport {
            dataset: dataset.name.clone(),
            nodes: initial_p,
            epochs: trace.len(),
            converged,
            sim_total_seconds: ctx.comm().clock().now_s(),
            breakdown,
            trace,
            allreduce_epochs: tallies.allreduce_epochs,
            allgather_epochs: tallies.allgather_epochs,
            pipelined_epochs: tallies.pipelined_epochs,
            surviving_nodes: p,
            recoveries: tallies.recoveries,
            rejoins: tallies.rejoins,
            checkpoints_written: tallies.checkpoints_written,
            crashed_ranks: tallies.crashed_ranks,
            // Filled in by train(), which sums over every rank.
            wire_bytes_sent: 0,
            wire_bytes_recv: 0,
            sharded: None,
        })
    } else {
        None
    };
    let traffic = ctx.comm().traffic().report();
    NodeResult {
        report,
        entities: ent,
        relations: rel,
        wire_sent: traffic.total_wire_sent(),
        wire_recv: traffic.total_wire_recv(),
    }
}

/// One chunk's reusable working state: the example staging arrays fed to
/// the fused block kernel, the kernel's gather/score scratch, the
/// negative-sampling scratch, and the chunk-local gradient accumulators.
/// Instances live in a [`ScratchPool`] so every buffer is reused across
/// chunks, batches, and epochs — after warmup, processing a chunk
/// performs no heap allocation.
pub(crate) struct ChunkScratch {
    pub(crate) loss: f64,
    pub(crate) examples: usize,
    /// Example labels (+1 positive / −1 negative), in example order.
    pub(crate) labels: Vec<f32>,
    /// `(head, rel, tail)` ids in example order, the block kernel's input.
    pub(crate) triples: Vec<(u32, u32, u32)>,
    pub(crate) block: BlockScratch,
    pub(crate) neg_scratch: NegScratch,
    pub(crate) negs: Vec<Triple>,
    pub(crate) ent: SparseGrad,
    pub(crate) rel: SparseGrad,
}

impl ChunkScratch {
    pub(crate) fn new(dim: usize) -> Self {
        ChunkScratch {
            loss: 0.0,
            examples: 0,
            labels: Vec::new(),
            triples: Vec::new(),
            block: BlockScratch::new(),
            neg_scratch: NegScratch::default(),
            negs: Vec::new(),
            ent: SparseGrad::new(dim),
            rel: SparseGrad::new(dim),
        }
    }
}

/// Serialize this rank's full training state into `buf` using the pooled
/// scratch vectors — no allocations in steady state once the pools have
/// grown to their high-water marks. `next_epoch` is the first epoch the
/// restored run executes.
#[allow(clippy::too_many_arguments)]
fn encode_rank_state(
    buf: &mut Vec<u8>,
    ids: &mut Vec<u32>,
    traffic_scratch: &mut Vec<(Collective, [u64; 6])>,
    ctx: &NodeCtx,
    config: &TrainConfig,
    next_epoch: usize,
    world_size: usize,
    rank: usize,
    ent: &EmbeddingTable,
    rel: &EmbeddingTable,
    ent_opt: &dyn RowOptimizer,
    rel_opt: &dyn RowOptimizer,
    ent_residual: &ResidualStore,
    rel_residual: &ResidualStore,
    rng: &StdRng,
    schedule: &PlateauSchedule,
    selector: Option<&DynamicCommSelector>,
    tallies: &Tallies,
    trace: &[EpochTrace],
) {
    ctx.comm().traffic().export_into(traffic_scratch);
    let view = CheckpointView {
        world_size,
        rank,
        next_epoch,
        seed: config.seed,
        ent,
        rel,
        ent_opt: ent_opt.state_view(),
        rel_opt: rel_opt.state_view(),
        ent_residual,
        rel_residual,
        rng_state: rng.state(),
        schedule: schedule.snapshot(),
        selector: selector.map(|s| s.snapshot()),
        tallies,
        trace,
        clock_now_s: ctx.comm().clock().now_s(),
        breakdown: ctx.comm().clock().breakdown(),
        traffic: &*traffic_scratch,
        coll_seq: ctx.comm().coll_seq(),
        p2p_seq: ctx.comm().p2p_seq(),
    };
    checkpoint::encode_into(&view, ids, buf);
}

/// RNG seed for one gradient chunk, derived from its structural
/// coordinates by sequentially mixing each through splitmix64. Every
/// `(seed, rank, epoch, batch, chunk)` tuple gets an independent stream
/// regardless of which worker thread runs the chunk.
pub(crate) fn chunk_seed(
    seed: u64,
    rank: usize,
    epoch: usize,
    batch_idx: usize,
    chunk_idx: usize,
) -> u64 {
    let mut h = seed;
    for w in [
        rank as u64,
        epoch as u64,
        batch_idx as u64,
        chunk_idx as u64,
    ] {
        h = crate::splitmix64(h ^ w);
    }
    h
}

/// Stage ids for [`stage_seed`]: the entity and relation exchange stages
/// of one batch's pipelined launch.
const STAGE_ENT: u64 = 0;
const STAGE_REL: u64 = 1;

/// RNG seed for one pipelined exchange stage, derived like [`chunk_seed`]
/// but from a tagged chain — it starts at `splitmix64(seed ^ TAG)` instead
/// of `seed` — so stage streams can never collide with a gradient chunk's
/// stream. Keying on `(seed, rank, epoch, batch, stage)` makes every
/// stochastic draw of a launch (row selection, quantization dithers)
/// independent of thread count and of interleaving with completions.
fn stage_seed(seed: u64, rank: usize, epoch: usize, batch: usize, stage: u64) -> u64 {
    const TAG: u64 = 0x5049_5045_4C49_4E45; // ASCII "PIPELINE"
    let mut h = crate::splitmix64(seed ^ TAG);
    for w in [rank as u64, epoch as u64, batch as u64, stage] {
        h = crate::splitmix64(h ^ w);
    }
    h
}

/// Stage one chunk's examples and run them through the fused block
/// kernel. Phase 1 draws positives and negatives in the exact RNG order
/// of the scalar path, staging `(label, triple)` pairs in example order;
/// phase 2 makes a single [`KgeModel::score_grad_block`] call that
/// gathers rows, scores the whole chunk, forms coefficients (accumulating
/// the f64 loss in example order), and scatters regularized gradients
/// into the chunk accumulators — bit-identical to per-example
/// score/grad/axpy.
#[allow(clippy::too_many_arguments)]
fn process_chunk(
    model: &dyn KgeModel,
    ent: &EmbeddingTable,
    rel: &EmbeddingTable,
    shard: &[Triple],
    start: usize,
    lo: usize,
    hi: usize,
    inv_batch: f32,
    config: &TrainConfig,
    filter: &FilterIndex,
    bias: Option<&CorruptionBias>,
    rng_seed: u64,
    cs: &mut ChunkScratch,
) {
    stage_chunk(
        model,
        ent,
        rel,
        ent.rows(),
        shard,
        start,
        lo,
        hi,
        config,
        filter,
        bias,
        rng_seed,
        cs,
    );
    compute_chunk(model, ent, rel, inv_batch, config, cs);
}

/// Phase 1 of [`process_chunk`]: draw positives and negatives and stage
/// `(label, triple)` pairs in example order. `n_entities` is the
/// corruption range — the replica path passes `ent.rows()`, while the
/// sharded path stages against placeholder tables before the pull fills
/// them, so the range must be the global entity count, not the table
/// height. The chunk's gradient accumulators are cleared here so a staged
/// chunk is always ready for [`compute_chunk`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn stage_chunk(
    model: &dyn KgeModel,
    ent: &EmbeddingTable,
    rel: &EmbeddingTable,
    n_entities: usize,
    shard: &[Triple],
    start: usize,
    lo: usize,
    hi: usize,
    config: &TrainConfig,
    filter: &FilterIndex,
    bias: Option<&CorruptionBias>,
    rng_seed: u64,
    cs: &mut ChunkScratch,
) {
    cs.loss = 0.0;
    cs.labels.clear();
    cs.triples.clear();
    cs.ent.clear();
    cs.rel.clear();
    let mut rng = StdRng::seed_from_u64(rng_seed);
    for i in lo..hi {
        let pos = shard[(start + i) % shard.len()];
        cs.labels.push(1.0);
        cs.triples.push((pos.head, pos.rel, pos.tail));
        cs.negs.clear();
        sample_negatives_into(
            config.strategy.neg,
            pos,
            model,
            ent,
            rel,
            filter,
            bias,
            n_entities,
            &mut rng,
            &mut cs.neg_scratch,
            &mut cs.negs,
        );
        for n in &cs.negs {
            cs.labels.push(-1.0);
            cs.triples.push((n.head, n.rel, n.tail));
        }
    }
    cs.examples = cs.triples.len();
}

/// Phase 2 of [`process_chunk`]: the fused kernel call over an
/// already-staged chunk. The entity ids in `cs.triples` index `ent` —
/// global ids for the replica path, batch-local ids for the sharded path
/// (the kernel gathers only the rows the triples name, so the remap is
/// value-transparent).
pub(crate) fn compute_chunk(
    model: &dyn KgeModel,
    ent: &EmbeddingTable,
    rel: &EmbeddingTable,
    inv_batch: f32,
    config: &TrainConfig,
    cs: &mut ChunkScratch,
) {
    let ChunkScratch {
        loss,
        labels,
        triples,
        block,
        ent: ent_g,
        rel: rel_g,
        ..
    } = cs;
    let mut coeff_of = |i: usize, score: f32| {
        let y = labels[i];
        *loss += logistic_loss(y, score) as f64;
        logistic_loss_grad(y, score) * inv_batch
    };
    model.score_grad_block(
        ent,
        rel,
        triples,
        2.0 * config.l2 * inv_batch,
        block,
        &mut coeff_of,
        ent_g,
        rel_g,
    );
}

/// Reusable workspace for the batch-gradient hot path: the per-batch
/// entity/relation accumulators plus the pool of per-chunk scratch
/// state. Public so benches and the allocation-regression test can drive
/// the exact code the trainer runs.
pub struct BatchWorkspace {
    ent_grad: SparseGrad,
    rel_grad: SparseGrad,
    chunk_pool: ScratchPool<ChunkScratch>,
}

impl BatchWorkspace {
    pub fn new(dim: usize) -> Self {
        BatchWorkspace {
            ent_grad: SparseGrad::new(dim),
            rel_grad: SparseGrad::new(dim),
            chunk_pool: ScratchPool::new(),
        }
    }

    /// Accumulate one batch's gradients into the workspace accumulators
    /// (cleared first). Returns `(summed loss, trained examples)`.
    ///
    /// The batch is split into fixed-size chunks of [`GRAD_CHUNK`]
    /// positives. Each chunk samples its negatives from its own seeded
    /// RNG stream (see [`chunk_seed`]) and runs the fused block kernel
    /// into pooled chunk-local accumulators; chunks are then merged **in
    /// chunk order**, so the result is bit-identical at any thread
    /// count. On a single-thread pool the chunks run inline with no
    /// intermediate collection, so steady-state batches allocate nothing.
    #[allow(clippy::too_many_arguments)]
    pub fn batch_gradients_into(
        &mut self,
        model: &dyn KgeModel,
        ent: &EmbeddingTable,
        rel: &EmbeddingTable,
        shard: &[Triple],
        batch_idx: usize,
        config: &TrainConfig,
        filter: &FilterIndex,
        bias: Option<&CorruptionBias>,
        rank: usize,
        epoch: usize,
    ) -> (f64, usize) {
        self.ent_grad.clear();
        self.rel_grad.clear();
        if shard.is_empty() {
            return (0.0, 0);
        }
        let bs = config.batch_size.min(shard.len());
        let start = batch_idx * config.batch_size;
        let dim = ent.dim();
        // Every positive trains against exactly `neg.train` negatives
        // (`sample_negatives_into` keeps `train` out of `pool ≥ train`),
        // so the batch normalizer is known before any chunk runs.
        let inv_batch = 1.0f32 / (bs * (1 + config.strategy.neg.train)) as f32;
        let n_chunks = bs.div_ceil(GRAD_CHUNK);
        let pool = &self.chunk_pool;

        let mut loss_sum = 0.0f64;
        let mut examples = 0usize;
        if rayon::current_num_threads() <= 1 || n_chunks == 1 {
            // Sequential fast path: one pooled scratch processes the
            // chunks in order and merges each immediately — same chunk
            // seeds, same merge order, no intermediate collection.
            let mut cs = pool.acquire_with(|| ChunkScratch::new(dim));
            for c in 0..n_chunks {
                let lo = c * GRAD_CHUNK;
                let hi = (lo + GRAD_CHUNK).min(bs);
                process_chunk(
                    model,
                    ent,
                    rel,
                    shard,
                    start,
                    lo,
                    hi,
                    inv_batch,
                    config,
                    filter,
                    bias,
                    chunk_seed(config.seed, rank, epoch, batch_idx, c),
                    &mut cs,
                );
                loss_sum += cs.loss;
                examples += cs.examples;
                self.ent_grad.merge(&cs.ent);
                self.rel_grad.merge(&cs.rel);
            }
            pool.release(cs);
        } else {
            let chunks: Vec<Box<ChunkScratch>> = rayon::par_map_index(n_chunks, |c| {
                let mut cs = pool.acquire_with(|| ChunkScratch::new(dim));
                let lo = c * GRAD_CHUNK;
                let hi = (lo + GRAD_CHUNK).min(bs);
                process_chunk(
                    model,
                    ent,
                    rel,
                    shard,
                    start,
                    lo,
                    hi,
                    inv_batch,
                    config,
                    filter,
                    bias,
                    chunk_seed(config.seed, rank, epoch, batch_idx, c),
                    &mut cs,
                );
                cs
            });
            for cs in chunks {
                loss_sum += cs.loss;
                examples += cs.examples;
                self.ent_grad.merge(&cs.ent);
                self.rel_grad.merge(&cs.rel);
                pool.release(cs);
            }
        }
        (loss_sum, examples)
    }

    /// The entity-gradient accumulator from the last batch.
    pub fn ent_grad(&self) -> &SparseGrad {
        &self.ent_grad
    }

    /// The relation-gradient accumulator from the last batch.
    pub fn rel_grad(&self) -> &SparseGrad {
        &self.rel_grad
    }

    /// Mutable access for downstream pipeline stages (selection,
    /// residual feedback, sort warm-up) that edit the gradient in place.
    pub fn ent_grad_mut(&mut self) -> &mut SparseGrad {
        &mut self.ent_grad
    }

    /// See [`BatchWorkspace::ent_grad_mut`].
    pub fn rel_grad_mut(&mut self) -> &mut SparseGrad {
        &mut self.rel_grad
    }
}

/// Public entry point for benches and tests: one batch's chunked-parallel
/// gradient computation, returning `(loss, examples, ent_grad, rel_grad)`.
/// Allocates a fresh [`BatchWorkspace`] per call; steady-state callers
/// should hold a workspace and use [`BatchWorkspace::batch_gradients_into`].
#[allow(clippy::too_many_arguments)]
pub fn batch_gradients(
    model: &dyn KgeModel,
    ent: &EmbeddingTable,
    rel: &EmbeddingTable,
    shard: &[Triple],
    batch_idx: usize,
    config: &TrainConfig,
    filter: &FilterIndex,
    bias: Option<&CorruptionBias>,
    rank: usize,
    epoch: usize,
) -> (f64, usize, SparseGrad, SparseGrad) {
    let mut ws = BatchWorkspace::new(ent.dim());
    let (loss, examples) =
        ws.batch_gradients_into(model, ent, rel, shard, batch_idx, config, filter, bias, rank, epoch);
    (loss, examples, ws.ent_grad, ws.rel_grad)
}

/// A borrowed view of one batch's aggregated gradient, paired with the
/// scratch buffer the *other* representation would need, so the update
/// step can convert in place without allocating.
enum AggRef<'a> {
    /// Dense mean gradient (all-reduce result). `sparse_scratch` holds a
    /// reusable sparse view for lazy update styles.
    Dense {
        buf: &'a [f32],
        sparse_scratch: &'a mut SparseGrad,
    },
    /// Sparse aggregated gradient (all-gather result or RP-local rows).
    /// `dense_scratch` holds the full-table buffer dense update styles
    /// scatter into. Mutable so the lazy path can warm the sorted-row
    /// cache in place before the optimizer iterates it.
    Sparse {
        grad: &'a mut SparseGrad,
        dense_scratch: &'a mut Vec<f32>,
    },
}

/// Apply the optimizer step for one table, honoring the update style, and
/// charge its simulated compute. Representation conversions (dense↔sparse)
/// reuse the scratch buffer carried inside [`AggRef`].
fn apply_update(
    ctx: &mut NodeCtx,
    opt: &mut dyn RowOptimizer,
    style: UpdateStyle,
    choice: CommChoice,
    table: &mut EmbeddingTable,
    agg: AggRef<'_>,
    lr_scale: f32,
) {
    let dim = table.dim();
    let dense_style = match style {
        UpdateStyle::Auto => matches!(choice.base(), CommChoice::AllReduce),
        UpdateStyle::Dense => true,
        UpdateStyle::Lazy => false,
    };
    match agg {
        AggRef::Dense { buf, sparse_scratch } => {
            if dense_style {
                opt.step_dense(table, buf, lr_scale);
                ctx.comm_mut()
                    .clock_mut()
                    .charge_flops(opt.dense_step_flops());
            } else {
                sparse_from_dense_into(buf, dim, sparse_scratch);
                sparse_scratch.ensure_sorted();
                ctx.comm_mut()
                    .clock_mut()
                    .charge_flops(opt.lazy_step_flops(sparse_scratch.nnz()));
                opt.step_lazy(table, sparse_scratch, lr_scale);
            }
        }
        AggRef::Sparse {
            grad,
            dense_scratch,
        } => {
            if dense_style {
                dense_scratch.resize(table.rows() * dim, 0.0);
                dense_scratch.fill(0.0);
                grad.scatter_into(dense_scratch);
                opt.step_dense(table, dense_scratch, lr_scale);
                ctx.comm_mut()
                    .clock_mut()
                    .charge_flops(opt.dense_step_flops());
            } else {
                grad.ensure_sorted();
                ctx.comm_mut()
                    .clock_mut()
                    .charge_flops(opt.lazy_step_flops(grad.nnz()));
                opt.step_lazy(table, grad, lr_scale);
            }
        }
    }
}

/// Rows of a dense buffer with any non-zero entry, rebuilt into the
/// reusable sparse gradient (cleared first).
fn sparse_from_dense_into(buf: &[f32], dim: usize, g: &mut SparseGrad) {
    g.clear();
    for (row, chunk) in buf.chunks(dim).enumerate() {
        if chunk.iter().any(|&x| x != 0.0) {
            g.row_mut(row as u32).copy_from_slice(chunk);
        }
    }
}

/// Under relation partition, gather every node's owned relation rows so
/// all replicas hold the complete relation table (once per epoch). The
/// wire and count buffers are caller-owned and reused across epochs; rows
/// are encoded straight from and decoded straight into the embedding
/// table, so assembly allocates nothing once the buffers are warm.
/// Propagates the collective's fault error so the caller can run the
/// crash-recovery policy; local (de)serialization failures are bugs and
/// still panic.
fn assemble_relations(
    ctx: &mut NodeCtx,
    rel: &mut EmbeddingTable,
    owned: &[u32],
    dim: usize,
    send: &mut Vec<u8>,
    recv: &mut Vec<u8>,
    counts: &mut Vec<usize>,
) -> Result<(), SimError> {
    let mut enc = RowEncoder::new(kge_compress::WireFormat::F32, dim, send);
    for &r in owned {
        enc.push_f32(r, rel.row(r as usize))
            .expect("encode relation row");
    }
    enc.finish();
    ctx.comm_mut().allgatherv_bytes_into(send, recv, counts)?;
    let mut off = 0usize;
    for &c in counts.iter() {
        let mut dec = RowDecoder::new(&recv[off..off + c]).expect("peer relation payload");
        off += c;
        while let Some(row) = dec.next_row() {
            let row = row.expect("peer relation payload");
            row.dequantize_into(rel.row_mut(row.row as usize));
        }
    }
    Ok(())
}

/// Extension trait: total bytes sent across all collectives (used for the
/// per-epoch byte accounting in the trace).
trait TotalSent {
    fn total_sent(&self) -> u64;
}

impl TotalSent for simgrid::TrafficStats {
    fn total_sent(&self) -> u64 {
        let r = self.report();
        r.bytes_sent(Collective::AllReduce)
            + r.bytes_sent(Collective::AllGatherV)
            + r.bytes_sent(Collective::Broadcast)
            + r.bytes_sent(Collective::Gather)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StrategyConfig;
    use kge_data::synth::{generate, SynthConfig};
    use simgrid::ClusterSpec;

    fn tiny_config(seed: u64) -> SynthConfig {
        SynthConfig {
            name: "tiny".into(),
            n_entities: 120,
            n_relations: 8,
            n_triples: 1500,
            relation_zipf: 1.0,
            entity_zipf: 0.8,
            noise_frac: 0.05,
            valid_frac: 0.08,
            test_frac: 0.08,
            seed,
        }
    }

    fn tiny_dataset(seed: u64) -> Dataset {
        generate(&tiny_config(seed))
    }

    fn quick_config(strategy: StrategyConfig) -> TrainConfig {
        let mut c = TrainConfig::new(4, 64, strategy);
        c.plateau_tolerance = 3;
        c.max_lr_drops = 1;
        c.max_epochs = 12;
        c.valid_samples = 64;
        // Tiny datasets have few optimizer steps per epoch; use a larger
        // base rate so a dozen epochs show clear movement.
        c.base_lr = 5e-3;
        c
    }

    #[test]
    fn single_node_loss_decreases() {
        let ds = tiny_dataset(1);
        let cluster = Cluster::new(1, ClusterSpec::cray_xc40());
        let out = train(&ds, &cluster, &quick_config(StrategyConfig::baseline_allreduce(2)));
        let first = out.report.trace.first().unwrap().train_loss;
        let last = out.report.trace.last().unwrap().train_loss;
        assert!(last < first, "loss should fall: {first} -> {last}");
        assert!(out.report.sim_total_seconds > 0.0);
        assert_eq!(out.report.nodes, 1);
    }

    #[test]
    fn replicas_stay_identical_across_nodes() {
        let ds = tiny_dataset(2);
        let cluster = Cluster::new(3, ClusterSpec::cray_xc40());
        let config = quick_config(StrategyConfig::baseline_allgather(2));
        let results = cluster.run(|ctx| {
            let res = run_node(ctx, &ds, &config, None);
            (res.entities, res.relations)
        });
        for (ent, rel) in &results[1..] {
            assert_eq!(ent.as_slice(), results[0].0.as_slice(), "entity replicas diverged");
            assert_eq!(rel.as_slice(), results[0].1.as_slice(), "relation replicas diverged");
        }
    }

    #[test]
    fn allreduce_and_allgather_agree_under_forced_lazy_updates() {
        // With no compression and lazy updates on both paths, the two
        // collectives aggregate the same values — models must match.
        let ds = tiny_dataset(3);
        let cluster = Cluster::new(2, ClusterSpec::cray_xc40());
        let mut c_ar = quick_config(StrategyConfig::baseline_allreduce(1));
        c_ar.strategy.update_style = UpdateStyle::Lazy;
        c_ar.max_epochs = 3;
        let mut c_ag = quick_config(StrategyConfig::baseline_allgather(1));
        c_ag.strategy.update_style = UpdateStyle::Lazy;
        c_ag.max_epochs = 3;
        let a = train(&ds, &cluster, &c_ar);
        let b = train(&ds, &cluster, &c_ag);
        assert_eq!(a.entities.as_slice(), b.entities.as_slice());
        assert_eq!(a.relations.as_slice(), b.relations.as_slice());
    }

    #[test]
    fn training_is_deterministic() {
        let ds = tiny_dataset(4);
        let cluster = Cluster::new(2, ClusterSpec::cray_xc40());
        let config = quick_config(StrategyConfig::combined(3));
        let a = train(&ds, &cluster, &config);
        let b = train(&ds, &cluster, &config);
        assert_eq!(a.entities.as_slice(), b.entities.as_slice());
        assert_eq!(a.report.epochs, b.report.epochs);
        assert_eq!(a.report.sim_total_seconds, b.report.sim_total_seconds);
    }

    #[test]
    fn combined_strategy_trains_and_reports() {
        let ds = tiny_dataset(5);
        let cluster = Cluster::new(4, ClusterSpec::cray_xc40());
        let out = train(&ds, &cluster, &quick_config(StrategyConfig::combined(4)));
        assert!(out.report.epochs > 0);
        let t = out.report.trace.last().unwrap();
        assert!(t.train_loss.is_finite());
        // RS must be dropping some rows.
        assert!(t.rs_sparsity > 0.0, "sparsity {}", t.rs_sparsity);
    }

    #[test]
    fn relation_partition_keeps_relation_bytes_off_the_wire() {
        // Use uniform relation frequencies and enough relations that the
        // partition's relation-boundary quantization is fine-grained, so
        // the comparison isolates the relation-gradient bytes RP
        // eliminates (at paper scale, 1345+ relations, this is the
        // operating regime).
        let ds = generate(&SynthConfig {
            relation_zipf: 0.0,
            n_relations: 32,
            n_triples: 6000,
            ..tiny_config(6)
        });
        let cluster = Cluster::new(4, ClusterSpec::cray_xc40());
        let mut with_rp = quick_config(StrategyConfig::baseline_allgather(1));
        with_rp.strategy.relation_partition = true;
        with_rp.max_epochs = 4;
        let mut without = quick_config(StrategyConfig::baseline_allgather(1));
        without.max_epochs = 4;
        let a = train(&ds, &cluster, &with_rp);
        let b = train(&ds, &cluster, &without);
        let bytes_rp: u64 = a.report.trace.iter().map(|t| t.bytes_sent).sum();
        let bytes_no: u64 = b.report.trace.iter().map(|t| t.bytes_sent).sum();
        assert!(
            bytes_rp < bytes_no,
            "RP should communicate less: {bytes_rp} vs {bytes_no}"
        );
    }

    #[test]
    fn dynamic_mode_starts_with_allreduce() {
        let ds = tiny_dataset(7);
        let cluster = Cluster::new(2, ClusterSpec::cray_xc40());
        let mut c = quick_config(StrategyConfig::baseline_allreduce(1));
        c.strategy.comm = CommMode::Dynamic { check_every: 2 };
        c.max_epochs = 6;
        let out = train(&ds, &cluster, &c);
        assert_eq!(out.report.trace[0].comm, CommChoice::AllReduce);
        assert!(out.report.allreduce_epochs + out.report.allgather_epochs == out.report.epochs);
    }

    #[test]
    fn distmult_and_transe_also_train() {
        // The paper's generality claim: the strategies apply to other KGE
        // models. Run the full combined stack under each model.
        use crate::config::ModelKind;
        let ds = tiny_dataset(10);
        let cluster = Cluster::new(2, ClusterSpec::cray_xc40());
        for kind in [ModelKind::DistMult, ModelKind::TransE] {
            let mut c = quick_config(StrategyConfig::combined(3));
            c.model = kind;
            c.max_epochs = 6;
            let out = train(&ds, &cluster, &c);
            assert_eq!(out.report.epochs, 6, "{kind:?}");
            let first = out.report.trace.first().unwrap().train_loss;
            let last = out.report.trace.last().unwrap().train_loss;
            assert!(last < first, "{kind:?} loss {first} -> {last}");
            assert_eq!(out.entities.dim(), c.model.build(c.rank).storage_dim());
        }
    }

    #[test]
    fn quantized_gather_sends_fewer_bytes_than_f32_gather() {
        let ds = tiny_dataset(8);
        let cluster = Cluster::new(2, ClusterSpec::cray_xc40());
        let mut q = quick_config(StrategyConfig::baseline_allgather(1));
        q.strategy.quant = QuantScheme::paper_one_bit();
        q.max_epochs = 3;
        let mut f = quick_config(StrategyConfig::baseline_allgather(1));
        f.max_epochs = 3;
        let a = train(&ds, &cluster, &q);
        let b = train(&ds, &cluster, &f);
        let qb: u64 = a.report.trace.iter().map(|t| t.bytes_sent).sum();
        let fb: u64 = b.report.trace.iter().map(|t| t.bytes_sent).sum();
        assert!(qb * 3 < fb, "1-bit {qb} should be ≪ f32 {fb}");
    }
}
