//! # kge-train — the paper's distributed KGE trainer
//!
//! Assembles the substrates (`simgrid`, `kge-core`, `kge-data`,
//! `kge-compress`, `kge-partition`, `kge-eval`) into the synchronous
//! data-parallel trainer of *"Dynamic Strategies for High Performance
//! Training of Knowledge Graph Embeddings"* (ICPP '22), with all five
//! strategies toggleable:
//!
//! | Strategy | Paper | Module |
//! |----------|-------|--------|
//! | S1 dynamic all-reduce/all-gather selection (DRS) | §4.1 | [`comm_select`] |
//! | S2 random selection of gradient rows (RS)        | §4.2 | via [`kge_compress::row_select`] |
//! | S3 1-/2-bit gradient quantization                | §4.3 | via [`kge_compress::quant`] |
//! | S4 relation partition (RP)                       | §4.4 | via [`kge_partition`] |
//! | S5 negative sample selection (SS)                | §4.5 | [`neg`] |
//!
//! plus the paper's training regime: Adam, capped linear LR scaling
//! (`lr × min(4, p)`), plateau decay (×0.1 after `tolerance` epochs
//! without validation improvement, down to a floor), and convergence
//! detection.
//!
//! The trainer runs on a [`simgrid::Cluster`]: every logical node holds a
//! full model replica, computes gradients on its shard, and exchanges
//! entity/relation gradients through collectives whose bytes are real and
//! whose time is charged to the simulated clock.

pub mod checkpoint;
pub mod comm_select;
pub mod config;
pub mod exchange;
pub mod lr;
pub mod neg;
pub mod ps;
pub mod report;
pub mod shard;
pub mod snapshot;
pub mod trainer;

pub use checkpoint::{
    checkpoint_path, Checkpoint, CheckpointError, CheckpointView, OptimSnapshot, Tallies,
};
pub use comm_select::{CommChoice, DynamicCommSelector, PrefetchSelector};

/// SplitMix64 finalizer — the seed-derivation mixer used to give each
/// gradient chunk / quantized row its own independent RNG stream from a
/// handful of structural coordinates (seed, rank, epoch, batch, chunk).
/// Sequential mixing of coordinates keeps derived streams deterministic
/// and independent of thread count.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}
pub use config::{
    CommMode, ModelKind, NegSampling, OptimizerKind, PrefetchMode, ShardedConfig, StrategyConfig,
    TrainConfig, UpdateStyle,
};
pub use exchange::{AggGrad, ExchangeStats, GatherBufs, PipelineSlot};
pub use lr::{LrDecision, PlateauSchedule};
pub use ps::train_ps;
pub use report::{EpochTrace, ShardedReport, TrainOutcome, TrainReport};
pub use shard::train_sharded;
pub use snapshot::{PublishedModel, RecordedSnapshot, RecordingSink, SnapshotSink};
pub use trainer::{batch_gradients, train, train_with_snapshots, BatchWorkspace};
