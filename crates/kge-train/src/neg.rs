//! Negative sampling, including the paper's §4.5 sample selection.
//!
//! Negatives are produced by corrupting the head or the tail of a positive
//! triple with a uniformly random entity, rejecting corruptions that are
//! known true triples. With sample selection enabled, `pool` candidates
//! are drawn per positive, scored with a forward pass, and only the
//! `train` **hardest** (highest-scoring — "least negative score" in the
//! paper's phrasing) are kept for the backward pass. A forward pass is far
//! cheaper than backward, so discarding `pool − train` candidates after
//! scoring is a net win when it buys convergence.

use crate::config::NegSampling;
use kge_core::{EmbeddingTable, KgeModel};
use kge_data::{Dataset, FilterIndex, Triple};
use rand::rngs::StdRng;
use rand::Rng;

/// Per-relation head-vs-tail corruption bias — the `bern` strategy of
/// Wang et al. (2014), as implemented in OpenKE: corrupt the head with
/// probability `tph / (tph + hpt)` (tails-per-head / heads-per-tail), so
/// 1-N relations mostly corrupt heads and N-1 relations mostly corrupt
/// tails, reducing accidental false negatives.
#[derive(Debug, Clone)]
pub struct CorruptionBias {
    /// P(corrupt the head) per relation id.
    head_prob: Vec<f64>,
}

impl CorruptionBias {
    /// Uniform 50/50 bias for every relation.
    pub fn uniform(n_relations: usize) -> Self {
        CorruptionBias {
            head_prob: vec![0.5; n_relations],
        }
    }

    /// Fit tph/hpt statistics on the training split.
    pub fn fit(ds: &Dataset) -> Self {
        use std::collections::HashMap;
        let mut tails_per_head: HashMap<(u32, u32), usize> = HashMap::new();
        let mut heads_per_tail: HashMap<(u32, u32), usize> = HashMap::new();
        for t in &ds.train {
            *tails_per_head.entry((t.rel, t.head)).or_default() += 1;
            *heads_per_tail.entry((t.rel, t.tail)).or_default() += 1;
        }
        let mut tph_sum = vec![0.0f64; ds.n_relations];
        let mut tph_cnt = vec![0usize; ds.n_relations];
        for (&(rel, _), &c) in &tails_per_head {
            tph_sum[rel as usize] += c as f64;
            tph_cnt[rel as usize] += 1;
        }
        let mut hpt_sum = vec![0.0f64; ds.n_relations];
        let mut hpt_cnt = vec![0usize; ds.n_relations];
        for (&(rel, _), &c) in &heads_per_tail {
            hpt_sum[rel as usize] += c as f64;
            hpt_cnt[rel as usize] += 1;
        }
        let head_prob = (0..ds.n_relations)
            .map(|r| {
                if tph_cnt[r] == 0 || hpt_cnt[r] == 0 {
                    return 0.5;
                }
                let tph = tph_sum[r] / tph_cnt[r] as f64;
                let hpt = hpt_sum[r] / hpt_cnt[r] as f64;
                tph / (tph + hpt)
            })
            .collect();
        CorruptionBias { head_prob }
    }

    /// P(corrupt the head) for relation `rel`.
    #[inline]
    pub fn head_prob(&self, rel: u32) -> f64 {
        self.head_prob.get(rel as usize).copied().unwrap_or(0.5)
    }
}

/// Draw one corruption of `t` that is not a known true triple (bounded
/// rejection; falls back to the last candidate on pathological data).
/// The head-vs-tail choice follows `bias` when provided (`bern`),
/// otherwise a fair coin.
pub fn corrupt(
    t: Triple,
    n_entities: usize,
    filter: &FilterIndex,
    bias: Option<&CorruptionBias>,
    rng: &mut StdRng,
) -> Triple {
    let head_p = bias.map_or(0.5, |b| b.head_prob(t.rel));
    let mut cand = t;
    for _ in 0..64 {
        let e = rng.gen_range(0..n_entities) as u32;
        cand = if rng.gen_bool(head_p) {
            t.with_head(e)
        } else {
            t.with_tail(e)
        };
        if cand != t && !filter.contains(cand) {
            return cand;
        }
    }
    cand
}

/// Backwards-compatible uniform corruption.
pub fn corrupt_uniform(
    t: Triple,
    n_entities: usize,
    filter: &FilterIndex,
    rng: &mut StdRng,
) -> Triple {
    corrupt(t, n_entities, filter, None, rng)
}

/// Outcome of negative generation for one positive triple.
#[derive(Debug, Clone, Default)]
pub struct NegBatch {
    /// Negatives to train on.
    pub train: Vec<Triple>,
    /// Candidates that were scored but discarded (counted for the
    /// simulated forward-pass cost).
    pub scored_discarded: usize,
}

/// Reusable candidate-pool buffers for [`sample_negatives_into`]. One per
/// worker; capacities persist across positives so the steady state
/// allocates nothing (the stable sort's temp buffer excepted, and only on
/// the selection path).
#[derive(Debug, Clone, Default)]
pub struct NegScratch {
    pool: Vec<Triple>,
    scored: Vec<(f32, Triple)>,
}

/// Generate negatives for `positive` under `policy`.
///
/// With selection enabled this performs the extra forward passes on
/// `model`/tables; the caller charges `scored_discarded + train.len()`
/// forward-pass flops to the simulated clock.
#[allow(clippy::too_many_arguments)]
pub fn sample_negatives(
    policy: NegSampling,
    positive: Triple,
    model: &dyn KgeModel,
    ent: &EmbeddingTable,
    rel: &EmbeddingTable,
    filter: &FilterIndex,
    bias: Option<&CorruptionBias>,
    n_entities: usize,
    rng: &mut StdRng,
) -> NegBatch {
    let mut scratch = NegScratch::default();
    let mut train = Vec::new();
    let scored_discarded = sample_negatives_into(
        policy, positive, model, ent, rel, filter, bias, n_entities, rng, &mut scratch, &mut train,
    );
    NegBatch {
        train,
        scored_discarded,
    }
}

/// Buffer-reusing [`sample_negatives`]: appends the kept negatives to
/// `out` and returns the number of scored-but-discarded candidates.
/// Identical results (same RNG draw order, same stable tie-breaking) to
/// the allocating wrapper.
#[allow(clippy::too_many_arguments)]
pub fn sample_negatives_into(
    policy: NegSampling,
    positive: Triple,
    model: &dyn KgeModel,
    ent: &EmbeddingTable,
    rel: &EmbeddingTable,
    filter: &FilterIndex,
    bias: Option<&CorruptionBias>,
    n_entities: usize,
    rng: &mut StdRng,
    scratch: &mut NegScratch,
    out: &mut Vec<Triple>,
) -> usize {
    scratch.pool.clear();
    scratch
        .pool
        .extend((0..policy.pool).map(|_| corrupt(positive, n_entities, filter, bias, rng)));
    if !policy.uses_selection() {
        out.extend_from_slice(&scratch.pool);
        return 0;
    }
    // Score the pool; keep the `train` hardest (highest score). Scoring
    // consumes no randomness and the sort is stable, so the kept set is
    // identical to the historical parallel-scoring loop at any thread
    // count.
    scratch.scored.clear();
    scratch.scored.extend(scratch.pool.iter().map(|&t| {
        let s = model.score(
            ent.row(t.head as usize),
            rel.row(t.rel as usize),
            ent.row(t.tail as usize),
        );
        (s, t)
    }));
    scratch
        .scored
        .sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
    let keep = policy.train.min(scratch.scored.len());
    let discarded = scratch.scored.len() - keep;
    out.extend(scratch.scored[..keep].iter().map(|&(_, t)| t));
    discarded
}

#[cfg(test)]
mod tests {
    use super::*;
    use kge_core::DistMult;
    use rand::SeedableRng;

    fn setup() -> (DistMult, EmbeddingTable, EmbeddingTable, FilterIndex) {
        let model = DistMult::new(2);
        let mut ent = EmbeddingTable::zeros(10, 2);
        for i in 0..10 {
            // Entity i has embedding [i, 1] → higher id = higher score.
            ent.row_mut(i).copy_from_slice(&[i as f32, 1.0]);
        }
        let mut rel = EmbeddingTable::zeros(1, 2);
        rel.row_mut(0).copy_from_slice(&[1.0, 0.0]);
        let filter = FilterIndex::from_triples([Triple::new(1, 0, 2)].into_iter());
        (model, ent, rel, filter)
    }

    #[test]
    fn uniform_policy_returns_pool_unscored() {
        let (model, ent, rel, filter) = setup();
        let mut rng = StdRng::seed_from_u64(0);
        let nb = sample_negatives(
            NegSampling::uniform(5),
            Triple::new(1, 0, 2),
            &model,
            &ent,
            &rel,
            &filter,
            None,
            10,
            &mut rng,
        );
        assert_eq!(nb.train.len(), 5);
        assert_eq!(nb.scored_discarded, 0);
        for t in &nb.train {
            assert!(!filter.contains(*t));
            assert_ne!(*t, Triple::new(1, 0, 2));
        }
    }

    #[test]
    fn selection_keeps_hardest() {
        let (model, ent, rel, filter) = setup();
        // Run many rounds: the kept negative must always have the max
        // score within its own pool. We reproduce the pool with the same
        // RNG stream to check.
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut rng2 = StdRng::seed_from_u64(seed);
            let policy = NegSampling::select(1, 8);
            let pool: Vec<Triple> = (0..8)
                .map(|_| corrupt_uniform(Triple::new(1, 0, 2), 10, &filter, &mut rng2))
                .collect();
            let nb = sample_negatives(
                policy,
                Triple::new(1, 0, 2),
                &model,
                &ent,
                &rel,
                &filter,
                None,
                10,
                &mut rng,
            );
            assert_eq!(nb.train.len(), 1);
            assert_eq!(nb.scored_discarded, 7);
            let best = pool
                .iter()
                .map(|t| {
                    model.score(
                        ent.row(t.head as usize),
                        rel.row(t.rel as usize),
                        ent.row(t.tail as usize),
                    )
                })
                .fold(f32::NEG_INFINITY, f32::max);
            let kept = model.score(
                ent.row(nb.train[0].head as usize),
                rel.row(0),
                ent.row(nb.train[0].tail as usize),
            );
            assert_eq!(kept, best, "seed {seed}");
        }
    }

    #[test]
    fn selection_m_of_n_keeps_m_sorted_hard() {
        let (model, ent, rel, filter) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let nb = sample_negatives(
            NegSampling::select(3, 10),
            Triple::new(1, 0, 2),
            &model,
            &ent,
            &rel,
            &filter,
            None,
            10,
            &mut rng,
        );
        assert_eq!(nb.train.len(), 3);
        assert_eq!(nb.scored_discarded, 7);
        let scores: Vec<f32> = nb
            .train
            .iter()
            .map(|t| {
                model.score(
                    ent.row(t.head as usize),
                    rel.row(t.rel as usize),
                    ent.row(t.tail as usize),
                )
            })
            .collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]), "{scores:?}");
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let (_, _, _, filter) = setup();
        let t = Triple::new(1, 0, 2);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            assert_eq!(
                corrupt_uniform(t, 10, &filter, &mut a),
                corrupt_uniform(t, 10, &filter, &mut b)
            );
        }
    }

    #[test]
    fn bern_bias_prefers_head_corruption_for_one_to_many() {
        use kge_data::Dataset;
        // Relation 0: one head fans out to many tails (1-N) → tph high,
        // hpt = 1 → corrupt heads most of the time.
        // Relation 1: the reverse (N-1).
        let mut train = Vec::new();
        for t in 1..=20u32 {
            train.push(Triple::new(0, 0, t));
            train.push(Triple::new(t, 1, 0));
        }
        let ds = Dataset {
            name: "bern".into(),
            n_entities: 21,
            n_relations: 2,
            train,
            valid: vec![],
            test: vec![],
        };
        let bias = CorruptionBias::fit(&ds);
        assert!(bias.head_prob(0) > 0.9, "1-N: {}", bias.head_prob(0));
        assert!(bias.head_prob(1) < 0.1, "N-1: {}", bias.head_prob(1));
        // Unknown relations default to a fair coin.
        assert_eq!(bias.head_prob(99), 0.5);
        assert_eq!(CorruptionBias::uniform(3).head_prob(1), 0.5);
    }

    #[test]
    fn bern_corruption_respects_bias_statistically() {
        let (_, _, _, filter) = setup();
        let mut head_prob = CorruptionBias::uniform(1);
        head_prob.head_prob[0] = 0.95;
        let t = Triple::new(1, 0, 2);
        let mut rng = StdRng::seed_from_u64(0);
        let mut heads = 0;
        for _ in 0..400 {
            let c = corrupt(t, 10, &filter, Some(&head_prob), &mut rng);
            if c.head != t.head {
                heads += 1;
            }
        }
        assert!(heads > 330, "head corruptions {heads}/400 under p=0.95");
    }
}
