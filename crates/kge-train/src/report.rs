//! Training reports: per-epoch traces and end-of-run summaries.

use crate::comm_select::CommChoice;
use kge_core::EmbeddingTable;
use kge_eval::RankingMetrics;
use serde::{Deserialize, Serialize};
use simgrid::TimeBreakdown;

/// One epoch's worth of measurements (identical on every node; recorded
/// on rank 0).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochTrace {
    pub epoch: usize,
    /// Simulated duration of this epoch (seconds).
    pub sim_seconds: f64,
    /// Collective used this epoch.
    pub comm: CommChoice,
    /// Plateau-schedule validation signal after this epoch.
    pub valid_acc: f64,
    /// Mean training loss over the epoch's examples.
    pub train_loss: f64,
    /// LR multiplier in effect during this epoch.
    pub lr_scale: f32,
    /// Mean entity-gradient rows above the zero threshold per batch,
    /// before row selection (the paper's Fig. 2 metric).
    pub mean_nonzero_rows: f64,
    /// Mean entity rows actually communicated per batch (post selection).
    pub mean_rows_sent: f64,
    /// Fraction of rows dropped by row selection (Fig. 3b).
    pub rs_sparsity: f64,
    /// Bytes this node contributed to gradient collectives this epoch.
    pub bytes_sent: u64,
    /// Full filtered-ranking metrics, present on epochs where the opt-in
    /// distributed evaluation ran (`TrainConfig::eval_every`).
    #[serde(default)]
    pub ranking: Option<RankingMetrics>,
}

/// Summary of a training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    pub dataset: String,
    pub nodes: usize,
    /// Epochs executed (the paper's `N`).
    pub epochs: usize,
    /// Whether the plateau schedule declared convergence (vs epoch cap).
    pub converged: bool,
    /// Total simulated training time in seconds (the paper's `TT`).
    pub sim_total_seconds: f64,
    /// Where rank 0's simulated time went.
    pub breakdown: TimeBreakdown,
    /// Per-epoch measurements.
    pub trace: Vec<EpochTrace>,
    /// Epochs run with each collective (pipelined epochs count toward
    /// their base collective here).
    pub allreduce_epochs: usize,
    pub allgather_epochs: usize,
    /// Of those, epochs whose exchange was pipelined behind compute.
    #[serde(default)]
    pub pipelined_epochs: usize,
    /// Nodes still alive at the end of the run (== `nodes` unless a
    /// fault plan crashed ranks mid-training).
    #[serde(default)]
    pub surviving_nodes: usize,
    /// Communicator shrink + re-partition cycles performed.
    #[serde(default)]
    pub recoveries: usize,
    /// Crashed-then-recovered ranks re-admitted at an epoch boundary
    /// (elastic re-grow cycles).
    #[serde(default)]
    pub rejoins: usize,
    /// Periodic checkpoints written by rank 0 over the run.
    #[serde(default)]
    pub checkpoints_written: usize,
    /// Original rank ids that crashed, in crash order.
    #[serde(default)]
    pub crashed_ranks: Vec<usize>,
    /// Wire-level bytes actually moved by collectives, summed over every
    /// rank that participated (including crashed ranks' pre-crash
    /// traffic). Sent equals received globally — see `simgrid::traffic`.
    #[serde(default)]
    pub wire_bytes_sent: u64,
    #[serde(default)]
    pub wire_bytes_recv: u64,
    /// Sharded-storage measurements, present when the run used
    /// `TrainConfig::sharded` (partitioned entity storage with a hot
    /// cache); `None` for full-replica runs.
    #[serde(default)]
    pub sharded: Option<ShardedReport>,
}

/// Memory and traffic accounting for a sharded-storage run. Byte and
/// touch counters are summed over all ranks; resident sizes are the
/// maximum over ranks (the per-node memory bound is what sharding is
/// for).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ShardedReport {
    /// Wire bytes of pull requests plus row responses (`ShardPull`).
    pub pull_wire_bytes: u64,
    /// Wire bytes of cold row-gradient pushes to owners (`ShardPush`).
    pub push_wire_bytes: u64,
    /// Cache lookups that found the row resident. A lookup happens only
    /// for rows the hot tier manages (the degree-ranked eligible set);
    /// cold-tier rows go straight to pull/push without consulting the
    /// cache, so they are not lookups.
    pub cache_hits: u64,
    /// Cache lookups: entity-row touches of hot-set rows.
    pub cache_accesses: u64,
    /// All entity-row touches (2 per staged example, duplicates count) —
    /// `cache_accesses / entity_touches` is the hot tier's coverage of
    /// the access stream.
    #[serde(default)]
    pub entity_touches: u64,
    /// Largest per-rank resident model bytes: owner arena + hot-cache
    /// values + the (replicated) relation table.
    pub resident_model_bytes: usize,
    /// Full-replica model bytes for the same config — what every rank
    /// would hold without sharding.
    pub replica_model_bytes: usize,
    /// Largest per-rank resident optimizer-state bytes (owner Adam
    /// moments + cache moments + replicated relation moments).
    pub opt_state_bytes: usize,
    /// Hot-cache capacity in rows.
    pub hot_capacity: usize,
    /// Rows eligible for caching (the degree-ranked hot set).
    pub eligible_rows: usize,
    /// Largest per-rank owned-row count.
    pub owned_rows: usize,
    /// Slowest rank's cumulative wall occupancy of the `ShardPull` lane
    /// (request sends + response receives + serving), visible *and*
    /// hidden seconds. Measured from clock deltas around the lane
    /// operations, so recording it never perturbs the clock.
    #[serde(default)]
    pub pull_lane_s: f64,
    /// Slowest rank's cumulative `ShardPush` lane occupancy (cold
    /// gradient sends/receives plus deferred settlement).
    #[serde(default)]
    pub push_lane_s: f64,
    /// Of `pull_lane_s`, the seconds hidden behind compute by the
    /// prefetch ring (always 0 on the synchronous path).
    #[serde(default)]
    pub hidden_pull_s: f64,
    /// Of `push_lane_s`, the seconds hidden behind the next batch's
    /// compute window (always 0 on the synchronous path).
    #[serde(default)]
    pub hidden_push_s: f64,
    /// Epochs that ran the prefetch ring (equals `epochs` with
    /// `PrefetchMode::On`; whatever DRS chose with `Dynamic`).
    #[serde(default)]
    pub prefetch_epochs: usize,
}

impl ShardedReport {
    /// Hot-cache hit rate: the fraction of cache lookups (touches of
    /// hot-set rows) served from the cache.
    pub fn hit_rate(&self) -> f64 {
        if self.cache_accesses == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_accesses as f64
        }
    }

    /// Per-rank resident model bytes as a fraction of the full replica.
    pub fn resident_fraction(&self) -> f64 {
        if self.replica_model_bytes == 0 {
            0.0
        } else {
            self.resident_model_bytes as f64 / self.replica_model_bytes as f64
        }
    }
}

impl TrainReport {
    /// `TT` in hours, as the paper's tables report it.
    pub fn total_hours(&self) -> f64 {
        self.sim_total_seconds / 3600.0
    }

    /// Mean simulated epoch time in seconds (Fig. 1d's metric).
    pub fn mean_epoch_seconds(&self) -> f64 {
        if self.trace.is_empty() {
            0.0
        } else {
            self.sim_total_seconds / self.trace.len() as f64
        }
    }

    /// Fraction of epochs that used all-reduce (the paper notes this
    /// drops ~60% once quantization makes all-gather cheaper).
    pub fn allreduce_fraction(&self) -> f64 {
        let total = self.allreduce_epochs + self.allgather_epochs;
        if total == 0 {
            0.0
        } else {
            self.allreduce_epochs as f64 / total as f64
        }
    }
}

/// Everything a training run produces: the report plus the final model.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    pub report: TrainReport,
    pub entities: EmbeddingTable,
    pub relations: EmbeddingTable,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(epoch: usize, secs: f64, comm: CommChoice) -> EpochTrace {
        EpochTrace {
            epoch,
            sim_seconds: secs,
            comm,
            valid_acc: 0.5,
            train_loss: 0.3,
            lr_scale: 1.0,
            mean_nonzero_rows: 10.0,
            mean_rows_sent: 8.0,
            rs_sparsity: 0.2,
            bytes_sent: 1000,
            ranking: None,
        }
    }

    #[test]
    fn aggregates() {
        let r = TrainReport {
            dataset: "d".into(),
            nodes: 4,
            epochs: 2,
            converged: true,
            sim_total_seconds: 7200.0,
            breakdown: TimeBreakdown::default(),
            trace: vec![
                trace(0, 3600.0, CommChoice::AllReduce),
                trace(1, 3600.0, CommChoice::AllGather),
            ],
            allreduce_epochs: 1,
            allgather_epochs: 1,
            pipelined_epochs: 0,
            surviving_nodes: 4,
            recoveries: 0,
            rejoins: 0,
            checkpoints_written: 0,
            crashed_ranks: vec![],
            wire_bytes_sent: 4000,
            wire_bytes_recv: 4000,
            sharded: None,
        };
        assert_eq!(r.total_hours(), 2.0);
        assert_eq!(r.mean_epoch_seconds(), 3600.0);
        assert_eq!(r.allreduce_fraction(), 0.5);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = TrainReport {
            dataset: "d".into(),
            nodes: 1,
            epochs: 0,
            converged: false,
            sim_total_seconds: 0.0,
            breakdown: TimeBreakdown::default(),
            trace: vec![],
            allreduce_epochs: 0,
            allgather_epochs: 0,
            pipelined_epochs: 0,
            surviving_nodes: 1,
            recoveries: 0,
            rejoins: 0,
            checkpoints_written: 0,
            crashed_ranks: vec![],
            wire_bytes_sent: 0,
            wire_bytes_recv: 0,
            sharded: None,
        };
        assert_eq!(r.mean_epoch_seconds(), 0.0);
        assert_eq!(r.allreduce_fraction(), 0.0);
    }
}
