//! Trainer configuration.

use kge_compress::{QuantScheme, RowSelector};
use serde::{Deserialize, Serialize};

/// How gradients are aggregated across nodes each step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CommMode {
    /// Dense all-reduce of the full gradient matrix (baseline "dense").
    AllReduce,
    /// Sparse all-gather of non-zero gradient rows (baseline "sparse").
    AllGather,
    /// §4.1: start with all-reduce; probe the other arms every
    /// `check_every` epochs and switch permanently to the fastest one
    /// that beats all-reduce. A probe round times the synchronous
    /// all-gather, then the pipelined variant (staleness window 1) of
    /// whichever base collective was faster.
    Dynamic { check_every: usize },
    /// Pipelined sparse all-gather: batch N's encode + collective overlaps
    /// batch N+1's compute, with applied-gradient lag ≤ `staleness`
    /// batches. `staleness == 0` is the synchronous all-gather path,
    /// bit-exactly.
    Pipelined { staleness: usize },
    /// Pipelined dense all-reduce — the dense counterpart of
    /// [`CommMode::Pipelined`]. `staleness == 0` is the synchronous
    /// all-reduce path, bit-exactly.
    PipelinedAllReduce { staleness: usize },
}

impl CommMode {
    /// The paper's DRS setting (k = 10).
    pub fn paper_dynamic() -> Self {
        CommMode::Dynamic { check_every: 10 }
    }

    /// The pipelined-gather default: overlap one batch deep.
    pub fn pipelined() -> Self {
        CommMode::Pipelined { staleness: 1 }
    }
}

/// Optimizer update style per communication path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateStyle {
    /// Dense Adam after all-reduce, lazy Adam after all-gather — the
    /// framework semantics the paper inherited from Horovod + TF.
    Auto,
    /// Always dense Adam (requires densifying gathered gradients).
    Dense,
    /// Always lazy (row-sparse) Adam.
    Lazy,
}

/// §4.5 negative sampling: draw `pool` candidates per positive, train on
/// the `train` hardest (highest-scoring) ones. `pool == train` disables
/// selection (the "n out of n" baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NegSampling {
    pub pool: usize,
    pub train: usize,
}

impl NegSampling {
    /// `train` negatives per positive, no selection.
    pub fn uniform(n: usize) -> Self {
        NegSampling { pool: n, train: n }
    }

    /// The paper's sample selection: best `m` out of `n` candidates.
    pub fn select(m: usize, n: usize) -> Self {
        assert!(m <= n && m >= 1);
        NegSampling { pool: n, train: m }
    }

    /// Whether the extra scoring pass (§4.5) runs.
    pub fn uses_selection(&self) -> bool {
        self.pool > self.train
    }
}

/// The five strategies plus supporting knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrategyConfig {
    /// S1 — communication mode.
    pub comm: CommMode,
    /// S2 — gradient-row selection before communication.
    pub row_select: RowSelector,
    /// S3 — gradient quantization for communicated entity rows.
    pub quant: QuantScheme,
    /// Keep quantization error as feedback for the next step.
    pub error_feedback: bool,
    /// S4 — partition triples by relation; relation gradients are then
    /// node-local (never communicated, never quantized).
    pub relation_partition: bool,
    /// S5 — negative sampling policy.
    pub neg: NegSampling,
    /// Corrupt heads vs tails with the per-relation `bern` bias of
    /// Wang et al. (2014) instead of a fair coin.
    pub bern: bool,
    /// Optimizer update style.
    pub update_style: UpdateStyle,
}

impl StrategyConfig {
    /// The plain all-reduce baseline of §3.4.
    pub fn baseline_allreduce(neg: usize) -> Self {
        StrategyConfig {
            comm: CommMode::AllReduce,
            row_select: RowSelector::None,
            quant: QuantScheme::None,
            error_feedback: false,
            relation_partition: false,
            neg: NegSampling::uniform(neg),
            bern: false,
            update_style: UpdateStyle::Auto,
        }
    }

    /// The plain all-gather baseline of §3.4.
    pub fn baseline_allgather(neg: usize) -> Self {
        StrategyConfig {
            comm: CommMode::AllGather,
            ..Self::baseline_allreduce(neg)
        }
    }

    /// The paper's full combination: DRS + RS + 1-bit + RP + SS(1:n).
    ///
    /// Error feedback stays **off**: the paper's chosen 1-bit scheme is
    /// plain `sign·max(|v|)`, and max-scaling is not a contraction, so
    /// accumulating its error as feedback oscillates and destroys
    /// convergence (measurable via the `ablation` bench experiment).
    /// Karimireddy-style EF pairs with *mean*-scaled signs instead.
    pub fn combined(neg_pool: usize) -> Self {
        StrategyConfig {
            comm: CommMode::paper_dynamic(),
            row_select: RowSelector::paper_rs(),
            quant: QuantScheme::paper_one_bit(),
            error_feedback: false,
            relation_partition: true,
            neg: NegSampling::select(1, neg_pool),
            bern: false,
            update_style: UpdateStyle::Auto,
        }
    }
}

/// Which scoring model to train. The paper uses ComplEx throughout and
/// notes its strategies (except SS, which is model-agnostic here anyway)
/// apply to other KGE models; DistMult and TransE are provided to check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    ComplEx,
    DistMult,
    TransE,
    RotatE,
    SimplE,
}

impl ModelKind {
    /// Instantiate the scoring model at the given rank.
    pub fn build(self, rank: usize) -> Box<dyn kge_core::KgeModel> {
        match self {
            ModelKind::ComplEx => Box::new(kge_core::ComplEx::new(rank)),
            ModelKind::DistMult => Box::new(kge_core::DistMult::new(rank)),
            ModelKind::TransE => Box::new(kge_core::TransE::new(rank)),
            ModelKind::RotatE => Box::new(kge_core::RotatE::new(rank)),
            ModelKind::SimplE => Box::new(kge_core::SimplE::new(rank)),
        }
    }
}

/// Optimizer selection. The paper trains with Adam; AdaGrad is what
/// DGL-KE ships and is included for comparison runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptimizerKind {
    Adam,
    Adagrad,
}

impl OptimizerKind {
    /// Build an optimizer instance for a `rows × dim` table with the
    /// given base learning rate.
    pub fn build(
        self,
        base_lr: f32,
        rows: usize,
        dim: usize,
    ) -> Box<dyn kge_core::RowOptimizer> {
        match self {
            OptimizerKind::Adam => Box::new(kge_core::AdamOptimizer::new(
                kge_core::Adam {
                    lr: base_lr,
                    ..kge_core::Adam::default()
                },
                rows,
                dim,
            )),
            OptimizerKind::Adagrad => Box::new(kge_core::AdagradOptimizer::new(
                kge_core::Adagrad {
                    lr: base_lr,
                    ..kge_core::Adagrad::default()
                },
                rows,
                dim,
            )),
        }
    }
}

/// Pipelining policy for the sharded pull/push lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PrefetchMode {
    /// Synchronous per-batch round-trip: pull, compute, push, every batch
    /// blocking in turn. Bit-identical to the pre-prefetch code path.
    #[default]
    Off,
    /// One-batch-ahead prefetch ring: while batch *b* computes, batch
    /// *b+1*'s touched rows are already requested and in flight and batch
    /// *b*'s gradient push settles behind the next compute window.
    On,
    /// Start synchronous, periodically probe the prefetch arm on the
    /// simulated epoch clock and commit to whichever is faster (the
    /// arms are numerically identical, so probing is value-safe).
    Dynamic,
}

/// Partitioned entity storage (the "sharded store"): each entity row is
/// resident only on its owner rank, batches pull the rows they touch over
/// point-to-point links, and row-sparse gradients are routed back to
/// owners for the lazy Adam step. A capacity-bounded cache of high-degree
/// rows is replicated on every rank so the hottest rows are synced once
/// per admission instead of pulled once per batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardedConfig {
    /// Hot-cache capacity in entity rows (0 disables the cache; every
    /// touched row is then pulled from its owner each batch).
    pub hot_cache_rows: usize,
    /// Store cold (owner-arena) rows 8-bit quantized instead of f32.
    /// Deterministic but lossy: the trajectory diverges from the
    /// full-replica trainer while staying identical run-to-run.
    #[serde(default)]
    pub cold_int8: bool,
    /// Pull/push pipelining policy: keep the synchronous per-batch
    /// round-trip, run the one-batch-ahead prefetch ring, or let the
    /// dynamic selector probe and commit per epoch.
    #[serde(default)]
    pub prefetch: PrefetchMode,
}

/// Full training configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Scoring model (paper: ComplEx).
    pub model: ModelKind,
    /// Optimizer (paper: Adam).
    pub optimizer: OptimizerKind,
    /// Model rank (for ComplEx embeddings live in C^rank; storage 2·rank).
    pub rank: usize,
    /// Positive triples per batch per worker (paper: 10 000).
    pub batch_size: usize,
    /// Base learning rate (paper: 0.001).
    pub base_lr: f32,
    /// LR scale cap: `lr × min(cap, p)` (paper: 4).
    pub lr_scale_cap: f32,
    /// Epochs without validation improvement before decaying LR
    /// (paper: 15).
    pub plateau_tolerance: usize,
    /// LR decay factor on plateau (paper: 0.1).
    pub lr_decay: f32,
    /// Number of LR decays before the schedule bottoms out.
    pub max_lr_drops: usize,
    /// Hard epoch cap.
    pub max_epochs: usize,
    /// L2 regularization weight λ.
    pub l2: f32,
    /// Validation samples per epoch for the plateau signal.
    pub valid_samples: usize,
    /// Strategy toggles.
    pub strategy: StrategyConfig,
    /// Master seed (per-node streams derive from it).
    pub seed: u64,
    /// When a rank crashes mid-run (fault injection), shrink the
    /// communicator to the survivors, re-partition the triples, and keep
    /// training at the reduced world size. When off, training stops at
    /// the crashed epoch and reports what it has.
    #[serde(default)]
    pub recover_from_crashes: bool,
    /// Run the full filtered-ranking evaluation on the validation split
    /// every this many epochs (0 = never), sharded across ranks with
    /// allreduced metric sums. Results land in `EpochTrace::ranking`; the
    /// eval's compute and collective time are charged to the simulated
    /// clock.
    #[serde(default)]
    pub eval_every: usize,
    /// Query cap for the per-epoch ranking eval (deterministic subsample;
    /// `None` = the whole validation split).
    #[serde(default)]
    pub eval_max_queries: Option<usize>,
    /// Write a versioned per-rank checkpoint (`ckpt-r{rank}.kgc` in
    /// `checkpoint_dir`) at the end of every this-many-th epoch
    /// (0 = never). The latest checkpoint overwrites the previous one;
    /// serialization time is charged to the simulated clock's
    /// `checkpoint_s` bucket.
    #[serde(default)]
    pub checkpoint_every: usize,
    /// Directory receiving the per-rank checkpoint files.
    #[serde(default)]
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Resume from the per-rank checkpoint files in this directory
    /// instead of initializing fresh. The resumed run continues at the
    /// checkpointed epoch cursor and is bit-identical to the
    /// uninterrupted run (see `tests/resume_determinism.rs`).
    #[serde(default)]
    pub resume_from: Option<std::path::PathBuf>,
    /// Train with partitioned entity storage instead of full replicas.
    /// Sharded mode supports the plain all-gather strategy arm only; see
    /// [`TrainConfig::validate`] for the exact compatibility rules.
    #[serde(default)]
    pub sharded: Option<ShardedConfig>,
    /// Publish a model snapshot to the serving sink (see
    /// [`train_with_snapshots`]) at the end of every this-many-th epoch
    /// (0 = never). Every rank is charged the modeled in-memory copy
    /// cost; rank 0 performs the publish. Requires full replicas — not
    /// supported in sharded mode.
    ///
    /// [`train_with_snapshots`]: crate::trainer::train_with_snapshots
    #[serde(default)]
    pub serve_snapshots: usize,
}

impl TrainConfig {
    /// Paper-like defaults for quick experiments; callers override fields.
    pub fn new(rank: usize, batch_size: usize, strategy: StrategyConfig) -> Self {
        TrainConfig {
            model: ModelKind::ComplEx,
            optimizer: OptimizerKind::Adam,
            rank,
            batch_size,
            base_lr: 1e-3,
            lr_scale_cap: 4.0,
            plateau_tolerance: 15,
            lr_decay: 0.1,
            max_lr_drops: 2,
            max_epochs: 500,
            l2: 1e-5,
            valid_samples: 512,
            strategy,
            seed: 0,
            recover_from_crashes: true,
            eval_every: 0,
            eval_max_queries: None,
            checkpoint_every: 0,
            checkpoint_dir: None,
            resume_from: None,
            sharded: None,
            serve_snapshots: 0,
        }
    }

    /// Validate parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.rank == 0 {
            return Err("rank must be positive".into());
        }
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        if self.base_lr <= 0.0 || self.base_lr.is_nan() {
            return Err("base_lr must be positive".into());
        }
        if !(0.0..1.0).contains(&self.lr_decay) {
            return Err("lr_decay must be in (0,1)".into());
        }
        if self.strategy.neg.train > self.strategy.neg.pool || self.strategy.neg.train == 0 {
            return Err("neg sampling needs 1 <= train <= pool".into());
        }
        if let CommMode::Dynamic { check_every } = self.strategy.comm {
            if check_every == 0 {
                return Err("dynamic comm check_every must be positive".into());
            }
        }
        if self.checkpoint_every > 0 && self.checkpoint_dir.is_none() {
            return Err("checkpoint_every requires checkpoint_dir".into());
        }
        if self.sharded.is_some() {
            // The sharded store implements exactly the plain all-gather /
            // lazy-Adam arm; everything that reads the full entity table
            // (selection-based negatives, dense updates, validation,
            // ranking eval, checkpointing) or reshapes the wire payload
            // (row selection, quantization, RP) is out of scope in v1.
            if self.strategy.comm != CommMode::AllGather {
                return Err("sharded mode requires CommMode::AllGather".into());
            }
            if self.strategy.row_select != RowSelector::None {
                return Err("sharded mode does not support row selection".into());
            }
            if self.strategy.quant != QuantScheme::None {
                return Err("sharded mode does not support wire quantization".into());
            }
            if self.strategy.error_feedback {
                return Err("sharded mode does not support error feedback".into());
            }
            if self.strategy.relation_partition {
                return Err("sharded mode does not support relation partition".into());
            }
            if self.strategy.neg.uses_selection() {
                return Err("sharded mode does not support negative selection".into());
            }
            if self.strategy.update_style == UpdateStyle::Dense {
                return Err("sharded mode requires lazy updates".into());
            }
            if self.optimizer != OptimizerKind::Adam {
                return Err("sharded mode requires the Adam optimizer".into());
            }
            if self.valid_samples != 0 {
                return Err("sharded mode requires valid_samples = 0".into());
            }
            if self.eval_every != 0 {
                return Err("sharded mode does not support per-epoch ranking eval".into());
            }
            if self.checkpoint_every != 0 || self.resume_from.is_some() {
                return Err("sharded mode does not support checkpointing".into());
            }
            if self.serve_snapshots != 0 {
                return Err("sharded mode does not support snapshot publishing".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_and_combined_are_valid() {
        for s in [
            StrategyConfig::baseline_allreduce(10),
            StrategyConfig::baseline_allgather(1),
            StrategyConfig::combined(5),
        ] {
            assert!(TrainConfig::new(16, 100, s).validate().is_ok());
        }
    }

    #[test]
    fn combined_enables_everything() {
        let s = StrategyConfig::combined(10);
        assert_eq!(s.comm, CommMode::Dynamic { check_every: 10 });
        assert!(s.relation_partition);
        assert!(s.neg.uses_selection());
        assert_eq!(s.neg.train, 1);
        assert_eq!(s.quant, QuantScheme::paper_one_bit());
    }

    #[test]
    fn pipelined_modes_are_valid() {
        for comm in [
            CommMode::pipelined(),
            CommMode::Pipelined { staleness: 0 },
            CommMode::PipelinedAllReduce { staleness: 2 },
        ] {
            let mut s = StrategyConfig::baseline_allreduce(2);
            s.comm = comm;
            assert!(TrainConfig::new(16, 100, s).validate().is_ok());
        }
    }

    #[test]
    fn neg_sampling_modes() {
        assert!(!NegSampling::uniform(10).uses_selection());
        assert!(NegSampling::select(1, 10).uses_selection());
    }

    #[test]
    #[should_panic]
    fn select_more_than_pool_panics() {
        let _ = NegSampling::select(5, 3);
    }

    #[test]
    fn validation_catches_bad_params() {
        let mut c = TrainConfig::new(16, 100, StrategyConfig::baseline_allreduce(1));
        c.rank = 0;
        assert!(c.validate().is_err());
        let mut c = TrainConfig::new(16, 100, StrategyConfig::baseline_allreduce(1));
        c.lr_decay = 1.5;
        assert!(c.validate().is_err());
        let mut c = TrainConfig::new(16, 100, StrategyConfig::baseline_allreduce(1));
        c.strategy.comm = CommMode::Dynamic { check_every: 0 };
        assert!(c.validate().is_err());
        let mut c = TrainConfig::new(16, 0, StrategyConfig::baseline_allreduce(1));
        c.batch_size = 0;
        assert!(c.validate().is_err());
        let mut c = TrainConfig::new(16, 100, StrategyConfig::baseline_allreduce(1));
        c.checkpoint_every = 2;
        assert!(c.validate().is_err(), "checkpointing needs a directory");
        c.checkpoint_dir = Some(std::path::PathBuf::from("/tmp/ckpt"));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn sharded_mode_compatibility_rules() {
        let base = || {
            let mut c = TrainConfig::new(16, 100, StrategyConfig::baseline_allgather(2));
            c.valid_samples = 0;
            c.sharded = Some(ShardedConfig {
                hot_cache_rows: 8,
                cold_int8: false,
                prefetch: PrefetchMode::Off,
            });
            c
        };
        assert!(base().validate().is_ok());
        let mut c = base();
        c.strategy.comm = CommMode::AllReduce;
        assert!(c.validate().is_err(), "sharded needs all-gather");
        let mut c = base();
        c.strategy.neg = NegSampling::select(1, 4);
        assert!(c.validate().is_err(), "no negative selection");
        let mut c = base();
        c.strategy.relation_partition = true;
        assert!(c.validate().is_err(), "no relation partition");
        let mut c = base();
        c.valid_samples = 64;
        assert!(c.validate().is_err(), "no validation sampling");
        let mut c = base();
        c.optimizer = OptimizerKind::Adagrad;
        assert!(c.validate().is_err(), "Adam only");
        let mut c = base();
        c.strategy.update_style = UpdateStyle::Dense;
        assert!(c.validate().is_err(), "lazy updates only");
    }

    #[test]
    fn model_kinds_build_expected_models() {
        assert_eq!(ModelKind::ComplEx.build(5).storage_dim(), 10);
        assert_eq!(ModelKind::DistMult.build(5).storage_dim(), 5);
        assert_eq!(ModelKind::TransE.build(5).storage_dim(), 5);
        assert_eq!(ModelKind::ComplEx.build(5).name(), "complex");
        assert_eq!(ModelKind::RotatE.build(5).storage_dim(), 10);
        assert_eq!(ModelKind::SimplE.build(5).storage_dim(), 10);
    }

    #[test]
    fn optimizer_kinds_build() {
        use kge_core::{EmbeddingTable, SparseGrad};
        for kind in [OptimizerKind::Adam, OptimizerKind::Adagrad] {
            let mut opt = kind.build(0.01, 2, 2);
            let mut table = EmbeddingTable::zeros(2, 2);
            let mut g = SparseGrad::new(2);
            g.row_mut(0).copy_from_slice(&[1.0, 1.0]);
            opt.step_lazy(&mut table, &g, 1.0);
            assert!(table.row(0)[0] < 0.0, "{kind:?}");
        }
    }
}
