//! The paper's learning-rate regime (§3.3/§3.4): capped linear scaling
//! plus reduce-on-plateau with convergence detection.

use serde::{Deserialize, Serialize};

/// What the schedule decided after observing an epoch's validation signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrDecision {
    /// Keep going at the current LR.
    Continue,
    /// LR was decayed this epoch.
    Decayed { new_scale: f32 },
    /// The schedule is exhausted: training has converged.
    Converged,
}

/// Serializable image of a [`PlateauSchedule`]'s full state, produced by
/// [`PlateauSchedule::snapshot`] and consumed by [`PlateauSchedule::restore`].
/// Counters are widened to `u64` so the checkpoint byte format is
/// pointer-width independent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlateauSnapshot {
    pub node_scale: f32,
    pub decay_scale: f32,
    pub decay: f32,
    pub tolerance: u64,
    pub max_drops: u64,
    pub drops: u64,
    pub best: f64,
    pub since_best: u64,
    pub converged: bool,
}

/// Reduce-on-plateau schedule.
///
/// The effective learning rate is `base_lr × node_scale × decay_scale`
/// where `node_scale = min(cap, p)` (the paper's capped linear scaling)
/// and `decay_scale` shrinks by `decay` whenever the validation metric
/// fails to improve for `tolerance` consecutive epochs. After
/// `max_drops` decays, the next plateau declares convergence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlateauSchedule {
    node_scale: f32,
    decay_scale: f32,
    decay: f32,
    tolerance: usize,
    max_drops: usize,
    drops: usize,
    best: f64,
    since_best: usize,
    converged: bool,
}

impl PlateauSchedule {
    /// `p` is the node count; `cap` the paper's scaling cap (4).
    pub fn new(p: usize, cap: f32, decay: f32, tolerance: usize, max_drops: usize) -> Self {
        assert!(p >= 1);
        assert!((0.0..1.0).contains(&decay));
        assert!(tolerance >= 1);
        PlateauSchedule {
            node_scale: (p as f32).min(cap),
            decay_scale: 1.0,
            decay,
            tolerance,
            max_drops,
            drops: 0,
            best: f64::NEG_INFINITY,
            since_best: 0,
            converged: false,
        }
    }

    /// Multiplier applied to the base learning rate this epoch.
    pub fn lr_scale(&self) -> f32 {
        self.node_scale * self.decay_scale
    }

    /// Has the schedule declared convergence?
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Number of LR decays so far.
    pub fn drops(&self) -> usize {
        self.drops
    }

    /// Best validation metric observed.
    pub fn best_metric(&self) -> f64 {
        self.best
    }

    /// Capture the schedule's complete state for checkpointing.
    pub fn snapshot(&self) -> PlateauSnapshot {
        PlateauSnapshot {
            node_scale: self.node_scale,
            decay_scale: self.decay_scale,
            decay: self.decay,
            tolerance: self.tolerance as u64,
            max_drops: self.max_drops as u64,
            drops: self.drops as u64,
            best: self.best,
            since_best: self.since_best as u64,
            converged: self.converged,
        }
    }

    /// Rebuild a schedule from a [`PlateauSchedule::snapshot`]; the restored
    /// schedule continues exactly where the captured one stopped.
    pub fn restore(snap: &PlateauSnapshot) -> Self {
        PlateauSchedule {
            node_scale: snap.node_scale,
            decay_scale: snap.decay_scale,
            decay: snap.decay,
            tolerance: snap.tolerance as usize,
            max_drops: snap.max_drops as usize,
            drops: snap.drops as usize,
            best: snap.best,
            since_best: snap.since_best as usize,
            converged: snap.converged,
        }
    }

    /// Feed this epoch's validation metric (higher = better).
    pub fn observe(&mut self, metric: f64) -> LrDecision {
        if self.converged {
            return LrDecision::Converged;
        }
        if metric > self.best {
            self.best = metric;
            self.since_best = 0;
            return LrDecision::Continue;
        }
        self.since_best += 1;
        if self.since_best >= self.tolerance {
            self.since_best = 0;
            if self.drops >= self.max_drops {
                self.converged = true;
                return LrDecision::Converged;
            }
            self.drops += 1;
            self.decay_scale *= self.decay;
            return LrDecision::Decayed {
                new_scale: self.lr_scale(),
            };
        }
        LrDecision::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_scale_is_capped() {
        assert_eq!(PlateauSchedule::new(1, 4.0, 0.1, 15, 2).lr_scale(), 1.0);
        assert_eq!(PlateauSchedule::new(2, 4.0, 0.1, 15, 2).lr_scale(), 2.0);
        assert_eq!(PlateauSchedule::new(16, 4.0, 0.1, 15, 2).lr_scale(), 4.0);
    }

    #[test]
    fn improvement_resets_patience() {
        let mut s = PlateauSchedule::new(1, 4.0, 0.1, 3, 2);
        assert_eq!(s.observe(0.5), LrDecision::Continue);
        assert_eq!(s.observe(0.4), LrDecision::Continue);
        assert_eq!(s.observe(0.6), LrDecision::Continue); // new best
        assert_eq!(s.observe(0.5), LrDecision::Continue);
        assert_eq!(s.observe(0.5), LrDecision::Continue);
        // Third stale epoch triggers the decay.
        match s.observe(0.5) {
            LrDecision::Decayed { new_scale } => assert!((new_scale - 0.1).abs() < 1e-6),
            d => panic!("expected decay, got {d:?}"),
        }
    }

    #[test]
    fn converges_after_max_drops_plus_plateau() {
        let mut s = PlateauSchedule::new(1, 4.0, 0.1, 2, 1);
        s.observe(1.0);
        // plateau 1 → drop
        s.observe(0.9);
        assert!(matches!(s.observe(0.9), LrDecision::Decayed { .. }));
        // plateau 2 → converged (max_drops = 1 exhausted)
        s.observe(0.9);
        assert_eq!(s.observe(0.9), LrDecision::Converged);
        assert!(s.converged());
        // Further observations keep reporting convergence.
        assert_eq!(s.observe(5.0), LrDecision::Converged);
    }

    #[test]
    fn decay_compounds() {
        let mut s = PlateauSchedule::new(4, 4.0, 0.5, 1, 3);
        s.observe(1.0);
        s.observe(0.0);
        assert!((s.lr_scale() - 2.0).abs() < 1e-6); // 4 × 0.5
        s.observe(0.0);
        assert!((s.lr_scale() - 1.0).abs() < 1e-6);
        assert_eq!(s.drops(), 2);
        assert_eq!(s.best_metric(), 1.0);
    }

    #[test]
    fn snapshot_restore_continues_identically() {
        let mut s = PlateauSchedule::new(3, 4.0, 0.5, 2, 2);
        for m in [0.1, 0.5, 0.4, 0.4, 0.45] {
            s.observe(m);
        }
        let mut r = PlateauSchedule::restore(&s.snapshot());
        assert_eq!(r.lr_scale().to_bits(), s.lr_scale().to_bits());
        for m in [0.44, 0.44, 0.43, 0.43, 0.42] {
            assert_eq!(r.observe(m), s.observe(m));
            assert_eq!(r.lr_scale().to_bits(), s.lr_scale().to_bits());
            assert_eq!(r.converged(), s.converged());
        }
    }

    #[test]
    fn monotonically_improving_never_decays() {
        let mut s = PlateauSchedule::new(2, 4.0, 0.1, 2, 2);
        for i in 0..100 {
            assert_eq!(s.observe(i as f64), LrDecision::Continue);
        }
        assert_eq!(s.lr_scale(), 2.0);
        assert!(!s.converged());
    }
}
