//! Synchronous parameter-server baseline.
//!
//! The paper's introduction motivates its all-reduce/all-gather design by
//! the drawbacks of the parameter-server (PS) architecture (Li et al.,
//! OSDI '14): servers store the model shards, workers compute gradients,
//! and every iteration funnels pull requests and gradient pushes through
//! the servers — a many-to-one pattern whose ingress bandwidth becomes
//! the bottleneck, and whose multi-server generalization degenerates into
//! an inefficient all-to-all. This module implements that architecture on
//! the same simulated cluster so the claim is measurable (see the
//! `ps_vs_allreduce` example and the `ps` experiment in the bench crate).
//!
//! Protocol (synchronous, one round per batch):
//!
//! 1. Every worker assembles its batch, collects the entity/relation row
//!    ids it needs, and sends a **pull request** to each owning server
//!    (ownership is derived from the locality-aware triple partition —
//!    see [`PsOwnership`] — so a row usually lives on the server whose
//!    partition shard touches it most, not at `row % n_servers`).
//! 2. Servers answer with the current row values; workers install them in
//!    their local cache.
//! 3. Workers compute gradients and **push** the row-sparse gradients
//!    back to the owning servers.
//! 4. Servers aggregate pushes from all workers (fixed order —
//!    deterministic) and apply a lazy Adam step to their shard.
//!
//! Epoch boundaries reuse the collectives: shards are all-gathered so
//! every rank holds the full model for validation, keeping the plateau
//! schedule identical to the all-reduce trainer's.

use crate::config::TrainConfig;
use crate::lr::PlateauSchedule;
use crate::neg::{sample_negatives, CorruptionBias};
use crate::report::{EpochTrace, TrainOutcome, TrainReport};
use kge_compress::codec::{decode_rows, encode_rows, RowPayload};
use kge_compress::quant::QuantizedRow;
use kge_compress::WireFormat;
use kge_core::loss::{logistic_loss, logistic_loss_grad};
use kge_core::matrix::axpy;
use kge_core::{Adam, AdamState, EmbeddingTable, KgeModel, SparseGrad};
use kge_data::batch::{uniform_shards, EpochShuffler};
use kge_data::{Dataset, FilterIndex, Triple};
use kge_partition::{entity_owners, partition_for, relation_owners};
use kge_eval::fast_valid_accuracy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simgrid::{Cluster, Communicator, NodeCtx};

/// Which table a message refers to (tag byte on the wire).
const TAG_ENTITY: u8 = 0;
const TAG_RELATION: u8 = 1;

/// Train with `n_servers` parameter servers; the remaining
/// `cluster.size() − n_servers` ranks are workers. Returns the report
/// from rank 0 (a server) and the assembled model.
pub fn train_ps(
    dataset: &Dataset,
    cluster: &Cluster,
    config: &TrainConfig,
    n_servers: usize,
) -> TrainOutcome {
    assert!(n_servers >= 1, "need at least one server");
    assert!(
        cluster.size() > n_servers,
        "need at least one worker beside {n_servers} servers"
    );
    config.validate().expect("invalid training config");
    dataset.validate().expect("invalid dataset");
    let mut results = cluster.run(|ctx| run_ps_node(ctx, dataset, config, n_servers));
    let wire_sent: u64 = results.iter().map(|r| r.3).sum();
    let wire_recv: u64 = results.iter().map(|r| r.4).sum();
    let (report, entities, relations, _, _) = results.swap_remove(0);
    let mut report = report.expect("rank 0 returns the report");
    report.wire_bytes_sent = wire_sent;
    report.wire_bytes_recv = wire_recv;
    TrainOutcome {
        report,
        entities,
        relations,
    }
}

/// Row → owning-server maps for both tables, derived from the same
/// locality-aware triple partition the collective trainers shard with
/// (majority endpoint/relation shard wins; ties to the lowest rank).
/// Deterministic — every rank derives identical maps from the dataset —
/// and far better aligned with access patterns than `row % n_servers`:
/// most of a worker's pulls land on the server whose partition shard its
/// triples came from.
struct PsOwnership {
    ent: Vec<u32>,
    rel: Vec<u32>,
}

impl PsOwnership {
    fn derive(dataset: &Dataset, n_servers: usize) -> Self {
        let part = partition_for(&dataset.train, dataset.n_relations, n_servers, false);
        PsOwnership {
            ent: entity_owners(&part, dataset.n_entities),
            rel: relation_owners(&part, dataset.n_relations),
        }
    }
}

/// Owning server (rank id) of a row under an ownership map.
#[inline]
fn owner(row: u32, owners: &[u32]) -> usize {
    owners[row as usize] as usize
}

fn encode_ids(tag: u8, ids: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 4 * ids.len());
    out.push(tag);
    for &id in ids {
        out.extend_from_slice(&id.to_le_bytes());
    }
    out
}

fn decode_ids(payload: &[u8]) -> (u8, Vec<u32>) {
    let tag = payload[0];
    let ids = payload[1..]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    (tag, ids)
}

fn encode_table_rows(dim: usize, table: &EmbeddingTable, ids: &[u32]) -> Vec<u8> {
    let rows: Vec<RowPayload> = ids
        .iter()
        .map(|&id| RowPayload {
            row: id,
            data: QuantizedRow::Full(table.row(id as usize).to_vec()),
        })
        .collect();
    encode_rows(WireFormat::F32, dim, &rows).expect("encode full rows")
}

fn encode_grad(dim: usize, grad: &SparseGrad, server: usize, owners: &[u32]) -> Vec<u8> {
    let rows: Vec<RowPayload> = grad
        .iter_sorted()
        .filter(|(row, _)| owner(*row, owners) == server)
        .map(|(row, g)| RowPayload {
            row,
            data: QuantizedRow::Full(g.to_vec()),
        })
        .collect();
    encode_rows(WireFormat::F32, dim, &rows).expect("encode gradient rows")
}

#[allow(clippy::too_many_arguments)]
fn run_ps_node(
    ctx: &mut NodeCtx,
    dataset: &Dataset,
    config: &TrainConfig,
    n_servers: usize,
) -> (Option<TrainReport>, EmbeddingTable, EmbeddingTable, u64, u64) {
    let rank = ctx.rank();
    let p = ctx.size();
    let n_workers = p - n_servers;
    let is_server = rank < n_servers;
    let owners = PsOwnership::derive(dataset, n_servers);
    let model = config.model.build(config.rank);
    let model: &dyn KgeModel = model.as_ref();
    let dim = model.storage_dim();

    // Worker shards (workers are ranks n_servers..p).
    let worker_shards = uniform_shards(&dataset.train, n_workers);
    let batches_per_epoch = worker_shards
        .iter()
        .map(|s| s.len().div_ceil(config.batch_size))
        .max()
        .unwrap_or(0)
        .max(1);
    let mut shard: Vec<Triple> = if is_server {
        Vec::new()
    } else {
        worker_shards[rank - n_servers].clone()
    };

    let filter = FilterIndex::build(dataset);
    let bias = if config.strategy.bern {
        Some(CorruptionBias::fit(dataset))
    } else {
        None
    };

    // Every rank holds full tables: servers treat their owned rows as the
    // source of truth; workers use theirs as a pull-through cache.
    let mut init_rng = StdRng::seed_from_u64(config.seed);
    let mut ent = EmbeddingTable::xavier(dataset.n_entities, dim, &mut init_rng);
    let mut rel = EmbeddingTable::xavier(dataset.n_relations, dim, &mut init_rng);
    let mut ent_adam = AdamState::new(dataset.n_entities, dim);
    let mut rel_adam = AdamState::new(dataset.n_relations, dim);
    let adam = Adam {
        lr: config.base_lr,
        ..Adam::default()
    };
    let mut rng = StdRng::seed_from_u64(
        config.seed ^ (rank as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15),
    );
    let shuffler = EpochShuffler::new(config.seed ^ (rank as u64) << 32);
    let mut schedule = PlateauSchedule::new(
        n_workers,
        config.lr_scale_cap,
        config.lr_decay,
        config.plateau_tolerance,
        config.max_lr_drops,
    );

    let mut trace: Vec<EpochTrace> = Vec::new();
    let mut converged = false;

    for epoch in 0..config.max_epochs {
        ctx.comm_mut().barrier();
        let epoch_start = ctx.comm().clock().now_s();
        shuffler.shuffle(&mut shard, epoch as u64);
        let lr_scale = schedule.lr_scale();
        let mut epoch_loss = 0.0f64;
        let mut epoch_examples = 0usize;
        let mut rows_pulled = 0usize;

        for b in 0..batches_per_epoch {
            if is_server {
                serve_one_round(
                    ctx.comm_mut(),
                    n_servers,
                    n_workers,
                    &mut ent,
                    &mut rel,
                    &mut ent_adam,
                    &mut rel_adam,
                    &adam,
                    dim,
                    lr_scale,
                );
                continue;
            }
            // ---------------- Worker side. ----------------
            // Assemble the batch and its negative samples up front so the
            // pull covers every row the backward pass touches.
            let mut examples: Vec<(Triple, f32)> = Vec::new();
            if !shard.is_empty() {
                let bs = config.batch_size.min(shard.len());
                let start = b * config.batch_size;
                for i in 0..bs {
                    let pos = shard[(start + i) % shard.len()];
                    examples.push((pos, 1.0));
                    let negs = sample_negatives(
                        config.strategy.neg,
                        pos,
                        model,
                        &ent,
                        &rel,
                        &filter,
                        bias.as_ref(),
                        ent.rows(),
                        &mut rng,
                    );
                    for neg in negs.train {
                        examples.push((neg, -1.0));
                    }
                }
            }
            let mut ent_ids: Vec<u32> = examples
                .iter()
                .flat_map(|(t, _)| [t.head, t.tail])
                .collect();
            ent_ids.sort_unstable();
            ent_ids.dedup();
            let mut rel_ids: Vec<u32> = examples.iter().map(|(t, _)| t.rel).collect();
            rel_ids.sort_unstable();
            rel_ids.dedup();
            rows_pulled += ent_ids.len() + rel_ids.len();

            // 1. Pull: request rows from each owning server.
            for server in 0..n_servers {
                let e: Vec<u32> = ent_ids
                    .iter()
                    .copied()
                    .filter(|&r| owner(r, &owners.ent) == server)
                    .collect();
                let r: Vec<u32> = rel_ids
                    .iter()
                    .copied()
                    .filter(|&r| owner(r, &owners.rel) == server)
                    .collect();
                ctx.comm_mut()
                    .send_bytes(server, &encode_ids(TAG_ENTITY, &e))
                    .expect("pull request (entities)");
                ctx.comm_mut()
                    .send_bytes(server, &encode_ids(TAG_RELATION, &r))
                    .expect("pull request (relations)");
            }
            // 2. Install replies. Per-source FIFO ordering guarantees the
            //    first reply answers the entity request, the second the
            //    relation request.
            for server in 0..n_servers {
                for which in 0..2 {
                    let msg = ctx.comm_mut().recv_bytes_from(server).expect("pull reply");
                    let (rows, _) = decode_rows(&msg.payload).expect("reply payload");
                    let table = if which == 0 { &mut ent } else { &mut rel };
                    for rp in rows {
                        if let QuantizedRow::Full(v) = rp.data {
                            table.row_mut(rp.row as usize).copy_from_slice(&v);
                        }
                    }
                }
            }

            // 3. Compute gradients locally.
            let mut ent_grad = SparseGrad::new(dim);
            let mut rel_grad = SparseGrad::new(dim);
            let mut gh = vec![0.0f32; dim];
            let mut gr = vec![0.0f32; dim];
            let mut gt = vec![0.0f32; dim];
            let inv = if examples.is_empty() {
                0.0
            } else {
                1.0 / examples.len() as f32
            };
            for &(t, y) in &examples {
                let (h, r, tt) = (t.head as usize, t.rel as usize, t.tail as usize);
                let score = model.score(ent.row(h), rel.row(r), ent.row(tt));
                epoch_loss += logistic_loss(y, score) as f64;
                let coeff = logistic_loss_grad(y, score) * inv;
                gh.fill(0.0);
                gr.fill(0.0);
                gt.fill(0.0);
                model.grad(ent.row(h), rel.row(r), ent.row(tt), coeff, &mut gh, &mut gr, &mut gt);
                let reg = 2.0 * config.l2 * inv;
                axpy(reg, ent.row(h), &mut gh);
                axpy(reg, rel.row(r), &mut gr);
                axpy(reg, ent.row(tt), &mut gt);
                axpy(1.0, &gh, ent_grad.row_mut(t.head));
                axpy(1.0, &gt, ent_grad.row_mut(t.tail));
                axpy(1.0, &gr, rel_grad.row_mut(t.rel));
                epoch_examples += 1;
            }
            ctx.comm_mut()
                .clock_mut()
                .charge_flops(examples.len() as f64 * model.score_flops() * 3.0);

            // 4. Push gradients to the owners.
            for server in 0..n_servers {
                let e = encode_grad(dim, &ent_grad, server, &owners.ent);
                let r = encode_grad(dim, &rel_grad, server, &owners.rel);
                ctx.comm_mut().send_bytes(server, &e).expect("push (entities)");
                ctx.comm_mut().send_bytes(server, &r).expect("push (relations)");
            }
        }

        // ---- Epoch end: assemble the full model on every rank. --------
        assemble_full_model(ctx, n_servers, dim, &owners, &mut ent, &mut rel);

        let acc = fast_valid_accuracy(
            model,
            &ent,
            &rel,
            &dataset.valid,
            &filter,
            dataset.n_entities,
            config.valid_samples,
            config.seed ^ (epoch as u64).wrapping_mul(0x2545F4914F6CDD1D),
        );
        ctx.comm_mut().clock_mut().charge_flops(
            (config.valid_samples.min(dataset.valid.len()) * 2) as f64 * model.score_flops(),
        );
        // Align clocks (worker/server compute differs) so the schedule and
        // epoch times are identical everywhere.
        ctx.comm_mut().barrier();
        let epoch_time = ctx.comm().clock().now_s() - epoch_start;
        let loss_sum = ctx.comm_mut().allreduce_sum_f64(epoch_loss);
        let examples_sum = ctx.comm_mut().allreduce_sum_f64(epoch_examples as f64);

        trace.push(EpochTrace {
            epoch,
            sim_seconds: epoch_time,
            comm: crate::comm_select::CommChoice::AllGather, // PS uses p2p; tag as sparse
            valid_acc: acc,
            train_loss: if examples_sum > 0.0 {
                loss_sum / examples_sum
            } else {
                0.0
            },
            lr_scale,
            mean_nonzero_rows: rows_pulled as f64 / batches_per_epoch as f64,
            mean_rows_sent: rows_pulled as f64 / batches_per_epoch as f64,
            rs_sparsity: 0.0,
            bytes_sent: 0,
            // The PS topology has no symmetric communicator for the
            // sharded eval collective; per-epoch ranking stays off here.
            ranking: None,
        });
        if matches!(schedule.observe(acc), crate::lr::LrDecision::Converged) {
            converged = true;
            break;
        }
    }

    let report = if rank == 0 {
        Some(TrainReport {
            dataset: dataset.name.clone(),
            nodes: p,
            epochs: trace.len(),
            converged,
            sim_total_seconds: ctx.comm().clock().now_s(),
            breakdown: ctx.comm().clock().breakdown(),
            trace,
            allreduce_epochs: 0,
            allgather_epochs: 0,
            pipelined_epochs: 0,
            // The PS path has no crash-recovery policy (fault tolerance
            // lives in the collective trainer); wire totals are summed by
            // train_ps across all ranks.
            surviving_nodes: p,
            recoveries: 0,
            rejoins: 0,
            checkpoints_written: 0,
            crashed_ranks: Vec::new(),
            wire_bytes_sent: 0,
            wire_bytes_recv: 0,
            sharded: None,
        })
    } else {
        None
    };
    let traffic = ctx.comm().traffic().report();
    (
        report,
        ent,
        rel,
        traffic.total_wire_sent(),
        traffic.total_wire_recv(),
    )
}

/// One server-side round: answer every worker's pull, then absorb every
/// worker's push (fixed worker order — deterministic).
#[allow(clippy::too_many_arguments)]
fn serve_one_round(
    comm: &mut Communicator,
    n_servers: usize,
    n_workers: usize,
    ent: &mut EmbeddingTable,
    rel: &mut EmbeddingTable,
    ent_adam: &mut AdamState,
    rel_adam: &mut AdamState,
    adam: &Adam,
    dim: usize,
    lr_scale: f32,
) {
    // Pull phase.
    for w in 0..n_workers {
        let worker_rank = n_servers + w;
        for _ in 0..2 {
            let msg = comm.recv_bytes_from(worker_rank).expect("pull request");
            let (tag, ids) = decode_ids(&msg.payload);
            let reply = if tag == TAG_ENTITY {
                encode_table_rows(dim, ent, &ids)
            } else {
                encode_table_rows(dim, rel, &ids)
            };
            comm.send_bytes(worker_rank, &reply).expect("pull reply");
        }
    }
    // Push phase: aggregate all workers, then one optimizer step.
    let mut ent_agg = SparseGrad::new(dim);
    let mut rel_agg = SparseGrad::new(dim);
    for w in 0..n_workers {
        let worker_rank = n_servers + w;
        for table in 0..2 {
            let msg = comm.recv_bytes_from(worker_rank).expect("gradient push");
            let (rows, _) = decode_rows(&msg.payload).expect("push payload");
            let agg = if table == 0 { &mut ent_agg } else { &mut rel_agg };
            for rp in rows {
                if let QuantizedRow::Full(v) = rp.data {
                    let dst = agg.row_mut(rp.row);
                    for (d, x) in dst.iter_mut().zip(v) {
                        *d += x;
                    }
                }
            }
        }
    }
    let inv = 1.0 / n_workers as f32;
    ent_agg.scale(inv);
    rel_agg.scale(inv);
    comm.clock_mut()
        .charge_flops(ent_adam.lazy_step_flops(ent_agg.nnz()) + rel_adam.lazy_step_flops(rel_agg.nnz()));
    adam.step_lazy(ent_adam, ent, &ent_agg, lr_scale);
    adam.step_lazy(rel_adam, rel, &rel_agg, lr_scale);
}

/// All-gather each server's owned rows so every rank ends with the full,
/// current model (used at epoch boundaries for validation and finally for
/// evaluation).
fn assemble_full_model(
    ctx: &mut NodeCtx,
    n_servers: usize,
    dim: usize,
    owners: &PsOwnership,
    ent: &mut EmbeddingTable,
    rel: &mut EmbeddingTable,
) {
    let rank = ctx.rank();
    for (map, table) in [(&owners.ent, &mut *ent), (&owners.rel, &mut *rel)] {
        let owned: Vec<u32> = if rank < n_servers {
            (0..table.rows() as u32)
                .filter(|&r| owner(r, map) == rank)
                .collect()
        } else {
            Vec::new()
        };
        let payload = {
            let rows: Vec<RowPayload> = owned
                .iter()
                .map(|&id| RowPayload {
                    row: id,
                    data: QuantizedRow::Full(table.row(id as usize).to_vec()),
                })
                .collect();
            encode_rows(WireFormat::F32, dim, &rows).expect("encode shard")
        };
        let gathered = ctx
            .comm_mut()
            .allgatherv_bytes(&payload)
            .expect("shard assembly");
        for peer in gathered {
            let (rows, _) = decode_rows(&peer).expect("peer shard");
            for rp in rows {
                if let QuantizedRow::Full(v) = rp.data {
                    table.row_mut(rp.row as usize).copy_from_slice(&v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StrategyConfig;
    use kge_data::synth::{generate, SynthConfig};
    use simgrid::ClusterSpec;

    fn tiny_dataset(seed: u64) -> Dataset {
        generate(&SynthConfig {
            name: "ps-tiny".into(),
            n_entities: 100,
            n_relations: 6,
            n_triples: 1200,
            relation_zipf: 0.75,
            entity_zipf: 0.8,
            noise_frac: 0.05,
            valid_frac: 0.08,
            test_frac: 0.08,
            seed,
        })
    }

    fn quick_config() -> TrainConfig {
        let mut c = TrainConfig::new(4, 64, StrategyConfig::baseline_allgather(1));
        c.plateau_tolerance = 3;
        c.max_lr_drops = 1;
        c.max_epochs = 8;
        c.valid_samples = 64;
        c.base_lr = 5e-3;
        c
    }

    #[test]
    fn ps_trains_and_loss_decreases() {
        let ds = tiny_dataset(1);
        let cluster = Cluster::new(3, ClusterSpec::cray_xc40()); // 1 server + 2 workers
        let out = train_ps(&ds, &cluster, &quick_config(), 1);
        assert!(out.report.epochs >= 4, "N={}", out.report.epochs);
        let first = out.report.trace.first().unwrap().train_loss;
        let last = out.report.trace.last().unwrap().train_loss;
        assert!(last < first, "loss should fall: {first} -> {last}");
        assert!(out.report.sim_total_seconds > 0.0);
    }

    #[test]
    fn ps_is_deterministic() {
        let ds = tiny_dataset(2);
        let cluster = Cluster::new(4, ClusterSpec::cray_xc40()); // 2 servers + 2 workers
        let a = train_ps(&ds, &cluster, &quick_config(), 2);
        let b = train_ps(&ds, &cluster, &quick_config(), 2);
        assert_eq!(a.entities.as_slice(), b.entities.as_slice());
        assert_eq!(a.report.sim_total_seconds, b.report.sim_total_seconds);
    }

    #[test]
    fn ps_model_quality_comparable_to_allreduce() {
        // Same dataset, same worker count: the synchronous PS computes
        // the same kind of averaged-gradient updates, so validation
        // accuracy should land in the same region as the all-reduce
        // trainer (it is the *time*, not the math, that suffers).
        let ds = tiny_dataset(3);
        let mut cfg = quick_config();
        cfg.max_epochs = 10;
        // 64-sample validation is granular (steps of 1/64) and both runs
        // are short; a larger probe keeps the comparison about the math,
        // not sampling noise.
        cfg.valid_samples = 256;
        let ps = train_ps(&ds, &Cluster::new(3, ClusterSpec::cray_xc40()), &cfg, 1);
        let ar = crate::trainer::train(
            &ds,
            &Cluster::new(2, ClusterSpec::cray_xc40()),
            &TrainConfig {
                strategy: StrategyConfig::baseline_allreduce(1),
                ..cfg.clone()
            },
        );
        let acc_ps = ps.report.trace.last().unwrap().valid_acc;
        let acc_ar = ar.report.trace.last().unwrap().valid_acc;
        assert!(
            acc_ps > acc_ar - 0.1,
            "PS accuracy {acc_ps} collapsed vs all-reduce {acc_ar}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn ps_requires_a_worker() {
        let ds = tiny_dataset(4);
        let cluster = Cluster::new(2, ClusterSpec::cray_xc40());
        let _ = train_ps(&ds, &cluster, &quick_config(), 2);
    }

    #[test]
    fn row_ownership_partitions_rows() {
        // Partition-derived maps must assign every row to exactly one
        // valid server, cover every server, and align with locality:
        // most pulls from a worker's shard should hit the server that
        // owns that shard's triples.
        let ds = tiny_dataset(5);
        for n_servers in 1..5usize {
            let owners = PsOwnership::derive(&ds, n_servers);
            assert_eq!(owners.ent.len(), ds.n_entities);
            assert_eq!(owners.rel.len(), ds.n_relations);
            let mut seen = vec![0usize; n_servers];
            for row in 0..ds.n_entities as u32 {
                let o = owner(row, &owners.ent);
                assert!(o < n_servers);
                seen[o] += 1;
            }
            assert_eq!(seen.iter().sum::<usize>(), ds.n_entities);
            assert!(seen.iter().all(|&c| c > 0), "empty server at p={n_servers}");
            for row in 0..ds.n_relations as u32 {
                assert!(owner(row, &owners.rel) < n_servers);
            }
        }
        // Locality: with the partition that produced the map, a shard's
        // majority entity lands on its own server by construction.
        let part = partition_for(&ds.train, ds.n_relations, 3, false);
        let owners = PsOwnership::derive(&ds, 3);
        let mut aligned = 0usize;
        let mut total = 0usize;
        for (s, shard) in part.shards.iter().enumerate() {
            for t in shard {
                total += 2;
                aligned += usize::from(owner(t.head, &owners.ent) == s);
                aligned += usize::from(owner(t.tail, &owners.ent) == s);
            }
        }
        // `row % n_servers` co-locates ~1/p of the touches by chance;
        // majority ownership must do strictly better than that baseline.
        assert!(
            aligned * 3 > total,
            "majority ownership should beat the uniform-hash baseline \
             (1/3) on co-located endpoint touches ({aligned}/{total})"
        );
    }
}
