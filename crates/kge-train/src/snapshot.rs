//! Snapshot publishing: the trainer-side half of serve-while-training.
//!
//! At epoch boundaries (cadence [`TrainConfig::serve_snapshots`]) the
//! trainer hands the current model replica to a [`SnapshotSink`] — in
//! production, `kge-serve`'s snapshot hub, which double-buffers the tables
//! into an immutable serving generation. The trait lives here (not in
//! `kge-serve`) so the dependency points the right way: the serving crate
//! depends on the trainer, never the reverse.
//!
//! Publishing is charged to the simulated clock on **every** rank (the
//! charge is a pure function of table shapes, keeping replica clocks
//! aligned), but only rank 0 calls the sink — replicas are bit-identical,
//! so one publisher is enough, and after a crash-shrink the lead survivor
//! holds rank 0. The bytes handed over are exactly the model bytes a
//! checkpoint written at the same boundary would carry
//! ([`Checkpoint::ent`]/[`Checkpoint::rel`]), which the serve test suite
//! asserts bit-for-bit.
//!
//! [`TrainConfig::serve_snapshots`]: crate::config::TrainConfig::serve_snapshots
//! [`Checkpoint::ent`]: crate::checkpoint::Checkpoint
//! [`Checkpoint::rel`]: crate::checkpoint::Checkpoint

use kge_core::EmbeddingTable;

/// A borrowed view of the model at a publishable epoch boundary. The
/// tables live only for the duration of [`SnapshotSink::publish`]; a sink
/// that keeps the model copies it (the serve hub copies into reused
/// double-buffered storage).
pub struct PublishedModel<'a> {
    /// Epochs completed when this snapshot was taken (the snapshot sees
    /// every update of epochs `0..epochs_done`).
    pub epochs_done: usize,
    /// The publishing rank's simulated clock at publish time, after the
    /// publish cost was charged.
    pub sim_now_s: f64,
    /// Entity embeddings (row-major, `n_entities × storage_dim`).
    pub ent: &'a EmbeddingTable,
    /// Relation embeddings (row-major, `n_relations × storage_dim`).
    pub rel: &'a EmbeddingTable,
}

/// Receiver of published model snapshots. Implementations must be cheap
/// and infallible from the trainer's point of view: `publish` runs on the
/// training rank's thread between epochs, so a slow sink stalls training
/// (the *simulated* cost is charged separately by the trainer).
pub trait SnapshotSink: Send + Sync {
    fn publish(&self, snapshot: &PublishedModel<'_>);
}

/// Test/debug sink that records a deep copy of every published snapshot.
#[derive(Default)]
pub struct RecordingSink {
    snaps: std::sync::Mutex<Vec<RecordedSnapshot>>,
}

/// One deep-copied publication captured by [`RecordingSink`].
#[derive(Clone)]
pub struct RecordedSnapshot {
    pub epochs_done: usize,
    pub sim_now_s: f64,
    pub ent: Vec<f32>,
    pub rel: Vec<f32>,
}

impl RecordingSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// All publications so far, in publish order.
    pub fn snapshots(&self) -> Vec<RecordedSnapshot> {
        self.snaps.lock().expect("recording sink lock").clone()
    }
}

impl SnapshotSink for RecordingSink {
    fn publish(&self, snapshot: &PublishedModel<'_>) {
        self.snaps
            .lock()
            .expect("recording sink lock")
            .push(RecordedSnapshot {
                epochs_done: snapshot.epochs_done,
                sim_now_s: snapshot.sim_now_s,
                ent: snapshot.ent.as_slice().to_vec(),
                rel: snapshot.rel.as_slice().to_vec(),
            });
    }
}
