//! Offline stand-in for `rayon`: real intra-process data parallelism with
//! a deterministic, thread-count-independent result contract.
//!
//! The execution model is simpler than rayon's work-stealing deques —
//! each parallel region spawns scoped `std` threads that claim item
//! indices from a shared atomic counter — but the *output* contract is
//! the one this repo's determinism tests rely on and is stronger than
//! a naive port: results are always assembled **in item order**, so a
//! `par_iter().map(f).collect()` is bit-identical to the sequential
//! `iter().map(f).collect()` for any thread count, provided `f` itself
//! is a pure function of the item.
//!
//! Thread-count resolution, in priority order:
//! 1. the innermost [`ThreadPool::install`] scope on this thread,
//! 2. the `RAYON_NUM_THREADS` environment variable,
//! 3. `std::thread::available_parallelism()`.
//!
//! Nested parallel regions run sequentially on the worker that reaches
//! them (matching rayon's no-oversubscription behaviour closely enough
//! for a simulator whose outer loop is already threads-as-nodes).

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static INSTALLED: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set inside parallel workers so nested regions run sequentially.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Number of threads a parallel region started here would use.
pub fn current_num_threads() -> usize {
    if IN_WORKER.with(|w| w.get()) {
        return 1;
    }
    if let Some(n) = INSTALLED.with(|c| c.get()) {
        return n.max(1);
    }
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Run `f(i)` for every `i in 0..n`, fanning out across worker threads.
/// Each index is claimed by exactly one worker; `f` must be safe to call
/// concurrently for distinct indices.
pub fn par_for_each_index<F: Fn(usize) + Sync>(n: usize, f: F) {
    let threads = current_num_threads().min(n);
    if threads <= 1 || n <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    f(i);
                }
            });
        }
    });
}

/// Compute `f(i)` for every index in parallel and return the results in
/// index order — the deterministic-collect primitive everything else in
/// this shim is built on.
pub fn par_map_index<U: Send, F: Fn(usize) -> U + Sync>(n: usize, f: F) -> Vec<U> {
    use std::mem::MaybeUninit;

    let threads = current_num_threads().min(n);
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }

    struct OutPtr<U>(*mut MaybeUninit<U>);
    unsafe impl<U: Send> Sync for OutPtr<U> {}

    let mut out: Vec<MaybeUninit<U>> = Vec::with_capacity(n);
    // Slots are written exactly once each (every index is claimed by one
    // worker) before being reinterpreted as initialized below.
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(n);
    }
    let ptr = OutPtr(out.as_mut_ptr());
    let ptr = &ptr;
    par_for_each_index(n, move |i| {
        let v = f(i);
        unsafe {
            ptr.0.add(i).write(MaybeUninit::new(v));
        }
    });
    let mut out = std::mem::ManuallyDrop::new(out);
    unsafe { Vec::from_raw_parts(out.as_mut_ptr() as *mut U, n, out.capacity()) }
}

/// Thread-count handle mirroring `rayon::ThreadPool`. The shim does not
/// keep threads alive between regions; the pool records the width that
/// regions inside [`ThreadPool::install`] will use.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `f` with this pool's thread count governing parallel regions.
    pub fn install<R, F: FnOnce() -> R>(&self, f: F) -> R {
        let prev = INSTALLED.with(|c| c.replace(Some(self.num_threads)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }
}

#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Pool construction cannot fail in the shim; kept for API parity.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => current_num_threads(),
            Some(n) => n,
        };
        Ok(ThreadPool { num_threads: n })
    }
}

pub mod prelude {
    pub use crate::{ParallelSliceExt, ParallelSliceMutExt};
}

/// `par_iter`/`par_chunks` entry points on slices.
pub trait ParallelSliceExt<T: Sync> {
    fn par_iter(&self) -> ParIter<'_, T>;
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSliceExt<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunks {
            items: self,
            chunk_size,
        }
    }
}

/// `par_chunks_mut` entry point on mutable slices.
pub trait ParallelSliceMutExt<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMutExt<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            items: self,
            chunk_size,
        }
    }
}

pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn flat_map_iter<I, F>(self, f: F) -> ParFlatMapIter<'a, T, F>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(&'a T) -> I + Sync,
    {
        ParFlatMapIter {
            items: self.items,
            f,
        }
    }

    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        let items = self.items;
        par_for_each_index(items.len(), |i| f(&items[i]));
    }
}

pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> ParMap<'a, T, F> {
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let items = self.items;
        let f = &self.f;
        par_map_index(items.len(), |i| f(&items[i]))
            .into_iter()
            .collect()
    }
}

pub struct ParFlatMapIter<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, I, F> ParFlatMapIter<'a, T, F>
where
    T: Sync,
    I: IntoIterator,
    I::Item: Send,
    F: Fn(&'a T) -> I + Sync,
{
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        let items = self.items;
        let f = &self.f;
        let nested: Vec<Vec<I::Item>> =
            par_map_index(items.len(), |i| f(&items[i]).into_iter().collect());
        nested.into_iter().flatten().collect()
    }
}

pub struct ParChunks<'a, T> {
    items: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    pub fn map<U, F>(self, f: F) -> ParChunksMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a [T]) -> U + Sync,
    {
        ParChunksMap {
            items: self.items,
            chunk_size: self.chunk_size,
            f,
        }
    }
}

pub struct ParChunksMap<'a, T, F> {
    items: &'a [T],
    chunk_size: usize,
    f: F,
}

impl<'a, T: Sync, U: Send, F: Fn(&'a [T]) -> U + Sync> ParChunksMap<'a, T, F> {
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let n = self.items.len().div_ceil(self.chunk_size);
        let f = &self.f;
        let items = self.items;
        let size = self.chunk_size;
        par_map_index(n, |i| {
            let start = i * size;
            let end = (start + size).min(items.len());
            f(&items[start..end])
        })
        .into_iter()
        .collect()
    }
}

pub struct ParChunksMut<'a, T> {
    items: &'a mut [T],
    chunk_size: usize,
}

impl<T: Send + Sync> ParChunksMut<'_, T> {
    /// Apply `f` to each chunk in parallel. Chunks are disjoint sub-slices
    /// reconstructed from the base pointer, so handing each claimed index
    /// its own `&mut [T]` is sound.
    pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
        let len = self.items.len();
        let size = self.chunk_size;
        let n = len.div_ceil(size);
        struct BasePtr<T>(*mut T);
        unsafe impl<T: Send> Sync for BasePtr<T> {}
        let base = BasePtr(self.items.as_mut_ptr());
        let base = &base;
        par_for_each_index(n, move |i| {
            let start = i * size;
            let end = (start + size).min(len);
            let chunk = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), end - start) };
            f(chunk);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let par: Vec<u64> = pool.install(|| items.par_iter().map(|&x| x * 3 + 1).collect());
        assert_eq!(seq, par);
    }

    #[test]
    fn flat_map_iter_matches_sequential() {
        let items: Vec<usize> = (0..257).collect();
        let seq: Vec<usize> = items.iter().flat_map(|&x| [x, x + 10]).collect();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let par: Vec<usize> =
            pool.install(|| items.par_iter().flat_map_iter(|&x| [x, x + 10]).collect());
        assert_eq!(seq, par);
    }

    #[test]
    fn chunks_mut_touches_every_element_once() {
        let mut data = vec![1i64; 1003];
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            data.par_chunks_mut(17).for_each(|c| {
                for x in c {
                    *x += 41;
                }
            })
        });
        assert!(data.iter().all(|&x| x == 42));
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 2);
    }

    #[test]
    fn nested_regions_run_sequentially() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let nested_counts: Vec<usize> = pool.install(|| {
            let items = [0usize; 8];
            items.par_iter().map(|_| current_num_threads()).collect()
        });
        // Inside a worker, nested parallelism is sequential.
        assert!(nested_counts.iter().all(|&n| n == 1));
    }

    #[test]
    fn par_map_index_is_order_stable_under_threads() {
        for threads in [1usize, 2, 4, 8] {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let got = pool.install(|| par_map_index(100, |i| i * i));
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }
}
