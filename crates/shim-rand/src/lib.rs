//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in an environment without registry access, so the
//! subset of `rand` 0.8 the training stack actually uses is implemented
//! here: [`rngs::StdRng`] (a splitmix64 generator rather than ChaCha — the
//! repo only needs determinism and reasonable statistical quality, not
//! cryptographic strength), [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension surface (`gen`, `gen_range` over integer/float
//! ranges, `gen_bool`).
//!
//! Streams seeded from different `u64`s are decorrelated by the splitmix64
//! output mix; the same seed always reproduces the same stream, which is
//! the property every determinism test in this repo leans on.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (the repo only uses `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let r = (rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: splitmix64 over a 64-bit counter state.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl StdRng {
        /// The generator's raw 64-bit counter state, for checkpointing.
        /// [`StdRng::from_state`] rebuilds a generator that continues the
        /// stream exactly where this one left off.
        #[inline]
        pub fn state(&self) -> u64 {
            self.state
        }

        /// Rebuild a generator from a captured [`StdRng::state`] value.
        #[inline]
        pub fn from_state(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(0..=4u32);
            assert!(y <= 4);
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let g = rng.gen_range(-0.5f32..=0.5);
            assert!((-0.5..=0.5).contains(&g));
        }
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }
}
