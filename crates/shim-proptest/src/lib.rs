//! Offline stand-in for `proptest`: the `proptest!` macro, a
//! [`Strategy`] trait over ranges/tuples/collections, `any::<T>()`, and
//! the `prop_assert*`/`prop_assume!` macros.
//!
//! Cases are generated from a deterministic per-case seed; there is no
//! shrinking — a failing case panics with the assertion message and the
//! case number, and re-running reproduces it exactly (generation is a
//! pure function of the case index).

extern crate self as proptest;

use rand::rngs::StdRng;
use rand::{Rng, SampleRange};

/// Runner configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Smaller than upstream's 256: cases don't shrink on failure, so
        // CI time is better spent across many properties.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for one proptest argument.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);

/// Types with a default whole-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f32 {
    /// Finite floats spread over a wide magnitude range (upstream's
    /// `any::<f32>` includes specials; the repo's properties assume
    /// finite inputs).
    fn arbitrary(rng: &mut StdRng) -> Self {
        let mag = rng.gen_range(-30.0f32..30.0);
        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        sign * mag.exp2() * rng.gen::<f32>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        let mag = rng.gen_range(-60.0f64..60.0);
        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        sign * mag.exp2() * rng.gen::<f64>()
    }
}

pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Inclusive size bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub lo: usize,
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(elem, size)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Per-case RNG: a pure function of the case index so failures
    /// reproduce without any persisted state.
    pub fn case_rng(case: u32) -> StdRng {
        StdRng::seed_from_u64(0x5eed_cafe_u64 ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15))
    }
}

/// Define property tests. Matches the upstream surface used in this repo:
/// an optional `#![proptest_config(...)]` header followed by `#[test]`
/// functions whose arguments are drawn from strategies with `pat in expr`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@items ($cfg); $($rest)*);
    };
    (@items ($cfg:expr); ) => {};
    (@items ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::__rt::case_rng(case);
                let run = || {
                    $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)+
                    $body
                };
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest case {case}/{} failed in {}",
                        config.cases,
                        stringify!($name),
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::proptest!(@items ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@items ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Assert within a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn double_strategy(n: u32) -> impl Strategy<Value = u32> {
        (0u32..n).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u32..=4, f in -2.0f32..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn tuples_and_vecs_compose(
            (p, n) in (1usize..=5, 0usize..8),
            v in proptest::collection::vec(-1.0f64..1.0, 2..=6),
        ) {
            prop_assert!(p >= 1 && p <= 5 && n < 8);
            prop_assert!(v.len() >= 2 && v.len() <= 6);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn map_flat_map_and_assume(evened in double_strategy(50), raw in any::<u64>()) {
            prop_assume!(raw % 3 != 0);
            prop_assert_eq!(evened % 2, 0);
        }

        #[test]
        fn flat_map_reaches_dependent_strategy(
            v in (1usize..4).prop_flat_map(|n| proptest::collection::vec(0u32..10, n..=n)),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }
    }

    #[test]
    fn cases_are_reproducible() {
        let mut a = crate::__rt::case_rng(7);
        let mut b = crate::__rt::case_rng(7);
        let s = (0u32..100, proptest::collection::vec(-1.0f32..1.0, 3..=3));
        assert_eq!(
            format!("{:?}", Strategy::generate(&s, &mut a)),
            format!("{:?}", Strategy::generate(&s, &mut b)),
        );
    }
}
