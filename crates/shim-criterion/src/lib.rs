//! Offline stand-in for `criterion`: the macro/group/bencher surface the
//! `bench` crate uses, timed with `std::time::Instant`. No statistics
//! engine — each benchmark reports the mean wall time over a calibrated
//! number of iterations, plus throughput when declared. Passing `--test`
//! (as `cargo test` does for harness-less bench targets) runs every
//! closure once without timing.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared work per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs one benchmark body: `b.iter(|| work())`.
pub struct Bencher {
    test_mode: bool,
    /// Mean seconds per iteration, filled by [`Bencher::iter`].
    mean_s: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.mean_s = 0.0;
            return;
        }
        // Warm up and estimate a single-iteration cost.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        // Aim for ~200ms of measurement, within [5, 1000] iterations.
        let iters = (Duration::from_millis(200).as_secs_f64() / once.as_secs_f64()) as u64;
        let iters = iters.clamp(5, 1000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean_s = start.elapsed().as_secs_f64() / iters as f64;
    }
}

fn format_duration(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

fn report(group: Option<&str>, id: &str, mean_s: f64, throughput: Option<Throughput>) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if mean_s > 0.0 => {
            format!("  thrpt: {:.1} MiB/s", n as f64 / mean_s / (1 << 20) as f64)
        }
        Some(Throughput::Elements(n)) if mean_s > 0.0 => {
            format!("  thrpt: {:.0} elem/s", n as f64 / mean_s)
        }
        _ => String::new(),
    };
    println!("{full:<50} time: {:>12}/iter{rate}", format_duration(mean_s));
}

/// Top-level benchmark context.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
            throughput: None,
            _criterion: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            test_mode: self.test_mode,
            mean_s: 0.0,
        };
        f(&mut b);
        report(None, &id.id, b.mean_s, None);
        self
    }
}

/// A named group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    throughput: Option<Throughput>,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            test_mode: self.test_mode,
            mean_s: 0.0,
        };
        f(&mut b);
        report(Some(&self.name), &id.id, b.mean_s, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            test_mode: self.test_mode,
            mean_s: 0.0,
        };
        f(&mut b, input);
        report(Some(&self.name), &id.id, b.mean_s, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Group benchmark functions under a single entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emit `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        g.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_and_bencher_run() {
        // test_mode avoids timing loops inside the test suite.
        let mut c = Criterion { test_mode: true };
        sample_bench(&mut c);
    }

    #[test]
    fn macros_compile() {
        criterion_group!(benches, sample_bench);
        let mut c = Criterion { test_mode: true };
        benches(&mut c);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(2.5), "2.500 s");
        assert_eq!(format_duration(3.25e-3), "3.250 ms");
        assert_eq!(format_duration(4.5e-6), "4.500 µs");
        assert_eq!(format_duration(12e-9), "12.0 ns");
    }
}
