//! MPI-style collectives over shared memory, with simulated timing.
//!
//! All node threads of a [`crate::Cluster`] share one communication world. Each
//! collective follows a deposit / barrier / combine / barrier protocol:
//! contributions are staged in per-rank slots (disjoint writes), a barrier
//! establishes that all deposits are visible, the combine step runs (a
//! fixed-order reduction for all-reduce, concatenation-by-rank for
//! all-gather), and further barriers make the staging area safely reusable.
//!
//! Reductions are performed in **fixed rank order**, so results are
//! bit-for-bit deterministic across runs regardless of thread scheduling.
//!
//! Every collective also performs the *simulated-time* bookkeeping: clocks
//! of all participants are aligned to the latest arrival (idle time), then
//! advanced by the [`CostModel`] price of the operation (comm time).

use crate::clock::SimClock;
use crate::fault::FaultPlan;
use crate::p2p::{Message, PostOffice};
use crate::cost::{Collective, CostModel};
use crate::error::SimError;
use crate::spec::ClusterSpec;
use crate::traffic::TrafficStats;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::{Arc, Barrier};

/// Rendezvous through which crashed-then-recovered ranks re-enter the
/// world. One lobby is created with a cluster's initial world and carried
/// by `Arc` through every shrink and grow, so a rank parked before several
/// generations of membership change can still be found by the current
/// survivors' [`Communicator::try_grow`].
pub(crate) struct RejoinLobby {
    state: Mutex<LobbyState>,
    cv: Condvar,
}

#[derive(Default)]
struct LobbyState {
    /// Posted by the grow leader: original rank → (grown world, new rank,
    /// leader's rank in the grown world). The leader rank names the
    /// survivor a rejoiner should ask for replica state.
    assignments: HashMap<usize, (Arc<CommWorld>, usize, usize)>,
    /// Original ids already re-admitted once; a crash entry's recovery is
    /// consumed by its first rejoin.
    rejoined: Vec<usize>,
    /// Set when the program finishes; parked ranks stop waiting.
    closed: bool,
}

impl RejoinLobby {
    fn new() -> Arc<Self> {
        Arc::new(RejoinLobby {
            state: Mutex::new(LobbyState::default()),
            cv: Condvar::new(),
        })
    }
}

/// Shared state for one cluster's communicator.
pub(crate) struct CommWorld {
    size: usize,
    barrier: Barrier,
    f32_slots: Vec<Mutex<Vec<f32>>>,
    byte_slots: Vec<Mutex<Vec<u8>>>,
    f64_slots: Vec<Mutex<f64>>,
    clock_slots: Vec<Mutex<f64>>,
    /// Launch-time deposits for overlapped collectives: the simulated time
    /// at which each rank *started* the exchange it is now completing.
    /// `max(clock) − max(anchor)` is the shared overlap window every rank
    /// uses to hide collective price, so clocks stay aligned.
    anchor_slots: Vec<Mutex<f64>>,
    result_f32: Mutex<Vec<f32>>,
    error: Mutex<Option<SimError>>,
    post: std::sync::Arc<PostOffice>,
    /// The fault schedule every rank consults (inert by default).
    plan: Arc<FaultPlan>,
    /// Original rank of each current rank: identity for a fresh cluster,
    /// the surviving subset after a shrink. Fault-plan lookups (straggler
    /// windows, crash times, p2p drop streams) always use original ids.
    orig_ranks: Vec<usize>,
    /// Current-rank ids detected as crashed, sorted; consumed by
    /// [`Communicator::shrink`].
    failed: Mutex<Vec<usize>>,
    /// Replacement world staged by the lowest surviving rank during a
    /// shrink or grow, picked up by the other survivors.
    next_world: Mutex<Option<Arc<CommWorld>>>,
    /// Rejoin rendezvous shared across every world generation.
    lobby: Arc<RejoinLobby>,
}

impl CommWorld {
    pub(crate) fn new(size: usize, plan: Arc<FaultPlan>, orig_ranks: Vec<usize>) -> Arc<Self> {
        Self::with_lobby(size, plan, orig_ranks, RejoinLobby::new())
    }

    /// Build a successor world (after a shrink or grow) that keeps the
    /// cluster's original rejoin lobby, so parked ranks stay reachable.
    fn with_lobby(
        size: usize,
        plan: Arc<FaultPlan>,
        orig_ranks: Vec<usize>,
        lobby: Arc<RejoinLobby>,
    ) -> Arc<Self> {
        assert!(size >= 1, "communicator needs at least one rank");
        assert_eq!(orig_ranks.len(), size);
        Arc::new(CommWorld {
            size,
            barrier: Barrier::new(size),
            f32_slots: (0..size).map(|_| Mutex::new(Vec::new())).collect(),
            byte_slots: (0..size).map(|_| Mutex::new(Vec::new())).collect(),
            f64_slots: (0..size).map(|_| Mutex::new(0.0)).collect(),
            clock_slots: (0..size).map(|_| Mutex::new(0.0)).collect(),
            anchor_slots: (0..size).map(|_| Mutex::new(0.0)).collect(),
            result_f32: Mutex::new(Vec::new()),
            error: Mutex::new(None),
            post: PostOffice::new(size),
            plan,
            orig_ranks,
            failed: Mutex::new(Vec::new()),
            next_world: Mutex::new(None),
            lobby,
        })
    }
}

/// Timing split of one *overlapped* collective: how much of its α-β price
/// was hidden behind the compute window between launch and completion, and
/// how much remained visible on the clock. Identical on every rank (both
/// the window and the price are computed from shared deposits).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OverlapStats {
    /// Seconds of collective price hidden behind compute (never advanced
    /// the clock; accounted in `hidden_comm_s`).
    pub hidden_s: f64,
    /// Seconds of collective price that remained visible (charged to
    /// `comm_s` as usual).
    pub visible_s: f64,
    /// Width of the shared overlap window, `max(arrival) − max(anchor)`.
    pub window_s: f64,
}

/// One rank's handle onto the cluster's collective-communication layer.
///
/// A `Communicator` owns the rank's [`SimClock`] and [`TrafficStats`]; the
/// code running on the node charges compute time through
/// [`Communicator::clock_mut`] and invokes collectives directly.
pub struct Communicator {
    world: Arc<CommWorld>,
    rank: usize,
    /// Original rank in the cluster's initial world; stable across shrinks.
    orig: usize,
    cost: CostModel,
    clock: SimClock,
    traffic: TrafficStats,
    /// Rank-local counter of fault-checked collectives; identical across
    /// ranks of an SPMD program, so induced collective faults are
    /// symmetric decisions.
    coll_seq: u64,
    /// Per-destination (original-id) send counters for the p2p drop
    /// stream; sized at the initial world size.
    p2p_seq: Vec<u64>,
    /// Reused per-rank byte-count scratch for uniform-size collectives, so
    /// steady-state all-reduces don't allocate a count vector per call.
    bytes_scratch: Vec<usize>,
    /// Per-lane overlap cursors for deferred p2p settlement (ShardPull,
    /// ShardPush, everything else). Each lane remembers how far into the
    /// compute window its hidden seconds already reached, so two receives
    /// settled against the same window cannot both hide the full width.
    p2p_cursors: [f64; 3],
}

impl Communicator {
    pub(crate) fn new(world: Arc<CommWorld>, rank: usize, spec: &ClusterSpec) -> Self {
        assert!(rank < world.size);
        let orig = world.orig_ranks[rank];
        let n_orig = world.orig_ranks.iter().copied().max().unwrap_or(0) + 1;
        Communicator {
            rank,
            orig,
            cost: CostModel::new(spec.clone()),
            clock: SimClock::with_faults(spec, orig, world.plan.clone()),
            traffic: TrafficStats::default(),
            coll_seq: 0,
            p2p_seq: vec![0; n_orig],
            bytes_scratch: Vec::new(),
            p2p_cursors: [0.0; 3],
            world,
        }
    }

    /// This rank's id in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// This rank's id in the cluster's *initial* world, before any crash
    /// shrank the communicator. Data owned per-rank (partitions, RNG
    /// streams) should be keyed on current rank; fault-plan events are
    /// keyed on original rank.
    #[inline]
    pub fn orig_rank(&self) -> usize {
        self.orig
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.world.size
    }

    /// Original ids of ranks detected as crashed but not yet removed by
    /// [`Communicator::shrink`].
    pub fn failed_ranks(&self) -> Vec<usize> {
        self.world
            .failed
            .lock()
            .iter()
            .map(|&r| self.world.orig_ranks[r])
            .collect()
    }

    /// The simulated clock of this rank.
    #[inline]
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Mutable access for charging local compute time.
    #[inline]
    pub fn clock_mut(&mut self) -> &mut SimClock {
        &mut self.clock
    }

    /// Communication traffic accounted so far on this rank.
    #[inline]
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// The cost model used for simulated timing, for what-if queries
    /// (e.g. the dynamic all-reduce/all-gather selection strategy).
    #[inline]
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Align clocks with all peers (everyone leaves at the max arrival time
    /// plus the barrier cost) without moving data.
    pub fn barrier(&mut self) {
        if self.size() == 1 {
            return;
        }
        self.sync_clocks(Collective::Barrier, &[0]);
        self.world.barrier.wait(); // release clock slots for reuse
    }

    /// In-place sum all-reduce over `buf`: afterwards every rank holds the
    /// element-wise sum of all contributions. Deterministic (fixed-order
    /// reduction). Errors if buffer lengths differ across ranks.
    pub fn allreduce_sum_f32(&mut self, buf: &mut [f32]) -> Result<(), SimError> {
        self.allreduce_sum_f32_inner(buf, None).map(|_| ())
    }

    /// [`Communicator::allreduce_sum_f32`] priced as a *pipelined*
    /// collective: the caller launched the exchange at simulated time
    /// `anchor_s` and has since charged compute; the shared window
    /// `max(arrival) − max(anchor)` hides up to that much of the α-β
    /// price (see [`OverlapStats`]). Numerics are identical to the
    /// synchronous call — only the timing split differs.
    pub fn allreduce_sum_f32_overlapped(
        &mut self,
        buf: &mut [f32],
        anchor_s: f64,
    ) -> Result<OverlapStats, SimError> {
        self.allreduce_sum_f32_inner(buf, Some(anchor_s))
    }

    fn allreduce_sum_f32_inner(
        &mut self,
        buf: &mut [f32],
        anchor: Option<f64>,
    ) -> Result<OverlapStats, SimError> {
        let bytes = std::mem::size_of_val(buf);
        if self.size() == 1 {
            self.traffic.record(Collective::AllReduce, bytes, bytes);
            return Ok(OverlapStats::default());
        }
        // Deposit.
        {
            let mut slot = self.world.f32_slots[self.rank].lock();
            slot.clear();
            slot.extend_from_slice(buf);
        }
        let stats = self.sync_clocks_uniform_inner(Collective::AllReduce, bytes, anchor);
        if let Err(e) = self.apply_faults(Collective::AllReduce, "allreduce_sum_f32") {
            self.world.barrier.wait(); // symmetric error: release staging
            return Err(e);
        }
        // Rank 0 validates shapes and reduces in rank order.
        if self.rank == 0 {
            let expected = buf.len();
            let mut err = None;
            let mut acc = self.world.result_f32.lock();
            acc.clear();
            acc.resize(expected, 0.0);
            for r in 0..self.size() {
                let slot = self.world.f32_slots[r].lock();
                if slot.len() != expected {
                    err = Some(SimError::ShapeMismatch {
                        op: "allreduce_sum_f32",
                        expected,
                        got: slot.len(),
                        rank: r,
                    });
                    break;
                }
                for (a, &v) in acc.iter_mut().zip(slot.iter()) {
                    *a += v;
                }
            }
            *self.world.error.lock() = err;
        }
        self.world.barrier.wait(); // result ready
        let status = self.world.error.lock().clone();
        if let Some(e) = status {
            self.world.barrier.wait(); // keep protocol aligned
            return Err(e);
        }
        {
            let result = self.world.result_f32.lock();
            buf.copy_from_slice(&result);
        }
        self.traffic.record(Collective::AllReduce, bytes, bytes);
        // Ring-style wire traffic: every rank exchanges its full payload
        // with the rest of the ring; globally Σ sent == Σ received.
        let wire = bytes * (self.size() - 1);
        self.traffic.record_wire(Collective::AllReduce, wire, wire);
        self.world.barrier.wait(); // staging reusable
        Ok(stats)
    }

    /// Variable-size all-gather of `f32` payloads. Returns the
    /// concatenation of every rank's contribution in rank order, plus the
    /// per-rank element counts.
    pub fn allgatherv_f32(&mut self, data: &[f32]) -> Result<(Vec<f32>, Vec<usize>), SimError> {
        if self.size() == 1 {
            let bytes = std::mem::size_of_val(data);
            self.traffic.record(Collective::AllGatherV, bytes, bytes);
            return Ok((data.to_vec(), vec![data.len()]));
        }
        {
            let mut slot = self.world.f32_slots[self.rank].lock();
            slot.clear();
            slot.extend_from_slice(data);
        }
        // Clock sync needs per-rank byte counts, which requires the data
        // deposits to be visible, so deposit the clock alongside the data
        // and align after the barrier.
        *self.world.clock_slots[self.rank].lock() = self.clock.now_s();
        self.world.barrier.wait();
        let mut counts = Vec::with_capacity(self.size());
        let mut total = 0usize;
        for r in 0..self.size() {
            let n = self.world.f32_slots[r].lock().len();
            counts.push(n);
            total += n;
        }
        let per_rank_bytes: Vec<usize> = counts.iter().map(|&n| n * 4).collect();
        self.align_and_charge(Collective::AllGatherV, &per_rank_bytes);
        if let Err(e) = self.apply_faults(Collective::AllGatherV, "allgatherv_f32") {
            self.world.barrier.wait();
            return Err(e);
        }
        let mut out = Vec::with_capacity(total);
        for r in 0..self.size() {
            out.extend_from_slice(&self.world.f32_slots[r].lock());
        }
        self.traffic
            .record(Collective::AllGatherV, data.len() * 4, total * 4);
        // Each rank ships its own payload to p−1 peers and takes delivery
        // of everyone else's.
        self.traffic.record_wire(
            Collective::AllGatherV,
            data.len() * 4 * (self.size() - 1),
            (total - data.len()) * 4,
        );
        self.world.barrier.wait(); // everyone done reading
        Ok((out, counts))
    }

    /// Variable-size all-gather of opaque byte payloads (used for
    /// quantized / bit-packed gradients). Returns per-rank payloads.
    ///
    /// Convenience wrapper over [`Communicator::allgatherv_bytes_into`];
    /// hot paths should prefer the `_into` variant with a reused buffer,
    /// which copies each peer's payload exactly once.
    pub fn allgatherv_bytes(&mut self, data: &[u8]) -> Result<Vec<Vec<u8>>, SimError> {
        let mut recv = Vec::new();
        let mut counts = Vec::new();
        self.allgatherv_bytes_into(data, &mut recv, &mut counts)?;
        let mut out = Vec::with_capacity(counts.len());
        let mut off = 0usize;
        for n in counts {
            out.push(recv[off..off + n].to_vec());
            off += n;
        }
        Ok(out)
    }

    /// Variable-size all-gather of opaque byte payloads into caller-owned
    /// buffers: `recv` is cleared and filled with every rank's payload
    /// concatenated in rank order (one copy per peer, straight out of the
    /// staging slot — no intermediate per-rank allocation), and `counts`
    /// with the per-rank byte counts; rank `r`'s payload is
    /// `recv[offsets[r]..offsets[r] + counts[r]]`. Both buffers keep their
    /// capacity across calls, so the steady state allocates nothing.
    pub fn allgatherv_bytes_into(
        &mut self,
        data: &[u8],
        recv: &mut Vec<u8>,
        counts: &mut Vec<usize>,
    ) -> Result<(), SimError> {
        self.allgatherv_bytes_into_inner(data, recv, counts, None)
            .map(|_| ())
    }

    /// [`Communicator::allgatherv_bytes_into`] priced as a *pipelined*
    /// collective launched at simulated time `anchor_s`: the shared window
    /// `max(arrival) − max(anchor)` hides up to that much of the α-β price
    /// (see [`OverlapStats`]). Payload movement and determinism are
    /// identical to the synchronous call — only the timing split differs.
    pub fn allgatherv_bytes_overlapped_into(
        &mut self,
        data: &[u8],
        recv: &mut Vec<u8>,
        counts: &mut Vec<usize>,
        anchor_s: f64,
    ) -> Result<OverlapStats, SimError> {
        self.allgatherv_bytes_into_inner(data, recv, counts, Some(anchor_s))
    }

    fn allgatherv_bytes_into_inner(
        &mut self,
        data: &[u8],
        recv: &mut Vec<u8>,
        counts: &mut Vec<usize>,
        anchor: Option<f64>,
    ) -> Result<OverlapStats, SimError> {
        recv.clear();
        counts.clear();
        if self.size() == 1 {
            self.traffic
                .record(Collective::AllGatherV, data.len(), data.len());
            recv.extend_from_slice(data);
            counts.push(data.len());
            return Ok(OverlapStats::default());
        }
        {
            let mut slot = self.world.byte_slots[self.rank].lock();
            slot.clear();
            slot.extend_from_slice(data);
        }
        if let Some(a) = anchor {
            *self.world.anchor_slots[self.rank].lock() = a;
        }
        *self.world.clock_slots[self.rank].lock() = self.clock.now_s();
        self.world.barrier.wait();
        for r in 0..self.size() {
            counts.push(self.world.byte_slots[r].lock().len());
        }
        let stats = self.align_and_charge_inner(Collective::AllGatherV, counts, anchor.is_some());
        if let Err(e) = self.apply_faults(Collective::AllGatherV, "allgatherv_bytes") {
            self.world.barrier.wait();
            return Err(e);
        }
        let total: usize = counts.iter().sum();
        recv.reserve(total);
        for r in 0..self.size() {
            recv.extend_from_slice(&self.world.byte_slots[r].lock());
        }
        self.traffic.record(Collective::AllGatherV, data.len(), total);
        self.traffic.record_wire(
            Collective::AllGatherV,
            data.len() * (self.size() - 1),
            total - data.len(),
        );
        self.world.barrier.wait();
        Ok(stats)
    }

    /// Broadcast `buf` from `root` to every rank.
    pub fn broadcast_f32(&mut self, root: usize, buf: &mut [f32]) -> Result<(), SimError> {
        if root >= self.size() {
            return Err(SimError::InvalidRank {
                rank: root,
                size: self.size(),
            });
        }
        let bytes = std::mem::size_of_val(buf);
        if self.size() == 1 {
            self.traffic.record(Collective::Broadcast, bytes, bytes);
            return Ok(());
        }
        if self.rank == root {
            let mut slot = self.world.f32_slots[root].lock();
            slot.clear();
            slot.extend_from_slice(buf);
        }
        self.sync_clocks_uniform(Collective::Broadcast, bytes);
        if let Err(e) = self.apply_faults(Collective::Broadcast, "broadcast_f32") {
            self.world.barrier.wait();
            return Err(e);
        }
        if self.rank != root {
            let slot = self.world.f32_slots[root].lock();
            if slot.len() != buf.len() {
                // Align protocol before erroring so peers don't deadlock.
                self.world.barrier.wait();
                return Err(SimError::ShapeMismatch {
                    op: "broadcast_f32",
                    expected: buf.len(),
                    got: slot.len(),
                    rank: root,
                });
            }
            buf.copy_from_slice(&slot);
        }
        self.traffic.record(
            Collective::Broadcast,
            if self.rank == root { bytes } else { 0 },
            bytes,
        );
        // Root ships one copy per receiver; receivers take delivery once.
        if self.rank == root {
            self.traffic
                .record_wire(Collective::Broadcast, bytes * (self.size() - 1), 0);
        } else {
            self.traffic.record_wire(Collective::Broadcast, 0, bytes);
        }
        self.world.barrier.wait();
        Ok(())
    }

    /// Reduce-scatter: element-wise sum across ranks, with rank `i`
    /// keeping only the `i`-th of `p` contiguous chunks (the first phase
    /// of a ring all-reduce, exposed for algorithms that only need their
    /// own shard — e.g. sharded optimizers). Returns this rank's chunk.
    pub fn reduce_scatter_f32(&mut self, buf: &[f32]) -> Result<Vec<f32>, SimError> {
        let p = self.size();
        let n = buf.len();
        let chunk = |r: usize| -> std::ops::Range<usize> { r * n / p..(r + 1) * n / p };
        if p == 1 {
            self.traffic.record(Collective::AllReduce, n * 4, n * 4);
            return Ok(buf.to_vec());
        }
        {
            let mut slot = self.world.f32_slots[self.rank].lock();
            slot.clear();
            slot.extend_from_slice(buf);
        }
        // Priced as half a ring all-reduce: (p−1) steps moving m/p each.
        let bytes = n * 4;
        *self.world.clock_slots[self.rank].lock() = self.clock.now_s();
        self.world.barrier.wait();
        {
            let mut t_max = f64::NEG_INFINITY;
            for r in 0..p {
                t_max = t_max.max(*self.world.clock_slots[r].lock());
            }
            self.clock.charge_idle_until(t_max);
            let price = self.cost.allreduce(p, bytes) / 2.0;
            let plan = Arc::clone(&self.world.plan);
            if plan.is_inert() {
                self.clock.charge_comm_seconds(price);
            } else {
                let (lat_mult, bw_div) = plan.link_factors(self.clock.now_s());
                let degraded = if lat_mult > 1.0 || bw_div > 1.0 {
                    self.cost.degraded(lat_mult, bw_div).allreduce(p, bytes) / 2.0
                } else {
                    price
                };
                self.clock.charge_comm_seconds(price);
                if degraded > price {
                    self.clock.charge_fault_seconds(degraded - price);
                }
            }
        }
        if let Err(e) = self.apply_faults(Collective::AllReduce, "reduce_scatter_f32") {
            self.world.barrier.wait();
            return Err(e);
        }
        let my = chunk(self.rank);
        let mut out = vec![0.0f32; my.len()];
        let mut shape_err = None;
        for r in 0..p {
            let slot = self.world.f32_slots[r].lock();
            if slot.len() != n {
                shape_err = Some(SimError::ShapeMismatch {
                    op: "reduce_scatter_f32",
                    expected: n,
                    got: slot.len(),
                    rank: r,
                });
                break;
            }
            for (o, &v) in out.iter_mut().zip(slot[my.clone()].iter()) {
                *o += v;
            }
        }
        self.traffic.record(Collective::AllReduce, bytes, out.len() * 4);
        // Reduce-scatter wire traffic: ship everything but the chunk this
        // rank keeps; take delivery of p−1 copies of the kept chunk.
        self.traffic.record_wire(
            Collective::AllReduce,
            bytes - out.len() * 4,
            (p - 1) * out.len() * 4,
        );
        self.world.barrier.wait();
        match shape_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Gather variable-size contributions to `root` (other ranks get an
    /// empty vec). Binomial-tree priced.
    pub fn gatherv_to_root(
        &mut self,
        root: usize,
        data: &[f32],
    ) -> Result<Vec<Vec<f32>>, SimError> {
        if root >= self.size() {
            return Err(SimError::InvalidRank {
                rank: root,
                size: self.size(),
            });
        }
        if self.size() == 1 {
            self.traffic
                .record(Collective::Gather, data.len() * 4, data.len() * 4);
            return Ok(vec![data.to_vec()]);
        }
        {
            let mut slot = self.world.f32_slots[self.rank].lock();
            slot.clear();
            slot.extend_from_slice(data);
        }
        *self.world.clock_slots[self.rank].lock() = self.clock.now_s();
        self.world.barrier.wait();
        let per_rank: Vec<usize> = (0..self.size())
            .map(|r| self.world.f32_slots[r].lock().len() * 4)
            .collect();
        self.align_and_charge(Collective::Gather, &per_rank);
        if let Err(e) = self.apply_faults(Collective::Gather, "gatherv_to_root") {
            self.world.barrier.wait();
            return Err(e);
        }
        let out = if self.rank == root {
            let mut all = Vec::with_capacity(self.size());
            let mut total = 0usize;
            for r in 0..self.size() {
                let payload = self.world.f32_slots[r].lock().clone();
                total += payload.len() * 4;
                all.push(payload);
            }
            self.traffic.record(Collective::Gather, data.len() * 4, total);
            // Root's own contribution never crosses the wire.
            self.traffic
                .record_wire(Collective::Gather, 0, total - data.len() * 4);
            all
        } else {
            self.traffic.record(Collective::Gather, data.len() * 4, 0);
            self.traffic.record_wire(Collective::Gather, data.len() * 4, 0);
            Vec::new()
        };
        self.world.barrier.wait();
        Ok(out)
    }

    /// Scalar sum all-reduce (f64).
    pub fn allreduce_sum_f64(&mut self, v: f64) -> f64 {
        self.scalar_reduce(v, |a, b| a + b)
    }

    /// Scalar max all-reduce (f64).
    pub fn allreduce_max_f64(&mut self, v: f64) -> f64 {
        self.scalar_reduce(v, f64::max)
    }

    /// Scalar min all-reduce (f64).
    pub fn allreduce_min_f64(&mut self, v: f64) -> f64 {
        self.scalar_reduce(v, f64::min)
    }

    /// Logical AND across ranks (encoded through a min-reduce).
    pub fn allreduce_and(&mut self, v: bool) -> bool {
        self.allreduce_min_f64(if v { 1.0 } else { 0.0 }) > 0.5
    }

    fn scalar_reduce(&mut self, v: f64, f: impl Fn(f64, f64) -> f64) -> f64 {
        if self.size() == 1 {
            self.traffic.record(Collective::AllReduce, 8, 8);
            return v;
        }
        *self.world.f64_slots[self.rank].lock() = v;
        self.sync_clocks_uniform(Collective::AllReduce, 8);
        let mut acc = *self.world.f64_slots[0].lock();
        for r in 1..self.size() {
            acc = f(acc, *self.world.f64_slots[r].lock());
        }
        self.traffic.record(Collective::AllReduce, 8, 8);
        let wire = 8 * (self.size() - 1);
        self.traffic.record_wire(Collective::AllReduce, wire, wire);
        self.world.barrier.wait();
        acc
    }

    /// Send `payload` to `dst`. The sender's clock advances by the
    /// injection overhead α; the message arrives (for the receiver's
    /// simulated clock) a full `α + bytes·β` after the send started.
    ///
    /// Under an active fault plan, transmission attempts may be lost:
    /// each loss charges timeout + backoff to `retry_s`, and exhausting
    /// the retry budget fails with [`SimError::Timeout`] (nothing is
    /// delivered). Link degradation inflates the effective α/β — the
    /// latency surplus is charged to the sender's `fault_s`, the
    /// bandwidth surplus shows up as a later arrival at the receiver.
    pub fn send_bytes(&mut self, dst: usize, payload: &[u8]) -> Result<(), SimError> {
        self.send_bytes_as(dst, payload, Collective::PointToPoint)
    }

    /// [`Communicator::send_bytes`] accounted under a specific p2p traffic
    /// bucket ([`Collective::PointToPoint`], [`Collective::ShardPull`] or
    /// [`Collective::ShardPush`]). Timing, fault handling and delivery are
    /// identical for every bucket; only the [`TrafficStats`] attribution
    /// differs, so sharded-store pull/push volume is reported apart from
    /// generic point-to-point messages.
    ///
    /// [`TrafficStats`]: crate::TrafficStats
    pub fn send_bytes_as(
        &mut self,
        dst: usize,
        payload: &[u8],
        op: Collective,
    ) -> Result<(), SimError> {
        if dst >= self.size() {
            return Err(SimError::InvalidRank {
                rank: dst,
                size: self.size(),
            });
        }
        let bytes = payload.len();
        let plan = Arc::clone(&self.world.plan);
        if plan.is_inert() {
            let alpha = self.cost.spec().latency_s;
            let t_send = self.clock.now_s();
            let arrival = t_send + self.cost.spec().p2p_time(bytes);
            self.clock.charge_comm_seconds(alpha);
            self.traffic.record(op, bytes, 0);
            self.traffic.record_wire(op, bytes, 0);
            self.world.post.deposit(
                dst,
                Message {
                    src: self.rank,
                    payload: payload.to_vec(),
                    arrival_s: arrival,
                },
            );
            return Ok(());
        }
        let dst_orig = self.world.orig_ranks[dst];
        let seq = self.p2p_seq[dst_orig];
        self.p2p_seq[dst_orig] += 1;
        let fails = plan.p2p_failed_attempts(self.orig, dst_orig, seq);
        if fails > 0 {
            let mut waited = 0.0;
            for i in 0..fails {
                waited += plan.retry.retry_cost_s(i);
            }
            self.clock.charge_retry_seconds(waited);
            self.traffic.record_retries(op, fails as u64);
            if fails > plan.retry.max_retries {
                return Err(SimError::Timeout {
                    op: "send_bytes",
                    rank: self.rank,
                    waited_s: waited,
                });
            }
        }
        let healthy_alpha = self.cost.spec().latency_s;
        let (lat_mult, bw_div) = plan.link_factors(self.clock.now_s());
        let eff_spec = if lat_mult > 1.0 || bw_div > 1.0 {
            self.cost.spec().degraded(lat_mult, bw_div)
        } else {
            self.cost.spec().clone()
        };
        let t_send = self.clock.now_s();
        let arrival = t_send + eff_spec.p2p_time(bytes);
        self.clock.charge_comm_seconds(healthy_alpha);
        if eff_spec.latency_s > healthy_alpha {
            self.clock
                .charge_fault_seconds(eff_spec.latency_s - healthy_alpha);
        }
        self.traffic.record(op, bytes, 0);
        self.traffic.record_wire(op, bytes, 0);
        self.world.post.deposit(
            dst,
            Message {
                src: self.rank,
                payload: payload.to_vec(),
                arrival_s: arrival,
            },
        );
        Ok(())
    }

    /// Receive the next message from `src`, blocking until it exists and
    /// idling the simulated clock until its arrival time, then charging
    /// the LogGP-style receive occupancy `bytes·β` — draining bytes off
    /// the link is work the receiving NIC/node must serialize, which is
    /// precisely what turns a many-to-one pattern (e.g. a parameter
    /// server's ingress) into a bottleneck. Draining peers in a fixed
    /// rank order keeps programs deterministic.
    pub fn recv_bytes_from(&mut self, src: usize) -> Result<Message, SimError> {
        self.recv_bytes_from_as(src, Collective::PointToPoint)
    }

    /// [`Communicator::recv_bytes_from`] accounted under a specific p2p
    /// traffic bucket; see [`Communicator::send_bytes_as`].
    pub fn recv_bytes_from_as(&mut self, src: usize, op: Collective) -> Result<Message, SimError> {
        if src >= self.size() {
            return Err(SimError::InvalidRank {
                rank: src,
                size: self.size(),
            });
        }
        let msg = self.world.post.take_from(self.rank, src);
        self.charge_receive(&msg, op);
        Ok(msg)
    }

    fn charge_receive(&mut self, msg: &Message, op: Collective) {
        self.clock.charge_idle_until(msg.arrival_s);
        let occupancy = msg.payload.len() as f64 / self.cost.spec().bandwidth_bps;
        self.clock.charge_comm_seconds(occupancy);
        self.traffic.record(op, 0, msg.payload.len());
        self.traffic.record_wire(op, 0, msg.payload.len());
    }

    /// Overlap lane for a p2p traffic bucket: the sharded pull and push
    /// streams hide seconds independently (they model full-duplex
    /// directions of the link), everything else shares one lane.
    fn p2p_lane(op: Collective) -> usize {
        match op {
            Collective::ShardPull => 0,
            Collective::ShardPush => 1,
            _ => 2,
        }
    }

    /// Take the next message from `src` and record its traffic, **without
    /// charging the simulated clock**. The caller owes a later
    /// [`Communicator::charge_p2p_deferred`] for `(msg.arrival_s,
    /// msg.payload.len())` — splitting take from settle lets a prefetch
    /// pipeline drain its mailbox in FIFO order at one point in the
    /// protocol while pricing the receive against a compute window that
    /// closes later.
    pub fn recv_bytes_from_as_unpriced(
        &mut self,
        src: usize,
        op: Collective,
    ) -> Result<Message, SimError> {
        if src >= self.size() {
            return Err(SimError::InvalidRank {
                rank: src,
                size: self.size(),
            });
        }
        let msg = self.world.post.take_from(self.rank, src);
        self.traffic.record(op, 0, msg.payload.len());
        self.traffic.record_wire(op, 0, msg.payload.len());
        Ok(msg)
    }

    /// Settle one deferred p2p receive against the compute window open
    /// since `anchor_s` (the launch time recorded when the transfer was
    /// requested). The clock first idles to `arrival_s` exactly as the
    /// synchronous receive would — data that has not arrived cannot be
    /// hidden — then the receive occupancy `bytes·β` is split against the
    /// lane's remaining window: up to `now − max(anchor, cursor)` seconds
    /// hide in `hidden_comm_s`, the rest is charged to `comm_s`. The lane
    /// cursor advances by the hidden amount so consecutive settles against
    /// one window cannot double-hide. With a zero-width window (anchor ==
    /// now) the charges are bit-identical to [`recv_bytes_from_as`].
    ///
    /// [`recv_bytes_from_as`]: Communicator::recv_bytes_from_as
    pub fn charge_p2p_deferred(
        &mut self,
        op: Collective,
        arrival_s: f64,
        bytes: usize,
        anchor_s: f64,
    ) -> OverlapStats {
        // The window closes when settlement starts: idling for a late
        // arrival is not compute and must not widen it (bytes cannot be
        // drained before they exist on the link).
        let lane = Self::p2p_lane(op);
        let eff_anchor = anchor_s.max(self.p2p_cursors[lane]);
        let window = (self.clock.now_s() - eff_anchor).max(0.0);
        self.clock.charge_idle_until(arrival_s);
        let occupancy = bytes as f64 / self.cost.spec().bandwidth_bps;
        let hidden = occupancy.min(window);
        let visible = occupancy - hidden;
        self.clock.charge_hidden_comm_seconds(hidden);
        self.clock.record_overlap_window_seconds(window);
        self.clock.charge_comm_seconds(visible);
        self.p2p_cursors[lane] = eff_anchor + hidden;
        OverlapStats {
            hidden_s: hidden,
            visible_s: visible,
            window_s: window,
        }
    }

    /// Receive from `src` and immediately settle against the window open
    /// since `anchor_s`: [`Communicator::recv_bytes_from_as_unpriced`]
    /// followed by [`Communicator::charge_p2p_deferred`].
    pub fn recv_bytes_from_as_overlapped(
        &mut self,
        src: usize,
        op: Collective,
        anchor_s: f64,
    ) -> Result<(Message, OverlapStats), SimError> {
        let msg = self.recv_bytes_from_as_unpriced(src, op)?;
        let stats = self.charge_p2p_deferred(op, msg.arrival_s, msg.payload.len(), anchor_s);
        Ok((msg, stats))
    }

    /// Non-blocking receive of any pending message (lowest source rank
    /// first). **Scheduling-dependent**: whether a peer's message is
    /// visible yet depends on host thread timing; use only in protocols
    /// that tolerate reordering across sources.
    pub fn try_recv_bytes_any(&mut self) -> Result<Option<Message>, SimError> {
        match self.world.post.try_take_any(self.rank) {
            Some(msg) => {
                self.charge_receive(&msg, Collective::PointToPoint);
                Ok(Some(msg))
            }
            None => Ok(None),
        }
    }

    /// [`Communicator::sync_clocks`] for collectives where every rank moves
    /// the same `bytes`, using the communicator's reused count scratch
    /// instead of building a fresh `vec![bytes; size]` per call.
    fn sync_clocks_uniform(&mut self, op: Collective, bytes: usize) {
        self.sync_clocks_uniform_inner(op, bytes, None);
    }

    fn sync_clocks_uniform_inner(
        &mut self,
        op: Collective,
        bytes: usize,
        anchor: Option<f64>,
    ) -> OverlapStats {
        let size = self.size();
        let mut scratch = std::mem::take(&mut self.bytes_scratch);
        scratch.clear();
        scratch.resize(size, bytes);
        let stats = self.sync_clocks_inner(op, &scratch, anchor);
        self.bytes_scratch = scratch;
        stats
    }

    /// Deposit clock, barrier, align to latest arrival, charge the cost of
    /// `op` moving `per_rank_bytes`.
    fn sync_clocks(&mut self, op: Collective, per_rank_bytes: &[usize]) {
        self.sync_clocks_inner(op, per_rank_bytes, None);
    }

    /// [`Communicator::sync_clocks`], optionally depositing an overlap
    /// anchor (launch time) alongside the arrival clock.
    fn sync_clocks_inner(
        &mut self,
        op: Collective,
        per_rank_bytes: &[usize],
        anchor: Option<f64>,
    ) -> OverlapStats {
        if let Some(a) = anchor {
            *self.world.anchor_slots[self.rank].lock() = a;
        }
        *self.world.clock_slots[self.rank].lock() = self.clock.now_s();
        self.world.barrier.wait();
        self.align_and_charge_inner(op, per_rank_bytes, anchor.is_some())
    }

    /// Assumes clock deposits are already visible (a barrier has been
    /// crossed since every rank wrote its slot).
    fn align_and_charge(&mut self, op: Collective, per_rank_bytes: &[usize]) {
        self.align_and_charge_inner(op, per_rank_bytes, false);
    }

    /// Core clock alignment + pricing. With `overlapped == false` this is
    /// bit-identical to the historical synchronous behaviour (the whole
    /// price lands in `comm_s`). With `overlapped == true`, every rank has
    /// also deposited a launch anchor; the shared window
    /// `max(arrival) − max(anchor)` hides up to `window` seconds of the
    /// price (bookkept in `hidden_comm_s`), and only the remainder
    /// advances the clock. Window and price are computed from shared
    /// deposits, so all ranks leave at the same simulated time — the
    /// invariant every synchronous collective relies on.
    fn align_and_charge_inner(
        &mut self,
        op: Collective,
        per_rank_bytes: &[usize],
        overlapped: bool,
    ) -> OverlapStats {
        let mut t_max = f64::NEG_INFINITY;
        for r in 0..self.size() {
            t_max = t_max.max(*self.world.clock_slots[r].lock());
        }
        let window = if overlapped {
            let mut anchor_max = f64::NEG_INFINITY;
            for r in 0..self.size() {
                anchor_max = anchor_max.max(*self.world.anchor_slots[r].lock());
            }
            // Each rank's arrival is at or past its own anchor, so the
            // window is non-negative; the guard is belt-and-braces.
            (t_max - anchor_max).max(0.0)
        } else {
            0.0
        };
        self.clock.charge_idle_until(t_max);
        let price = self.cost.price(op, per_rank_bytes);
        let hidden = price.min(window);
        let visible = price - hidden;
        if overlapped {
            self.clock.charge_hidden_comm_seconds(hidden);
            self.clock.record_overlap_window_seconds(window);
        }
        let stats = OverlapStats {
            hidden_s: hidden,
            visible_s: visible,
            window_s: window,
        };
        let plan = Arc::clone(&self.world.plan);
        if plan.is_inert() {
            self.clock.charge_comm_seconds(visible);
            return stats;
        }
        // Clocks are aligned (everyone sits at t_max), so the link factors
        // — and therefore the surcharge — are identical on every rank.
        let (lat_mult, bw_div) = plan.link_factors(self.clock.now_s());
        if lat_mult > 1.0 || bw_div > 1.0 {
            let degraded = self.cost.degraded(lat_mult, bw_div).price(op, per_rank_bytes);
            self.clock.charge_comm_seconds(visible);
            // The degradation surplus is never hidden: the overlap budget
            // was sized for the healthy price.
            if degraded > price {
                self.clock.charge_fault_seconds(degraded - price);
            }
        } else {
            self.clock.charge_comm_seconds(visible);
        }
        stats
    }

    /// Fault hooks shared by the data collectives, run right after clock
    /// alignment while every rank's deposited arrival time is still
    /// visible in `clock_slots`. Two checks, both **symmetric** — every
    /// rank computes the same outcome from shared state, so error paths
    /// stay collectively well-formed:
    ///
    /// 1. **Crash detection**: if any participant's deposited clock has
    ///    passed its scheduled crash time, the failure-detection timeout
    ///    is charged to `fault_s`, the crashed ranks are queued for
    ///    [`Communicator::shrink`], and the collective fails with
    ///    [`SimError::RankCrashed`].
    /// 2. **Induced collective faults**: the `coll_seq`-th collective may
    ///    lose attempts per the plan's drop stream; timeout + backoff is
    ///    charged to `retry_s` and counted in the traffic stats.
    ///    Exhausting the retry budget yields [`SimError::Timeout`].
    ///
    /// On `Err` the caller crosses one barrier before returning, so the
    /// staging slots stay protected (all ranks take the same path).
    ///
    /// `barrier` and the scalar reductions do not return `Result` and are
    /// deliberately outside the fault surface: faults are only ever
    /// raised where the caller can observe them.
    fn apply_faults(&mut self, op: Collective, opname: &'static str) -> Result<(), SimError> {
        let plan = Arc::clone(&self.world.plan);
        if plan.is_inert() {
            return Ok(());
        }
        let seq = self.coll_seq;
        self.coll_seq += 1;

        // Crash detection first: a dead rank cannot retry its way back.
        // `is_down` (not `crash_time`) bounds the detection window, so a
        // rank that recovered and rejoined is not re-detected by its old
        // crash entry; with no recoveries scheduled the two are identical.
        let mut crashed: Vec<usize> = Vec::new();
        for r in 0..self.size() {
            let arrival = *self.world.clock_slots[r].lock();
            if plan.is_down(self.world.orig_ranks[r], arrival) {
                crashed.push(r);
            }
        }
        if !crashed.is_empty() {
            self.clock.charge_fault_seconds(plan.retry.timeout_s);
            let first = self.world.orig_ranks[crashed[0]];
            let mut failed = self.world.failed.lock();
            for r in crashed {
                if !failed.contains(&r) {
                    failed.push(r);
                }
            }
            failed.sort_unstable();
            return Err(SimError::RankCrashed { rank: first });
        }

        let fails = plan.collective_failed_attempts(seq);
        if fails > 0 {
            let mut waited = 0.0;
            for i in 0..fails {
                waited += plan.retry.retry_cost_s(i);
            }
            self.clock.charge_retry_seconds(waited);
            self.traffic.record_retries(op, fails as u64);
            if fails > plan.retry.max_retries {
                return Err(SimError::Timeout {
                    op: opname,
                    rank: self.rank,
                    waited_s: waited,
                });
            }
        }
        Ok(())
    }

    /// Remove crashed ranks from the communicator. Collective over the
    /// *old* world: after a [`SimError::RankCrashed`] error, every rank —
    /// including the crashed ones, whose host threads are still running —
    /// must call `shrink`. Returns `Ok(true)` for survivors, whose
    /// communicator afterwards addresses the shrunken world (with a new,
    /// dense rank id; see [`Communicator::orig_rank`]), and `Ok(false)`
    /// for crashed ranks, which must stop using the communicator. Clock
    /// and traffic accounts carry over; undelivered p2p messages to or
    /// from crashed ranks are dropped with the old world.
    pub fn shrink(&mut self) -> Result<bool, SimError> {
        let failed: Vec<usize> = self.world.failed.lock().clone();
        if failed.is_empty() {
            return Ok(true);
        }
        let survivors: Vec<usize> = (0..self.size()).filter(|r| !failed.contains(r)).collect();
        assert!(!survivors.is_empty(), "every rank of the communicator crashed");
        let i_survive = !failed.contains(&self.rank);
        if i_survive && self.rank == survivors[0] {
            let orig: Vec<usize> = survivors.iter().map(|&r| self.world.orig_ranks[r]).collect();
            let new_world = CommWorld::with_lobby(
                survivors.len(),
                Arc::clone(&self.world.plan),
                orig,
                Arc::clone(&self.world.lobby),
            );
            *self.world.next_world.lock() = Some(new_world);
        }
        self.world.barrier.wait(); // staged world visible to all survivors
        if !i_survive {
            return Ok(false);
        }
        let new_world = self
            .world
            .next_world
            .lock()
            .clone()
            .expect("lowest survivor stages the new world");
        self.rank = survivors
            .iter()
            .position(|&r| r == self.rank)
            .expect("survivor present in survivor list");
        self.world = new_world;
        Ok(true)
    }

    /// Re-admit crashed ranks whose scheduled recovery time has passed.
    /// Collective over the current (survivor) world — every rank must call
    /// it at the same program point, typically an epoch boundary. Returns
    /// the original ids of the ranks that rejoined (empty when none were
    /// due). Afterwards the communicator addresses the grown world and
    /// `rank()` may have changed (ranks are dense in original-id order).
    ///
    /// The decision is a pure function of the fault plan, the aligned
    /// simulated clock, and the set of already-consumed recoveries, so all
    /// survivors agree without exchanging data. Each rejoining rank must
    /// be parked in [`Communicator::await_rejoin`]; the post-grow barrier
    /// blocks until it has adopted its assignment, and pulls its stale
    /// clock forward to the survivors' aligned time.
    ///
    /// With no recoveries in the plan this is free: no barrier, no clock
    /// movement, no state change.
    pub fn try_grow(&mut self) -> Vec<usize> {
        let plan = Arc::clone(&self.world.plan);
        if !plan.has_recoveries() {
            return Vec::new();
        }
        // Align clocks so every survivor evaluates recovery deadlines
        // against the same simulated instant.
        self.barrier();
        let now = self.clock.now_s();
        // Snapshot the consumed-recovery set. The barrier *after* the read
        // fences it against the leader's mutation below: without it, a
        // fast leader could push this round's candidates into `rejoined`
        // before a slow survivor reads the set, and that survivor would
        // compute an empty candidate list and desert the staging barrier.
        let rejoined: Vec<usize> = self.world.lobby.state.lock().rejoined.clone();
        self.world.barrier.wait(); // every survivor has snapshotted
        let mut candidates: Vec<usize> = plan
            .crashes
            .iter()
            .filter(|c| c.recover_at_s.is_some_and(|t| t <= now))
            .map(|c| c.rank)
            .filter(|r| !rejoined.contains(r) && !self.world.orig_ranks.contains(r))
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        // Identical inputs on every survivor, so this return is symmetric.
        if candidates.is_empty() {
            return candidates;
        }
        let mut new_orig = self.world.orig_ranks.clone();
        new_orig.extend_from_slice(&candidates);
        new_orig.sort_unstable();
        let my_rank = new_orig
            .iter()
            .position(|&r| r == self.orig)
            .expect("survivor keeps its original id");
        if self.rank == 0 {
            let world = CommWorld::with_lobby(
                new_orig.len(),
                Arc::clone(&plan),
                new_orig.clone(),
                Arc::clone(&self.world.lobby),
            );
            {
                let mut st = self.world.lobby.state.lock();
                for &c in &candidates {
                    let r = new_orig
                        .iter()
                        .position(|&x| x == c)
                        .expect("candidate present in grown world");
                    st.assignments.insert(c, (Arc::clone(&world), r, my_rank));
                    st.rejoined.push(c);
                }
            }
            self.world.lobby.cv.notify_all();
            *self.world.next_world.lock() = Some(world);
        }
        self.world.barrier.wait(); // staged world visible to all survivors
        let world = self
            .world
            .next_world
            .lock()
            .clone()
            .expect("leader stages the grown world");
        self.rank = my_rank;
        self.world = world;
        // First collective of the grown world; the rejoiners' counterpart
        // lives in `await_rejoin`, and the alignment inside pulls their
        // stale clocks up to the survivors'.
        self.barrier();
        candidates
    }

    /// Park a crashed rank until the survivors re-admit it via
    /// [`Communicator::try_grow`] or the run ends. Call only after
    /// [`Communicator::shrink`] returned `Ok(false)` and the fault plan
    /// schedules a recovery for this rank. Returns `Some(leader)` when the
    /// rank rejoined — the communicator now addresses the grown world, and
    /// `leader` is the rank of the grow leader, the survivor to ask for
    /// current replica state — and `None` when the lobby closed first: the
    /// run finished without it.
    pub fn await_rejoin(&mut self) -> Option<usize> {
        let lobby = Arc::clone(&self.world.lobby);
        let mut st = lobby.state.lock();
        loop {
            if let Some((world, rank, leader)) = st.assignments.remove(&self.orig) {
                drop(st);
                self.world = world;
                self.rank = rank;
                // Counterpart of the survivors' post-grow barrier.
                self.barrier();
                return Some(leader);
            }
            if st.closed {
                return None;
            }
            lobby.cv.wait(&mut st);
        }
    }

    /// Close the rejoin lobby: ranks parked in
    /// [`Communicator::await_rejoin`] wake up and return `false`.
    /// Idempotent; every survivor calls it once its program is done, so a
    /// scheduled recovery the run never reached cannot leave a parked
    /// thread hanging.
    pub fn close_lobby(&self) {
        let mut st = self.world.lobby.state.lock();
        st.closed = true;
        st.assignments.clear();
        self.world.lobby.cv.notify_all();
    }

    /// Original ids of every rank in the current world, in rank order.
    #[inline]
    pub fn orig_ranks(&self) -> &[usize] {
        &self.world.orig_ranks
    }

    /// Number of fault-checked collectives so far (the cursor into the
    /// plan's induced-fault stream). Checkpointed so a resumed run replays
    /// the same fault decisions.
    #[inline]
    pub fn coll_seq(&self) -> u64 {
        self.coll_seq
    }

    /// Per-destination p2p send counters (indexed by original rank), the
    /// cursor into the plan's p2p drop streams.
    #[inline]
    pub fn p2p_seq(&self) -> &[u64] {
        &self.p2p_seq
    }

    /// Restore the fault-stream cursors captured by a checkpoint. Slices
    /// shorter than the current world's counter vector leave the tail
    /// untouched; longer ones are truncated.
    pub fn restore_sequences(&mut self, coll_seq: u64, p2p_seq: &[u64]) {
        self.coll_seq = coll_seq;
        let n = self.p2p_seq.len().min(p2p_seq.len());
        self.p2p_seq[..n].copy_from_slice(&p2p_seq[..n]);
    }

    /// Mutable traffic counters, for restoring checkpointed totals.
    #[inline]
    pub fn traffic_mut(&mut self) -> &mut TrafficStats {
        &mut self.traffic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Cluster;

    #[test]
    fn allreduce_sums_across_ranks() {
        let cluster = Cluster::new(4, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            let mut v = vec![(ctx.rank() + 1) as f32; 16];
            ctx.comm_mut().allreduce_sum_f32(&mut v).unwrap();
            v
        });
        for v in out {
            assert!(v.iter().all(|&x| x == 10.0));
        }
    }

    #[test]
    fn allreduce_single_rank_is_identity() {
        let cluster = Cluster::new(1, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            let mut v = vec![3.5f32, -1.0];
            ctx.comm_mut().allreduce_sum_f32(&mut v).unwrap();
            v
        });
        assert_eq!(out[0], vec![3.5, -1.0]);
    }

    #[test]
    fn allgatherv_concatenates_in_rank_order() {
        let cluster = Cluster::new(3, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            let rank = ctx.rank();
            let data: Vec<f32> = (0..=rank).map(|i| (rank * 10 + i) as f32).collect();
            ctx.comm_mut().allgatherv_f32(&data).unwrap()
        });
        for (concat, counts) in out {
            assert_eq!(counts, vec![1, 2, 3]);
            assert_eq!(concat, vec![0.0, 10.0, 11.0, 20.0, 21.0, 22.0]);
        }
    }

    #[test]
    fn allgatherv_bytes_roundtrip() {
        let cluster = Cluster::new(4, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            let payload = vec![ctx.rank() as u8; ctx.rank() + 1];
            ctx.comm_mut().allgatherv_bytes(&payload).unwrap()
        });
        for per_rank in out {
            assert_eq!(per_rank.len(), 4);
            for (r, payload) in per_rank.iter().enumerate() {
                assert_eq!(payload, &vec![r as u8; r + 1]);
            }
        }
    }

    #[test]
    fn allgatherv_bytes_into_matches_per_rank_api() {
        let cluster = Cluster::new(3, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            let payload = vec![ctx.rank() as u8 + 1; 2 * ctx.rank() + 1];
            let mut flat = Vec::new();
            let mut counts = Vec::new();
            ctx.comm_mut()
                .allgatherv_bytes_into(&payload, &mut flat, &mut counts)
                .unwrap();
            let nested = ctx.comm_mut().allgatherv_bytes(&payload).unwrap();
            (flat, counts, nested)
        });
        for (flat, counts, nested) in out {
            assert_eq!(counts, vec![1, 3, 5]);
            let rebuilt: Vec<u8> = nested.concat();
            assert_eq!(flat, rebuilt);
        }
    }

    #[test]
    fn allgatherv_bytes_into_single_rank() {
        let cluster = Cluster::new(1, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            let mut flat = vec![9u8; 4]; // stale contents must be cleared
            let mut counts = vec![7usize]; // likewise
            ctx.comm_mut()
                .allgatherv_bytes_into(&[1, 2, 3], &mut flat, &mut counts)
                .unwrap();
            (flat, counts)
        });
        assert_eq!(out[0].0, vec![1, 2, 3]);
        assert_eq!(out[0].1, vec![3]);
    }

    #[test]
    fn broadcast_distributes_root_data() {
        let cluster = Cluster::new(4, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            let mut buf = if ctx.rank() == 2 {
                vec![7.0f32; 8]
            } else {
                vec![0.0f32; 8]
            };
            ctx.comm_mut().broadcast_f32(2, &mut buf).unwrap();
            buf
        });
        for buf in out {
            assert!(buf.iter().all(|&x| x == 7.0));
        }
    }

    #[test]
    fn scalar_reductions() {
        let cluster = Cluster::new(4, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            let r = ctx.rank() as f64;
            let sum = ctx.comm_mut().allreduce_sum_f64(r);
            let max = ctx.comm_mut().allreduce_max_f64(r);
            let min = ctx.comm_mut().allreduce_min_f64(r);
            let not_two = ctx.rank() != 2;
            let all = ctx.comm_mut().allreduce_and(not_two);
            (sum, max, min, all)
        });
        for (sum, max, min, all) in out {
            assert_eq!(sum, 6.0);
            assert_eq!(max, 3.0);
            assert_eq!(min, 0.0);
            assert!(!all);
        }
    }

    #[test]
    fn allreduce_shape_mismatch_errors_on_all_ranks() {
        let cluster = Cluster::new(2, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            let mut v = vec![1.0f32; 4 + ctx.rank()];
            ctx.comm_mut().allreduce_sum_f32(&mut v).err()
        });
        assert!(out.iter().all(|e| e.is_some()));
    }

    #[test]
    fn collectives_advance_simulated_clock_equally() {
        let cluster = Cluster::new(4, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            // Skew the arrival times: slower ranks arrive later.
            let skew = ctx.rank() as f64 * 0.25;
            ctx.comm_mut().clock_mut().charge_compute_seconds(skew);
            let mut v = vec![0.0f32; 1024];
            ctx.comm_mut().allreduce_sum_f32(&mut v).unwrap();
            ctx.comm().clock().now_s()
        });
        // Synchronous collective: everyone leaves at the same simulated time.
        for t in &out {
            assert!((t - out[0]).abs() < 1e-12, "clocks diverged: {out:?}");
        }
        assert!(out[0] > 0.75, "must include the slowest arrival");
    }

    #[test]
    fn idle_time_attributed_to_fast_ranks() {
        let cluster = Cluster::new(2, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            if ctx.rank() == 1 {
                ctx.comm_mut().clock_mut().charge_compute_seconds(1.0);
            }
            ctx.comm_mut().barrier();
            ctx.comm().clock().breakdown()
        });
        assert!(out[0].idle_s > 0.9, "rank 0 should have idled: {:?}", out[0]);
        assert!(out[1].idle_s < 1e-9, "rank 1 never waits: {:?}", out[1]);
    }

    #[test]
    fn traffic_is_accounted() {
        let cluster = Cluster::new(2, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            let mut v = vec![1.0f32; 100];
            ctx.comm_mut().allreduce_sum_f32(&mut v).unwrap();
            ctx.comm_mut().allgatherv_f32(&v).unwrap();
            ctx.comm().traffic().report()
        });
        let rep = &out[0];
        assert_eq!(rep.ops(Collective::AllReduce), 1);
        assert_eq!(rep.ops(Collective::AllGatherV), 1);
        assert_eq!(rep.bytes_sent(Collective::AllReduce), 400);
        // allgather receives both ranks' 400-byte payloads.
        assert_eq!(rep.bytes_recv(Collective::AllGatherV), 800);
    }

    #[test]
    fn overlapped_allreduce_hides_price_behind_compute_window() {
        let cluster = Cluster::new(2, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            let comm = ctx.comm_mut();
            let anchor = comm.clock().now_s();
            comm.clock_mut().charge_compute_seconds(1.0); // ≫ the price
            let mut v = vec![1.0f32; 1 << 16];
            let stats = comm.allreduce_sum_f32_overlapped(&mut v, anchor).unwrap();
            (stats, comm.clock().now_s(), comm.clock().breakdown(), v[0])
        });
        let price = CostModel::new(ClusterSpec::cray_xc40()).allreduce(2, 4 << 16);
        assert!(price > 0.0 && price < 1.0);
        for (stats, now, b, x) in &out {
            assert_eq!(*x, 2.0, "numerics unchanged by overlap pricing");
            assert!((stats.window_s - 1.0).abs() < 1e-9);
            assert!((stats.hidden_s - price).abs() < 1e-12, "fully hidden");
            assert_eq!(stats.visible_s, 0.0);
            assert!((now - 1.0).abs() < 1e-9, "clock never saw the price");
            assert!((b.hidden_comm_s - price).abs() < 1e-12);
            assert!((b.overlap_s - 1.0).abs() < 1e-9);
            assert_eq!(b.comm_s, 0.0);
        }
        assert_eq!(out[0].1.to_bits(), out[1].1.to_bits(), "clocks aligned");
    }

    #[test]
    fn overlapped_with_empty_window_matches_synchronous_timing() {
        let spec = ClusterSpec::cray_xc40;
        let plain = Cluster::new(3, spec()).run(|ctx| {
            let mut v = vec![0.5f32; 4096];
            ctx.comm_mut().allreduce_sum_f32(&mut v).unwrap();
            (ctx.comm().clock().now_s(), v)
        });
        let overlapped = Cluster::new(3, spec()).run(|ctx| {
            let mut v = vec![0.5f32; 4096];
            let anchor = ctx.comm().clock().now_s();
            let stats = ctx
                .comm_mut()
                .allreduce_sum_f32_overlapped(&mut v, anchor)
                .unwrap();
            assert_eq!(stats.window_s, 0.0);
            assert_eq!(stats.hidden_s, 0.0);
            (ctx.comm().clock().now_s(), v)
        });
        for ((tp, vp), (to, vo)) in plain.iter().zip(overlapped.iter()) {
            assert_eq!(tp.to_bits(), to.to_bits(), "zero window ⇒ same price");
            assert_eq!(vp, vo);
        }
    }

    #[test]
    fn overlapped_allgatherv_partial_window_charges_remainder() {
        let cluster = Cluster::new(2, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            let comm = ctx.comm_mut();
            let anchor = comm.clock().now_s();
            let window = 1.0e-5; // smaller than the price below
            comm.clock_mut().charge_compute_seconds(window);
            let payload = vec![ctx.rank() as u8; 1 << 20];
            let (mut recv, mut counts) = (Vec::new(), Vec::new());
            let stats = ctx
                .comm_mut()
                .allgatherv_bytes_overlapped_into(&payload, &mut recv, &mut counts, anchor)
                .unwrap();
            (stats, ctx.comm().clock().now_s(), recv.len())
        });
        for (stats, _now, total) in &out {
            assert_eq!(*total, 2 << 20);
            assert!(stats.visible_s > 0.0, "window smaller than price");
            assert!((stats.hidden_s - stats.window_s).abs() < 1e-15);
        }
        assert_eq!(out[0].1.to_bits(), out[1].1.to_bits(), "clocks aligned");
    }

    #[test]
    fn overlapped_p2p_recv_hides_occupancy_behind_compute_window() {
        let spec = ClusterSpec::cray_xc40();
        let occupancy = 1e6 / spec.bandwidth_bps;
        let cluster = Cluster::new(2, spec.clone());
        let out = cluster.run(|ctx| {
            if ctx.rank() == 0 {
                let payload = vec![7u8; 1_000_000];
                ctx.comm_mut()
                    .send_bytes_as(1, &payload, Collective::ShardPull)
                    .unwrap();
                None
            } else {
                let comm = ctx.comm_mut();
                let anchor = comm.clock().now_s();
                comm.clock_mut().charge_compute_seconds(1.0); // ≫ arrival + occupancy
                let (msg, stats) = comm
                    .recv_bytes_from_as_overlapped(0, Collective::ShardPull, anchor)
                    .unwrap();
                assert_eq!(msg.payload.len(), 1_000_000);
                Some((stats, comm.clock().now_s(), comm.clock().breakdown()))
            }
        });
        let (stats, now, b) = out[1].unwrap();
        // The transfer completed during the compute window, so the clock
        // never idled and the occupancy hid entirely.
        assert!((stats.hidden_s - occupancy).abs() < 1e-12, "fully hidden");
        assert_eq!(stats.visible_s, 0.0);
        assert!((stats.window_s - 1.0).abs() < 1e-9);
        assert!((now - 1.0).abs() < 1e-12, "clock never saw the receive");
        assert_eq!(b.idle_s, 0.0);
        assert!((b.hidden_comm_s - occupancy).abs() < 1e-12);
        assert_eq!(b.comm_s, 0.0);
    }

    #[test]
    fn overlapped_p2p_with_zero_window_matches_synchronous_receive() {
        let spec = ClusterSpec::cray_xc40;
        let program = |overlapped: bool| {
            Cluster::new(2, spec()).run(move |ctx| {
                if ctx.rank() == 0 {
                    let payload = vec![3u8; 123_457];
                    ctx.comm_mut()
                        .send_bytes_as(1, &payload, Collective::ShardPull)
                        .unwrap();
                } else {
                    let comm = ctx.comm_mut();
                    if overlapped {
                        let anchor = comm.clock().now_s();
                        let (_, stats) = comm
                            .recv_bytes_from_as_overlapped(0, Collective::ShardPull, anchor)
                            .unwrap();
                        assert_eq!(stats.hidden_s, 0.0);
                    } else {
                        comm.recv_bytes_from_as(0, Collective::ShardPull).unwrap();
                    }
                }
                (ctx.comm().clock().now_s(), ctx.comm().clock().breakdown())
            })
        };
        let plain = program(false);
        let over = program(true);
        for ((tp, bp), (to, bo)) in plain.iter().zip(over.iter()) {
            assert_eq!(tp.to_bits(), to.to_bits(), "zero window ⇒ same price");
            assert_eq!(bp.comm_s.to_bits(), bo.comm_s.to_bits());
            assert_eq!(bp.idle_s.to_bits(), bo.idle_s.to_bits());
        }
    }

    #[test]
    fn p2p_lane_cursor_prevents_double_hiding() {
        // Two 1 MB messages settle against one compute window that is
        // wide enough for ~1.5 occupancies: the lane cursor must cap the
        // total hidden seconds at the window width, not 2× it.
        let spec = ClusterSpec::cray_xc40();
        let occupancy = 1e6 / spec.bandwidth_bps;
        let window = 1.5 * occupancy;
        let cluster = Cluster::new(2, spec.clone());
        let out = cluster.run(move |ctx| {
            if ctx.rank() == 0 {
                let payload = vec![1u8; 1_000_000];
                for _ in 0..2 {
                    ctx.comm_mut()
                        .send_bytes_as(1, &payload, Collective::ShardPull)
                        .unwrap();
                }
                None
            } else {
                let comm = ctx.comm_mut();
                let anchor = comm.clock().now_s();
                comm.clock_mut().charge_compute_seconds(window);
                let (m1, s1) = comm
                    .recv_bytes_from_as_overlapped(0, Collective::ShardPull, anchor)
                    .unwrap();
                let (m2, s2) = comm
                    .recv_bytes_from_as_overlapped(0, Collective::ShardPull, anchor)
                    .unwrap();
                assert_eq!(m1.payload.len() + m2.payload.len(), 2_000_000);
                Some((s1, s2))
            }
        });
        let (s1, s2) = out[1].unwrap();
        assert!((s1.hidden_s - occupancy).abs() < 1e-12, "first hides fully");
        // The second message finds only the remaining half-occupancy of
        // window (the first settle advanced the cursor past the rest).
        assert!((s2.hidden_s - 0.5 * occupancy).abs() < 1e-9);
        assert!((s2.visible_s - 0.5 * occupancy).abs() < 1e-9);
        let total_hidden = s1.hidden_s + s2.hidden_s;
        assert!(total_hidden <= window + 1e-12, "never exceeds the window");
    }

    #[test]
    fn p2p_lanes_hide_independently() {
        // A pull and a push settled against the same window each get the
        // full width: the two directions model full-duplex link use.
        let spec = ClusterSpec::cray_xc40();
        let occupancy = 1e6 / spec.bandwidth_bps;
        let cluster = Cluster::new(2, spec.clone());
        let out = cluster.run(|ctx| {
            if ctx.rank() == 0 {
                let payload = vec![1u8; 1_000_000];
                ctx.comm_mut()
                    .send_bytes_as(1, &payload, Collective::ShardPull)
                    .unwrap();
                ctx.comm_mut()
                    .send_bytes_as(1, &payload, Collective::ShardPush)
                    .unwrap();
                None
            } else {
                let comm = ctx.comm_mut();
                let anchor = comm.clock().now_s();
                comm.clock_mut().charge_compute_seconds(1.0);
                let (_, s1) = comm
                    .recv_bytes_from_as_overlapped(0, Collective::ShardPull, anchor)
                    .unwrap();
                let (_, s2) = comm
                    .recv_bytes_from_as_overlapped(0, Collective::ShardPush, anchor)
                    .unwrap();
                Some((s1, s2))
            }
        });
        let (s1, s2) = out[1].unwrap();
        assert!((s1.hidden_s - occupancy).abs() < 1e-12);
        assert!((s2.hidden_s - occupancy).abs() < 1e-12, "push lane unaffected");
    }

    #[test]
    fn broadcast_invalid_root_errors() {
        let cluster = Cluster::new(1, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            let mut v = vec![0.0f32; 4];
            ctx.comm_mut().broadcast_f32(5, &mut v).err()
        });
        assert_eq!(
            out[0],
            Some(SimError::InvalidRank { rank: 5, size: 1 })
        );
    }

    #[test]
    fn reduce_scatter_gives_each_rank_its_summed_chunk() {
        let cluster = Cluster::new(4, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            let v: Vec<f32> = (0..8).map(|i| (i + ctx.rank() * 10) as f32).collect();
            ctx.comm_mut().reduce_scatter_f32(&v).unwrap()
        });
        // Sum across ranks of element i = 4*i + (0+10+20+30) = 4i + 60.
        for (rank, chunk) in out.iter().enumerate() {
            assert_eq!(chunk.len(), 2);
            for (j, &x) in chunk.iter().enumerate() {
                let i = rank * 2 + j;
                assert_eq!(x, (4 * i + 60) as f32, "rank {rank} elem {j}");
            }
        }
    }

    #[test]
    fn reduce_scatter_single_rank_is_identity() {
        let cluster = Cluster::new(1, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| ctx.comm_mut().reduce_scatter_f32(&[1.0, 2.0]).unwrap());
        assert_eq!(out[0], vec![1.0, 2.0]);
    }

    #[test]
    fn gatherv_root_receives_everything_others_nothing() {
        let cluster = Cluster::new(3, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            let mine = vec![ctx.rank() as f32; ctx.rank() + 1];
            ctx.comm_mut().gatherv_to_root(1, &mine).unwrap()
        });
        assert!(out[0].is_empty());
        assert!(out[2].is_empty());
        assert_eq!(out[1], vec![vec![0.0], vec![1.0, 1.0], vec![2.0, 2.0, 2.0]]);
    }

    #[test]
    fn gatherv_invalid_root_errors() {
        let cluster = Cluster::new(2, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| ctx.comm_mut().gatherv_to_root(7, &[1.0]).err());
        assert!(out.iter().all(|e| e.is_some()));
    }
}
