//! Analytic α-β(-γ) cost model for collective operations.
//!
//! Each collective is costed with the standard closed-form expressions for
//! the algorithm an MPI-class library would select at that message size
//! (latency-optimal logarithmic algorithms for small messages,
//! bandwidth-optimal ring algorithms for large ones). The model returns the
//! time *every participating node* is busy in the collective — synchronous
//! collectives finish together, so one number suffices.

use crate::spec::ClusterSpec;
use serde::{Deserialize, Serialize};

/// The collective operations the model can price.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Collective {
    /// Sum-reduce a buffer of `m` bytes, result everywhere.
    AllReduce,
    /// Gather variable-size contributions from every rank to every rank.
    AllGatherV,
    /// One-to-all of `m` bytes.
    Broadcast,
    /// Pure synchronization.
    Barrier,
    /// All-to-one of per-rank contributions.
    Gather,
    /// Point-to-point message (see `simgrid::p2p`).
    PointToPoint,
    /// Sharded-store sparse pull (p2p row request + reply). Priced like
    /// [`Collective::PointToPoint`]; a separate bucket so pull traffic is
    /// accounted apart from generic p2p.
    ShardPull,
    /// Sharded-store sparse push (row-sparse gradients routed to owner
    /// ranks). Priced like [`Collective::PointToPoint`].
    ShardPush,
}

/// Prices collectives against a [`ClusterSpec`].
#[derive(Debug, Clone)]
pub struct CostModel {
    spec: ClusterSpec,
}

impl CostModel {
    pub fn new(spec: ClusterSpec) -> Self {
        CostModel { spec }
    }

    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// A copy of this model pricing against a degraded interconnect (see
    /// [`ClusterSpec::degraded`]). With both factors at 1.0 prices are
    /// identical to this model's.
    pub fn degraded(&self, latency_mult: f64, bandwidth_div: f64) -> CostModel {
        CostModel::new(self.spec.degraded(latency_mult, bandwidth_div))
    }

    #[inline]
    fn alpha(&self) -> f64 {
        self.spec.latency_s
    }

    #[inline]
    fn beta(&self) -> f64 {
        1.0 / self.spec.bandwidth_bps
    }

    #[inline]
    fn gamma(&self) -> f64 {
        self.spec.reduce_cost_spb
    }

    #[inline]
    fn ceil_log2(p: usize) -> f64 {
        debug_assert!(p >= 1);
        (usize::BITS - (p - 1).leading_zeros()) as f64
    }

    /// Time for an all-reduce of `bytes` across `p` nodes.
    ///
    /// Takes the cheaper of recursive doubling
    /// (`⌈log₂p⌉(α + mβ + mγ)`, latency-optimal) and Rabenseifner/ring
    /// (`2(p−1)α + 2m(p−1)/p·β + m(p−1)/p·γ`, bandwidth-optimal) — the same
    /// switch real MPI implementations make.
    pub fn allreduce(&self, p: usize, bytes: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let m = bytes as f64;
        let lg = Self::ceil_log2(p);
        let rec_doubling = lg * (self.alpha() + m * self.beta() + m * self.gamma());
        let frac = (p - 1) as f64 / p as f64;
        let ring = 2.0 * (p - 1) as f64 * self.alpha()
            + 2.0 * m * frac * self.beta()
            + m * frac * self.gamma();
        rec_doubling.min(ring)
    }

    /// Time for an all-gather where rank `i` contributes `per_rank[i]`
    /// bytes and every rank ends with all contributions.
    ///
    /// Ring: `(p−1)α + (Σm − max_own)β` per node; we charge the
    /// worst-positioned node, i.e. use total incoming bytes of the node
    /// that contributes least (conservative, synchronous finish). For small
    /// totals a Bruck-style `⌈log₂p⌉α + (Σm)β` is used.
    pub fn allgatherv(&self, per_rank: &[usize]) -> f64 {
        let p = per_rank.len();
        if p <= 1 {
            return 0.0;
        }
        let total: usize = per_rank.iter().sum();
        let min_own = per_rank.iter().copied().min().unwrap_or(0);
        let incoming = (total - min_own) as f64;
        let ring = (p - 1) as f64 * self.alpha() + incoming * self.beta();
        let bruck = Self::ceil_log2(p) * self.alpha() + incoming * self.beta();
        if total <= self.spec.small_message_bytes {
            ring.min(bruck)
        } else {
            ring
        }
    }

    /// Binomial-tree broadcast of `bytes` from one root.
    pub fn broadcast(&self, p: usize, bytes: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        Self::ceil_log2(p) * (self.alpha() + bytes as f64 * self.beta())
    }

    /// Dissemination barrier.
    pub fn barrier(&self, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        Self::ceil_log2(p) * self.alpha()
    }

    /// Binomial-tree gather to a root; priced like a broadcast of the total.
    pub fn gather(&self, per_rank: &[usize]) -> f64 {
        let p = per_rank.len();
        if p <= 1 {
            return 0.0;
        }
        let total: usize = per_rank.iter().sum();
        Self::ceil_log2(p) * self.alpha() + total as f64 * self.beta()
    }

    /// Generic entry point used by the communicator: price `op` moving
    /// `per_rank` bytes (interpretation depends on the op; for symmetric
    /// ops only the max entry and count matter).
    pub fn price(&self, op: Collective, per_rank: &[usize]) -> f64 {
        let p = per_rank.len();
        match op {
            Collective::AllReduce => {
                let m = per_rank.iter().copied().max().unwrap_or(0);
                self.allreduce(p, m)
            }
            Collective::AllGatherV => self.allgatherv(per_rank),
            Collective::Broadcast => {
                let m = per_rank.iter().copied().max().unwrap_or(0);
                self.broadcast(p, m)
            }
            Collective::Barrier => self.barrier(p),
            Collective::Gather => self.gather(per_rank),
            Collective::PointToPoint | Collective::ShardPull | Collective::ShardPush => {
                let m = per_rank.iter().copied().max().unwrap_or(0);
                self.spec.p2p_time(m)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(ClusterSpec::cray_xc40())
    }

    #[test]
    fn single_node_collectives_are_free() {
        let m = model();
        assert_eq!(m.allreduce(1, 1 << 20), 0.0);
        assert_eq!(m.allgatherv(&[1 << 20]), 0.0);
        assert_eq!(m.broadcast(1, 1 << 20), 0.0);
        assert_eq!(m.barrier(1), 0.0);
    }

    #[test]
    fn allreduce_monotone_in_bytes_and_nodes() {
        let m = model();
        assert!(m.allreduce(4, 1 << 22) > m.allreduce(4, 1 << 12));
        // More nodes cost more latency for the same payload.
        assert!(m.allreduce(16, 1 << 22) > m.allreduce(2, 1 << 22));
    }

    #[test]
    fn allreduce_bandwidth_term_saturates() {
        // For large p, ring all-reduce bandwidth term approaches 2mβ — the
        // hallmark of bandwidth-optimal all-reduce. Doubling p from 8 to 16
        // must grow time by far less than 2x for a large message.
        let m = model();
        let t8 = m.allreduce(8, 64 << 20);
        let t16 = m.allreduce(16, 64 << 20);
        assert!(t16 < 1.2 * t8, "t8={t8} t16={t16}");
    }

    #[test]
    fn allgatherv_scales_with_total_volume() {
        let m = model();
        let small = m.allgatherv(&[1000, 1000, 1000, 1000]);
        let big = m.allgatherv(&[100_000, 100_000, 100_000, 100_000]);
        assert!(big > small);
    }

    #[test]
    fn sparse_allgather_beats_dense_allreduce_and_crossover_exists() {
        // The paper's §4.1 mechanism: with few non-zero rows, all-gather of
        // just those rows beats all-reduce of the dense matrix; as p grows,
        // gathered volume grows ∝ p while all-reduce stays ~2m, so
        // all-reduce eventually wins. Verify both regimes.
        let m = model();
        let dense_bytes = 10_000_000; // full gradient matrix
        let sparse_per_rank = 400_000; // non-zero rows per node

        let p_small = 2;
        let ar_small = m.allreduce(p_small, dense_bytes);
        let ag_small = m.allgatherv(&vec![sparse_per_rank; p_small]);
        assert!(ag_small < ar_small, "allgather should win at p=2");

        let p_large = 64;
        let ar_large = m.allreduce(p_large, dense_bytes);
        let ag_large = m.allgatherv(&vec![sparse_per_rank; p_large]);
        assert!(ar_large < ag_large, "allreduce should win at p=64");
    }

    #[test]
    fn barrier_cheaper_than_any_data_collective() {
        let m = model();
        assert!(m.barrier(16) < m.allreduce(16, 4096));
        assert!(m.barrier(16) < m.broadcast(16, 4096));
    }

    #[test]
    fn price_dispatch_matches_direct_calls() {
        let m = model();
        let per = vec![4096usize; 8];
        assert_eq!(m.price(Collective::AllReduce, &per), m.allreduce(8, 4096));
        assert_eq!(m.price(Collective::AllGatherV, &per), m.allgatherv(&per));
        assert_eq!(m.price(Collective::Barrier, &per), m.barrier(8));
        assert_eq!(m.price(Collective::Broadcast, &per), m.broadcast(8, 4096));
        assert_eq!(m.price(Collective::Gather, &per), m.gather(&per));
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(CostModel::ceil_log2(1), 0.0);
        assert_eq!(CostModel::ceil_log2(2), 1.0);
        assert_eq!(CostModel::ceil_log2(3), 2.0);
        assert_eq!(CostModel::ceil_log2(4), 2.0);
        assert_eq!(CostModel::ceil_log2(5), 3.0);
        assert_eq!(CostModel::ceil_log2(16), 4.0);
        assert_eq!(CostModel::ceil_log2(17), 5.0);
    }
}
