//! Deterministic fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] describes everything that goes wrong during a run:
//! straggler windows (a rank's compute slows down for a stretch of
//! simulated time), link degradation (latency/bandwidth multipliers over a
//! window), transient message loss on both p2p sends and collectives
//! (absorbed by bounded retry with exponential backoff, charged to the sim
//! clock), and hard rank crashes (detected at the next data collective and
//! surfaced as [`crate::SimError::RankCrashed`]).
//!
//! Every stochastic decision — whether the `n`-th message from `src` to
//! `dst` is dropped, whether the `k`-th collective needs a retry — is a
//! pure function of the plan's seed and the event's *structural
//! coordinates*, hashed through SplitMix64. No mutable RNG state is shared
//! between threads, so a seeded plan is bit-reproducible across repeated
//! invocations, host thread interleavings, and worker-pool sizes.
//!
//! [`FaultPlan::none()`] is inert: every hook takes an early return and the
//! simulation is bit-identical to one built without a plan at all (the
//! `fault_free_plan_is_bitwise_inert` tests pin this down).

use serde::{Deserialize, Serialize};

/// SplitMix64 finalizer: the mixing function behind every fault decision.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// A small deterministic stream over SplitMix64, used by the random plan
/// generator ([`FaultPlan::chaos`]).
#[derive(Debug, Clone)]
pub struct SplitMix64Stream {
    state: u64,
}

impl SplitMix64Stream {
    pub fn new(seed: u64) -> Self {
        SplitMix64Stream { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    pub fn next_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }
}

/// Mix a tagged tuple of coordinates into one decision value. Sequential
/// mixing (like the trainer's chunk seeds) keeps streams independent.
#[inline]
fn mix_coords(seed: u64, tag: u64, coords: &[u64]) -> u64 {
    let mut h = splitmix64(seed ^ tag);
    for &c in coords {
        h = splitmix64(h ^ c);
    }
    h
}

/// Decide with probability `p` from a hashed coordinate value.
#[inline]
fn hashed_bernoulli(h: u64, p: f64) -> bool {
    ((h >> 11) as f64 / (1u64 << 53) as f64) < p
}

const TAG_P2P: u64 = 0x7032_7000;
const TAG_COLLECTIVE: u64 = 0xC0_11EC;

/// One rank computes slower over a window of simulated time (a straggler:
/// thermal throttling, a noisy neighbour, a failing DIMM).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StragglerWindow {
    /// Original (pre-shrink) rank id.
    pub rank: usize,
    /// Window start, simulated seconds.
    pub start_s: f64,
    /// Window end, simulated seconds.
    pub end_s: f64,
    /// Compute-time multiplier while active (≥ 1).
    pub slowdown: f64,
}

/// The interconnect degrades over a window of simulated time (congestion,
/// a flapping switch, an adaptive-routing storm).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkDegradation {
    pub start_s: f64,
    pub end_s: f64,
    /// Latency multiplier while active (≥ 1).
    pub latency_mult: f64,
    /// Bandwidth *divisor* while active (≥ 1): effective bandwidth is
    /// `bandwidth_bps / bandwidth_div`.
    pub bandwidth_div: f64,
}

/// A hard rank failure at a point in simulated time. Detected at the
/// first data collective where the crashed rank's deposited clock has
/// passed `at_s`; all participants then see
/// [`crate::SimError::RankCrashed`]. If `recover_at_s` is set the node
/// comes back up at that simulated time and may rejoin the world at the
/// next epoch boundary the survivors reach after it (the elastic re-grow
/// path); `None` means the failure is permanent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankCrash {
    /// Original (pre-shrink) rank id.
    pub rank: usize,
    /// Simulated time of death.
    pub at_s: f64,
    /// Simulated time the node is healthy again, if it ever is.
    #[serde(default)]
    pub recover_at_s: Option<f64>,
}

/// Timeout + bounded-retry semantics for lost messages and failure
/// detection. Retry `i` (0-based) waits `timeout_s + backoff_base_s ×
/// backoff_factor^i` of simulated time before retransmitting; after
/// `max_retries` failed retries the operation surfaces
/// [`crate::SimError::Timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    pub max_retries: u32,
    /// Seconds waited before concluding an attempt was lost (also the
    /// failure-detector timeout charged when a crashed peer is detected).
    pub timeout_s: f64,
    pub backoff_base_s: f64,
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            timeout_s: 0.1,
            backoff_base_s: 0.05,
            backoff_factor: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Simulated seconds spent discovering and backing off from the
    /// `i`-th (0-based) failed attempt.
    #[inline]
    pub fn retry_cost_s(&self, i: u32) -> f64 {
        self.timeout_s + self.backoff_base_s * self.backoff_factor.powi(i as i32)
    }
}

/// A complete, seeded schedule of faults for one simulated run.
///
/// Attach to a cluster with [`crate::Cluster::with_fault_plan`]. Ranks in
/// the plan are **original** rank ids: they keep addressing the same
/// logical node even after a crash shrinks the communicator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the SplitMix64 decision streams.
    pub seed: u64,
    pub stragglers: Vec<StragglerWindow>,
    pub links: Vec<LinkDegradation>,
    pub crashes: Vec<RankCrash>,
    /// Probability that any single p2p transmission attempt is lost.
    pub p2p_drop_prob: f64,
    /// Probability that any single collective attempt times out and must
    /// be retried (models a lost rendezvous/ACK inside the collective).
    pub collective_drop_prob: f64,
    pub retry: RetryPolicy,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The inert plan: no faults, and every injection hook short-circuits
    /// so simulation results are bit-identical to a plan-free run.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            stragglers: Vec::new(),
            links: Vec::new(),
            crashes: Vec::new(),
            p2p_drop_prob: 0.0,
            collective_drop_prob: 0.0,
            retry: RetryPolicy::default(),
        }
    }

    /// An empty plan carrying a seed, to be populated with the builder
    /// methods. The seed feeds the per-message / per-collective drop
    /// decision streams.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Self::none()
        }
    }

    /// A randomized plan for `ranks` nodes over `horizon_s` simulated
    /// seconds, derived entirely from `seed` through one SplitMix64
    /// stream: one straggler window, one link-degradation window, mild
    /// message loss, and one crash of a non-zero rank in the middle
    /// half of the horizon (only when `ranks > 2`, so the cluster always
    /// retains a quorum to finish the run with).
    pub fn chaos(seed: u64, ranks: usize, horizon_s: f64) -> Self {
        assert!(ranks >= 1 && horizon_s > 0.0);
        let mut s = SplitMix64Stream::new(seed);
        let mut plan = Self::seeded(seed);
        let straggler_rank = (s.next_u64() % ranks as u64) as usize;
        let start = s.next_range(0.0, horizon_s * 0.5);
        plan.stragglers.push(StragglerWindow {
            rank: straggler_rank,
            start_s: start,
            end_s: start + s.next_range(0.05, 0.3) * horizon_s,
            slowdown: s.next_range(1.5, 4.0),
        });
        let lstart = s.next_range(0.0, horizon_s * 0.7);
        plan.links.push(LinkDegradation {
            start_s: lstart,
            end_s: lstart + s.next_range(0.05, 0.2) * horizon_s,
            latency_mult: s.next_range(1.5, 8.0),
            bandwidth_div: s.next_range(1.5, 4.0),
        });
        plan.p2p_drop_prob = s.next_range(0.0, 0.02);
        plan.collective_drop_prob = s.next_range(0.0, 0.02);
        if ranks > 2 {
            let victim = 1 + (s.next_u64() % (ranks as u64 - 1)) as usize;
            plan.crashes.push(RankCrash {
                rank: victim,
                at_s: s.next_range(0.25, 0.75) * horizon_s,
                recover_at_s: None,
            });
        }
        plan
    }

    /// Builder: add a straggler window.
    pub fn with_straggler(mut self, w: StragglerWindow) -> Self {
        assert!(w.slowdown >= 1.0 && w.end_s >= w.start_s);
        self.stragglers.push(w);
        self
    }

    /// Builder: add a link-degradation window.
    pub fn with_link_degradation(mut self, w: LinkDegradation) -> Self {
        assert!(w.latency_mult >= 1.0 && w.bandwidth_div >= 1.0 && w.end_s >= w.start_s);
        self.links.push(w);
        self
    }

    /// Builder: crash `rank` at `at_s` simulated seconds, permanently.
    pub fn with_crash(mut self, rank: usize, at_s: f64) -> Self {
        self.crashes.push(RankCrash {
            rank,
            at_s,
            recover_at_s: None,
        });
        self
    }

    /// Builder: crash `rank` at `at_s` and bring the node back up at
    /// `recover_at_s`, making it eligible to rejoin the world at the next
    /// epoch boundary after recovery.
    pub fn with_crash_and_rejoin(mut self, rank: usize, at_s: f64, recover_at_s: f64) -> Self {
        assert!(recover_at_s >= at_s, "recovery must not precede the crash");
        self.crashes.push(RankCrash {
            rank,
            at_s,
            recover_at_s: Some(recover_at_s),
        });
        self
    }

    /// Builder: drop each p2p transmission attempt with probability `p`.
    pub fn with_p2p_drop_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.p2p_drop_prob = p;
        self
    }

    /// Builder: each collective attempt times out with probability `p`.
    pub fn with_collective_drop_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.collective_drop_prob = p;
        self
    }

    /// Builder: override the retry/timeout policy.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// True when the plan can never perturb a run — the hot-path
    /// early-out every injection hook checks first.
    #[inline]
    pub fn is_inert(&self) -> bool {
        self.stragglers.is_empty()
            && self.links.is_empty()
            && self.crashes.is_empty()
            && self.p2p_drop_prob == 0.0
            && self.collective_drop_prob == 0.0
    }

    /// Compute-time multiplier for `rank` (original id) at simulated time
    /// `t`: the product of all active straggler windows (1.0 if none).
    pub fn compute_slowdown(&self, rank: usize, t: f64) -> f64 {
        let mut m = 1.0;
        for w in &self.stragglers {
            if w.rank == rank && t >= w.start_s && t < w.end_s {
                m *= w.slowdown;
            }
        }
        m
    }

    /// Combined (latency multiplier, bandwidth divisor) of all link
    /// windows active at `t`; `(1.0, 1.0)` if the network is healthy.
    pub fn link_factors(&self, t: f64) -> (f64, f64) {
        let (mut lat, mut bw) = (1.0, 1.0);
        for w in &self.links {
            if t >= w.start_s && t < w.end_s {
                lat *= w.latency_mult;
                bw *= w.bandwidth_div;
            }
        }
        (lat, bw)
    }

    /// Simulated time at which `rank` (original id) dies, if scheduled.
    pub fn crash_time(&self, rank: usize) -> Option<f64> {
        self.crashes
            .iter()
            .filter(|c| c.rank == rank)
            .map(|c| c.at_s)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))))
    }

    /// Whether `rank` (original id) is down at simulated time `t`: some
    /// crash has happened (`at_s <= t`) and the node has not yet recovered
    /// (no `recover_at_s`, or `t < recover_at_s`). Crash *detection* uses
    /// this rather than [`FaultPlan::crash_time`] so a rank that rejoined
    /// after recovery is not re-detected as dead by its old crash entry.
    pub fn is_down(&self, rank: usize, t: f64) -> bool {
        self.crashes.iter().any(|c| {
            c.rank == rank && c.at_s <= t && c.recover_at_s.is_none_or(|r| t < r)
        })
    }

    /// Simulated time at which `rank` comes back up after its earliest
    /// crash, if a recovery is scheduled.
    pub fn recovery_time(&self, rank: usize) -> Option<f64> {
        self.crashes
            .iter()
            .filter(|c| c.rank == rank)
            .filter_map(|c| c.recover_at_s)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))))
    }

    /// Whether any scheduled crash has a recovery — the gate for the
    /// trainer's epoch-boundary rejoin checks (zero overhead otherwise).
    pub fn has_recoveries(&self) -> bool {
        self.crashes.iter().any(|c| c.recover_at_s.is_some())
    }

    /// Number of consecutive lost transmission attempts for the `seq`-th
    /// message from `src` to `dst` (original rank ids). Capped at
    /// `retry.max_retries + 1`; hitting the cap means the send times out.
    pub fn p2p_failed_attempts(&self, src: usize, dst: usize, seq: u64) -> u32 {
        self.failed_attempts(TAG_P2P, &[src as u64, dst as u64, seq], self.p2p_drop_prob)
    }

    /// Number of consecutive timed-out attempts for the `seq`-th
    /// collective of the run. Identical on every rank because `seq` is the
    /// rank-local collective counter of an SPMD program.
    pub fn collective_failed_attempts(&self, seq: u64) -> u32 {
        self.failed_attempts(TAG_COLLECTIVE, &[seq], self.collective_drop_prob)
    }

    fn failed_attempts(&self, tag: u64, coords: &[u64], prob: f64) -> u32 {
        if prob <= 0.0 {
            return 0;
        }
        let cap = self.retry.max_retries + 1;
        let mut fails = 0u32;
        while fails < cap {
            let h = mix_coords(self.seed, tag ^ fails as u64, coords);
            if !hashed_bernoulli(h, prob) {
                break;
            }
            fails += 1;
        }
        fails
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert_and_default() {
        assert!(FaultPlan::none().is_inert());
        assert!(FaultPlan::default().is_inert());
        assert_eq!(FaultPlan::none().compute_slowdown(0, 5.0), 1.0);
        assert_eq!(FaultPlan::none().link_factors(5.0), (1.0, 1.0));
        assert_eq!(FaultPlan::none().crash_time(0), None);
        assert_eq!(FaultPlan::none().p2p_failed_attempts(0, 1, 0), 0);
        assert_eq!(FaultPlan::none().collective_failed_attempts(9), 0);
    }

    #[test]
    fn straggler_windows_multiply_and_respect_bounds() {
        let plan = FaultPlan::seeded(1)
            .with_straggler(StragglerWindow {
                rank: 1,
                start_s: 1.0,
                end_s: 2.0,
                slowdown: 2.0,
            })
            .with_straggler(StragglerWindow {
                rank: 1,
                start_s: 1.5,
                end_s: 3.0,
                slowdown: 3.0,
            });
        assert_eq!(plan.compute_slowdown(1, 0.5), 1.0);
        assert_eq!(plan.compute_slowdown(1, 1.25), 2.0);
        assert_eq!(plan.compute_slowdown(1, 1.75), 6.0);
        assert_eq!(plan.compute_slowdown(1, 2.5), 3.0);
        assert_eq!(plan.compute_slowdown(0, 1.75), 1.0, "other ranks unaffected");
        assert!(!plan.is_inert());
    }

    #[test]
    fn link_factors_combine() {
        let plan = FaultPlan::seeded(2).with_link_degradation(LinkDegradation {
            start_s: 0.0,
            end_s: 10.0,
            latency_mult: 4.0,
            bandwidth_div: 2.0,
        });
        assert_eq!(plan.link_factors(5.0), (4.0, 2.0));
        assert_eq!(plan.link_factors(11.0), (1.0, 1.0));
    }

    #[test]
    fn crash_time_takes_earliest() {
        let plan = FaultPlan::seeded(3).with_crash(2, 5.0).with_crash(2, 3.0);
        assert_eq!(plan.crash_time(2), Some(3.0));
        assert_eq!(plan.crash_time(0), None);
    }

    #[test]
    fn recovery_windows_bound_is_down() {
        let plan = FaultPlan::seeded(4).with_crash_and_rejoin(1, 2.0, 5.0);
        assert!(!plan.is_down(1, 1.9), "healthy before the crash");
        assert!(plan.is_down(1, 2.0), "down from at_s");
        assert!(plan.is_down(1, 4.9), "still down before recovery");
        assert!(!plan.is_down(1, 5.0), "healthy again at recover_at_s");
        assert!(!plan.is_down(0, 3.0), "other ranks unaffected");
        assert_eq!(plan.recovery_time(1), Some(5.0));
        assert_eq!(plan.recovery_time(0), None);
        assert!(plan.has_recoveries());

        let permanent = FaultPlan::seeded(5).with_crash(1, 2.0);
        assert!(permanent.is_down(1, 1e9), "no recovery → down forever");
        assert!(!permanent.has_recoveries());
        assert_eq!(permanent.recovery_time(1), None);
    }

    #[test]
    fn drop_decisions_are_reproducible_and_seed_sensitive() {
        let a = FaultPlan::seeded(42).with_p2p_drop_prob(0.5);
        let b = FaultPlan::seeded(42).with_p2p_drop_prob(0.5);
        let c = FaultPlan::seeded(43).with_p2p_drop_prob(0.5);
        let seq_a: Vec<u32> = (0..64).map(|s| a.p2p_failed_attempts(0, 1, s)).collect();
        let seq_b: Vec<u32> = (0..64).map(|s| b.p2p_failed_attempts(0, 1, s)).collect();
        let seq_c: Vec<u32> = (0..64).map(|s| c.p2p_failed_attempts(0, 1, s)).collect();
        assert_eq!(seq_a, seq_b, "same seed, same decisions");
        assert_ne!(seq_a, seq_c, "different seeds should diverge");
        // At p=0.5 some messages must be dropped at least once and some
        // must go through cleanly.
        assert!(seq_a.iter().any(|&f| f > 0));
        assert!(seq_a.contains(&0));
    }

    #[test]
    fn failed_attempts_capped_at_retries_plus_one() {
        let plan = FaultPlan::seeded(1)
            .with_p2p_drop_prob(1.0)
            .with_retry_policy(RetryPolicy {
                max_retries: 2,
                ..RetryPolicy::default()
            });
        assert_eq!(plan.p2p_failed_attempts(0, 1, 0), 3);
    }

    #[test]
    fn retry_cost_backs_off_exponentially() {
        let r = RetryPolicy {
            max_retries: 3,
            timeout_s: 1.0,
            backoff_base_s: 0.5,
            backoff_factor: 2.0,
        };
        assert!((r.retry_cost_s(0) - 1.5).abs() < 1e-12);
        assert!((r.retry_cost_s(1) - 2.0).abs() < 1e-12);
        assert!((r.retry_cost_s(2) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn chaos_is_deterministic_and_leaves_a_quorum() {
        let a = FaultPlan::chaos(7, 4, 100.0);
        let b = FaultPlan::chaos(7, 4, 100.0);
        assert_eq!(a, b);
        assert!(!a.is_inert());
        assert_eq!(a.crashes.len(), 1);
        assert!(a.crashes[0].rank >= 1, "rank 0 is never the chaos victim");
        let two = FaultPlan::chaos(7, 2, 100.0);
        assert!(two.crashes.is_empty(), "2-rank plans never crash anyone");
    }

    #[test]
    fn stream_covers_unit_interval() {
        let mut s = SplitMix64Stream::new(9);
        let xs: Vec<f64> = (0..1000).map(|_| s.next_f64()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        assert!(xs.iter().any(|&x| x < 0.1) && xs.iter().any(|&x| x > 0.9));
    }
}
