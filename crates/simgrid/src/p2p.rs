//! Point-to-point messaging between ranks.
//!
//! Collectives cover the paper's synchronous data-parallel trainer; the
//! **parameter-server** architecture its introduction argues against
//! needs asymmetric send/receive. Messages move real bytes through
//! per-rank mailboxes; simulated time follows the same α-β model as the
//! collectives:
//!
//! - the sender's clock advances by the injection overhead `α`;
//! - the message *arrives* at `t_send + α + bytes·β`;
//! - the receiver blocks (host-wise) until the message exists and idles
//!   (simulation-wise) until its arrival time.
//!
//! `Communicator::recv_bytes_from` receives from a *specific* rank, which
//! keeps programs deterministic (serving ranks drain peers in a fixed
//! order); `Communicator::try_recv_bytes_any` exists for intentionally
//! asynchronous protocols and is documented as scheduling-dependent.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

/// One in-flight message.
#[derive(Debug, Clone)]
pub struct Message {
    pub src: usize,
    pub payload: Vec<u8>,
    /// Simulated arrival time at the destination.
    pub arrival_s: f64,
}

#[derive(Default)]
struct MailboxInner {
    queues: Vec<VecDeque<Message>>, // indexed by source rank
}

/// Shared post office for one cluster.
pub(crate) struct PostOffice {
    boxes: Vec<(Mutex<MailboxInner>, Condvar)>,
}

impl PostOffice {
    pub(crate) fn new(size: usize) -> Arc<Self> {
        Arc::new(PostOffice {
            boxes: (0..size)
                .map(|_| {
                    (
                        Mutex::new(MailboxInner {
                            queues: (0..size).map(|_| VecDeque::new()).collect(),
                        }),
                        Condvar::new(),
                    )
                })
                .collect(),
        })
    }

    pub(crate) fn deposit(&self, dst: usize, msg: Message) {
        let (lock, cv) = &self.boxes[dst];
        lock.lock().queues[msg.src].push_back(msg);
        cv.notify_all();
    }

    /// Block until a message from `src` for `dst` exists; pop it.
    pub(crate) fn take_from(&self, dst: usize, src: usize) -> Message {
        let (lock, cv) = &self.boxes[dst];
        let mut inner = lock.lock();
        loop {
            if let Some(m) = inner.queues[src].pop_front() {
                return m;
            }
            cv.wait(&mut inner);
        }
    }

    /// Pop any pending message for `dst` (lowest source rank first), if one
    /// exists right now.
    pub(crate) fn try_take_any(&self, dst: usize) -> Option<Message> {
        let (lock, _) = &self.boxes[dst];
        let mut inner = lock.lock();
        for q in inner.queues.iter_mut() {
            if let Some(m) = q.pop_front() {
                return Some(m);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use crate::{Cluster, ClusterSpec};

    #[test]
    fn messages_arrive_with_payload_and_timing() {
        let cluster = Cluster::new(2, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            if ctx.rank() == 0 {
                let payload = vec![7u8; 1_000_000];
                ctx.comm_mut().send_bytes(1, &payload).unwrap();
                ctx.comm().clock().now_s()
            } else {
                let msg = ctx.comm_mut().recv_bytes_from(0).unwrap();
                assert_eq!(msg.payload.len(), 1_000_000);
                assert!(msg.payload.iter().all(|&b| b == 7));
                ctx.comm().clock().now_s()
            }
        });
        let spec = ClusterSpec::cray_xc40();
        // Sender paid only the injection overhead...
        assert!((out[0] - spec.latency_s).abs() < 1e-12);
        // ...receiver idled until the transfer completed, then paid the
        // receive occupancy for draining it off the link.
        let expect = spec.latency_s + 2.0 * 1e6 / spec.bandwidth_bps;
        assert!(
            (out[1] - expect).abs() < 1e-9,
            "receiver at {} vs expected {expect}",
            out[1]
        );
    }

    #[test]
    fn ping_pong_round_trip() {
        let cluster = Cluster::new(2, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.comm_mut().send_bytes(1, b"ping").unwrap();
                let reply = ctx.comm_mut().recv_bytes_from(1).unwrap();
                reply.payload
            } else {
                let msg = ctx.comm_mut().recv_bytes_from(0).unwrap();
                assert_eq!(&msg.payload, b"ping");
                ctx.comm_mut().send_bytes(0, b"pong").unwrap();
                b"pong".to_vec()
            }
        });
        assert_eq!(out[0], b"pong");
    }

    #[test]
    fn many_to_one_preserves_per_source_order() {
        let cluster = Cluster::new(4, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            if ctx.rank() == 0 {
                let mut got = Vec::new();
                // Drain peers in fixed order: deterministic.
                for src in 1..4 {
                    for _ in 0..3 {
                        let m = ctx.comm_mut().recv_bytes_from(src).unwrap();
                        got.push((m.src, m.payload[0]));
                    }
                }
                got
            } else {
                for i in 0..3u8 {
                    let payload = [i + 10 * ctx.rank() as u8];
                    ctx.comm_mut().send_bytes(0, &payload).unwrap();
                }
                Vec::new()
            }
        });
        let got = &out[0];
        assert_eq!(got.len(), 9);
        for src in 1..4usize {
            let from_src: Vec<u8> = got
                .iter()
                .filter(|&&(s, _)| s == src)
                .map(|&(_, v)| v)
                .collect();
            let want: Vec<u8> = (0..3).map(|i| i + 10 * src as u8).collect();
            assert_eq!(from_src, want, "per-source FIFO order");
        }
    }

    #[test]
    fn send_to_invalid_rank_errors() {
        let cluster = Cluster::new(1, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| ctx.comm_mut().send_bytes(5, b"x").err());
        assert!(out[0].is_some());
    }

    #[test]
    fn try_recv_any_returns_none_when_empty() {
        let cluster = Cluster::new(2, ClusterSpec::cray_xc40());
        let out = cluster.run(|ctx| {
            if ctx.rank() == 0 {
                let empty = ctx.comm_mut().try_recv_bytes_any().unwrap().is_none();
                // Synchronize, then the message must be there.
                ctx.comm_mut().barrier();
                let mut got = None;
                while got.is_none() {
                    got = ctx.comm_mut().try_recv_bytes_any().unwrap();
                }
                (empty, got.unwrap().payload)
            } else {
                ctx.comm_mut().send_bytes(0, b"hi").unwrap();
                ctx.comm_mut().barrier();
                (true, Vec::new())
            }
        });
        assert!(out[0].0);
        assert_eq!(out[0].1, b"hi");
    }

    #[test]
    fn many_to_one_serializes_at_the_receiver() {
        // W workers each send 1 MB to rank 0 "simultaneously"; the
        // receiver must pay ≥ W·mβ of occupancy — the parameter-server
        // ingress bottleneck the paper's introduction describes.
        let spec = ClusterSpec::cray_xc40();
        let cluster = Cluster::new(5, spec.clone());
        let out = cluster.run(|ctx| {
            let payload = vec![1u8; 1_000_000];
            if ctx.rank() == 0 {
                for src in 1..5 {
                    ctx.comm_mut().recv_bytes_from(src).unwrap();
                }
                ctx.comm().clock().now_s()
            } else {
                ctx.comm_mut().send_bytes(0, &payload).unwrap();
                ctx.comm().clock().now_s()
            }
        });
        let per_msg = 1e6 / spec.bandwidth_bps;
        assert!(
            out[0] >= 4.0 * per_msg,
            "server at {} must pay at least 4 messages of occupancy ({})",
            out[0],
            4.0 * per_msg
        );
        // Each sender only paid the injection overhead.
        for t in &out[1..] {
            assert!(*t < per_msg, "sender time {t}");
        }
    }
}
