//! The cluster executor: runs one closure per logical node, each on its own
//! OS thread, wired together by a shared communicator.

use crate::comm::{CommWorld, Communicator};
use crate::fault::FaultPlan;
use crate::spec::ClusterSpec;
use std::sync::Arc;
use std::thread;

/// Execution context handed to the program running on one node.
pub struct NodeCtx {
    spec: ClusterSpec,
    comm: Communicator,
}

impl NodeCtx {
    /// This node's rank in `0..size()`. Delegates to the communicator, so
    /// it stays correct after a crash shrinks the world mid-run.
    #[inline]
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Number of nodes in the cluster (current communicator size).
    #[inline]
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// The hardware description the cluster was built with.
    #[inline]
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Read-only communicator access (clock, traffic, cost model).
    #[inline]
    pub fn comm(&self) -> &Communicator {
        &self.comm
    }

    /// Communicator access for collectives and compute charging.
    #[inline]
    pub fn comm_mut(&mut self) -> &mut Communicator {
        &mut self.comm
    }
}

/// A simulated cluster of `p` nodes.
///
/// [`Cluster::run`] executes the given SPMD program once per node, each on
/// its own thread, and returns the per-rank results in rank order. The
/// program must be *collectively well-formed*: every rank must call the
/// same sequence of collectives (the usual MPI contract). Nodes that
/// diverge deadlock, exactly as they would under MPI.
pub struct Cluster {
    size: usize,
    spec: ClusterSpec,
    plan: Arc<FaultPlan>,
}

impl Cluster {
    /// Build a cluster of `size ≥ 1` nodes with the given hardware spec.
    pub fn new(size: usize, spec: ClusterSpec) -> Self {
        assert!(size >= 1, "a cluster needs at least one node");
        Cluster {
            size,
            spec,
            plan: Arc::new(FaultPlan::none()),
        }
    }

    /// Attach a fault schedule (builder style). With [`FaultPlan::none`]
    /// — the default — every code path and simulated time is bit-identical
    /// to a cluster built without a plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = Arc::new(plan);
        self
    }

    /// The attached fault schedule.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Run the SPMD program `f` on every node; returns results rank-major.
    ///
    /// Results are deterministic for deterministic programs: collectives
    /// reduce in fixed rank order and each rank should derive its RNG
    /// stream from its rank.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut NodeCtx) -> R + Sync,
    {
        let world = CommWorld::new(self.size, self.plan.clone(), (0..self.size).collect());
        thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.size);
            for rank in 0..self.size {
                let world = world.clone();
                let spec = self.spec.clone();
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut ctx = NodeCtx {
                        comm: Communicator::new(world, rank, &spec),
                        spec,
                    };
                    f(&mut ctx)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("node thread panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_one_closure_per_rank_in_order() {
        let cluster = Cluster::new(5, ClusterSpec::ideal());
        let ranks = cluster.run(|ctx| ctx.rank());
        assert_eq!(ranks, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ctx_exposes_size_and_spec() {
        let cluster = Cluster::new(3, ClusterSpec::ethernet_10g());
        let out = cluster.run(|ctx| (ctx.size(), ctx.spec().latency_s));
        for (size, lat) in out {
            assert_eq!(size, 3);
            assert_eq!(lat, ClusterSpec::ethernet_10g().latency_s);
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = Cluster::new(0, ClusterSpec::ideal());
    }

    #[test]
    fn deterministic_across_runs() {
        let cluster = Cluster::new(4, ClusterSpec::cray_xc40());
        let prog = |ctx: &mut NodeCtx| {
            let mut v: Vec<f32> = (0..64).map(|i| (i * (ctx.rank() + 1)) as f32 * 0.1).collect();
            for _ in 0..10 {
                ctx.comm_mut().allreduce_sum_f32(&mut v).unwrap();
                for x in v.iter_mut() {
                    *x *= 0.25;
                }
            }
            v
        };
        let a = cluster.run(prog);
        let b = cluster.run(prog);
        assert_eq!(a, b, "collective reductions must be bit-deterministic");
    }
}
