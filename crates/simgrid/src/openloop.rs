//! Open-loop arrival process for load generation on the simulated clock.
//!
//! An *open-loop* generator issues requests on its own schedule — arrivals
//! do not wait for earlier requests to complete, so queueing delay shows up
//! in the measured latency instead of silently throttling the offered load
//! (the coordinated-omission trap of closed-loop generators). Arrivals are
//! a Poisson process: i.i.d. exponential gaps with mean `1/rate`, drawn
//! from a private [`SplitMix64Stream`] so the schedule is a pure function
//! of `(rate_qps, seed)`.
//!
//! [`SplitMix64Stream`]: crate::fault::SplitMix64Stream

use crate::fault::SplitMix64Stream;

/// Deterministic Poisson arrival schedule: successive calls to
/// [`next_arrival_s`] return a strictly increasing sequence of simulated
/// arrival times (seconds from the epoch the generator was created at).
///
/// [`next_arrival_s`]: OpenLoopArrivals::next_arrival_s
#[derive(Debug, Clone)]
pub struct OpenLoopArrivals {
    rate_qps: f64,
    now_s: f64,
    stream: SplitMix64Stream,
}

impl OpenLoopArrivals {
    /// Arrival process offering `rate_qps` queries per simulated second
    /// (must be finite and positive).
    pub fn new(rate_qps: f64, seed: u64) -> Self {
        assert!(
            rate_qps.is_finite() && rate_qps > 0.0,
            "offered rate must be positive, got {rate_qps}"
        );
        OpenLoopArrivals {
            rate_qps,
            now_s: 0.0,
            stream: SplitMix64Stream::new(seed),
        }
    }

    /// The offered rate in queries per simulated second.
    pub fn rate_qps(&self) -> f64 {
        self.rate_qps
    }

    /// Next arrival time in simulated seconds. Strictly increasing: the
    /// exponential gap is drawn from `u ∈ (0, 1]` so it is never zero.
    pub fn next_arrival_s(&mut self) -> f64 {
        // (next_u64 >> 11) is uniform over [0, 2^53); shifting to (0, 2^53]
        // before scaling keeps ln() away from 0 and the gap finite.
        let u = ((self.stream.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64;
        let gap = -u.ln() / self.rate_qps;
        self.now_s += gap;
        self.now_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = OpenLoopArrivals::new(1000.0, 42);
        let mut b = OpenLoopArrivals::new(1000.0, 42);
        for _ in 0..1000 {
            assert_eq!(a.next_arrival_s(), b.next_arrival_s());
        }
    }

    #[test]
    fn strictly_increasing() {
        let mut a = OpenLoopArrivals::new(50_000.0, 7);
        let mut last = 0.0f64;
        for _ in 0..10_000 {
            let t = a.next_arrival_s();
            assert!(t > last, "arrivals must be strictly increasing");
            last = t;
        }
    }

    #[test]
    fn mean_gap_matches_offered_rate() {
        let rate = 2000.0;
        let mut a = OpenLoopArrivals::new(rate, 11);
        let n = 200_000usize;
        let mut t = 0.0;
        for _ in 0..n {
            t = a.next_arrival_s();
        }
        let mean_gap = t / n as f64;
        let expect = 1.0 / rate;
        assert!(
            (mean_gap - expect).abs() < 0.02 * expect,
            "mean gap {mean_gap} vs expected {expect}"
        );
    }

    #[test]
    fn different_seeds_decorrelate() {
        let mut a = OpenLoopArrivals::new(1000.0, 1);
        let mut b = OpenLoopArrivals::new(1000.0, 2);
        let same = (0..100)
            .filter(|_| a.next_arrival_s() == b.next_arrival_s())
            .count();
        assert!(same < 5, "seeds should give distinct schedules");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_rate() {
        let _ = OpenLoopArrivals::new(0.0, 3);
    }
}
