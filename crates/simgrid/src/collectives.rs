//! Reference implementations of the collective *algorithms* the cost model
//! prices.
//!
//! The [`crate::Communicator`] moves data through a staging area for
//! simplicity and determinism; the functions here implement the actual
//! ring / recursive-doubling schedules step by step on a set of per-rank
//! buffers. They serve two purposes:
//!
//! 1. **Benchmarks** — `bench/benches/collectives.rs` measures their real
//!    throughput, validating the relative algorithmic costs the α-β model
//!    assumes (ring moves `2m(p−1)/p` per node, recursive doubling
//!    `m·log₂p`).
//! 2. **Oracles** — property tests check that every schedule computes the
//!    same reduction as the sequential reference (up to FP reassociation).

/// Sequential rank-order sum of all inputs; the correctness oracle.
///
/// Panics if input lengths differ.
pub fn reference_allreduce(inputs: &[Vec<f32>]) -> Vec<f32> {
    assert!(!inputs.is_empty());
    let n = inputs[0].len();
    let mut acc = vec![0.0f32; n];
    for input in inputs {
        assert_eq!(input.len(), n, "mismatched buffer lengths");
        for (a, &v) in acc.iter_mut().zip(input) {
            *a += v;
        }
    }
    acc
}

/// Number of point-to-point messages per node a ring all-reduce sends.
pub fn ring_allreduce_steps(p: usize) -> usize {
    if p <= 1 {
        0
    } else {
        2 * (p - 1)
    }
}

/// Bandwidth-optimal ring all-reduce executed on `p` rank buffers.
///
/// Phase 1 (reduce-scatter): in step `s`, rank `r` sends chunk
/// `(r − s) mod p` to rank `r+1` and accumulates the chunk it receives.
/// Phase 2 (all-gather): the fully reduced chunks circulate once more.
/// After `2(p−1)` steps every buffer holds the total sum.
///
/// The schedule is executed step-synchronously (all sends of a step happen
/// "at once" via a scratch copy), faithfully modelling the data movement of
/// the distributed algorithm in a single address space.
pub fn ring_allreduce(bufs: &mut [Vec<f32>]) {
    let p = bufs.len();
    assert!(p >= 1);
    let n = bufs[0].len();
    for b in bufs.iter() {
        assert_eq!(b.len(), n, "mismatched buffer lengths");
    }
    if p == 1 || n == 0 {
        return;
    }
    // Chunk c of rank r spans chunk_range(c).
    let chunk_range = |c: usize| -> std::ops::Range<usize> {
        let lo = c * n / p;
        let hi = (c + 1) * n / p;
        lo..hi
    };
    // Reduce-scatter phase.
    for step in 0..p - 1 {
        // Snapshot the chunks being sent this step before any writes.
        let mut sends: Vec<(usize, usize, Vec<f32>)> = Vec::with_capacity(p); // (dst, chunk, data)
        for (r, buf) in bufs.iter().enumerate() {
            let c = (r + p - step) % p;
            let dst = (r + 1) % p;
            sends.push((dst, c, buf[chunk_range(c)].to_vec()));
        }
        for (dst, c, data) in sends {
            let range = chunk_range(c);
            for (a, v) in bufs[dst][range].iter_mut().zip(data) {
                *a += v;
            }
        }
    }
    // All-gather phase: after reduce-scatter, rank r owns the fully reduced
    // chunk (r+1) mod p. Circulate ownership around the ring.
    for step in 0..p - 1 {
        let mut sends: Vec<(usize, usize, Vec<f32>)> = Vec::with_capacity(p);
        for (r, buf) in bufs.iter().enumerate() {
            let c = (r + 1 + p - step) % p;
            let dst = (r + 1) % p;
            sends.push((dst, c, buf[chunk_range(c)].to_vec()));
        }
        for (dst, c, data) in sends {
            let range = chunk_range(c);
            bufs[dst][range].copy_from_slice(&data);
        }
    }
}

/// Latency-optimal recursive-doubling all-reduce for `p` a power of two
/// (non-powers fall back to [`reference_allreduce`] semantics by reducing
/// through the nearest embedded hypercube plus fix-up exchanges).
pub fn recursive_doubling_allreduce(bufs: &mut [Vec<f32>]) {
    let p = bufs.len();
    assert!(p >= 1);
    let n = bufs[0].len();
    for b in bufs.iter() {
        assert_eq!(b.len(), n, "mismatched buffer lengths");
    }
    if p == 1 || n == 0 {
        return;
    }
    if !p.is_power_of_two() {
        // Fold the excess ranks into the hypercube, run the power-of-two
        // schedule, then copy results back out — the standard MPI fix-up.
        let q = p.next_power_of_two() / 2;
        let extra = p - q;
        for r in 0..extra {
            let (low, high) = bufs.split_at_mut(q);
            for (a, &v) in low[r].iter_mut().zip(high[r].iter()) {
                *a += v;
            }
        }
        {
            let (low, _) = bufs.split_at_mut(q);
            recursive_doubling_allreduce(low);
        }
        let (low, high) = bufs.split_at_mut(q);
        for r in 0..extra {
            high[r].copy_from_slice(&low[r]);
        }
        return;
    }
    let mut dist = 1;
    while dist < p {
        // Pairwise exchange and add at distance `dist`.
        let mut partners: Vec<(usize, Vec<f32>)> = Vec::with_capacity(p);
        for (r, buf) in bufs.iter().enumerate() {
            partners.push((r ^ dist, buf.clone()));
        }
        for (partner, data) in partners {
            for (a, v) in bufs[partner].iter_mut().zip(data) {
                *a += v;
            }
        }
        dist <<= 1;
    }
}

/// Ring all-gather of variable-size contributions: returns, for every rank,
/// the concatenation of all contributions in rank order.
pub fn ring_allgatherv(contribs: &[Vec<f32>]) -> Vec<Vec<f32>> {
    let p = contribs.len();
    let mut out: Vec<Vec<f32>> = vec![Vec::new(); p];
    for dst in out.iter_mut() {
        for c in contribs {
            dst.extend_from_slice(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| (x - y).abs() <= 1e-4 * (1.0 + x.abs().max(y.abs())))
    }

    fn make_bufs(p: usize, n: usize) -> Vec<Vec<f32>> {
        (0..p)
            .map(|r| {
                (0..n)
                    .map(|i| ((r * 31 + i * 7) % 13) as f32 - 6.0 + 0.25 * r as f32)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn ring_matches_reference_various_sizes() {
        for p in [1usize, 2, 3, 4, 5, 7, 8, 16] {
            for n in [0usize, 1, 5, 16, 33, 257] {
                let bufs = make_bufs(p, n);
                let want = reference_allreduce(&bufs);
                let mut got = bufs.clone();
                ring_allreduce(&mut got);
                for (r, g) in got.iter().enumerate() {
                    assert!(close(g, &want), "ring p={p} n={n} rank={r}");
                }
            }
        }
    }

    #[test]
    fn recursive_doubling_matches_reference() {
        for p in [1usize, 2, 3, 4, 6, 8, 12, 16] {
            for n in [1usize, 8, 65] {
                let bufs = make_bufs(p, n);
                let want = reference_allreduce(&bufs);
                let mut got = bufs.clone();
                recursive_doubling_allreduce(&mut got);
                for (r, g) in got.iter().enumerate() {
                    assert!(close(g, &want), "recdbl p={p} n={n} rank={r}");
                }
            }
        }
    }

    #[test]
    fn allgatherv_concatenates_everywhere() {
        let contribs = vec![vec![1.0], vec![], vec![2.0, 3.0]];
        let out = ring_allgatherv(&contribs);
        assert_eq!(out.len(), 3);
        for o in out {
            assert_eq!(o, vec![1.0, 2.0, 3.0]);
        }
    }

    #[test]
    fn step_counts() {
        assert_eq!(ring_allreduce_steps(1), 0);
        assert_eq!(ring_allreduce_steps(2), 2);
        assert_eq!(ring_allreduce_steps(8), 14);
    }
}
