//! Error type for collective operations.

use std::fmt;

/// Errors raised by the simulated communication layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Participants presented buffers of different lengths to an operation
    /// that requires congruent shapes (e.g. all-reduce).
    ShapeMismatch {
        op: &'static str,
        expected: usize,
        got: usize,
        rank: usize,
    },
    /// A rank outside `0..size` was referenced.
    InvalidRank { rank: usize, size: usize },
    /// A peer thread panicked or exited mid-collective.
    PeerFailure { detail: String },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ShapeMismatch {
                op,
                expected,
                got,
                rank,
            } => write!(
                f,
                "{op}: buffer length mismatch (rank {rank} presented {got}, expected {expected})"
            ),
            SimError::InvalidRank { rank, size } => {
                write!(f, "invalid rank {rank} for communicator of size {size}")
            }
            SimError::PeerFailure { detail } => write!(f, "peer failure: {detail}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SimError::ShapeMismatch {
            op: "allreduce",
            expected: 8,
            got: 4,
            rank: 2,
        };
        let s = e.to_string();
        assert!(s.contains("allreduce") && s.contains("rank 2"));

        let e = SimError::InvalidRank { rank: 9, size: 4 };
        assert!(e.to_string().contains("rank 9"));
    }
}
