//! Error type for collective operations.

use std::fmt;

/// Errors raised by the simulated communication layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Participants presented buffers of different lengths to an operation
    /// that requires congruent shapes (e.g. all-reduce).
    ShapeMismatch {
        op: &'static str,
        expected: usize,
        got: usize,
        rank: usize,
    },
    /// A rank outside `0..size` was referenced.
    InvalidRank { rank: usize, size: usize },
    /// A peer thread panicked or exited mid-collective.
    PeerFailure { detail: String },
    /// An operation exhausted its retry budget: every attempt (original
    /// plus retries) was lost to injected faults. `waited_s` is the total
    /// simulated time spent on timeouts and backoff before giving up.
    Timeout {
        op: &'static str,
        rank: usize,
        waited_s: f64,
    },
    /// A peer rank (original id) crashed per the active `FaultPlan`; the
    /// collective cannot complete at the current communicator size.
    RankCrashed { rank: usize },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ShapeMismatch {
                op,
                expected,
                got,
                rank,
            } => write!(
                f,
                "{op}: buffer length mismatch (rank {rank} presented {got}, expected {expected})"
            ),
            SimError::InvalidRank { rank, size } => {
                write!(f, "invalid rank {rank} for communicator of size {size}")
            }
            SimError::PeerFailure { detail } => write!(f, "peer failure: {detail}"),
            SimError::Timeout { op, rank, waited_s } => write!(
                f,
                "{op}: rank {rank} timed out after {waited_s:.3}s of retries"
            ),
            SimError::RankCrashed { rank } => write!(f, "rank {rank} crashed"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SimError::ShapeMismatch {
            op: "allreduce",
            expected: 8,
            got: 4,
            rank: 2,
        };
        let s = e.to_string();
        assert!(s.contains("allreduce") && s.contains("rank 2"));

        let e = SimError::InvalidRank { rank: 9, size: 4 };
        assert!(e.to_string().contains("rank 9"));

        let e = SimError::Timeout {
            op: "send_bytes",
            rank: 3,
            waited_s: 0.456,
        };
        let s = e.to_string();
        assert!(
            s.contains("send_bytes") && s.contains("rank 3") && s.contains("0.456"),
            "timeout display missing context: {s}"
        );

        let e = SimError::RankCrashed { rank: 2 };
        assert!(e.to_string().contains("rank 2 crashed"));
    }

    #[test]
    fn errors_compare_by_value() {
        // PartialEq survives the float-bearing Timeout variant (Eq was
        // dropped when `waited_s` was added).
        let a = SimError::Timeout {
            op: "allreduce",
            rank: 0,
            waited_s: 0.5,
        };
        assert_eq!(a.clone(), a);
        assert_ne!(a, SimError::RankCrashed { rank: 0 });
    }
}
