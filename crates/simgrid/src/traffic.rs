//! Per-rank accounting of communication traffic.

use crate::cost::Collective;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Mutable per-rank traffic counters, updated by the communicator.
#[derive(Debug, Clone, Default)]
pub struct TrafficStats {
    entries: BTreeMap<Collective, Counter>,
}

#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct Counter {
    ops: u64,
    bytes_sent: u64,
    bytes_recv: u64,
}

impl TrafficStats {
    /// Record one collective in which this rank contributed `sent` bytes
    /// and received `recv` bytes.
    pub fn record(&mut self, op: Collective, sent: usize, recv: usize) {
        let c = self.entries.entry(op).or_default();
        c.ops += 1;
        c.bytes_sent += sent as u64;
        c.bytes_recv += recv as u64;
    }

    /// Immutable snapshot for reporting.
    pub fn report(&self) -> TrafficReport {
        TrafficReport {
            entries: self.entries.clone(),
        }
    }

    /// Reset all counters (e.g. at an epoch boundary).
    pub fn reset(&mut self) {
        self.entries.clear();
    }
}

/// Immutable snapshot of [`TrafficStats`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrafficReport {
    entries: BTreeMap<Collective, Counter>,
}

impl TrafficReport {
    /// Number of collectives of kind `op` this rank took part in.
    pub fn ops(&self, op: Collective) -> u64 {
        self.entries.get(&op).map_or(0, |c| c.ops)
    }

    /// Bytes this rank contributed to collectives of kind `op`.
    pub fn bytes_sent(&self, op: Collective) -> u64 {
        self.entries.get(&op).map_or(0, |c| c.bytes_sent)
    }

    /// Bytes this rank received from collectives of kind `op`.
    pub fn bytes_recv(&self, op: Collective) -> u64 {
        self.entries.get(&op).map_or(0, |c| c.bytes_recv)
    }

    /// Total bytes moved (sent + received) over all collectives.
    pub fn total_bytes(&self) -> u64 {
        self.entries
            .values()
            .map(|c| c.bytes_sent + c.bytes_recv)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut t = TrafficStats::default();
        t.record(Collective::AllReduce, 100, 100);
        t.record(Collective::AllReduce, 50, 50);
        t.record(Collective::AllGatherV, 10, 40);
        let r = t.report();
        assert_eq!(r.ops(Collective::AllReduce), 2);
        assert_eq!(r.bytes_sent(Collective::AllReduce), 150);
        assert_eq!(r.bytes_recv(Collective::AllGatherV), 40);
        assert_eq!(r.total_bytes(), 150 + 150 + 10 + 40);
    }

    #[test]
    fn unknown_ops_report_zero() {
        let r = TrafficStats::default().report();
        assert_eq!(r.ops(Collective::Broadcast), 0);
        assert_eq!(r.total_bytes(), 0);
    }

    #[test]
    fn reset_clears_counters() {
        let mut t = TrafficStats::default();
        t.record(Collective::Barrier, 0, 0);
        t.reset();
        assert_eq!(t.report().ops(Collective::Barrier), 0);
    }
}
