//! Per-rank accounting of communication traffic.

use crate::cost::Collective;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Mutable per-rank traffic counters, updated by the communicator.
#[derive(Debug, Clone, Default)]
pub struct TrafficStats {
    entries: BTreeMap<Collective, Counter>,
}

#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct Counter {
    ops: u64,
    bytes_sent: u64,
    bytes_recv: u64,
    /// Bytes this rank put on the wire: payload actually transmitted to
    /// other ranks, excluding its own contribution to results it keeps.
    /// Unlike `bytes_sent`/`bytes_recv` (which describe the logical
    /// payload of the call), wire counters satisfy exact conservation:
    /// summed over all ranks, `wire_sent == wire_recv`.
    #[serde(default)]
    wire_sent: u64,
    /// Bytes delivered to this rank over the wire from other ranks.
    #[serde(default)]
    wire_recv: u64,
    /// Retransmission attempts absorbed by the retry policy.
    #[serde(default)]
    retries: u64,
}

impl TrafficStats {
    /// Record one collective in which this rank contributed `sent` bytes
    /// and received `recv` bytes.
    pub fn record(&mut self, op: Collective, sent: usize, recv: usize) {
        let c = self.entries.entry(op).or_default();
        c.ops += 1;
        c.bytes_sent += sent as u64;
        c.bytes_recv += recv as u64;
    }

    /// Record the wire traffic of one operation: `out` bytes transmitted
    /// to peers, `in_` bytes delivered from peers. Single-rank fast paths
    /// record zero wire bytes.
    pub fn record_wire(&mut self, op: Collective, out: usize, in_: usize) {
        let c = self.entries.entry(op).or_default();
        c.wire_sent += out as u64;
        c.wire_recv += in_ as u64;
    }

    /// Record `n` retransmission attempts charged to `op` by the fault
    /// retry policy.
    pub fn record_retries(&mut self, op: Collective, n: u64) {
        self.entries.entry(op).or_default().retries += n;
    }

    /// Immutable snapshot for reporting.
    pub fn report(&self) -> TrafficReport {
        TrafficReport {
            entries: self.entries.clone(),
        }
    }

    /// Reset all counters (e.g. at an epoch boundary).
    pub fn reset(&mut self) {
        self.entries.clear();
    }

    /// Export every counter as `(op, [ops, bytes_sent, bytes_recv,
    /// wire_sent, wire_recv, retries])` in `Collective` order, appending to
    /// `out` (cleared first). Checkpointing serializes this flat form.
    pub fn export_into(&self, out: &mut Vec<(Collective, [u64; 6])>) {
        out.clear();
        for (&op, c) in &self.entries {
            out.push((
                op,
                [
                    c.ops,
                    c.bytes_sent,
                    c.bytes_recv,
                    c.wire_sent,
                    c.wire_recv,
                    c.retries,
                ],
            ));
        }
    }

    /// Overwrite all counters from an [`TrafficStats::export_into`] image;
    /// a resumed rank continues accumulating from the restored totals.
    pub fn import(&mut self, entries: &[(Collective, [u64; 6])]) {
        self.entries.clear();
        for &(op, [ops, bytes_sent, bytes_recv, wire_sent, wire_recv, retries]) in entries {
            self.entries.insert(
                op,
                Counter {
                    ops,
                    bytes_sent,
                    bytes_recv,
                    wire_sent,
                    wire_recv,
                    retries,
                },
            );
        }
    }
}

/// Immutable snapshot of [`TrafficStats`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrafficReport {
    entries: BTreeMap<Collective, Counter>,
}

impl TrafficReport {
    /// Number of collectives of kind `op` this rank took part in.
    pub fn ops(&self, op: Collective) -> u64 {
        self.entries.get(&op).map_or(0, |c| c.ops)
    }

    /// Bytes this rank contributed to collectives of kind `op`.
    pub fn bytes_sent(&self, op: Collective) -> u64 {
        self.entries.get(&op).map_or(0, |c| c.bytes_sent)
    }

    /// Bytes this rank received from collectives of kind `op`.
    pub fn bytes_recv(&self, op: Collective) -> u64 {
        self.entries.get(&op).map_or(0, |c| c.bytes_recv)
    }

    /// Total bytes moved (sent + received) over all collectives.
    pub fn total_bytes(&self) -> u64 {
        self.entries
            .values()
            .map(|c| c.bytes_sent + c.bytes_recv)
            .sum()
    }

    /// Bytes this rank transmitted over the wire in collectives of kind
    /// `op` (conservation-exact; see [`TrafficStats::record_wire`]).
    pub fn wire_sent(&self, op: Collective) -> u64 {
        self.entries.get(&op).map_or(0, |c| c.wire_sent)
    }

    /// Bytes delivered to this rank over the wire in collectives of kind
    /// `op`.
    pub fn wire_recv(&self, op: Collective) -> u64 {
        self.entries.get(&op).map_or(0, |c| c.wire_recv)
    }

    /// Retransmission attempts charged to `op`.
    pub fn retries(&self, op: Collective) -> u64 {
        self.entries.get(&op).map_or(0, |c| c.retries)
    }

    /// Total wire bytes transmitted across all ops. Across all ranks of a
    /// run, `Σ total_wire_sent == Σ total_wire_recv` exactly.
    pub fn total_wire_sent(&self) -> u64 {
        self.entries.values().map(|c| c.wire_sent).sum()
    }

    /// Total wire bytes delivered across all ops.
    pub fn total_wire_recv(&self) -> u64 {
        self.entries.values().map(|c| c.wire_recv).sum()
    }

    /// Total retransmission attempts across all ops.
    pub fn total_retries(&self) -> u64 {
        self.entries.values().map(|c| c.retries).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut t = TrafficStats::default();
        t.record(Collective::AllReduce, 100, 100);
        t.record(Collective::AllReduce, 50, 50);
        t.record(Collective::AllGatherV, 10, 40);
        let r = t.report();
        assert_eq!(r.ops(Collective::AllReduce), 2);
        assert_eq!(r.bytes_sent(Collective::AllReduce), 150);
        assert_eq!(r.bytes_recv(Collective::AllGatherV), 40);
        assert_eq!(r.total_bytes(), 150 + 150 + 10 + 40);
    }

    #[test]
    fn unknown_ops_report_zero() {
        let r = TrafficStats::default().report();
        assert_eq!(r.ops(Collective::Broadcast), 0);
        assert_eq!(r.total_bytes(), 0);
    }

    #[test]
    fn reset_clears_counters() {
        let mut t = TrafficStats::default();
        t.record(Collective::Barrier, 0, 0);
        t.reset();
        assert_eq!(t.report().ops(Collective::Barrier), 0);
    }

    #[test]
    fn export_import_roundtrips_every_counter() {
        let mut t = TrafficStats::default();
        t.record(Collective::AllReduce, 100, 200);
        t.record_wire(Collective::AllReduce, 75, 80);
        t.record_retries(Collective::AllReduce, 3);
        t.record(Collective::AllGatherV, 10, 40);
        t.record_wire(Collective::PointToPoint, 5, 0);

        let mut image = Vec::new();
        t.export_into(&mut image);
        let mut u = TrafficStats::default();
        u.record(Collective::Broadcast, 9, 9); // overwritten by import
        u.import(&image);

        let (a, b) = (t.report(), u.report());
        for op in [
            Collective::AllReduce,
            Collective::AllGatherV,
            Collective::Broadcast,
            Collective::Barrier,
            Collective::Gather,
            Collective::PointToPoint,
        ] {
            assert_eq!(a.ops(op), b.ops(op));
            assert_eq!(a.bytes_sent(op), b.bytes_sent(op));
            assert_eq!(a.bytes_recv(op), b.bytes_recv(op));
            assert_eq!(a.wire_sent(op), b.wire_sent(op));
            assert_eq!(a.wire_recv(op), b.wire_recv(op));
            assert_eq!(a.retries(op), b.retries(op));
        }
        // Importing restores totals that keep accumulating.
        u.record(Collective::AllReduce, 1, 1);
        assert_eq!(u.report().ops(Collective::AllReduce), 2);
    }

    #[test]
    fn wire_and_retry_counters_accumulate_independently() {
        let mut t = TrafficStats::default();
        t.record(Collective::AllReduce, 100, 100);
        t.record_wire(Collective::AllReduce, 75, 75);
        t.record_wire(Collective::AllReduce, 25, 30);
        t.record_retries(Collective::AllReduce, 2);
        t.record_retries(Collective::PointToPoint, 1);
        let r = t.report();
        assert_eq!(r.wire_sent(Collective::AllReduce), 100);
        assert_eq!(r.wire_recv(Collective::AllReduce), 105);
        assert_eq!(r.retries(Collective::AllReduce), 2);
        assert_eq!(r.retries(Collective::PointToPoint), 1);
        assert_eq!(r.total_wire_sent(), 100);
        assert_eq!(r.total_wire_recv(), 105);
        assert_eq!(r.total_retries(), 3);
        // Logical payload counters are untouched by wire records.
        assert_eq!(r.bytes_sent(Collective::AllReduce), 100);
    }
}
