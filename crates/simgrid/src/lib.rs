//! # simgrid — a simulated distributed-memory cluster
//!
//! This crate is the substrate that plays the role Horovod + MPI + the Cray
//! XC40 played in the paper *"Dynamic Strategies for High Performance
//! Training of Knowledge Graph Embeddings"* (ICPP '22).
//!
//! A [`Cluster`] runs `p` logical **nodes**, each on its own OS thread with
//! its own private state (in the KGE trainer: a full model replica). Nodes
//! communicate exclusively through MPI-style **collectives** on a
//! [`Communicator`]: `allreduce`, `allgatherv`, `broadcast`, `barrier`,
//! scalar reductions. The collectives move *real bytes* between the node
//! threads, so all distributed numerics (gradient averaging, quantization
//! error, sparsity) are exact.
//!
//! Time, on the other hand, is **simulated**: every collective charges each
//! participating node's [`SimClock`] according to an α-β (latency/bandwidth)
//! [`CostModel`] parameterized by a [`ClusterSpec`], and compute phases are
//! charged by the caller (`clock.charge_flops(...)`). This lets laptop-scale
//! runs report cluster-scale wall times with the same *shape* (who wins,
//! where crossovers fall) as a real machine, because "who wins" between
//! collectives is decided by communicated byte counts and collective
//! algorithmics — exactly the mechanism at play on real interconnects.
//!
//! ## Example
//!
//! ```
//! use simgrid::{Cluster, ClusterSpec};
//!
//! let cluster = Cluster::new(4, ClusterSpec::cray_xc40());
//! let sums = cluster.run(|ctx| {
//!     let mut local = vec![ctx.rank() as f32 + 1.0; 8];
//!     ctx.comm_mut().allreduce_sum_f32(&mut local).unwrap();
//!     local[0] // every node sees 1+2+3+4 = 10
//! });
//! assert!(sums.iter().all(|&s| s == 10.0));
//! ```

pub mod clock;
pub mod collectives;
pub mod comm;
pub mod cost;
pub mod error;
pub mod executor;
pub mod fault;
pub mod openloop;
pub mod p2p;
pub mod spec;
pub mod traffic;

pub use clock::{SimClock, TimeBreakdown};
pub use comm::{Communicator, OverlapStats};
pub use cost::{Collective, CostModel};
pub use error::SimError;
pub use fault::{FaultPlan, LinkDegradation, RankCrash, RetryPolicy, StragglerWindow};
pub use openloop::OpenLoopArrivals;
pub use p2p::Message;
pub use executor::{Cluster, NodeCtx};
pub use spec::ClusterSpec;
pub use traffic::{TrafficReport, TrafficStats};
