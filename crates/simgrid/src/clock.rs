//! Per-node simulated clocks.

use crate::spec::ClusterSpec;
use serde::{Deserialize, Serialize};

/// Breakdown of where a node's simulated time went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Seconds spent in local computation.
    pub compute_s: f64,
    /// Seconds spent inside collectives (data movement + reduction).
    pub comm_s: f64,
    /// Seconds spent waiting for slower peers to enter a collective.
    pub idle_s: f64,
}

impl TimeBreakdown {
    /// Total simulated seconds.
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.comm_s + self.idle_s
    }
}

/// A node-local simulated clock.
///
/// Compute phases are charged explicitly by the code running on the node
/// ([`SimClock::charge_flops`] / [`SimClock::charge_compute_seconds`]); collective
/// phases are charged by the [`crate::Communicator`], which also aligns
/// clocks across nodes (a synchronous collective starts when the *last*
/// participant arrives).
#[derive(Debug, Clone)]
pub struct SimClock {
    now_s: f64,
    breakdown: TimeBreakdown,
    node_flops: f64,
}

impl SimClock {
    pub fn new(spec: &ClusterSpec) -> Self {
        SimClock {
            now_s: 0.0,
            breakdown: TimeBreakdown::default(),
            node_flops: spec.effective_flops(),
        }
    }

    /// Current simulated time in seconds since the node started.
    #[inline]
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Where the time went so far.
    #[inline]
    pub fn breakdown(&self) -> TimeBreakdown {
        self.breakdown
    }

    /// Charge a local-compute phase of `flops` floating point operations.
    #[inline]
    pub fn charge_flops(&mut self, flops: f64) {
        debug_assert!(flops >= 0.0);
        self.charge_compute_seconds(flops / self.node_flops);
    }

    /// Charge a local-compute phase of a known duration.
    #[inline]
    pub fn charge_compute_seconds(&mut self, s: f64) {
        debug_assert!(s >= 0.0 && s.is_finite());
        self.now_s += s;
        self.breakdown.compute_s += s;
    }

    /// Charge idle time (waiting for peers). Used by the communicator.
    #[inline]
    pub fn charge_idle_until(&mut self, t: f64) {
        if t > self.now_s {
            self.breakdown.idle_s += t - self.now_s;
            self.now_s = t;
        }
    }

    /// Charge communication time. Used by the communicator.
    #[inline]
    pub fn charge_comm_seconds(&mut self, s: f64) {
        debug_assert!(s >= 0.0 && s.is_finite());
        self.now_s += s;
        self.breakdown.comm_s += s;
    }

    /// Reset to t=0 with an empty breakdown (e.g. between epochs when the
    /// caller keeps per-epoch accounts).
    pub fn reset(&mut self) {
        self.now_s = 0.0;
        self.breakdown = TimeBreakdown::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock() -> SimClock {
        SimClock::new(&ClusterSpec::cray_xc40())
    }

    #[test]
    fn starts_at_zero() {
        let c = clock();
        assert_eq!(c.now_s(), 0.0);
        assert_eq!(c.breakdown().total_s(), 0.0);
    }

    #[test]
    fn charges_accumulate_into_breakdown() {
        let mut c = clock();
        c.charge_flops(2.0e9); // exactly one second on the cray spec
        c.charge_comm_seconds(0.5);
        c.charge_idle_until(2.0);
        let b = c.breakdown();
        assert!((b.compute_s - 1.0).abs() < 1e-9);
        assert!((b.comm_s - 0.5).abs() < 1e-12);
        assert!((b.idle_s - 0.5).abs() < 1e-9);
        assert!((c.now_s() - 2.0).abs() < 1e-9);
        assert!((b.total_s() - c.now_s()).abs() < 1e-9);
    }

    #[test]
    fn idle_until_past_time_is_noop() {
        let mut c = clock();
        c.charge_comm_seconds(3.0);
        c.charge_idle_until(1.0);
        assert_eq!(c.now_s(), 3.0);
        assert_eq!(c.breakdown().idle_s, 0.0);
    }

    #[test]
    fn intra_node_speedup_scales_compute_charges() {
        // A measured 4× parallel speedup makes the same flop count cost a
        // quarter of the simulated compute time; the 1.0 default leaves
        // every existing timing untouched.
        let spec = ClusterSpec::cray_xc40().with_intra_node_speedup(4.0);
        let mut c = SimClock::new(&spec);
        c.charge_flops(2.0e9); // one second sequentially on the cray spec
        assert!((c.breakdown().compute_s - 0.25).abs() < 1e-12);
        assert_eq!(spec.effective_flops(), 8.0e9);
        assert!((spec.compute_time(2.0e9) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = clock();
        c.charge_flops(1e9);
        c.reset();
        assert_eq!(c.now_s(), 0.0);
        assert_eq!(c.breakdown(), TimeBreakdown::default());
    }
}
