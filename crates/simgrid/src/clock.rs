//! Per-node simulated clocks.

use crate::fault::FaultPlan;
use crate::spec::ClusterSpec;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Breakdown of where a node's simulated time went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Seconds spent in local computation.
    pub compute_s: f64,
    /// Seconds spent inside collectives (data movement + reduction).
    pub comm_s: f64,
    /// Seconds spent waiting for slower peers to enter a collective.
    pub idle_s: f64,
    /// Extra seconds lost to injected faults: straggler slowdown beyond
    /// the healthy compute time, link degradation beyond the healthy
    /// collective price, and failure-detection timeouts on crashed peers.
    #[serde(default)]
    pub fault_s: f64,
    /// Seconds spent in timeout + backoff before retransmitting messages
    /// or collective attempts lost to injected faults.
    #[serde(default)]
    pub retry_s: f64,
    /// Seconds spent serializing checkpoint snapshots (the synchronous
    /// part of periodic checkpointing; the disk drain itself is
    /// asynchronous and hidden behind subsequent compute).
    #[serde(default)]
    pub checkpoint_s: f64,
    /// Informational: width of the compute windows that pipelined
    /// (overlapped) collectives had available to hide behind. Not part of
    /// [`TimeBreakdown::total_s`] — the window itself is already counted
    /// as `compute_s` of the work that filled it.
    #[serde(default)]
    pub overlap_s: f64,
    /// Informational: seconds of collective price that were hidden behind
    /// compute by pipelined exchanges and therefore never advanced the
    /// clock. Not part of [`TimeBreakdown::total_s`]; the *visible*
    /// remainder of an overlapped collective still lands in `comm_s`.
    #[serde(default)]
    pub hidden_comm_s: f64,
}

impl TimeBreakdown {
    /// Total simulated seconds.
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.comm_s + self.idle_s + self.fault_s + self.retry_s + self.checkpoint_s
    }
}

/// A node-local simulated clock.
///
/// Compute phases are charged explicitly by the code running on the node
/// ([`SimClock::charge_flops`] / [`SimClock::charge_compute_seconds`]); collective
/// phases are charged by the [`crate::Communicator`], which also aligns
/// clocks across nodes (a synchronous collective starts when the *last*
/// participant arrives).
#[derive(Debug, Clone)]
pub struct SimClock {
    now_s: f64,
    breakdown: TimeBreakdown,
    node_flops: f64,
    /// Active fault schedule; `None` preserves the exact pre-fault float
    /// arithmetic on every charge path.
    plan: Option<Arc<FaultPlan>>,
    /// Original (pre-shrink) rank of the node this clock belongs to, used
    /// to look up straggler windows.
    orig_rank: usize,
}

impl SimClock {
    pub fn new(spec: &ClusterSpec) -> Self {
        SimClock {
            now_s: 0.0,
            breakdown: TimeBreakdown::default(),
            node_flops: spec.effective_flops(),
            plan: None,
            orig_rank: 0,
        }
    }

    /// A clock for original rank `orig_rank` subject to `plan`. An inert
    /// plan is dropped so the hot path stays identical to [`SimClock::new`].
    pub fn with_faults(spec: &ClusterSpec, orig_rank: usize, plan: Arc<FaultPlan>) -> Self {
        let mut c = Self::new(spec);
        c.orig_rank = orig_rank;
        if !plan.is_inert() {
            c.plan = Some(plan);
        }
        c
    }

    /// Current simulated time in seconds since the node started.
    #[inline]
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Where the time went so far.
    #[inline]
    pub fn breakdown(&self) -> TimeBreakdown {
        self.breakdown
    }

    /// Charge a local-compute phase of `flops` floating point operations.
    #[inline]
    pub fn charge_flops(&mut self, flops: f64) {
        debug_assert!(flops >= 0.0);
        self.charge_compute_seconds(flops / self.node_flops);
    }

    /// Charge a local-compute phase of a known duration. Under an active
    /// straggler window the healthy duration still lands in `compute_s`;
    /// the slowdown surplus is charged to `fault_s` so fault cost stays
    /// separable in the breakdown.
    #[inline]
    pub fn charge_compute_seconds(&mut self, s: f64) {
        debug_assert!(s >= 0.0 && s.is_finite());
        let start = self.now_s;
        self.now_s += s;
        self.breakdown.compute_s += s;
        if let Some(plan) = &self.plan {
            let mult = plan.compute_slowdown(self.orig_rank, start);
            if mult > 1.0 {
                let extra = s * (mult - 1.0);
                self.now_s += extra;
                self.breakdown.fault_s += extra;
            }
        }
    }

    /// Charge simulated time lost to a fault (straggler surplus, degraded
    /// link surplus, failure-detection timeout). Used by the communicator.
    #[inline]
    pub fn charge_fault_seconds(&mut self, s: f64) {
        debug_assert!(s >= 0.0 && s.is_finite());
        self.now_s += s;
        self.breakdown.fault_s += s;
    }

    /// Charge timeout + backoff time for a retransmission. Used by the
    /// communicator and the p2p layer.
    #[inline]
    pub fn charge_retry_seconds(&mut self, s: f64) {
        debug_assert!(s >= 0.0 && s.is_finite());
        self.now_s += s;
        self.breakdown.retry_s += s;
    }

    /// Charge idle time (waiting for peers). Used by the communicator.
    #[inline]
    pub fn charge_idle_until(&mut self, t: f64) {
        if t > self.now_s {
            self.breakdown.idle_s += t - self.now_s;
            self.now_s = t;
        }
    }

    /// Charge communication time. Used by the communicator.
    #[inline]
    pub fn charge_comm_seconds(&mut self, s: f64) {
        debug_assert!(s >= 0.0 && s.is_finite());
        self.now_s += s;
        self.breakdown.comm_s += s;
    }

    /// Record collective price that was hidden behind already-charged
    /// compute by an overlapped (pipelined) exchange. Pure bookkeeping:
    /// `now_s` does not move — the hidden seconds elapsed *inside* compute
    /// time that is already on the clock.
    #[inline]
    pub fn charge_hidden_comm_seconds(&mut self, s: f64) {
        debug_assert!(s >= 0.0 && s.is_finite());
        self.breakdown.hidden_comm_s += s;
    }

    /// Record the width of an overlap window (compute elapsed between an
    /// overlapped collective's launch and its completion). Pure
    /// bookkeeping: `now_s` does not move.
    #[inline]
    pub fn record_overlap_window_seconds(&mut self, s: f64) {
        debug_assert!(s >= 0.0 && s.is_finite());
        self.breakdown.overlap_s += s;
    }

    /// Charge the synchronous cost of serializing a checkpoint snapshot.
    #[inline]
    pub fn charge_checkpoint_seconds(&mut self, s: f64) {
        debug_assert!(s >= 0.0 && s.is_finite());
        self.now_s += s;
        self.breakdown.checkpoint_s += s;
    }

    /// Restore the clock to a checkpointed position: `now_s` and the full
    /// breakdown are overwritten so a resumed run continues with the exact
    /// simulated-time state the interrupted run had. The hardware/fault
    /// wiring (`node_flops`, plan, rank) is untouched.
    pub fn restore(&mut self, now_s: f64, breakdown: TimeBreakdown) {
        self.now_s = now_s;
        self.breakdown = breakdown;
    }

    /// Reset to t=0 with an empty breakdown (e.g. between epochs when the
    /// caller keeps per-epoch accounts).
    pub fn reset(&mut self) {
        self.now_s = 0.0;
        self.breakdown = TimeBreakdown::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock() -> SimClock {
        SimClock::new(&ClusterSpec::cray_xc40())
    }

    #[test]
    fn starts_at_zero() {
        let c = clock();
        assert_eq!(c.now_s(), 0.0);
        assert_eq!(c.breakdown().total_s(), 0.0);
    }

    #[test]
    fn charges_accumulate_into_breakdown() {
        let mut c = clock();
        c.charge_flops(2.0e9); // exactly one second on the cray spec
        c.charge_comm_seconds(0.5);
        c.charge_idle_until(2.0);
        let b = c.breakdown();
        assert!((b.compute_s - 1.0).abs() < 1e-9);
        assert!((b.comm_s - 0.5).abs() < 1e-12);
        assert!((b.idle_s - 0.5).abs() < 1e-9);
        assert!((c.now_s() - 2.0).abs() < 1e-9);
        assert!((b.total_s() - c.now_s()).abs() < 1e-9);
    }

    #[test]
    fn idle_until_past_time_is_noop() {
        let mut c = clock();
        c.charge_comm_seconds(3.0);
        c.charge_idle_until(1.0);
        assert_eq!(c.now_s(), 3.0);
        assert_eq!(c.breakdown().idle_s, 0.0);
    }

    #[test]
    fn intra_node_speedup_scales_compute_charges() {
        // A measured 4× parallel speedup makes the same flop count cost a
        // quarter of the simulated compute time; the 1.0 default leaves
        // every existing timing untouched.
        let spec = ClusterSpec::cray_xc40().with_intra_node_speedup(4.0);
        let mut c = SimClock::new(&spec);
        c.charge_flops(2.0e9); // one second sequentially on the cray spec
        assert!((c.breakdown().compute_s - 0.25).abs() < 1e-12);
        assert_eq!(spec.effective_flops(), 8.0e9);
        assert!((spec.compute_time(2.0e9) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn straggler_surplus_lands_in_fault_bucket() {
        use crate::fault::{FaultPlan, StragglerWindow};
        let spec = ClusterSpec::cray_xc40();
        let plan = Arc::new(FaultPlan::seeded(1).with_straggler(StragglerWindow {
            rank: 0,
            start_s: 0.0,
            end_s: 10.0,
            slowdown: 3.0,
        }));
        let mut c = SimClock::with_faults(&spec, 0, plan.clone());
        c.charge_compute_seconds(1.0);
        let b = c.breakdown();
        assert!((b.compute_s - 1.0).abs() < 1e-12, "healthy share unchanged");
        assert!((b.fault_s - 2.0).abs() < 1e-12, "surplus charged to fault_s");
        assert!((c.now_s() - 3.0).abs() < 1e-12);

        // A different original rank is unaffected.
        let mut other = SimClock::with_faults(&spec, 1, plan);
        other.charge_compute_seconds(1.0);
        assert_eq!(other.breakdown().fault_s, 0.0);
    }

    #[test]
    fn inert_plan_keeps_clock_identical() {
        use crate::fault::FaultPlan;
        let spec = ClusterSpec::cray_xc40();
        let mut plain = SimClock::new(&spec);
        let mut faulted = SimClock::with_faults(&spec, 0, Arc::new(FaultPlan::none()));
        for c in [&mut plain, &mut faulted] {
            c.charge_flops(3.7e9);
            c.charge_comm_seconds(0.123);
            c.charge_idle_until(5.0);
        }
        assert_eq!(plain.now_s().to_bits(), faulted.now_s().to_bits());
        assert_eq!(plain.breakdown(), faulted.breakdown());
    }

    #[test]
    fn fault_and_retry_buckets_count_toward_total() {
        let mut c = clock();
        c.charge_fault_seconds(0.25);
        c.charge_retry_seconds(0.5);
        let b = c.breakdown();
        assert_eq!(b.fault_s, 0.25);
        assert_eq!(b.retry_s, 0.5);
        assert!((b.total_s() - 0.75).abs() < 1e-12);
        assert!((c.now_s() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn overlap_buckets_never_advance_the_clock() {
        let mut c = clock();
        c.charge_comm_seconds(0.5);
        c.charge_hidden_comm_seconds(0.25);
        c.record_overlap_window_seconds(0.4);
        let b = c.breakdown();
        assert_eq!(b.hidden_comm_s, 0.25);
        assert_eq!(b.overlap_s, 0.4);
        // Informational buckets: total_s and now_s only see the visible
        // comm charge.
        assert_eq!(c.now_s(), 0.5);
        assert_eq!(b.total_s(), 0.5);
    }

    #[test]
    fn checkpoint_charges_count_toward_total_and_restore_roundtrips() {
        let mut c = clock();
        c.charge_flops(2.0e9);
        c.charge_checkpoint_seconds(0.5);
        let b = c.breakdown();
        assert_eq!(b.checkpoint_s, 0.5);
        assert!((b.total_s() - c.now_s()).abs() < 1e-9);

        let mut fresh = clock();
        fresh.restore(c.now_s(), b);
        assert_eq!(fresh.now_s().to_bits(), c.now_s().to_bits());
        assert_eq!(fresh.breakdown(), b);
        // The restored clock keeps charging from the restored position.
        fresh.charge_comm_seconds(0.25);
        c.charge_comm_seconds(0.25);
        assert_eq!(fresh.now_s().to_bits(), c.now_s().to_bits());
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = clock();
        c.charge_flops(1e9);
        c.reset();
        assert_eq!(c.now_s(), 0.0);
        assert_eq!(c.breakdown(), TimeBreakdown::default());
    }
}
