//! Hardware description of the simulated cluster.

use serde::{Deserialize, Serialize};

/// Static description of the simulated machine: interconnect parameters for
/// the α-β cost model and per-node compute throughput.
///
/// All times are in seconds, bandwidths in bytes/second, compute in flop/s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Per-message latency of the interconnect (the `α` term), seconds.
    pub latency_s: f64,
    /// Point-to-point bandwidth (reciprocal of the `β` term), bytes/second.
    pub bandwidth_bps: f64,
    /// Per-byte cost of the local reduction work inside an all-reduce
    /// (the `γ` term), seconds/byte. Small but nonzero on real machines.
    pub reduce_cost_spb: f64,
    /// Aggregate useful flop rate of one node (all cores), flop/s.
    pub node_flops: f64,
    /// Cores per node; informational (compute is charged against
    /// `node_flops` which already aggregates the cores).
    pub cores_per_node: usize,
    /// Message-size threshold (bytes) below which latency-optimal
    /// (logarithmic) collective algorithms are preferred.
    pub small_message_bytes: usize,
    /// Measured intra-node speedup of the parallel training hot path over
    /// the sequential one (≥ 1). `node_flops` describes the sequential
    /// implementation's effective rate; the multi-threaded batch kernel
    /// raises the node's useful throughput to
    /// `node_flops × intra_node_speedup`, which is what
    /// [`ClusterSpec::effective_flops`] reports and the simulated clock
    /// divides by. Kept as a *spec* parameter — never measured inside a
    /// run — so simulated times stay bit-deterministic and independent of
    /// the host's thread count. Bounded in practice by `cores_per_node`.
    pub intra_node_speedup: f64,
}

impl ClusterSpec {
    /// The paper's testbed: Cray XC40 nodes (2×12-core Xeon) running the
    /// TensorFlow + Horovod training stack.
    ///
    /// These are **effective** parameters, not peak hardware: `node_flops`
    /// is the useful model-update throughput of the TF-era implementation
    /// (calibrated so one epoch of full-scale FB250K on a single node
    /// lands near the paper's ~500 s, Fig. 1d), and `bandwidth_bps` is the
    /// achieved throughput of Horovod collectives over Aries including
    /// (de)serialization of sparse IndexedSlices — far below the link's
    /// 9.6 GB/s. See `kge-train`'s `sim_calibration` tests.
    pub fn cray_xc40() -> Self {
        ClusterSpec {
            latency_s: 2.0e-5,
            bandwidth_bps: 2.5e8,
            reduce_cost_spb: 2.0e-11,
            node_flops: 2.0e9,
            cores_per_node: 24,
            small_message_bytes: 8192,
            intra_node_speedup: 1.0,
        }
    }

    /// Commodity 10 GbE cluster: two orders of magnitude higher latency,
    /// similar nominal bandwidth. Useful for sensitivity studies.
    pub fn ethernet_10g() -> Self {
        ClusterSpec {
            latency_s: 2.0e-4,
            bandwidth_bps: 1.25e9,
            reduce_cost_spb: 2.0e-11,
            node_flops: 1.2e10,
            cores_per_node: 24,
            small_message_bytes: 65536,
            intra_node_speedup: 1.0,
        }
    }

    /// A zero-cost network: collectives are free. Isolates compute scaling;
    /// used in tests to verify that numerics are independent of the spec.
    pub fn ideal() -> Self {
        ClusterSpec {
            latency_s: 0.0,
            bandwidth_bps: f64::INFINITY,
            reduce_cost_spb: 0.0,
            node_flops: 1.2e10,
            cores_per_node: 24,
            small_message_bytes: 8192,
            intra_node_speedup: 1.0,
        }
    }

    /// Override the measured intra-node speedup (builder style), e.g.
    /// from a `bench_smoke.sh` run on the target host.
    pub fn with_intra_node_speedup(mut self, speedup: f64) -> Self {
        assert!(
            speedup.is_finite() && speedup > 0.0,
            "intra-node speedup must be positive and finite"
        );
        self.intra_node_speedup = speedup;
        self
    }

    /// A copy of this spec with a degraded interconnect: latency
    /// multiplied by `latency_mult`, bandwidth divided by `bandwidth_div`.
    /// Used to price operations during a `FaultPlan` link-degradation
    /// window; compute parameters are untouched.
    pub fn degraded(&self, latency_mult: f64, bandwidth_div: f64) -> Self {
        debug_assert!(latency_mult >= 1.0 && bandwidth_div >= 1.0);
        ClusterSpec {
            latency_s: self.latency_s * latency_mult,
            bandwidth_bps: self.bandwidth_bps / bandwidth_div,
            ..self.clone()
        }
    }

    /// Effective useful flop rate of one node once the intra-node
    /// parallel speedup of the batch kernel is accounted for.
    #[inline]
    pub fn effective_flops(&self) -> f64 {
        self.node_flops * self.intra_node_speedup
    }

    /// Seconds to transfer `bytes` point-to-point (α + m·β).
    #[inline]
    pub fn p2p_time(&self, bytes: usize) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bps
    }

    /// Seconds of simulated compute for `flops` floating-point operations
    /// on one node.
    #[inline]
    pub fn compute_time(&self, flops: f64) -> f64 {
        flops / self.effective_flops()
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        Self::cray_xc40()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cray_spec_sane() {
        let s = ClusterSpec::cray_xc40();
        assert!(s.latency_s > 0.0 && s.latency_s < 1e-4);
        assert!(s.bandwidth_bps > 1e8);
        assert_eq!(s.cores_per_node, 24);
    }

    #[test]
    fn p2p_time_monotone_in_size() {
        let s = ClusterSpec::cray_xc40();
        assert!(s.p2p_time(1 << 20) > s.p2p_time(1 << 10));
        assert!(s.p2p_time(0) == s.latency_s);
    }

    #[test]
    fn ideal_network_is_free() {
        let s = ClusterSpec::ideal();
        assert_eq!(s.p2p_time(1 << 30), 0.0);
    }

    #[test]
    fn compute_time_scales_linearly() {
        let s = ClusterSpec::cray_xc40();
        let t1 = s.compute_time(1e9);
        let t2 = s.compute_time(2e9);
        assert!((t2 - 2.0 * t1).abs() < 1e-12);
    }

    #[test]
    fn ethernet_has_higher_latency_than_cray() {
        assert!(ClusterSpec::ethernet_10g().latency_s > ClusterSpec::cray_xc40().latency_s);
    }

    #[test]
    fn default_is_cray() {
        assert_eq!(ClusterSpec::default(), ClusterSpec::cray_xc40());
    }
}
