//! Property tests for the α-β(-γ) cost model: collective prices are
//! monotone nondecreasing in payload size and in rank count, never
//! negative or NaN, and the generic `price()` dispatch agrees exactly
//! with the per-op methods it routes to.

use proptest::prelude::*;
use simgrid::{Collective, CostModel};
use simgrid::ClusterSpec;

fn models() -> Vec<CostModel> {
    vec![
        CostModel::new(ClusterSpec::cray_xc40()),
        CostModel::new(ClusterSpec::ethernet_10g()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn allreduce_monotone_in_bytes(
        p in 1usize..=64,
        bytes in 0usize..(1 << 24),
        extra in 0usize..(1 << 24),
    ) {
        for m in models() {
            let small = m.allreduce(p, bytes);
            let big = m.allreduce(p, bytes + extra);
            prop_assert!(small >= 0.0 && small.is_finite());
            prop_assert!(big >= small, "p={p} {small} > {big}");
        }
    }

    #[test]
    fn allreduce_monotone_in_ranks(
        p in 1usize..=48,
        dp in 0usize..=16,
        bytes in 0usize..(1 << 24),
    ) {
        // Both candidate algorithms (recursive doubling, ring) are
        // individually nondecreasing in p, so their min is too.
        for m in models() {
            prop_assert!(m.allreduce(p + dp, bytes) >= m.allreduce(p, bytes));
        }
    }

    #[test]
    fn allgatherv_monotone_in_bytes_and_ranks(
        per_rank in proptest::collection::vec(0usize..(1 << 20), 1..=32),
        grow_idx in 0usize..32,
        extra in 1usize..(1 << 20),
    ) {
        for m in models() {
            let base = m.allgatherv(&per_rank);
            prop_assert!(base >= 0.0 && base.is_finite());

            // Growing any single rank's contribution cannot cheapen it.
            let mut bigger = per_rank.clone();
            let i = grow_idx % bigger.len();
            bigger[i] += extra;
            prop_assert!(m.allgatherv(&bigger) >= base, "grew rank {i}");

            // Adding one more rank (same max contribution) cannot cheapen
            // it either: total volume and latency hops both grow.
            let mut wider = per_rank.clone();
            wider.push(*per_rank.iter().max().unwrap());
            prop_assert!(m.allgatherv(&wider) >= base);
        }
    }

    #[test]
    fn broadcast_monotone_in_bytes_and_ranks(
        p in 1usize..=64,
        dp in 0usize..=16,
        bytes in 0usize..(1 << 24),
        extra in 0usize..(1 << 24),
    ) {
        for m in models() {
            let base = m.broadcast(p, bytes);
            prop_assert!(base >= 0.0 && base.is_finite());
            prop_assert!(m.broadcast(p, bytes + extra) >= base);
            prop_assert!(m.broadcast(p + dp, bytes) >= base);
        }
    }

    #[test]
    fn price_dispatch_agrees_with_per_op_methods(
        per_rank in proptest::collection::vec(0usize..(1 << 20), 1..=24),
    ) {
        let p = per_rank.len();
        let max = per_rank.iter().copied().max().unwrap_or(0);
        for m in models() {
            prop_assert_eq!(m.price(Collective::AllReduce, &per_rank), m.allreduce(p, max));
            prop_assert_eq!(m.price(Collective::AllGatherV, &per_rank), m.allgatherv(&per_rank));
            prop_assert_eq!(m.price(Collective::Broadcast, &per_rank), m.broadcast(p, max));
            prop_assert_eq!(m.price(Collective::Barrier, &per_rank), m.barrier(p));
            prop_assert_eq!(m.price(Collective::Gather, &per_rank), m.gather(&per_rank));
            prop_assert_eq!(
                m.price(Collective::PointToPoint, &per_rank),
                m.spec().p2p_time(max)
            );
        }
    }

    #[test]
    fn degraded_model_never_cheaper(
        p in 2usize..=32,
        bytes in 1usize..(1 << 24),
        lat_mult in 1.0f64..8.0,
        bw_div in 1.0f64..8.0,
    ) {
        for m in models() {
            let d = m.degraded(lat_mult, bw_div);
            prop_assert!(d.allreduce(p, bytes) >= m.allreduce(p, bytes));
            prop_assert!(d.broadcast(p, bytes) >= m.broadcast(p, bytes));
            prop_assert!(d.barrier(p) >= m.barrier(p));
        }
    }
}
