//! Property tests: every collective schedule computes the same reduction
//! as the sequential reference, for arbitrary shapes and node counts, and
//! the communicator's collectives match the standalone algorithms.

use proptest::prelude::*;
use simgrid::collectives::{
    recursive_doubling_allreduce, reference_allreduce, ring_allgatherv, ring_allreduce,
};
use simgrid::{Cluster, ClusterSpec};

fn close(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= 1e-3 * (1.0 + x.abs().max(y.abs())))
}

fn buf_strategy(p: usize, n: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    proptest::collection::vec(
        proptest::collection::vec(-100.0f32..100.0, n..=n),
        p..=p,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ring_allreduce_matches_reference(
        (p, n) in (1usize..=9, 0usize..40),
        seed in any::<u64>(),
    ) {
        let _ = seed;
        let bufs = deterministic_bufs(p, n, seed);
        let want = reference_allreduce(&bufs);
        let mut got = bufs.clone();
        ring_allreduce(&mut got);
        for g in &got {
            prop_assert!(close(g, &want));
        }
    }

    #[test]
    fn recursive_doubling_matches_reference(
        (p, n) in (1usize..=12, 1usize..40),
        seed in any::<u64>(),
    ) {
        let bufs = deterministic_bufs(p, n, seed);
        let want = reference_allreduce(&bufs);
        let mut got = bufs.clone();
        recursive_doubling_allreduce(&mut got);
        for g in &got {
            prop_assert!(close(g, &want));
        }
    }

    #[test]
    fn communicator_allreduce_matches_reference(
        bufs in (2usize..=5, 1usize..24).prop_flat_map(|(p, n)| buf_strategy(p, n)),
    ) {
        let p = bufs.len();
        let want = reference_allreduce(&bufs);
        let cluster = Cluster::new(p, ClusterSpec::ideal());
        let results = cluster.run(|ctx| {
            let mut local = bufs[ctx.rank()].clone();
            ctx.comm_mut().allreduce_sum_f32(&mut local).unwrap();
            local
        });
        for r in &results {
            prop_assert!(close(r, &want));
        }
    }

    #[test]
    fn communicator_allgather_is_rank_ordered_concat(
        contribs in proptest::collection::vec(
            proptest::collection::vec(-10.0f32..10.0, 0..12), 1..5),
    ) {
        let p = contribs.len();
        let want: Vec<f32> = contribs.concat();
        let cluster = Cluster::new(p, ClusterSpec::ideal());
        let results = cluster.run(|ctx| {
            let mine = &contribs[ctx.rank()];
            ctx.comm_mut().allgatherv_f32(mine).unwrap()
        });
        for (concat, counts) in &results {
            prop_assert_eq!(concat, &want);
            let lens: Vec<usize> = contribs.iter().map(Vec::len).collect();
            prop_assert_eq!(counts, &lens);
        }
        // Standalone ring algorithm agrees.
        let ring = ring_allgatherv(&contribs);
        for r in ring {
            prop_assert_eq!(r, want.clone());
        }
    }

    #[test]
    fn scalar_reductions_match_iterator_folds(
        vals in proptest::collection::vec(-1e6f64..1e6, 1..6),
    ) {
        let p = vals.len();
        let cluster = Cluster::new(p, ClusterSpec::ideal());
        let out = cluster.run(|ctx| {
            let v = vals[ctx.rank()];
            let sum = ctx.comm_mut().allreduce_sum_f64(v);
            let max = ctx.comm_mut().allreduce_max_f64(v);
            let min = ctx.comm_mut().allreduce_min_f64(v);
            (sum, max, min)
        });
        let want_sum: f64 = vals.iter().sum();
        let want_max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let want_min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        for (sum, max, min) in out {
            prop_assert!((sum - want_sum).abs() <= 1e-6 * (1.0 + want_sum.abs()));
            prop_assert_eq!(max, want_max);
            prop_assert_eq!(min, want_min);
        }
    }
}

/// Deterministic pseudo-random buffers without threading a full RNG
/// through proptest shrink machinery.
fn deterministic_bufs(p: usize, n: usize, seed: u64) -> Vec<Vec<f32>> {
    (0..p)
        .map(|r| {
            (0..n)
                .map(|i| {
                    let x = seed
                        .wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add((r * 1000 + i) as u64);
                    ((x % 2001) as f32 - 1000.0) / 10.0
                })
                .collect()
        })
        .collect()
}
